package segidx_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"segidx"
)

// The differential battery: a sharded forest must be observationally
// equivalent to a single tree of the same variant. Every combination of
// index variant and shard count runs the same randomized operation
// sequence against a 1-tree oracle, comparing the result of every call —
// insert and delete return values, all four search families, stabbing
// queries, counts, and lengths. Portion decomposition may legitimately
// differ between the two (each shard cuts against its own tree shape), so
// streamed results are compared as deduplicated ID sets, exactly the
// logical-record semantics the API promises.

// diffPair builds a variant twice: unsharded oracle and sharded DUT.
func diffPair(t *testing.T, kind string, shards, tuples int) (oracle, dut *segidx.Index) {
	t.Helper()
	mk := func(extra ...segidx.Option) *segidx.Index {
		opts := append([]segidx.Option{segidx.WithLeafNodeBytes(256)}, extra...)
		est := segidx.SkeletonEstimate{
			Tuples: tuples,
			Domain: segidx.Box(0, 0, 1000, 1000),
		}
		pred := est
		pred.PredictFraction = 0.05
		var x *segidx.Index
		var err error
		switch kind {
		case "r-tree":
			x, err = segidx.NewRTree(opts...)
		case "sr-tree":
			x, err = segidx.NewSRTree(opts...)
		case "skeleton-r-tree":
			x, err = segidx.NewSkeletonRTree(est, opts...)
		case "skeleton-sr-tree":
			x, err = segidx.NewSkeletonSRTree(pred, opts...)
		default:
			t.Fatalf("unknown kind %q", kind)
		}
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	return mk(), mk(segidx.WithShards(shards))
}

func sortedIDs(entries []segidx.Entry) []segidx.RecordID {
	out := make([]segidx.RecordID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// uniqueIDs collects the deduplicated, sorted ID set of a streamed query.
func uniqueIDs(stream func(fn func(segidx.Entry) bool) error) (map[segidx.RecordID]bool, error) {
	set := make(map[segidx.RecordID]bool)
	err := stream(func(e segidx.Entry) bool {
		set[e.ID] = true
		return true
	})
	return set, err
}

func equalIDSlices(a, b []segidx.RecordID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIDSets(a, b map[segidx.RecordID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func diffRect(rng *rand.Rand) segidx.Rect {
	x, y := rng.Float64()*1000, rng.Float64()*1000
	w, h := rng.Float64()*60, rng.Float64()*20
	return segidx.Box(x, y, x+w, y+h)
}

// runDifferential drives both indexes through nOps randomized operations,
// comparing every observable result.
func runDifferential(t *testing.T, oracle, dut *segidx.Index, seed int64, nOps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := make(map[segidx.RecordID]segidx.Rect)
	var liveIDs []segidx.RecordID
	nextID := segidx.RecordID(1)

	compareQueries := func(step int) {
		q := diffRect(rng)
		if step%9 == 0 {
			// Degenerate and page-spanning probes keep the containment
			// paths honest.
			q = segidx.Box(q.Min[0], q.Min[1], q.Min[0], q.Min[1])
		}
		wantHit, err1 := oracle.Search(q)
		gotHit, err2 := dut.Search(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d: Search errors diverge: %v vs %v", step, err1, err2)
		}
		if !equalIDSlices(sortedIDs(wantHit), sortedIDs(gotHit)) {
			t.Fatalf("step %d: Search(%v) diverges: oracle %v, forest %v",
				step, q, sortedIDs(wantHit), sortedIDs(gotHit))
		}
		wantN, err1 := oracle.Count(q)
		gotN, err2 := dut.Count(q)
		if err1 != nil || err2 != nil || wantN != gotN {
			t.Fatalf("step %d: Count(%v) = %d/%v vs %d/%v", step, q, wantN, err1, gotN, err2)
		}
		wantW, _ := oracle.SearchWithin(q)
		gotW, err := dut.SearchWithin(q)
		if err != nil || !equalIDSlices(sortedIDs(wantW), sortedIDs(gotW)) {
			t.Fatalf("step %d: SearchWithin diverges (%v): %v vs %v",
				step, err, sortedIDs(wantW), sortedIDs(gotW))
		}
		wantC, _ := oracle.SearchContaining(q)
		gotC, err := dut.SearchContaining(q)
		if err != nil || !equalIDSlices(sortedIDs(wantC), sortedIDs(gotC)) {
			t.Fatalf("step %d: SearchContaining diverges (%v): %v vs %v",
				step, err, sortedIDs(wantC), sortedIDs(gotC))
		}
		wantF, err1 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return oracle.SearchFunc(q, fn) })
		gotF, err2 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return dut.SearchFunc(q, fn) })
		if err1 != nil || err2 != nil || !equalIDSets(wantF, gotF) {
			t.Fatalf("step %d: SearchFunc diverges (%v, %v): %d vs %d ids",
				step, err1, err2, len(wantF), len(gotF))
		}
		px, py := q.Min[0], q.Min[1]
		wantS, err1 := oracle.Stab(px, py)
		gotS, err2 := dut.Stab(px, py)
		if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(wantS), sortedIDs(gotS)) {
			t.Fatalf("step %d: Stab diverges (%v, %v): %v vs %v",
				step, err1, err2, sortedIDs(wantS), sortedIDs(gotS))
		}
		wantSF, err1 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return oracle.StabFunc(fn, px, py) })
		gotSF, err2 := uniqueIDs(func(fn func(segidx.Entry) bool) error { return dut.StabFunc(fn, px, py) })
		if err1 != nil || err2 != nil || !equalIDSets(wantSF, gotSF) {
			t.Fatalf("step %d: StabFunc diverges (%v, %v)", step, err1, err2)
		}
	}

	for step := 0; step < nOps; step++ {
		switch op := rng.Intn(100); {
		case op < 50: // insert, occasionally reusing a live ID
			var id segidx.RecordID
			if len(liveIDs) > 0 && rng.Intn(10) == 0 {
				id = liveIDs[rng.Intn(len(liveIDs))]
			} else {
				id = nextID
				nextID++
				liveIDs = append(liveIDs, id)
			}
			r := diffRect(rng)
			if err1, err2 := oracle.Insert(r, id), dut.Insert(r, id); err1 != nil || err2 != nil {
				t.Fatalf("step %d: Insert errors: %v vs %v", step, err1, err2)
			}
			live[id] = orEmpty(live[id], r)
		case op < 62: // delete: live ID, or a never-seen one
			id := segidx.RecordID(1_000_000 + step)
			hint := segidx.Box(0, 0, 1000, 1000)
			if len(liveIDs) > 0 && rng.Intn(10) != 0 {
				i := rng.Intn(len(liveIDs))
				id = liveIDs[i]
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				hint = live[id]
				delete(live, id)
			}
			n1, err1 := oracle.Delete(id, hint)
			n2, err2 := dut.Delete(id, hint)
			if n1 != n2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d: Delete(%d) = (%d, %v) vs (%d, %v)", step, id, n1, err1, n2, err2)
			}
		case op < 65: // invalid inputs must fail identically
			bad := segidx.Rect{Min: []float64{1, 1}, Max: []float64{0, 0}}
			_, err1 := oracle.Search(bad)
			_, err2 := dut.Search(bad)
			if err1 == nil || err2 == nil || (err1 != nil) != (err2 != nil) {
				t.Fatalf("step %d: invalid-rect errors diverge: %v vs %v", step, err1, err2)
			}
		default:
			compareQueries(step)
		}
		if oracle.Len() != dut.Len() {
			t.Fatalf("step %d: Len diverges: %d vs %d", step, oracle.Len(), dut.Len())
		}
	}
	if err := dut.CheckInvariants(); err != nil {
		t.Fatalf("forest invariants: %v", err)
	}
	if err := oracle.CheckInvariants(); err != nil {
		t.Fatalf("oracle invariants: %v", err)
	}
	// A final full-domain sweep, then tear both down.
	all := segidx.Box(0, 0, 1000, 1000)
	wantAll, _ := oracle.Search(all)
	gotAll, err := dut.Search(all)
	if err != nil || !equalIDSlices(sortedIDs(wantAll), sortedIDs(gotAll)) {
		t.Fatalf("final sweep diverges (%v)", err)
	}
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dut.Close(); err != nil {
		t.Fatal(err)
	}
}

// orEmpty returns r when base is the zero Rect (first insert of an ID),
// else base, so the hint tracking covers every portion of a reused ID.
func orEmpty(base, r segidx.Rect) segidx.Rect {
	if base.Dims() == 0 {
		return r
	}
	return base.Union(r)
}

func TestForestDifferential(t *testing.T) {
	kinds := []string{"r-tree", "sr-tree", "skeleton-r-tree", "skeleton-sr-tree"}
	shardCounts := []int{1, 2, 4, 8}
	nOps := 900
	if testing.Short() {
		nOps = 250
	}
	for _, kind := range kinds {
		for _, shards := range shardCounts {
			t.Run(fmt.Sprintf("%s/shards=%d", kind, shards), func(t *testing.T) {
				oracle, dut := diffPair(t, kind, shards, nOps/2)
				if got := dut.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				runDifferential(t, oracle, dut, int64(len(kind))*31+int64(shards), nOps)
			})
		}
	}
}

// TestForestBatchesMatchSequential checks the batch APIs hit the same
// scatter-gather path and agree with sequential calls on a forest.
func TestForestBatchesMatchSequential(t *testing.T) {
	oracle, dut := diffPair(t, "sr-tree", 4, 400)
	rng := rand.New(rand.NewSource(77))
	var records []segidx.BulkRecord
	for i := 0; i < 400; i++ {
		records = append(records, segidx.BulkRecord{Rect: diffRect(rng), ID: segidx.RecordID(i + 1)})
	}
	if err := dut.InsertBatch(nil, records); err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := oracle.Insert(r.Rect, r.ID); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]segidx.Rect, 60)
	for i := range queries {
		queries[i] = diffRect(rng)
	}
	batch, err := dut.SearchBatch(nil, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := oracle.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDSlices(sortedIDs(want), sortedIDs(batch[i])) {
			t.Fatalf("query %d diverges", i)
		}
	}
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dut.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestForestBulkLoadMatches verifies sharded bulk loading: same ID sets
// as a single-tree bulk load, duplicate IDs pinned to one shard.
func TestForestBulkLoadMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var records []segidx.BulkRecord
	for i := 0; i < 500; i++ {
		records = append(records, segidx.BulkRecord{Rect: diffRect(rng), ID: segidx.RecordID(i + 1)})
	}
	// Two records under one ID, far apart: they must land on one shard.
	records = append(records,
		segidx.BulkRecord{Rect: segidx.Box(1, 1, 2, 2), ID: 9001},
		segidx.BulkRecord{Rect: segidx.Box(950, 950, 960, 960), ID: 9001},
	)
	oracle, err := segidx.BulkLoadRTree(records, 0.8, segidx.WithLeafNodeBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	dut, err := segidx.BulkLoadRTree(records, 0.8, segidx.WithLeafNodeBytes(256), segidx.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if dut.Kind() != "packed-r-tree" || dut.Shards() != 4 {
		t.Fatalf("kind=%s shards=%d", dut.Kind(), dut.Shards())
	}
	if err := dut.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 80; q++ {
		query := diffRect(rng)
		want, err1 := oracle.Search(query)
		got, err2 := dut.Search(query)
		if err1 != nil || err2 != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
			t.Fatalf("query %d diverges (%v, %v)", q, err1, err2)
		}
	}
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dut.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzForestOps feeds a decoded byte stream to a sharded forest and a
// single-tree oracle of the same variant, checking observational
// equivalence after every operation. The first two bytes select the
// variant and the shard count so the fuzzer explores every combination.
func FuzzForestOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 0, 10, 20, 30, 40})         // one insert, 4 shards
	f.Add([]byte{2, 1, 0, 1, 2, 3, 4, 1, 0, 2, 5}) // skeleton: insert, delete, search
	{
		var seed []byte
		seed = append(seed, 3, 7) // skeleton-sr-tree, 8 shards
		for i := 0; i < 20; i++ {
			seed = append(seed, 0, byte(i*13), byte(i*7), byte(i*11), byte(i*5))
		}
		for i := 0; i < 6; i++ {
			seed = append(seed, 1, byte(i*3), 2, byte(i), byte(i*9), byte(i*2), byte(i*4))
		}
		f.Add(seed)
	}

	kinds := []string{"r-tree", "sr-tree", "skeleton-r-tree", "skeleton-sr-tree"}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			t.Skip() // bound per-input work; long streams add no new shapes
		}
		if len(data) < 2 {
			return
		}
		kind := kinds[int(data[0])%len(kinds)]
		shards := 1 + int(data[1])%8
		oracle, dut := diffPair(t, kind, shards, 200)
		pos := 2
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		coord := func() float64 { return float64(next()) * 1000 / 255 }
		rect := func() segidx.Rect {
			x, y := coord(), coord()
			return segidx.Box(x, y, x+float64(next())/4, y+float64(next())/12)
		}
		nextID := segidx.RecordID(1)
		live := make(map[segidx.RecordID]segidx.Rect)
		var liveIDs []segidx.RecordID

		for pos < len(data) {
			switch next() % 3 {
			case 0: // insert
				r := rect()
				id := nextID
				nextID++
				err1, err2 := oracle.Insert(r, id), dut.Insert(r, id)
				if err1 != nil || err2 != nil {
					t.Fatalf("Insert(%v, %d): %v vs %v", r, id, err1, err2)
				}
				live[id] = r
				liveIDs = append(liveIDs, id)
			case 1: // delete a live record, or a missing one when none
				id := segidx.RecordID(999_999)
				hint := segidx.Box(0, 0, 1000, 1000)
				if len(liveIDs) > 0 {
					i := int(next()) % len(liveIDs)
					id = liveIDs[i]
					liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
					hint = live[id]
					delete(live, id)
				}
				n1, err1 := oracle.Delete(id, hint)
				n2, err2 := dut.Delete(id, hint)
				if n1 != n2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("Delete(%d) = (%d, %v) vs (%d, %v)", id, n1, err1, n2, err2)
				}
			case 2: // search
				q := rect()
				want, err1 := oracle.Search(q)
				got, err2 := dut.Search(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("Search(%v): %v vs %v", q, err1, err2)
				}
				if !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
					t.Fatalf("Search(%v) = %v vs %v", q, sortedIDs(want), sortedIDs(got))
				}
			}
			if oracle.Len() != dut.Len() {
				t.Fatalf("Len diverges: %d vs %d", oracle.Len(), dut.Len())
			}
		}
		if err := dut.CheckInvariants(); err != nil {
			t.Fatalf("forest invariants: %v", err)
		}
		all := segidx.Box(0, 0, 2000, 2000)
		want, _ := oracle.Search(all)
		got, err := dut.Search(all)
		if err != nil || !equalIDSlices(sortedIDs(want), sortedIDs(got)) {
			t.Fatalf("final sweep diverges (%v)", err)
		}
		if err := oracle.Close(); err != nil {
			t.Fatal(err)
		}
		if err := dut.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
