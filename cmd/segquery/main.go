// Command segquery loads interval or rectangle records from a CSV file
// into a segment index (optionally persisted to disk) and answers range
// queries from the command line or interactively from stdin.
//
// CSV format, one record per line (header optional):
//
//	id,xlo,ylo,xhi,yhi          rectangles
//	id,xlo,xhi,y                intervals (shorthand; equivalent to xlo,y,xhi,y)
//
// Examples:
//
//	segquery -load data.csv -index idx.db -kind sr
//	segquery -index idx.db -query "0,0,5000,100000"
//	echo "1000,0,2000,100000" | segquery -index idx.db -interactive
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"segidx"
)

func main() {
	var (
		load        = flag.String("load", "", "CSV file of records to insert")
		indexPath   = flag.String("index", "", "index file (empty = in-memory, requires -load and -query together)")
		kind        = flag.String("kind", "sr", "index type when creating: r | sr")
		query       = flag.String("query", "", "one query rectangle: xlo,ylo,xhi,yhi")
		interactive = flag.Bool("interactive", false, "read query rectangles from stdin, one per line")
		stats       = flag.Bool("stats", false, "print index statistics after the run")
	)
	flag.Parse()

	idx, err := openIndex(*indexPath, *kind, *load != "")
	if err != nil {
		fatal(err)
	}
	defer idx.Close()

	if *load != "" {
		n, err := loadCSV(idx, *load)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d records (%d index nodes, height %d)\n", n, idx.NodeCount(), idx.Height())
	}

	if *query != "" {
		if err := runQuery(idx, *query, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := runQuery(idx, line, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "segquery:", err)
			}
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		s := idx.Stats()
		fmt.Fprintf(os.Stderr, "searches=%d nodes/search=%.1f inserts=%d\n",
			s.Searches, float64(s.SearchNodeAccesses)/float64(maxU(s.Searches, 1)), s.Inserts)
	}
}

func openIndex(path, kind string, creating bool) (*segidx.Index, error) {
	if path == "" {
		if !creating {
			return nil, fmt.Errorf("in-memory mode needs -load")
		}
		return newByKind(kind)
	}
	if _, err := os.Stat(path); err == nil && !creating {
		return segidx.Open(path)
	}
	return newByKind(kind, segidx.WithFile(path))
}

func newByKind(kind string, opts ...segidx.Option) (*segidx.Index, error) {
	switch kind {
	case "r":
		return segidx.NewRTree(opts...)
	case "sr":
		return segidx.NewSRTree(opts...)
	default:
		return nil, fmt.Errorf("unknown kind %q (want r or sr; skeleton types need a size estimate, use the library API)", kind)
	}
}

func loadCSV(idx *segidx.Index, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	n := 0
	for {
		fields, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if n == 0 && looksLikeHeader(fields) {
			continue
		}
		id, rect, err := parseRecord(fields)
		if err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		if err := idx.Insert(rect, id); err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		n++
	}
	return n, nil
}

func looksLikeHeader(fields []string) bool {
	if len(fields) == 0 {
		return false
	}
	_, err := strconv.ParseFloat(fields[0], 64)
	return err != nil
}

func parseRecord(fields []string) (segidx.RecordID, segidx.Rect, error) {
	nums := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return 0, segidx.Rect{}, fmt.Errorf("bad number %q", f)
		}
		nums[i] = v
	}
	switch len(nums) {
	case 4: // id, xlo, xhi, y  (interval shorthand)
		r, err := segidx.NewRect([]float64{nums[1], nums[3]}, []float64{nums[2], nums[3]})
		return segidx.RecordID(nums[0]), r, err
	case 5: // id, xlo, ylo, xhi, yhi
		r, err := segidx.NewRect([]float64{nums[1], nums[2]}, []float64{nums[3], nums[4]})
		return segidx.RecordID(nums[0]), r, err
	default:
		return 0, segidx.Rect{}, fmt.Errorf("want 4 or 5 fields, got %d", len(nums))
	}
}

func runQuery(idx *segidx.Index, spec string, w io.Writer) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return fmt.Errorf("query %q: want xlo,ylo,xhi,yhi", spec)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("query %q: bad number %q", spec, p)
		}
		vals[i] = v
	}
	q, err := segidx.NewRect([]float64{vals[0], vals[1]}, []float64{vals[2], vals[3]})
	if err != nil {
		return err
	}
	results, err := idx.Search(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query %s: %d records\n", spec, len(results))
	for _, e := range results {
		fmt.Fprintf(w, "  %d %v\n", e.ID, e.Rect)
	}
	return nil
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "segquery:", err)
	os.Exit(1)
}
