package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segidx"
)

func TestParseRecord(t *testing.T) {
	// Interval shorthand: id, xlo, xhi, y.
	id, r, err := parseRecord([]string{"7", "10", "20", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !r.Equal(segidx.Interval(10, 20, 5)) {
		t.Fatalf("interval: id=%d rect=%v", id, r)
	}
	// Rectangle: id, xlo, ylo, xhi, yhi.
	id, r, err = parseRecord([]string{"8", "1", "2", "3", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 || !r.Equal(segidx.Box(1, 2, 3, 4)) {
		t.Fatalf("rect: id=%d rect=%v", id, r)
	}
	// Errors.
	if _, _, err := parseRecord([]string{"1", "2"}); err == nil {
		t.Error("short record accepted")
	}
	if _, _, err := parseRecord([]string{"1", "x", "3", "4"}); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, _, err := parseRecord([]string{"1", "20", "10", "5"}); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestLooksLikeHeader(t *testing.T) {
	if !looksLikeHeader([]string{"id", "xlo", "xhi", "y"}) {
		t.Error("header not detected")
	}
	if looksLikeHeader([]string{"1", "2", "3", "4"}) {
		t.Error("data row detected as header")
	}
	if looksLikeHeader(nil) {
		t.Error("empty row detected as header")
	}
}

func TestLoadCSVAndQuery(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	content := "id,xlo,xhi,y\n1,0,10,5\n2,5,15,5\n3,100,110,50\n4,1,2,3,4\n"
	if err := os.WriteFile(csvPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := segidx.NewSRTree()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	n, err := loadCSV(idx, csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d records, want 4", n)
	}

	var out strings.Builder
	if err := runQuery(idx, "0,0,12,10", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 records") {
		t.Fatalf("query output: %q", out.String())
	}
	if err := runQuery(idx, "bad", &out); err == nil {
		t.Error("bad query accepted")
	}
	if err := runQuery(idx, "1,2,3", &out); err == nil {
		t.Error("three-field query accepted")
	}
}

func TestOpenIndexModes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.db")

	// Creating mode.
	idx, err := openIndex(path, "r", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(segidx.Point(1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen mode.
	idx2, err := openIndex(path, "r", false)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Len() != 1 {
		t.Fatalf("reopened Len = %d", idx2.Len())
	}

	// In-memory without load is an error.
	if _, err := openIndex("", "r", false); err == nil {
		t.Error("in-memory without load accepted")
	}
	// Unknown kind.
	if _, err := openIndex("", "zzz", true); err == nil {
		t.Error("unknown kind accepted")
	}
}
