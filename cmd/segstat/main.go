// Command segstat builds one index type over a chosen workload and prints
// a structural quality report: per-level node counts, coverage area,
// sibling overlap, mean aspect ratios, occupancy, and spanning-record
// placement — the quantities the paper's Section 5 discussion turns on.
//
// Examples:
//
//	segstat -kind sksr -dataset I3 -tuples 200000
//	segstat -kind r -dataset R2 -tuples 50000 -check
package main

import (
	"flag"
	"fmt"
	"os"

	"segidx"
	"segidx/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "sksr", "index type: r | sr | skr | sksr")
		dataset = flag.String("dataset", "I3", "workload: I1 I2 I3 I4 R1 R2 RE1 RE2")
		tuples  = flag.Int("tuples", 50000, "dataset size")
		seed    = flag.Uint64("seed", 1991, "workload seed")
		leaf    = flag.Int("leaf", 1024, "leaf page bytes")
		growth  = flag.Int("growth", 2, "node size growth per level")
		reserve = flag.Float64("reserve", 2.0/3.0, "branch reserve fraction (SR variants)")
		check   = flag.Bool("check", false, "validate structural invariants")
	)
	flag.Parse()

	ds, err := workload.ParseDataset(*dataset)
	if err != nil {
		fatal(err)
	}
	opts := []segidx.Option{
		segidx.WithLeafNodeBytes(*leaf),
		segidx.WithNodeGrowth(*growth),
		segidx.WithBranchReserve(*reserve),
	}
	est := segidx.SkeletonEstimate{
		Tuples:          *tuples,
		Domain:          segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi),
		PredictFraction: 0.05,
	}
	var idx *segidx.Index
	switch *kind {
	case "r":
		idx, err = segidx.NewRTree(opts...)
	case "sr":
		idx, err = segidx.NewSRTree(opts...)
	case "skr":
		idx, err = segidx.NewSkeletonRTree(est, opts...)
	case "sksr":
		idx, err = segidx.NewSkeletonSRTree(est, opts...)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	defer idx.Close()

	for i, r := range ds.Generate(*tuples, *seed) {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			fatal(fmt.Errorf("insert %d: %w", i, err))
		}
	}
	if *check {
		if err := idx.CheckInvariants(); err != nil {
			fatal(fmt.Errorf("invariants: %w", err))
		}
		fmt.Println("invariants: ok")
	}
	rep, err := idx.Analyze()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s over %s (%s), %d tuples\n\n", idx.Kind(), ds, ds.Describe(), *tuples)
	fmt.Print(rep.String())

	st := idx.Stats()
	fmt.Printf("\nactivity: %d splits (%d leaf), %d promotions, %d demotions, %d relinks, %d cuts, %d coalesces, %d reinserts\n",
		st.LeafSplits+st.NonLeafSplits, st.LeafSplits, st.Promotions, st.Demotions, st.Relinks, st.Cuts, st.Coalesces, st.Reinserts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "segstat:", err)
	os.Exit(1)
}
