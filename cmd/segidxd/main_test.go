package main

import (
	"path/filepath"
	"testing"

	"segidx"
)

// TestOpenIndex covers the daemon's build-or-reopen decision: fresh
// in-memory indexes of both kinds, a fresh durable sharded forest, and a
// restart that reopens the persisted forest with its records intact.
func TestOpenIndex(t *testing.T) {
	// Fresh in-memory indexes.
	for kind, want := range map[string]string{"r": "r-tree", "sr": "sr-tree"} {
		idx, err := openIndex("", "", 1, 2, kind, 0, 0, 0, 0, segidx.HybridAuto)
		if err != nil {
			t.Fatalf("openIndex(%q): %v", kind, err)
		}
		if idx.Kind() != want {
			t.Errorf("kind %q built %q, want %q", kind, idx.Kind(), want)
		}
		idx.Close()
	}

	// -accel attaches a sidecar that surfaces through AccelStats.
	acc, err := openIndex("", "", 1, 2, "sr", 0, 0, 8, 0, segidx.HybridAlways)
	if err != nil {
		t.Fatalf("openIndex with -accel: %v", err)
	}
	if st := acc.AccelStats(); len(st) != 1 || st[0].Levels != 8 {
		t.Errorf("AccelStats = %+v, want one sidecar with 8 levels", st)
	}
	acc.Close()

	// Flag validation.
	if _, err := openIndex("a", "b", 1, 2, "sr", 0, 0, 0, 0, segidx.HybridAuto); err == nil {
		t.Error("-file together with -durable accepted")
	}
	if _, err := openIndex("", "", 1, 2, "bogus", 0, 0, 0, 0, segidx.HybridAuto); err == nil {
		t.Error("unknown -kind accepted")
	}

	// A durable sharded forest survives a daemon restart.
	path := filepath.Join(t.TempDir(), "forest.db")
	idx, err := openIndex("", path, 4, 2, "sr", 0, 2, 0, 0, segidx.HybridAuto)
	if err != nil {
		t.Fatalf("fresh durable forest: %v", err)
	}
	if idx.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", idx.Shards())
	}
	for i := 1; i <= 50; i++ {
		x := float64(i)
		if err := idx.Insert(segidx.Box(x, x, x+1, x+1), segidx.RecordID(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := openIndex("", path, 4, 2, "sr", 0, 2, 0, 0, segidx.HybridAuto)
	if err != nil {
		t.Fatalf("reopen durable forest: %v", err)
	}
	defer re.Close()
	if re.Shards() != 4 || re.Len() != 50 {
		t.Fatalf("reopened shards=%d len=%d, want 4 and 50", re.Shards(), re.Len())
	}
}
