// Command segidxd serves a segment index over HTTP.
//
// The daemon builds (or reopens) an index — optionally sharded into a
// forest and optionally durable behind per-shard write-ahead logs — and
// exposes it as a JSON API:
//
//	POST /search    {"rect": {"min": [x,y], "max": [x,y]}}  or {"rects": [...]}
//	POST /stab      {"point": [x,y]}                        or {"points": [...]}
//	POST /count     {"rect": ...}                           or {"rects": [...]}
//	POST /insert    {"id": 1, "rect": {...}}
//	POST /delete    {"id": 1, "hint": {...}}
//	POST /bulkload  {"records": [{"id": 1, "rect": {...}}, ...]}
//	GET  /metrics   cache, latency, and engine counters
//	GET  /healthz   liveness probe
//
// Examples:
//
//	segidxd -addr :8080                                  # in-memory r-tree
//	segidxd -addr :8080 -durable idx.db -shards 4        # durable 4-shard forest
//	segidxd -addr :8080 -durable idx.db -flushevery 100  # group commit every 100 mutations
//	segidxd -addr :8080 -accel 10 -hybrid auto           # stab-accelerator sidecar on dim 0
//
// Reads fan out through the index's batch worker pool; query results are
// served from an LRU cache invalidated by a mutation epoch. On SIGINT or
// SIGTERM the daemon stops accepting connections, drains in-flight
// requests, and flushes the WAL before exiting, so every acknowledged
// mutation is durable after a graceful shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"segidx"
	"segidx/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		file        = flag.String("file", "", "store pages in a file (non-durable)")
		durable     = flag.String("durable", "", "store pages in a file behind a write-ahead log")
		shards      = flag.Int("shards", 1, "partition the index into n independent trees")
		dims        = flag.Int("dims", 2, "rectangle dimensionality (1-8), new indexes only")
		kind        = flag.String("kind", "sr", "index type for new indexes: r | sr")
		cacheSize   = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		poolBytes   = flag.Int("poolbytes", 0, "buffer pool budget in bytes (0 = unlimited)")
		parallelism = flag.Int("parallelism", 0, "batch/scatter worker bound (0 = GOMAXPROCS)")
		maxBody     = flag.Int64("maxbody", 1<<20, "maximum request body in bytes")
		flushEvery  = flag.Int("flushevery", 0, "flush (group commit) every n mutations; 0 = only at shutdown")
		drainFor    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		accelLevels = flag.Int("accel", 0, "attach a stab-accelerator sidecar with this hierarchy depth (1-16); 0 disables")
		accelDim    = flag.Int("acceldim", 0, "hot dimension for the -accel sidecar")
		hybrid      = flag.String("hybrid", "auto", "sidecar routing mode for -accel: off | always | auto")
	)
	flag.Parse()

	hybridMode, err := segidx.ParseHybridMode(*hybrid)
	if err != nil {
		log.Fatalf("segidxd: %v", err)
	}
	idx, err := openIndex(*file, *durable, *shards, *dims, *kind, *poolBytes, *parallelism,
		*accelLevels, *accelDim, hybridMode)
	if err != nil {
		log.Fatalf("segidxd: %v", err)
	}

	cacheCap := *cacheSize
	if cacheCap == 0 {
		cacheCap = -1 // Config treats 0 as "default"; -1 disables
	}
	srv := server.New(idx, server.Config{
		CacheEntries: cacheCap,
		MaxBodyBytes: *maxBody,
		FlushEvery:   *flushEvery,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("segidxd: serving %s (%d shard(s), %d dims) on %s",
		idx.Kind(), idx.Shards(), *dims, *addr)

	select {
	case <-ctx.Done():
		log.Printf("segidxd: shutting down, draining for up to %v", *drainFor)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		err := httpSrv.Shutdown(drainCtx)
		cancel()
		// Close flushes every shard's WAL: acknowledged mutations are
		// durable before the process exits.
		err = errors.Join(err, idx.Close())
		if err != nil {
			log.Fatalf("segidxd: shutdown: %v", err)
		}
		log.Printf("segidxd: index flushed, bye")
	case err := <-errCh:
		idx.Close()
		log.Fatalf("segidxd: serve: %v", err)
	}
}

// openIndex builds or reopens the index described by the flags. An
// existing file (or forest manifest) is reopened — replaying WALs when
// durable — so restarting the daemon resumes where the last shutdown
// committed; a missing path builds a fresh index.
func openIndex(file, durable string, shards, dims int, kind string, poolBytes, parallelism,
	accelLevels, accelDim int, hybrid segidx.HybridMode) (*segidx.Index, error) {
	if file != "" && durable != "" {
		return nil, fmt.Errorf("-file and -durable are mutually exclusive")
	}
	opts := []segidx.Option{
		segidx.WithDims(dims),
		segidx.WithParallelism(parallelism),
	}
	if accelLevels > 0 {
		opts = append(opts,
			segidx.WithStabAccel(accelDim, accelLevels),
			segidx.WithHybridMode(hybrid))
	}
	if poolBytes > 0 {
		opts = append(opts, segidx.WithPoolBytes(poolBytes))
	}
	if shards > 1 {
		opts = append(opts, segidx.WithShards(shards))
	}
	path := file
	if durable != "" {
		path = durable
		opts = append(opts, segidx.WithDurableFile(durable))
	} else if file != "" {
		opts = append(opts, segidx.WithFile(file))
	}
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			if durable != "" {
				return segidx.OpenDurable(path, opts...)
			}
			return segidx.Open(path, opts...)
		}
	}
	switch kind {
	case "r":
		return segidx.NewRTree(opts...)
	case "sr":
		return segidx.NewSRTree(opts...)
	default:
		return nil, fmt.Errorf("unknown -kind %q (want r or sr)", kind)
	}
}
