package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -parallel mode measures concurrent read scale-up: it builds each
// index type once, then replays the same query set through SearchBatch at
// increasing worker counts, reporting wall-clock throughput, speedup over
// the first worker count, and the buffer pool counter deltas for each
// run. Output is BENCH JSON (one line per kind x worker count) so the
// numbers are machine-readable alongside the human summary on stderr.

type parallelJSON struct {
	Experiment     string           `json:"experiment"`
	Kind           string           `json:"kind"`
	Tuples         int              `json:"tuples"`
	Seed           uint64           `json:"seed"`
	Workers        int              `json:"workers"`
	Queries        int              `json:"queries"`
	ElapsedMS      float64          `json:"elapsed_ms"`
	QPS            float64          `json:"qps"`
	Speedup        float64          `json:"speedup"`
	NodesPerSearch float64          `json:"nodes_per_search"`
	Pool           harness.PoolJSON `json:"pool"`
}

// parseWorkers parses the -workers list ("1,2,4,8") into ascending worker
// counts.
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}

// runParallel executes the scale-up experiment and prints BENCH JSON
// lines to stdout.
func runParallel(tuples, queriesPerQAR int, seed uint64, kinds []harness.Kind, workers []int, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if len(kinds) == 0 {
		kinds = harness.AllKinds()
	}
	spec := harness.NewSpec("parallel scale-up (I3)", workload.I3, tuples)
	spec.Seed = seed
	if queriesPerQAR > 0 {
		spec.QueriesPerQAR = queriesPerQAR
	}
	// The paper's full QAR sweep, flattened into one batch.
	var queries []segidx.Rect
	for _, qar := range spec.QARs {
		queries = append(queries, workload.Queries(qar, spec.QueriesPerQAR, spec.Seed)...)
	}
	for _, kind := range kinds {
		idx, buildTime, err := harness.Build(spec, kind)
		if err != nil {
			return err
		}
		fmt.Fprintf(progress, "%-17s built: %d tuples in %v\n", kind, spec.Tuples, buildTime.Round(time.Millisecond))
		// One untimed pass warms the pool so every timed run sees the
		// same residency.
		if _, err := idx.SearchBatch(context.Background(), queries); err != nil {
			idx.Close()
			return err
		}
		baseQPS := 0.0
		for _, w := range workers {
			idx.SetParallelism(w)
			poolBefore := idx.PoolStats()
			statsBefore := idx.Stats()
			start := time.Now()
			if _, err := idx.SearchBatch(context.Background(), queries); err != nil {
				idx.Close()
				return err
			}
			elapsed := time.Since(start)
			statsAfter := idx.Stats()
			pool := harness.PoolDelta(poolBefore, idx.PoolStats())
			qps := float64(len(queries)) / elapsed.Seconds()
			if baseQPS == 0 {
				baseQPS = qps
			}
			nps := 0.0
			if d := statsAfter.Searches - statsBefore.Searches; d > 0 {
				nps = float64(statsAfter.SearchNodeAccesses-statsBefore.SearchNodeAccesses) / float64(d)
			}
			line := parallelJSON{
				Experiment:     "parallel",
				Kind:           kind.String(),
				Tuples:         spec.Tuples,
				Seed:           spec.Seed,
				Workers:        w,
				Queries:        len(queries),
				ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
				QPS:            qps,
				Speedup:        qps / baseQPS,
				NodesPerSearch: nps,
				Pool:           harness.NewPoolJSON(pool),
			}
			buf, err := json.Marshal(line)
			if err != nil {
				idx.Close()
				return err
			}
			fmt.Printf("BENCH %s\n", buf)
			fmt.Fprintf(progress, "%-17s workers=%-3d %8.0f q/s  speedup %.2fx  pool hit %.1f%%\n",
				kind, w, qps, qps/baseQPS, 100*pool.HitRate())
		}
		if err := idx.Close(); err != nil {
			return err
		}
	}
	return nil
}
