package main

import (
	"fmt"
	"io"

	"segidx/internal/harness"
	"segidx/internal/workload"
)

// variant is one configuration in an ablation sweep.
type variant struct {
	label  string
	mutate func(*harness.Spec)
}

// runAblation executes the DESIGN.md ablation experiments A1-A5: each
// varies one design parameter the paper fixes (or leaves open) and reruns
// the QAR sweep.
func runAblation(name string, tuples, queries int, seed uint64, csv, check bool, progress io.Writer) error {
	var (
		ds       workload.Dataset
		kinds    []harness.Kind
		variants []variant
	)
	switch name {
	case "reserve":
		// A1: the paper reserves 2/3 of non-leaf entries for branches.
		ds = workload.I3
		kinds = []harness.Kind{harness.KindSRTree, harness.KindSkeletonSRTree}
		for _, f := range []struct {
			label string
			v     float64
		}{{"reserve=1/2", 0.5}, {"reserve=2/3 (paper)", 2.0 / 3.0}, {"reserve=3/4", 0.75}} {
			f := f
			variants = append(variants, variant{f.label, func(s *harness.Spec) { s.BranchReserve = f.v }})
		}
	case "nodesize":
		// A2: tactic 2 — doubling node sizes vs fixed 1 KiB everywhere.
		ds = workload.I3
		kinds = harness.AllKinds()
		variants = []variant{
			{"growth=2 (paper)", func(s *harness.Spec) { s.Growth = 2 }},
			{"growth=1 (fixed 1KiB)", func(s *harness.Spec) { s.Growth = 1 }},
		}
	case "predict":
		// A3: distribution-prediction sample size (paper: 5-10% works well).
		ds = workload.I2
		kinds = []harness.Kind{harness.KindSkeletonRTree, harness.KindSkeletonSRTree}
		for _, f := range []struct {
			label string
			frac  float64
		}{{"sample=1%", 0.01}, {"sample=5%", 0.05}, {"sample=10%", 0.10}} {
			f := f
			variants = append(variants, variant{f.label, func(s *harness.Spec) {
				s.PredictSample = int(float64(s.Tuples) * f.frac)
				if s.PredictSample < 1 {
					s.PredictSample = 1
				}
			}})
		}
	case "coalesce":
		// A4: adaptive coalescing on vs off.
		ds = workload.I2
		kinds = []harness.Kind{harness.KindSkeletonRTree, harness.KindSkeletonSRTree}
		variants = []variant{
			{"coalesce every 1000 (paper)", func(s *harness.Spec) { s.CoalesceEvery = 1000 }},
			{"coalesce off", func(s *harness.Spec) { s.CoalesceEvery = 0 }},
		}
	case "packing":
		// A6: static packed R-Tree (the [ROUS85] alternative the paper's
		// skeletons replace with a dynamic construction) vs the paper's
		// index types, on short and skewed interval data.
		for _, d := range []workload.Dataset{workload.I1, workload.I3} {
			spec := harness.NewSpec(fmt.Sprintf("Ablation packing: %s, %d tuples", d, tuples), d, tuples)
			spec.Kinds = []harness.Kind{
				harness.KindRTree, harness.KindSkeletonSRTree, harness.KindPackedRTree,
			}
			spec.QueriesPerQAR = queries
			spec.Seed = seed
			spec.CheckInvariants = check
			res, err := harness.Run(spec, progress)
			if err != nil {
				return err
			}
			emit(res, csv, false, false)
		}
		return nil
	case "leafpromo":
		// A5: the leaf-promotion design choice DESIGN.md documents.
		ds = workload.I3
		kinds = []harness.Kind{harness.KindSRTree, harness.KindSkeletonSRTree}
		variants = []variant{
			{"leaf promotion on (default)", func(s *harness.Spec) { s.LeafPromotion = true }},
			{"leaf promotion off", func(s *harness.Spec) { s.LeafPromotion = false }},
		}
	default:
		return fmt.Errorf("unknown ablation %q (want reserve, nodesize, predict, coalesce, leafpromo, packing)", name)
	}

	for _, v := range variants {
		spec := harness.NewSpec(fmt.Sprintf("Ablation %s: %s (%s, %d tuples)", name, v.label, ds, tuples), ds, tuples)
		spec.Kinds = kinds
		spec.QueriesPerQAR = queries
		spec.Seed = seed
		spec.CheckInvariants = check
		v.mutate(&spec)
		res, err := harness.Run(spec, progress)
		if err != nil {
			return err
		}
		emit(res, csv, false, false)
	}
	return nil
}
