package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -hotpath mode measures the zero-allocation read path: it builds each
// index type once, warms the pool until the tree is fully resident, and
// runs the gated query benchmarks (SearchFunc, StabFunc, Count — the
// view-lifetime APIs that must not allocate) plus the materializing Search
// for context. Output is BENCH JSON lines; -out writes the collected
// document (BENCH_hotpath.json), -baseline folds a previous document in as
// before/after trajectory, and -gate exits nonzero if any gated benchmark
// allocates.

type hotpathJSON struct {
	Experiment  string  `json:"experiment"`
	Benchmark   string  `json:"benchmark"`
	Kind        string  `json:"kind"`
	Tuples      int     `json:"tuples"`
	Seed        uint64  `json:"seed"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Gated marks the view APIs whose alloc count the CI smoke job fails
	// on; Search is reported for context but owns its results by design.
	Gated bool `json:"gated"`
	// Trajectory against the -baseline document, when one is given.
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp *int64  `json:"baseline_allocs_per_op,omitempty"`
	SpeedupPct          float64 `json:"speedup_pct,omitempty"`
}

// hotpathDoc is the on-disk shape of BENCH_hotpath.json.
type hotpathDoc struct {
	Experiment string        `json:"experiment"`
	Tuples     int           `json:"tuples"`
	Seed       uint64        `json:"seed"`
	Results    []hotpathJSON `json:"results"`
}

// hotpathStabPoints mirrors the benchmark suite: stab points lie on
// records of the dataset (interval workloads place segments at exact Y
// values, so uniform random points would stab nothing).
func hotpathStabPoints(spec harness.Spec, n int) [][]float64 {
	records := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	step := len(records) / n
	if step < 1 {
		step = 1
	}
	var points [][]float64
	for i := 0; i < len(records) && len(points) < n; i += step {
		r := records[i]
		points = append(points, []float64{(r.Min[0] + r.Max[0]) / 2, r.Min[1]})
	}
	return points
}

// runHotpath executes the hot-path benchmarks and prints BENCH JSON lines
// to stdout. When gate is set, any gated benchmark reporting a nonzero
// allocation count makes the run fail after all results are printed.
func runHotpath(tuples int, seed uint64, kinds []harness.Kind, gate bool, outPath, baselinePath string, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if len(kinds) == 0 {
		kinds = harness.AllKinds()
	}
	baseline, err := loadHotpathBaseline(baselinePath)
	if err != nil {
		return err
	}

	doc := hotpathDoc{Experiment: "hotpath", Tuples: tuples, Seed: seed}
	var gateFailures []string
	for _, kind := range kinds {
		spec := harness.NewSpec("hotpath (I3)", workload.I3, tuples)
		spec.Seed = seed
		idx, buildTime, err := harness.Build(spec, kind)
		if err != nil {
			return err
		}
		fmt.Fprintf(progress, "%-17s built: %d tuples in %v\n", kind, spec.Tuples, buildTime.Round(time.Millisecond))

		queries := workload.Queries(1, 64, spec.Seed)
		points := hotpathStabPoints(spec, 256)
		discard := func(segidx.Entry) bool { return true }
		// Warm until fully resident so the timed runs measure the pure
		// in-memory path.
		for _, q := range queries {
			if err := idx.SearchFunc(q, discard); err != nil {
				idx.Close()
				return err
			}
		}
		for _, p := range points {
			if err := idx.StabFunc(discard, p...); err != nil {
				idx.Close()
				return err
			}
		}

		var benchErr error
		benches := []struct {
			name  string
			gated bool
			fn    func(b *testing.B)
		}{
			{"SearchFunc", true, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := idx.SearchFunc(queries[i%len(queries)], discard); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}},
			{"StabFunc", true, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := idx.StabFunc(discard, points[i%len(points)]...); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}},
			{"Count", true, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := idx.Count(queries[i%len(queries)]); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}},
			{"Search", false, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := idx.Search(queries[i%len(queries)]); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			}},
		}
		for _, bench := range benches {
			r := testing.Benchmark(bench.fn)
			if benchErr != nil {
				idx.Close()
				return benchErr
			}
			line := hotpathJSON{
				Experiment:  "hotpath",
				Benchmark:   bench.name,
				Kind:        kind.String(),
				Tuples:      spec.Tuples,
				Seed:        spec.Seed,
				N:           r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Gated:       bench.gated,
			}
			if base, ok := baseline[bench.name+"/"+kind.String()]; ok {
				line.BaselineNsPerOp = base.NsPerOp
				allocs := base.AllocsPerOp
				line.BaselineAllocsPerOp = &allocs
				if base.NsPerOp > 0 {
					line.SpeedupPct = 100 * (base.NsPerOp - line.NsPerOp) / base.NsPerOp
				}
			}
			doc.Results = append(doc.Results, line)
			buf, err := json.Marshal(line)
			if err != nil {
				idx.Close()
				return err
			}
			fmt.Printf("BENCH %s\n", buf)
			fmt.Fprintf(progress, "%-17s %-10s %9.0f ns/op %5d allocs/op\n", kind, bench.name, line.NsPerOp, line.AllocsPerOp)
			if gate && bench.gated && line.AllocsPerOp > 0 {
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s/%s: %d allocs/op (want 0)", bench.name, kind, line.AllocsPerOp))
			}
		}
		if err := idx.Close(); err != nil {
			return err
		}
	}

	if outPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", outPath)
	}
	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			fmt.Fprintln(os.Stderr, "segbench: alloc gate:", f)
		}
		return fmt.Errorf("%d gated benchmark(s) allocate on the hot path", len(gateFailures))
	}
	return nil
}

// loadHotpathBaseline reads a previous BENCH_hotpath.json and indexes its
// results by "Benchmark/Kind". An empty path loads nothing.
func loadHotpathBaseline(path string) (map[string]hotpathJSON, error) {
	if path == "" {
		return nil, nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading -baseline: %w", err)
	}
	var doc hotpathDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("parsing -baseline %s: %w", path, err)
	}
	out := make(map[string]hotpathJSON, len(doc.Results))
	for _, r := range doc.Results {
		out[r.Benchmark+"/"+r.Kind] = r
	}
	return out, nil
}
