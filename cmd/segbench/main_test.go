package main

import (
	"bytes"
	"strings"
	"testing"

	"segidx/internal/harness"
	"segidx/internal/workload"
)

func TestParseKinds(t *testing.T) {
	got, err := parseKinds("r,sr,skr,sksr")
	if err != nil {
		t.Fatal(err)
	}
	want := []harness.Kind{harness.KindRTree, harness.KindSRTree, harness.KindSkeletonRTree, harness.KindSkeletonSRTree}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if k, err := parseKinds(""); err != nil || k != nil {
		t.Errorf("empty = %v, %v", k, err)
	}
	if _, err := parseKinds("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	if k, err := parseKinds(" r , sksr "); err != nil || len(k) != 2 {
		t.Errorf("whitespace handling: %v, %v", k, err)
	}
}

func TestRunAblationUnknown(t *testing.T) {
	if err := runAblation("nope", 100, 5, 1, false, false, nil); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestRunAblationTiny(t *testing.T) {
	// A minimal end-to-end ablation run exercising the variant plumbing.
	var progress bytes.Buffer
	if err := runAblation("leafpromo", 800, 3, 1, true, false, &progress); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "SR-Tree") {
		t.Errorf("no progress emitted: %q", progress.String())
	}
}

func TestEmitFormats(t *testing.T) {
	spec := harness.NewSpec("emit test", workload.I1, 500)
	spec.QARs = []float64{0.1, 1, 10}
	spec.QueriesPerQAR = 3
	spec.Kinds = []harness.Kind{harness.KindRTree}
	res, err := harness.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// emit writes to stdout; just verify the renderers do not panic and
	// contain the expected structure.
	if !strings.Contains(res.Table(), "emit test") {
		t.Error("table missing title")
	}
	if !strings.HasPrefix(res.CSV(), "qar,") {
		t.Error("csv missing header")
	}
}
