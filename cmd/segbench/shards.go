package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -shards mode measures what the index forest buys for durable
// ingest: a fixed set of concurrent writer clients runs the same insert
// workload against 1, 2, 4, ... shards over WAL-backed stores, each
// client issuing its own group commits (FlushShard every -flushevery of
// its inserts). The client count stays constant across shard counts —
// the standard sharded-system methodology — so the 1-shard baseline
// pays what a real multi-client ingest pays: every writer serializes
// behind one write lock and one WAL, and each group commit stalls the
// other clients for a full fsync. A forest gives each client its own
// shard, lock, and WAL, so commits overlap and the per-tree CPU cost
// (depth, coalescing, working set) shrinks with the partition. Output
// is BENCH JSON, one line per shard count, with the speedup over the
// 1-shard baseline.

type shardsJSON struct {
	Experiment    string  `json:"experiment"`
	Kind          string  `json:"kind"`
	Shards        int     `json:"shards"`
	Writers       int     `json:"writers"`
	Tuples        int     `json:"tuples"`
	Seed          uint64  `json:"seed"`
	FlushEvery    int     `json:"flush_every"`
	Flushes       int     `json:"flushes"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
	SpeedupX      float64 `json:"speedup_x"` // inserts_per_sec / 1-shard baseline
}

// shardsWriters is the fixed client count for every shard configuration.
// Shard counts beyond it share writers round-robin (writer w owns every
// shard s with s%W == w); shard counts below it split each shard's
// records across the writers that land on it.
const shardsWriters = 4

// parseShardCounts parses the -shards list ("1,2,4,8"), ascending, with
// the 1-shard baseline required first.
func parseShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 || out[0] != 1 {
		return nil, fmt.Errorf("-shards must start with the 1-shard baseline, got %q", s)
	}
	return out, nil
}

// runShards executes the sharded ingest sweep and prints BENCH JSON
// lines to stdout; with -out the same records are also written as a JSON
// document.
func runShards(tuples, flushEvery int, seed uint64, counts []int, outPath string, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if flushEvery < 1 {
		flushEvery = 1
	}
	spec := harness.NewSpec("shards", workload.I3, tuples)
	spec.Seed = seed
	data := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	dir, err := os.MkdirTemp("", "segbench-shards-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var results []shardsJSON
	var baseIPS float64
	for _, shards := range counts {
		idx, err := shardsIndex(spec, shards, dir)
		if err != nil {
			return fmt.Errorf("%d shards: %w", shards, err)
		}
		writers := shardsWriters

		// Pre-partition the records by home shard, then deal the shards
		// out to the fixed writer pool: with W or more shards each writer
		// owns whole shards (group commits never cross a client), with
		// fewer shards each shard's records are split evenly across the
		// clients that land on it, so every configuration ingests the
		// same records with the same number of concurrent clients.
		parts := make([][]int, shards)
		for i, r := range data {
			s := idx.ShardOf(r)
			parts[s] = append(parts[s], i)
		}
		type job struct {
			shard int
			recs  []int
		}
		jobs := make([][]job, writers)
		if shards >= writers {
			for s := 0; s < shards; s++ {
				w := s % writers
				jobs[w] = append(jobs[w], job{s, parts[s]})
			}
		} else {
			for s := 0; s < shards; s++ {
				var ws []int
				for w := 0; w < writers; w++ {
					if w%shards == s {
						ws = append(ws, w)
					}
				}
				for j, w := range ws {
					lo := j * len(parts[s]) / len(ws)
					hi := (j + 1) * len(parts[s]) / len(ws)
					if lo < hi {
						jobs[w] = append(jobs[w], job{s, parts[s][lo:hi]})
					}
				}
			}
		}

		start := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, writers)
		flushes := make([]int, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				since := 0
				for _, jb := range jobs[w] {
					for _, i := range jb.recs {
						if err := idx.Insert(data[i], segidx.RecordID(i+1)); err != nil {
							errCh <- fmt.Errorf("writer %d insert: %w", w, err)
							return
						}
						if since++; since == flushEvery {
							if err := idx.FlushShard(jb.shard); err != nil {
								errCh <- fmt.Errorf("writer %d flush shard %d: %w", w, jb.shard, err)
								return
							}
							flushes[w]++
							since = 0
						}
					}
					if since > 0 {
						if err := idx.FlushShard(jb.shard); err != nil {
							errCh <- fmt.Errorf("writer %d flush shard %d: %w", w, jb.shard, err)
							return
						}
						flushes[w]++
						since = 0
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			idx.Close()
			return err
		default:
		}
		elapsed := time.Since(start)
		if idx.Len() != tuples {
			idx.Close()
			return fmt.Errorf("%d shards: Len = %d after ingest, want %d", shards, idx.Len(), tuples)
		}
		if err := idx.Close(); err != nil {
			return fmt.Errorf("%d shards close: %w", shards, err)
		}

		totalFlushes := 0
		for _, n := range flushes {
			totalFlushes += n
		}
		ips := float64(tuples) / elapsed.Seconds()
		if shards == 1 {
			baseIPS = ips
		}
		speedup := 0.0
		if baseIPS > 0 {
			speedup = ips / baseIPS
		}
		line := shardsJSON{
			Experiment:    "shards",
			Kind:          "skeleton-sr-tree",
			Shards:        shards,
			Writers:       writers,
			Tuples:        tuples,
			Seed:          seed,
			FlushEvery:    flushEvery,
			Flushes:       totalFlushes,
			ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			InsertsPerSec: ips,
			SpeedupX:      speedup,
		}
		results = append(results, line)
		buf, err := json.Marshal(line)
		if err != nil {
			return err
		}
		fmt.Printf("BENCH %s\n", buf)
		fmt.Fprintf(progress, "shards=%d writers=%d: %d tuples in %v (%d group commits, %.0f inserts/s, %.2fx)\n",
			shards, writers, tuples, elapsed.Round(time.Millisecond), totalFlushes, ips, speedup)
	}

	if outPath != "" {
		doc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", outPath)
	}
	return nil
}

// shardsIndex builds an empty durable skeleton SR-Tree forest (or the
// single-tree baseline) mirroring the harness's construction parameters.
func shardsIndex(spec harness.Spec, shards int, dir string) (*segidx.Index, error) {
	opts := []segidx.Option{
		segidx.WithLeafNodeBytes(spec.LeafBytes),
		segidx.WithNodeGrowth(spec.Growth),
		segidx.WithBranchReserve(spec.BranchReserve),
		segidx.WithLeafPromotion(spec.LeafPromotion),
		segidx.WithCoalescing(spec.CoalesceEvery, spec.CoalesceCandidates),
		segidx.WithDurableFile(filepath.Join(dir, fmt.Sprintf("forest-%d.db", shards))),
	}
	if shards > 1 {
		opts = append(opts, segidx.WithShards(shards))
	}
	est := segidx.SkeletonEstimate{
		Tuples:          spec.Tuples,
		Domain:          segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi),
		PredictFraction: float64(spec.PredictSample) / float64(spec.Tuples),
	}
	return segidx.NewSkeletonSRTree(est, opts...)
}
