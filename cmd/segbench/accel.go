package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -accel mode is the stab-accelerator showdown: for each dataset it
// builds the same SR-Tree three times — tree-only, sidecar-always, and
// hybrid (the adaptive cost gate, mode set by -hybrid) — and times the
// same query mix against each. The mix is the accelerator's target
// profile: hot-dimension stabs (1-D-degenerate vertical lines), narrow
// ranges the gate should still route to the sidecar, and wide ranges it
// should send back to the tree. The TI dataset additionally exercises the
// temporal append-mostly pattern: open-ended "now" intervals closed later
// (delete + reinsert with the real ending time) and time-travel stabs
// against a pinned MVCC snapshot, with live stab times drawn now-heavy by
// workload.TIStabTimes. Output is BENCH JSON, one line per dataset x
// mode, with the stab p50 improvement over the tree baseline reported on
// the accel and hybrid lines.

type accelJSON struct {
	Experiment  string  `json:"experiment"`
	Dataset     string  `json:"dataset"`
	Mode        string  `json:"mode"` // "tree" | "accel" | "hybrid"
	Kind        string  `json:"kind"`
	Tuples      int     `json:"tuples"`
	Seed        uint64  `json:"seed"`
	Levels      int     `json:"levels"`
	StabQueries int     `json:"stab_queries"`
	StabP50US   float64 `json:"stab_p50_us"`
	StabP95US   float64 `json:"stab_p95_us"`
	StabP99US   float64 `json:"stab_p99_us"`
	NarrowP50US float64 `json:"narrow_p50_us"`
	WideP50US   float64 `json:"wide_p50_us"`
	// SnapStabP50US times stabs against a pinned historical snapshot (TI
	// only; 0 elsewhere).
	SnapStabP50US float64 `json:"snap_stab_p50_us,omitempty"`
	RoutedAccel   uint64  `json:"routed_accel"`
	RoutedTree    uint64  `json:"routed_tree"`
	Degraded      bool    `json:"degraded"`
	// StabImprovementX is tree-mode stab p50 / this mode's stab p50,
	// reported on the accel and hybrid lines (0 on the baseline).
	StabImprovementX float64 `json:"stab_improvement_x,omitempty"`
}

const (
	accelStabQueries  = 2000
	accelRangeQueries = 500
	accelWarmQueries  = 128
	// accelNarrowFrac/accelWideFrac size the range-query widths as
	// fractions of the hot-dimension domain: narrow stays under the auto
	// gate's maxRangeWidthFrac, wide exceeds it.
	accelNarrowFrac = 0.02
	accelWideFrac   = 0.40
)

// accelDatasetList is the showdown sweep: the paper's interval and
// rectangle mixes plus the temporal append-mostly workload.
func accelDatasetList() []workload.Dataset {
	return []workload.Dataset{
		workload.I1, workload.I2, workload.I3, workload.I4,
		workload.R1, workload.R2, workload.TI,
	}
}

// accelStabXs returns the hot-dimension stab positions for a dataset:
// uniform across the domain, except TI where the mix is now-heavy.
func accelStabXs(ds workload.Dataset, n int, seed uint64) []float64 {
	if ds == workload.TI {
		// "now" sits at the frontier of the generated history.
		return workload.TIStabTimes(workload.DomainHi, n, seed)
	}
	rng := workload.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Uniform(workload.DomainLo, workload.DomainHi)
	}
	return out
}

// timeQueriesUS runs fn once per query index after a warm-up pass and
// returns the ascending per-call latencies in nanoseconds.
func timeQueriesUS(n int, fn func(i int) error) ([]int64, error) {
	for i := 0; i < accelWarmQueries && i < n; i++ {
		if err := fn(i); err != nil {
			return nil, err
		}
	}
	lats := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := fn(i); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0).Nanoseconds())
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// accelModeOptions maps a showdown mode to the build options that realize
// it. Tree mode attaches no sidecar at all, so it is the true baseline.
func accelModeOptions(mode string, levels int, hybrid segidx.HybridMode) []segidx.Option {
	switch mode {
	case "tree":
		return nil
	case "accel":
		return []segidx.Option{
			segidx.WithStabAccel(0, levels),
			segidx.WithHybridMode(segidx.HybridAlways),
		}
	default: // hybrid
		return []segidx.Option{
			segidx.WithStabAccel(0, levels),
			segidx.WithHybridMode(hybrid),
		}
	}
}

// accelBuildTI loads the temporal workload the append-mostly way: records
// arrive in increasing ending-time order, a sliding window of the most
// recent ones is kept open-ended (Max[0] = DomainHi, "still running"),
// and each is closed — deleted and reinserted with its real ending time —
// once the window moves past it.
func accelBuildTI(idx *segidx.Index, recs []segidx.Rect) error {
	const openWindow = 64
	open := func(r segidx.Rect) segidx.Rect {
		return segidx.Box(r.Min[0], r.Min[1], workload.DomainHi, r.Max[1])
	}
	for i, r := range recs {
		if err := idx.Insert(open(r), segidx.RecordID(i+1)); err != nil {
			return err
		}
		if i >= openWindow {
			j := i - openWindow
			if _, err := idx.Delete(segidx.RecordID(j+1), open(recs[j])); err != nil {
				return err
			}
			if err := idx.Insert(recs[j], segidx.RecordID(j+1)); err != nil {
				return err
			}
		}
	}
	// Close the trailing window so the final state matches the dataset.
	for j := len(recs) - openWindow; j < len(recs); j++ {
		if j < 0 {
			continue
		}
		if _, err := idx.Delete(segidx.RecordID(j+1), open(recs[j])); err != nil {
			return err
		}
		if err := idx.Insert(recs[j], segidx.RecordID(j+1)); err != nil {
			return err
		}
	}
	return nil
}

// accelRunMode builds one index for (dataset, mode) and times the query
// mix against it.
func accelRunMode(spec harness.Spec, kind harness.Kind, ds workload.Dataset,
	mode string, levels int, hybrid segidx.HybridMode, seed uint64,
	progress io.Writer) (accelJSON, error) {
	spec.ExtraOptions = accelModeOptions(mode, levels, hybrid)

	var idx *segidx.Index
	var buildTime time.Duration
	var err error
	if ds == workload.TI {
		// Bypass harness.Build's plain insert loop: TI is loaded through
		// the open/close temporal protocol.
		idx, err = accelBuildIndexOnly(spec, kind)
		if err != nil {
			return accelJSON{}, err
		}
		start := time.Now()
		if err := accelBuildTI(idx, ds.Generate(spec.Tuples, seed)); err != nil {
			idx.Close()
			return accelJSON{}, err
		}
		buildTime = time.Since(start)
	} else {
		idx, buildTime, err = harness.Build(spec, kind)
		if err != nil {
			return accelJSON{}, err
		}
	}
	defer idx.Close()
	fmt.Fprintf(progress, "%-4s %-7s built: %d tuples in %v\n",
		ds, mode, spec.Tuples, buildTime.Round(time.Millisecond))

	xs := accelStabXs(ds, accelStabQueries, seed+11)
	stabLats, err := timeQueriesUS(len(xs), func(i int) error {
		_, err := idx.Count(segidx.Box(xs[i], workload.DomainLo, xs[i], workload.DomainHi))
		return err
	})
	if err != nil {
		return accelJSON{}, err
	}

	span := workload.DomainHi - workload.DomainLo
	rangeQuery := func(x, width float64) segidx.Rect {
		hi := x + width
		if hi > workload.DomainHi {
			hi = workload.DomainHi
		}
		return segidx.Box(x, workload.DomainLo, hi, workload.DomainHi)
	}
	narrowLats, err := timeQueriesUS(accelRangeQueries, func(i int) error {
		_, err := idx.Count(rangeQuery(xs[i%len(xs)], span*accelNarrowFrac))
		return err
	})
	if err != nil {
		return accelJSON{}, err
	}
	wideLats, err := timeQueriesUS(accelRangeQueries, func(i int) error {
		_, err := idx.Count(rangeQuery(xs[i%len(xs)], span*accelWideFrac))
		return err
	})
	if err != nil {
		return accelJSON{}, err
	}

	// TI time travel: pin a snapshot, mutate the frontier past it, and
	// stab the pinned history.
	var snapP50 float64
	if ds == workload.TI {
		v := idx.Snapshot()
		recs := ds.Generate(spec.Tuples, seed)
		for i := 0; i < 512 && i < len(recs); i++ {
			id := segidx.RecordID(i + 1)
			if _, err := idx.Delete(id, recs[i]); err != nil {
				v.Release()
				return accelJSON{}, err
			}
			if err := idx.Insert(recs[i], id); err != nil {
				v.Release()
				return accelJSON{}, err
			}
		}
		snapLats, err := timeQueriesUS(len(xs), func(i int) error {
			_, err := v.Count(segidx.Box(xs[i], workload.DomainLo, xs[i], workload.DomainHi))
			return err
		})
		v.Release()
		if err != nil {
			return accelJSON{}, err
		}
		snapP50 = percentileUS(snapLats, 0.50)
	}

	line := accelJSON{
		Experiment:    "accel",
		Dataset:       ds.String(),
		Mode:          mode,
		Kind:          kind.String(),
		Tuples:        spec.Tuples,
		Seed:          seed,
		Levels:        levels,
		StabQueries:   len(stabLats),
		StabP50US:     percentileUS(stabLats, 0.50),
		StabP95US:     percentileUS(stabLats, 0.95),
		StabP99US:     percentileUS(stabLats, 0.99),
		NarrowP50US:   percentileUS(narrowLats, 0.50),
		WideP50US:     percentileUS(wideLats, 0.50),
		SnapStabP50US: snapP50,
	}
	for _, s := range idx.AccelStats() {
		line.RoutedAccel += s.RoutedAccel
		line.RoutedTree += s.RoutedTree
		line.Degraded = line.Degraded || s.Degraded
	}
	return line, nil
}

// accelBuildIndexOnly constructs an empty index for the spec without
// loading it (the TI path loads through the temporal protocol).
func accelBuildIndexOnly(spec harness.Spec, kind harness.Kind) (*segidx.Index, error) {
	opts := append([]segidx.Option{
		segidx.WithLeafNodeBytes(spec.LeafBytes),
		segidx.WithNodeGrowth(spec.Growth),
		segidx.WithBranchReserve(spec.BranchReserve),
		segidx.WithLeafPromotion(spec.LeafPromotion),
		segidx.WithCoalescing(spec.CoalesceEvery, spec.CoalesceCandidates),
	}, spec.ExtraOptions...)
	switch kind {
	case harness.KindRTree:
		return segidx.NewRTree(opts...)
	case harness.KindSRTree:
		return segidx.NewSRTree(opts...)
	default:
		return nil, fmt.Errorf("accel: TI loads via inserts; kind %v unsupported", kind)
	}
}

// runAccel executes the showdown and prints BENCH JSON lines to stdout;
// with -out the records are also written as a JSON document
// (BENCH_accel.json).
func runAccel(tuples int, seed uint64, levels int, hybrid segidx.HybridMode,
	outPath string, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	kind := harness.KindSRTree
	var results []accelJSON
	for _, ds := range accelDatasetList() {
		spec := harness.NewSpec("accel showdown", ds, tuples)
		spec.Seed = seed
		var lines []accelJSON
		for _, mode := range []string{"tree", "accel", "hybrid"} {
			line, err := accelRunMode(spec, kind, ds, mode, levels, hybrid, seed, progress)
			if err != nil {
				return fmt.Errorf("%v %s: %w", ds, mode, err)
			}
			lines = append(lines, line)
		}
		treeP50 := lines[0].StabP50US
		for i := range lines {
			if i > 0 && lines[i].StabP50US > 0 {
				lines[i].StabImprovementX = treeP50 / lines[i].StabP50US
			}
			results = append(results, lines[i])
			buf, err := json.Marshal(lines[i])
			if err != nil {
				return err
			}
			fmt.Printf("BENCH %s\n", buf)
			fmt.Fprintf(progress,
				"%-4s %-7s stab p50 %7.1fus p95 %7.1fus  narrow %7.1fus  wide %7.1fus  routed %d/%d\n",
				lines[i].Dataset, lines[i].Mode, lines[i].StabP50US, lines[i].StabP95US,
				lines[i].NarrowP50US, lines[i].WideP50US, lines[i].RoutedAccel, lines[i].RoutedTree)
		}
		fmt.Fprintf(progress, "%-4s stab p50: tree %.1fus -> accel %.1fus (%.2fx) -> hybrid %.1fus (%.2fx)\n",
			ds, treeP50, lines[1].StabP50US, lines[1].StabImprovementX,
			lines[2].StabP50US, lines[2].StabImprovementX)
	}

	if outPath != "" {
		doc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", outPath)
	}
	return nil
}
