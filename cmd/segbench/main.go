// Command segbench regenerates the paper's performance experiments
// (Kolovson & Stonebraker, SIGMOD 1991): Graphs 1-6, the 100K-tuple
// variants, the exponential-centroid rectangle runs the paper omitted
// (graphs 7-8 here), and ablations over the design parameters.
//
// Examples:
//
//	segbench -graph 3                 # Graph 3 at the paper's 200K tuples
//	segbench -all -tuples 100000      # all graphs at 100K
//	segbench -graph 6 -chart          # include an ASCII rendering
//	segbench -graph 3 -json           # machine-readable BENCH JSON lines
//	segbench -ablation reserve        # branch-reserve sweep (A1)
//	segbench -parallel -workers 1,4,8 # concurrent read scale-up (BENCH JSON)
//	segbench -durability -tuples 20000 # fsync cost of crash-safe commits
//	segbench -shards 1,2,4,8 -tuples 50000 -flushevery 10 -out BENCH_shards.json
//	                                  # sharded-forest durable ingest scale-up
//	segbench -hotpath -tuples 20000 -gate -out BENCH_hotpath.json
//	                                  # zero-alloc read path gate + artifact
//	segbench -http 1,4,8 -clients 8 -tuples 20000 -out BENCH_http.json
//	                                  # HTTP load generator vs a live served index
//	segbench -mvcc -tuples 20000 -out BENCH_mvcc.json
//	                                  # snapshot reads vs RWMutex under an active writer
//	segbench -accel -tuples 100000 -out BENCH_accel.json
//	                                  # stab showdown: tree vs sidecar vs hybrid routing
//	segbench -graph 3 -profile g3     # also write g3.cpu.pprof, g3.heap.pprof
//	segbench -list                    # what can be run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

func main() {
	var (
		graphs     = flag.String("graph", "", "comma-separated graph numbers to run (1-8)")
		all        = flag.Bool("all", false, "run every graph (1-8)")
		tuples     = flag.Int("tuples", 200000, "dataset size (the paper plots 200K; 100K reported as similar)")
		queries    = flag.Int("queries", workload.QueriesPerQAR, "searches per QAR")
		seed       = flag.Uint64("seed", 1991, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit BENCH JSON lines instead of tables")
		chart      = flag.Bool("chart", false, "also render ASCII charts")
		check      = flag.Bool("check", false, "validate index invariants after each build (slow)")
		ablation   = flag.String("ablation", "", "run an ablation: reserve | nodesize | predict | coalesce | leafpromo | packing")
		kinds      = flag.String("kinds", "", "restrict index types: comma-separated of r,sr,skr,sksr")
		list       = flag.Bool("list", false, "list runnable experiments and exit")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		verify     = flag.Bool("verify", false, "run graphs 1-6 and check the paper's qualitative claims")
		parallel   = flag.Bool("parallel", false, "run the concurrent read scale-up experiment (emits BENCH JSON)")
		workers    = flag.String("workers", "1,2,4,8", "worker counts for -parallel, ascending")
		durability = flag.Bool("durability", false, "measure the fsync cost of crash-safe commits: mem vs file vs WAL store (emits BENCH JSON)")
		shardsList = flag.String("shards", "", "comma-separated shard counts (baseline 1 first) for the sharded-forest ingest sweep (emits BENCH JSON; honors -out)")
		httpList   = flag.String("http", "", "comma-separated shard counts for the HTTP load experiment: drive a live segidxd-style server with concurrent clients (emits BENCH JSON; honors -out, -clients, -requests)")
		clients    = flag.Int("clients", 8, "concurrent HTTP clients for -http")
		requests   = flag.Int("requests", 4000, "total HTTP requests per shard count for -http")
		flushEvery = flag.Int("flushevery", 1000, "inserts per Flush for -durability and -shards")
		mvcc       = flag.Bool("mvcc", false, "run the MVCC writer-vs-reader interference sweep: snapshot reads vs an external RWMutex baseline (emits BENCH JSON; honors -out, -readers)")
		readersN   = flag.Int("readers", 4, "concurrent readers for -mvcc")
		hotpath    = flag.Bool("hotpath", false, "run the zero-allocation read path benchmarks (emits BENCH JSON)")
		gate       = flag.Bool("gate", false, "with -hotpath: exit nonzero if a gated benchmark allocates")
		out        = flag.String("out", "", "also write the results as a JSON document (honored by -hotpath, -shards, -http, -mvcc, -accel)")
		baseline   = flag.String("baseline", "", "with -hotpath: previous -out document to report before/after trajectory against")
		accelRun   = flag.Bool("accel", false, "run the stab-accelerator showdown: tree vs sidecar vs hybrid routing across the interval mixes and the TI temporal workload (emits BENCH JSON; honors -out, -hybrid, -levels)")
		hybridMode = flag.String("hybrid", "auto", "routing mode for the -accel hybrid lines: off | always | auto")
		levels     = flag.Int("levels", 10, "hierarchy depth for the -accel sidecar (1-16)")
		profile    = flag.String("profile", "", "write PREFIX.cpu.pprof and PREFIX.heap.pprof covering the run")
	)
	flag.Parse()

	if *list {
		printList()
		return
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}

	if *profile != "" {
		stop, err := startProfiles(*profile)
		if err != nil {
			fatal(err)
		}
		// fatal exits the process directly, skipping this defer: profiles
		// are flushed only on successful runs.
		defer stop()
	}

	if *hotpath {
		k, err := parseKinds(*kinds)
		if err != nil {
			fatal(err)
		}
		if err := runHotpath(*tuples, *seed, k, *gate, *out, *baseline, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *mvcc {
		k, err := parseKinds(*kinds)
		if err != nil {
			fatal(err)
		}
		if err := runMVCC(*tuples, *seed, k, *readersN, *out, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *accelRun {
		h, err := segidx.ParseHybridMode(*hybridMode)
		if err != nil {
			fatal(err)
		}
		if err := runAccel(*tuples, *seed, *levels, h, *out, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *parallel {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fatal(err)
		}
		k, err := parseKinds(*kinds)
		if err != nil {
			fatal(err)
		}
		if err := runParallel(*tuples, *queries, *seed, k, ws, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *durability {
		k, err := parseKinds(*kinds)
		if err != nil {
			fatal(err)
		}
		if err := runDurability(*tuples, *flushEvery, *seed, k, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *shardsList != "" {
		counts, err := parseShardCounts(*shardsList)
		if err != nil {
			fatal(err)
		}
		if err := runShards(*tuples, *flushEvery, *seed, counts, *out, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *httpList != "" {
		counts, err := parseShardCounts(*httpList)
		if err != nil {
			fatal(err)
		}
		if err := runHTTPLoad(*tuples, *requests, *clients, *seed, counts, *out, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *ablation != "" {
		if err := runAblation(*ablation, *tuples, *queries, *seed, *csv, *check, progress); err != nil {
			fatal(err)
		}
		return
	}

	if *verify {
		results := make(map[int]*harness.Result)
		for g := 1; g <= 6; g++ {
			spec, err := harness.GraphSpec(g, *tuples)
			if err != nil {
				fatal(err)
			}
			spec.QueriesPerQAR = *queries
			spec.Seed = *seed
			spec.CheckInvariants = *check
			res, err := harness.Run(spec, progress)
			if err != nil {
				fatal(err)
			}
			results[g] = res
		}
		report, failures := harness.VerifyClaims(results)
		fmt.Print(report)
		if failures > 0 {
			fmt.Printf("\n%d claim(s) failed\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nall claims hold")
		return
	}

	var nums []int
	switch {
	case *all:
		for g := 1; g <= 8; g++ {
			nums = append(nums, g)
		}
	case *graphs != "":
		for _, part := range strings.Split(*graphs, ",") {
			g, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -graph value %q", part))
			}
			nums = append(nums, g)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, g := range nums {
		spec, err := harness.GraphSpec(g, *tuples)
		if err != nil {
			fatal(err)
		}
		spec.QueriesPerQAR = *queries
		spec.Seed = *seed
		spec.CheckInvariants = *check
		if k, err := parseKinds(*kinds); err != nil {
			fatal(err)
		} else if len(k) > 0 {
			spec.Kinds = k
		}
		res, err := harness.Run(spec, progress)
		if err != nil {
			fatal(err)
		}
		emit(res, *csv, *jsonOut, *chart)
	}
}

func emit(res *harness.Result, csv, jsonOut, chart bool) {
	switch {
	case jsonOut:
		fmt.Print(res.BenchJSON())
	case csv:
		fmt.Printf("# %s\n%s\n", res.Spec.Name, res.CSV())
	default:
		fmt.Println(res.Table())
		fmt.Println(res.BuildSummary())
	}
	if chart {
		fmt.Println(res.Chart())
	}
}

func parseKinds(s string) ([]harness.Kind, error) {
	if s == "" {
		return nil, nil
	}
	var out []harness.Kind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "r":
			out = append(out, harness.KindRTree)
		case "sr":
			out = append(out, harness.KindSRTree)
		case "skr":
			out = append(out, harness.KindSkeletonRTree)
		case "sksr":
			out = append(out, harness.KindSkeletonSRTree)
		default:
			return nil, fmt.Errorf("unknown kind %q (want r, sr, skr, sksr)", part)
		}
	}
	return out, nil
}

func printList() {
	fmt.Println("graphs (run with -graph N):")
	for g := 1; g <= 8; g++ {
		spec, _ := harness.GraphSpec(g, 200000)
		fmt.Printf("  %d  %s\n", g, spec.Name)
	}
	fmt.Println("\nablations (run with -ablation NAME):")
	fmt.Println("  reserve    A1: SR branch reserve 1/2, 2/3 (paper), 3/4 on I3")
	fmt.Println("  nodesize   A2: node size doubling vs fixed 1 KiB on I3")
	fmt.Println("  predict    A3: prediction sample 1%, 5%, 10%, and exact histograms on I2")
	fmt.Println("  coalesce   A4: coalescing on vs off on I2")
	fmt.Println("  leafpromo  A5: leaf promotion on vs off on I3")
	fmt.Println("  packing    A6: static packed R-Tree vs dynamic indexes on I1 and I3")
	fmt.Println("\nother modes:")
	fmt.Println("  -parallel    concurrent read scale-up (BENCH JSON; -workers, -kinds)")
	fmt.Println("  -durability  fsync cost of crash-safe commits: mem vs file vs WAL (BENCH JSON; -flushevery, -kinds)")
	fmt.Println("  -hotpath     zero-allocation read path benchmarks (BENCH JSON; -gate, -out, -baseline, -kinds)")
	fmt.Println("  -shards      sharded-forest durable ingest scale-up (BENCH JSON; -flushevery, -out)")
	fmt.Println("  -http        HTTP load generator against a live served index (BENCH JSON; -clients, -requests, -out)")
	fmt.Println("  -mvcc        MVCC snapshot reads vs RWMutex under an active writer (BENCH JSON; -readers, -out, -kinds)")
	fmt.Println("  -accel       stab-accelerator showdown: tree vs sidecar vs hybrid routing (BENCH JSON; -hybrid, -levels, -out)")
	fmt.Println("\nany mode accepts -profile PREFIX to write CPU and heap pprof files")
}

// startProfiles begins CPU profiling and returns a stop function that
// finishes the CPU profile and writes a heap profile, to PREFIX.cpu.pprof
// and PREFIX.heap.pprof.
func startProfiles(prefix string) (func(), error) {
	cpuPath := prefix + ".cpu.pprof"
	heapPath := prefix + ".heap.pprof"
	cpuF, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cpuF.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		heapF, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "segbench: heap profile:", err)
			return
		}
		runtime.GC() // get up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(heapF); err != nil {
			fmt.Fprintln(os.Stderr, "segbench: heap profile:", err)
		}
		heapF.Close()
		fmt.Fprintf(os.Stderr, "segbench: wrote %s and %s\n", cpuPath, heapPath)
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "segbench:", err)
	os.Exit(1)
}
