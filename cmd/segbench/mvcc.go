package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -mvcc mode measures writer-vs-reader interference: a single writer
// churns inserts and deletes flat out while concurrent readers time every
// query, once under an external RWMutex (readers hold RLock, the writer
// holds Lock for each mutation — the classic single-version discipline
// where a committing writer blocks every reader) and once over MVCC
// snapshots (each read pins a copy-on-write view and never touches a
// tree-level lock). The writer loop is identical in both modes; only the
// read discipline changes, so the latency gap is exactly the cost of
// reader/writer blocking. Output is BENCH JSON, one line per kind x mode,
// with reader latency percentiles and the p95 improvement of MVCC over
// the RWMutex baseline.

type mvccJSON struct {
	Experiment      string  `json:"experiment"`
	Kind            string  `json:"kind"`
	Mode            string  `json:"mode"` // "rwmutex" | "mvcc"
	Tuples          int     `json:"tuples"`
	Seed            uint64  `json:"seed"`
	Readers         int     `json:"readers"`
	Queries         int     `json:"queries"` // total timed reader queries
	WriterOps       int     `json:"writer_ops"`
	WriterOpsPerSec float64 `json:"writer_ops_per_sec"`
	ReaderQPS       float64 `json:"reader_qps"`
	P50US           float64 `json:"p50_us"`
	P95US           float64 `json:"p95_us"`
	P99US           float64 `json:"p99_us"`
	MaxUS           float64 `json:"max_us"`
	// P95ImprovementX is rwmutex p95 / mvcc p95, reported on the mvcc
	// line (0 on the baseline line).
	P95ImprovementX float64 `json:"p95_improvement_x,omitempty"`
}

// mvccQueriesPerReader bounds each reader's timed sample; with the
// default 4 readers the percentiles rest on 8000 measurements per mode.
const mvccQueriesPerReader = 2000

// percentileUS reads the q-quantile (0..1] from ascending nanosecond
// latencies, in microseconds.
func percentileUS(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / 1e3
}

// mvccRun drives one mode for one freshly built index and returns the
// BENCH record (without the improvement factor, which needs both modes).
func mvccRun(idx *segidx.Index, mode string, readers int,
	queries, churn []segidx.Rect, tuples int, seed uint64) (mvccJSON, error) {
	var (
		mu        sync.RWMutex // the external baseline lock; unused in mvcc mode
		stop      atomic.Bool
		writerOps int
		wg        sync.WaitGroup
	)
	errCh := make(chan error, readers+1)

	// The writer churns a sliding window of fresh records so the tree
	// keeps splitting and condensing without net growth. Identical in
	// both modes apart from the Lock bracket.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const window = 256
		next := tuples + 1
		for i := 0; !stop.Load(); i++ {
			r := churn[i%len(churn)]
			if mode == "rwmutex" {
				mu.Lock()
			}
			err := idx.Insert(r, segidx.RecordID(next))
			if err == nil && i >= window {
				_, err = idx.Delete(segidx.RecordID(next-window), churn[(i-window)%len(churn)])
			}
			if mode == "rwmutex" {
				mu.Unlock()
			}
			if err != nil {
				errCh <- fmt.Errorf("writer: %w", err)
				return
			}
			next++
			writerOps++
		}
	}()

	lats := make([][]int64, readers)
	var readersWg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		r := r
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			lats[r] = make([]int64, 0, mvccQueriesPerReader)
			for i := 0; i < mvccQueriesPerReader; i++ {
				q := queries[(r*mvccQueriesPerReader+i)%len(queries)]
				t0 := time.Now()
				var err error
				if mode == "rwmutex" {
					mu.RLock()
					_, err = idx.Search(q)
					mu.RUnlock()
				} else {
					v := idx.Snapshot()
					_, err = v.Search(q)
					v.Release()
				}
				lats[r] = append(lats[r], time.Since(t0).Nanoseconds())
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}()
	}

	// The writer stops once every reader has its sample; readerElapsed is
	// clocked before the writer drains so QPS reflects contended reads.
	readersWg.Wait()
	readerElapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return mvccJSON{}, err
	default:
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	elapsed := readerElapsed.Seconds()
	return mvccJSON{
		Experiment:      "mvcc",
		Mode:            mode,
		Tuples:          tuples,
		Seed:            seed,
		Readers:         readers,
		Queries:         len(all),
		WriterOps:       writerOps,
		WriterOpsPerSec: float64(writerOps) / elapsed,
		ReaderQPS:       float64(len(all)) / elapsed,
		P50US:           percentileUS(all, 0.50),
		P95US:           percentileUS(all, 0.95),
		P99US:           percentileUS(all, 0.99),
		MaxUS:           percentileUS(all, 1.0),
	}, nil
}

// runMVCC executes the interference sweep and prints BENCH JSON lines to
// stdout; with -out the records are also written as a JSON document.
func runMVCC(tuples int, seed uint64, kinds []harness.Kind, readers int, outPath string, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if len(kinds) == 0 {
		kinds = harness.AllKinds()
	}
	if readers < 1 {
		readers = 1
	}
	spec := harness.NewSpec("mvcc interference", workload.I3, tuples)
	spec.Seed = seed
	queries := workload.Queries(spec.QARs[len(spec.QARs)/2], 256, seed)
	churn := spec.Dataset.Generate(4096, seed+7)

	var results []mvccJSON
	for _, kind := range kinds {
		// A fresh build per mode keeps the tree shapes comparable.
		var lines [2]mvccJSON
		for i, mode := range []string{"rwmutex", "mvcc"} {
			idx, buildTime, err := harness.Build(spec, kind)
			if err != nil {
				return err
			}
			fmt.Fprintf(progress, "%-17s built: %d tuples in %v (%s)\n",
				kind, tuples, buildTime.Round(time.Millisecond), mode)
			line, err := mvccRun(idx, mode, readers, queries, churn, tuples, seed)
			if cerr := idx.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("%v %s: %w", kind, mode, err)
			}
			line.Kind = kind.String()
			lines[i] = line
		}
		if lines[1].P95US > 0 {
			lines[1].P95ImprovementX = lines[0].P95US / lines[1].P95US
		}
		for _, line := range lines {
			results = append(results, line)
			buf, err := json.Marshal(line)
			if err != nil {
				return err
			}
			fmt.Printf("BENCH %s\n", buf)
			fmt.Fprintf(progress,
				"%-17s %-8s readers=%d  p50 %7.1fus  p95 %7.1fus  p99 %7.1fus  %8.0f reads/s  writer %7.0f ops/s\n",
				line.Kind, line.Mode, line.Readers, line.P50US, line.P95US, line.P99US,
				line.ReaderQPS, line.WriterOpsPerSec)
		}
		fmt.Fprintf(progress, "%-17s p95 under active writer: %.1fus -> %.1fus (%.2fx)\n",
			lines[1].Kind, lines[0].P95US, lines[1].P95US, lines[1].P95ImprovementX)
	}

	if outPath != "" {
		doc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", outPath)
	}
	return nil
}
