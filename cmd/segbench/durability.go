package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/workload"
)

// The -durability mode measures what crash safety costs: the same insert
// workload runs over the in-memory store (no durability), the plain file
// store (durable pages, no commit protocol), and the WAL-backed store
// (crash-atomic Flush with two fsyncs per commit), flushing every
// -flushevery inserts. Output is BENCH JSON, one line per kind x store,
// with the wall-clock overhead relative to the in-memory baseline.

type durabilityJSON struct {
	Experiment    string  `json:"experiment"`
	Kind          string  `json:"kind"`
	Store         string  `json:"store"` // mem | file | wal
	Tuples        int     `json:"tuples"`
	Seed          uint64  `json:"seed"`
	FlushEvery    int     `json:"flush_every"`
	Flushes       int     `json:"flushes"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	FlushMS       float64 `json:"flush_ms"` // time inside Flush, included in ElapsedMS
	InsertsPerSec float64 `json:"inserts_per_sec"`
	OverheadX     float64 `json:"overhead_x"` // elapsed / mem-store elapsed, same kind
}

// durabilityStores lists the measured backends, cheapest first so the
// overhead baseline is computed before the stores that need it.
var durabilityStores = []string{"mem", "file", "wal"}

// runDurability executes the durability-cost experiment and prints BENCH
// JSON lines to stdout.
func runDurability(tuples, flushEvery int, seed uint64, kinds []harness.Kind, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if len(kinds) == 0 {
		kinds = harness.AllKinds()
	}
	if flushEvery < 1 {
		flushEvery = 1
	}
	spec := harness.NewSpec("durability", workload.I3, tuples)
	spec.Seed = seed
	data := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	dir, err := os.MkdirTemp("", "segbench-durability-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	for _, kind := range kinds {
		var baseMS float64
		for _, backend := range durabilityStores {
			idx, err := durabilityIndex(spec, kind, backend, dir)
			if err != nil {
				return fmt.Errorf("%v over %s: %w", kind, backend, err)
			}
			start := time.Now()
			var flushTime time.Duration
			flushes := 0
			flush := func() error {
				fs := time.Now()
				if err := idx.Flush(); err != nil {
					return err
				}
				flushTime += time.Since(fs)
				flushes++
				return nil
			}
			for i, r := range data {
				if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
					idx.Close()
					return fmt.Errorf("%v over %s insert %d: %w", kind, backend, i, err)
				}
				if (i+1)%flushEvery == 0 {
					if err := flush(); err != nil {
						idx.Close()
						return fmt.Errorf("%v over %s flush: %w", kind, backend, err)
					}
				}
			}
			if err := flush(); err != nil {
				idx.Close()
				return fmt.Errorf("%v over %s final flush: %w", kind, backend, err)
			}
			elapsed := time.Since(start)
			if err := idx.Close(); err != nil {
				return fmt.Errorf("%v over %s close: %w", kind, backend, err)
			}

			ms := float64(elapsed.Microseconds()) / 1000
			if backend == "mem" {
				baseMS = ms
			}
			overhead := 0.0
			if baseMS > 0 {
				overhead = ms / baseMS
			}
			line := durabilityJSON{
				Experiment:    "durability",
				Kind:          kind.String(),
				Store:         backend,
				Tuples:        spec.Tuples,
				Seed:          spec.Seed,
				FlushEvery:    flushEvery,
				Flushes:       flushes,
				ElapsedMS:     ms,
				FlushMS:       float64(flushTime.Microseconds()) / 1000,
				InsertsPerSec: float64(spec.Tuples) / elapsed.Seconds(),
				OverheadX:     overhead,
			}
			buf, err := json.Marshal(line)
			if err != nil {
				return err
			}
			fmt.Printf("BENCH %s\n", buf)
			fmt.Fprintf(progress, "%-17s %-4s %d tuples in %v (%d flushes, %v in Flush, %.2fx mem)\n",
				kind, backend, spec.Tuples, elapsed.Round(time.Millisecond),
				flushes, flushTime.Round(time.Millisecond), overhead)
		}
	}
	return nil
}

// durabilityIndex builds an empty index of the given kind over the chosen
// store backend, mirroring the harness's construction parameters.
func durabilityIndex(spec harness.Spec, kind harness.Kind, backend, dir string) (*segidx.Index, error) {
	opts := []segidx.Option{
		segidx.WithLeafNodeBytes(spec.LeafBytes),
		segidx.WithNodeGrowth(spec.Growth),
		segidx.WithBranchReserve(spec.BranchReserve),
		segidx.WithLeafPromotion(spec.LeafPromotion),
		segidx.WithCoalescing(spec.CoalesceEvery, spec.CoalesceCandidates),
	}
	switch backend {
	case "mem":
		// The default store.
	case "file":
		opts = append(opts, segidx.WithFile(filepath.Join(dir, fmt.Sprintf("%v-file.db", kind))))
	case "wal":
		opts = append(opts, segidx.WithDurableFile(filepath.Join(dir, fmt.Sprintf("%v-wal.db", kind))))
	default:
		return nil, fmt.Errorf("unknown store backend %q", backend)
	}
	est := segidx.SkeletonEstimate{
		Tuples:          spec.Tuples,
		Domain:          segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi),
		PredictFraction: float64(spec.PredictSample) / float64(spec.Tuples),
	}
	switch kind {
	case harness.KindRTree:
		return segidx.NewRTree(opts...)
	case harness.KindSRTree:
		return segidx.NewSRTree(opts...)
	case harness.KindSkeletonRTree:
		return segidx.NewSkeletonRTree(est, opts...)
	case harness.KindSkeletonSRTree:
		return segidx.NewSkeletonSRTree(est, opts...)
	default:
		return nil, fmt.Errorf("unsupported kind %v", kind)
	}
}
