package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"segidx"
	"segidx/internal/harness"
	"segidx/internal/server"
	"segidx/internal/workload"
)

// The -http mode measures the served index end to end: for each shard
// count it builds a durable skeleton SR-Tree forest, preloads the
// dataset, stands up the real internal/server handler on a loopback
// listener, and drives it with a fixed pool of concurrent HTTP clients
// issuing a search/stab mix drawn from the paper's query workload. Every
// request pays the full production path — JSON decode, result cache,
// worker-pool scatter-gather, JSON encode, loopback TCP — so the output
// (requests/sec and p50/p95/p99 latency) is what a service operator
// would see, not a microbenchmark. A slice of the query stream repeats
// deliberately, exercising the epoch-invalidated cache the way real
// read-heavy traffic does.

type httpJSON struct {
	Experiment    string  `json:"experiment"`
	Kind          string  `json:"kind"`
	Shards        int     `json:"shards"`
	Clients       int     `json:"clients"`
	Tuples        int     `json:"tuples"`
	Requests      int     `json:"requests"`
	Seed          uint64  `json:"seed"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	RequestsPerS  float64 `json:"requests_per_sec"`
	P50US         float64 `json:"p50_us"`
	P95US         float64 `json:"p95_us"`
	P99US         float64 `json:"p99_us"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	SpeedupX      float64 `json:"speedup_x"` // requests_per_sec / first shard count
	StabFraction  float64 `json:"stab_fraction"`
	RepeatQueries int     `json:"repeat_queries"` // distinct queries cycled per client
}

// httpStabFraction is the share of requests issued as /stab (the rest are
// /search) — a read-heavy interval-service mix.
const httpStabFraction = 0.2

// httpRepeatQueries is the number of distinct queries each client cycles
// through; a smaller pool than the request count means repeats, which is
// what gives the result cache traffic to serve.
const httpRepeatQueries = 64

// runHTTPLoad executes the HTTP load sweep over the given shard counts
// and prints BENCH JSON lines; with -out the records are also written as
// a JSON document (BENCH_http.json).
func runHTTPLoad(tuples, requests, clients int, seed uint64, counts []int, outPath string, progress io.Writer) error {
	if progress == nil {
		progress = io.Discard
	}
	if clients < 1 {
		clients = 1
	}
	if requests < clients {
		requests = clients
	}
	dir, err := os.MkdirTemp("", "segbench-http-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	spec := harness.NewSpec("http", workload.I3, tuples)
	spec.Seed = seed
	data := spec.Dataset.Generate(spec.Tuples, spec.Seed)

	var results []httpJSON
	var baseRPS float64
	for _, shards := range counts {
		res, err := runHTTPOnce(spec, data, shards, requests, clients, seed, dir, progress)
		if err != nil {
			return fmt.Errorf("%d shards: %w", shards, err)
		}
		if baseRPS == 0 {
			baseRPS = res.RequestsPerS
		}
		res.SpeedupX = res.RequestsPerS / baseRPS
		results = append(results, res)
		buf, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Printf("BENCH %s\n", buf)
		fmt.Fprintf(progress, "shards=%d clients=%d: %d requests in %.0fms (%.0f req/s, p50=%.0fus p95=%.0fus p99=%.0fus, cache %.0f%%)\n",
			res.Shards, res.Clients, res.Requests, res.ElapsedMS, res.RequestsPerS,
			res.P50US, res.P95US, res.P99US, 100*res.CacheHitRate)
	}

	if outPath != "" {
		doc, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(progress, "wrote %s\n", outPath)
	}
	return nil
}

// runHTTPOnce benchmarks one shard count: build, preload, serve, drive.
func runHTTPOnce(spec harness.Spec, data []segidx.Rect, shards, requests, clients int, seed uint64, dir string, progress io.Writer) (httpJSON, error) {
	idx, err := shardsIndex(spec, shards, dir)
	if err != nil {
		return httpJSON{}, err
	}
	defer idx.Close()
	recs := make([]segidx.BulkRecord, len(data))
	for i, r := range data {
		recs[i] = segidx.BulkRecord{Rect: r, ID: segidx.RecordID(i + 1)}
	}
	if err := idx.InsertBatch(nil, recs); err != nil {
		return httpJSON{}, err
	}
	if err := idx.Flush(); err != nil {
		return httpJSON{}, err
	}

	srv := server.New(idx, server.Config{CacheEntries: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return httpJSON{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		httpSrv.Serve(ln) //seglint:allow errchecklite — always returns ErrServerClosed on Close
	}()
	defer func() { httpSrv.Close(); <-done }()
	base := "http://" + ln.Addr().String()

	// Per-client request bodies, prebuilt: a cycle of distinct queries
	// drawn from the paper's workload, 20% stabs. Clients share some
	// queries (the pool is seeded per client but overlaps via the small
	// QAR space), so the cache sees both per-client and cross-client
	// repeats.
	perClient := requests / clients
	bodies := make([][][]byte, clients)
	for c := range bodies {
		qrs := workload.Queries(1 /* QAR: square queries */, httpRepeatQueries, seed+uint64(c)%4)
		pool := make([][]byte, len(qrs))
		for i, q := range qrs {
			var body []byte
			if float64(i%10) < httpStabFraction*10 {
				cx := (q.Min[0] + q.Max[0]) / 2
				cy := (q.Min[1] + q.Max[1]) / 2
				body, err = json.Marshal(map[string]any{"point": []float64{cx, cy}})
			} else {
				body, err = json.Marshal(map[string]any{
					"rect": map[string]any{"min": q.Min, "max": q.Max},
				})
			}
			if err != nil {
				return httpJSON{}, err
			}
			pool[i] = body
		}
		bodies[c] = pool
	}

	transport := &http.Transport{MaxIdleConnsPerHost: clients * 2}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	latencies := make([][]time.Duration, clients)
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, perClient)
			pool := bodies[c]
			for i := 0; i < perClient; i++ {
				body := pool[i%len(pool)]
				endpoint := "/search"
				if bytes.Contains(body, []byte(`"point"`)) {
					endpoint = "/stab"
				}
				t0 := time.Now()
				resp, err := client.Post(base+endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", endpoint, resp.StatusCode)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return httpJSON{}, err
	default:
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return float64(all[i].Nanoseconds()) / 1e3
	}

	// Scrape the server's own cache stats for the hit rate.
	var m server.Metrics
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return httpJSON{}, err
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return httpJSON{}, err
	}

	total := len(all)
	return httpJSON{
		Experiment:    "http",
		Kind:          idx.Kind(),
		Shards:        shards,
		Clients:       clients,
		Tuples:        spec.Tuples,
		Requests:      total,
		Seed:          seed,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
		RequestsPerS:  float64(total) / elapsed.Seconds(),
		P50US:         q(0.50),
		P95US:         q(0.95),
		P99US:         q(0.99),
		CacheHitRate:  m.Cache.HitRate,
		StabFraction:  httpStabFraction,
		RepeatQueries: httpRepeatQueries,
	}, nil
}
