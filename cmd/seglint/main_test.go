package main

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the self-hosting gate: running every analyzer over the
// whole module must produce zero diagnostics. A regression here means new
// code re-introduced a lock-discipline, float-equality, dropped-error, or
// library-panic violation without a //seglint:allow rationale.
func TestRepoIsClean(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("seglint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("seglint found %d issue(s):\n%s", n, out.String())
	}
}

// TestPatternFiltering pins that package patterns restrict the run: linting
// only internal/geom must type-check and stay clean without loading the
// whole module.
func TestPatternFiltering(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{"./internal/geom"}, &out)
	if err != nil {
		t.Fatalf("seglint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("seglint found %d issue(s) in internal/geom:\n%s", n, out.String())
	}
}
