package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRepoIsClean is the self-hosting gate: running every analyzer over the
// whole module must produce zero diagnostics. A regression here means new
// code re-introduced a lock-discipline, float-equality, dropped-error,
// library-panic, lock-leak, pin-leak, or WAL-ordering violation without a
// //seglint:allow rationale.
func TestRepoIsClean(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{"./..."}, false, &out)
	if err != nil {
		t.Fatalf("seglint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("seglint found %d issue(s):\n%s", n, out.String())
	}
}

// TestPatternFiltering pins that package patterns restrict the run: linting
// only internal/geom must type-check and stay clean without loading the
// whole module.
func TestPatternFiltering(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{"./internal/geom"}, false, &out)
	if err != nil {
		t.Fatalf("seglint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("seglint found %d issue(s) in internal/geom:\n%s", n, out.String())
	}
}

// TestJSONOutput pins the -json document shape: a well-formed report with
// a diagnostics array and a matching count, so CI can archive it.
func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	n, err := run([]string{"./internal/analysis"}, true, &out)
	if err != nil {
		t.Fatalf("seglint failed to run: %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out.String()), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Count != n || len(report.Diagnostics) != n {
		t.Errorf("count mismatch: run returned %d, report count %d, %d entries",
			n, report.Count, len(report.Diagnostics))
	}
}
