// Command seglint runs the repository's custom static-analysis passes
// (internal/analysis) over the module: the syntactic checks (lockcheck,
// floatcmp, errchecklite, nodepanic, hotalloc) and the flow-sensitive
// proofs (unlockpath, pinbalance, walorder). It exits non-zero when any
// diagnostic survives the //seglint:allow directives, making it suitable
// as a CI gate:
//
//	go run ./cmd/seglint ./...
//	go run ./cmd/seglint -json ./... > seglint.json
//
// Patterns follow the usual go tool forms: "./...", "./internal/...",
// "./internal/geom", or fully qualified import paths.
//
// Packages are type-loaded serially (the loader caches dependencies and is
// not safe for concurrent use) but analyzed in parallel, one worker per
// CPU; diagnostics are reported in package order regardless of which
// worker finishes first.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"segidx/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: seglint [-json] [packages]\n\npasses:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(patterns, *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seglint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "seglint: %d issue(s)\n", n)
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Count       int        `json:"count"`
}

// run loads every module package matching the patterns, applies the
// analyzers across a worker pool, prints diagnostics to out (plain lines
// or one JSON document), and returns the diagnostic count.
func run(patterns []string, jsonOut bool, out io.Writer) (int, error) {
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(root, modPath)
	all, err := loader.Packages()
	if err != nil {
		return 0, err
	}

	// Load serially: the loader shares an importer cache across packages.
	var pkgs []*analysis.Package
	for _, pkgPath := range all {
		matched := false
		for _, pat := range patterns {
			if loader.Match(pkgPath, pat) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			return 0, err
		}
		pkgs = append(pkgs, pkg)
	}

	// Analyze in parallel; results land in package order.
	analyzers := analysis.Analyzers()
	perPkg := make([][]analysis.Diagnostic, len(pkgs))
	workers := runtime.NumCPU()
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i] = analysis.Run(pkgs[i], analyzers)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()

	var diags []analysis.Diagnostic
	for _, ds := range perPkg {
		diags = append(diags, ds...)
	}
	if jsonOut {
		report := jsonReport{Diagnostics: make([]jsonDiag, 0, len(diags)), Count: len(diags)}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	return len(diags), nil
}
