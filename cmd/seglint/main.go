// Command seglint runs the repository's custom static-analysis passes
// (internal/analysis) over the module: lockcheck, floatcmp, errchecklite,
// and nodepanic. It exits non-zero when any diagnostic survives the
// //seglint:allow directives, making it suitable as a CI gate:
//
//	go run ./cmd/seglint ./...
//
// Patterns follow the usual go tool forms: "./...", "./internal/...",
// "./internal/geom", or fully qualified import paths.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"segidx/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: seglint [packages]\n\npasses:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seglint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "seglint: %d issue(s)\n", n)
		os.Exit(1)
	}
}

// run loads every module package matching the patterns, applies the
// analyzers, prints diagnostics to out, and returns the diagnostic count.
func run(patterns []string, out io.Writer) (int, error) {
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		return 0, err
	}
	loader := analysis.NewLoader(root, modPath)
	all, err := loader.Packages()
	if err != nil {
		return 0, err
	}
	analyzers := analysis.Analyzers()
	count := 0
	for _, pkgPath := range all {
		matched := false
		for _, pat := range patterns {
			if loader.Match(pkgPath, pat) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			return count, err
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Fprintln(out, d)
			count++
		}
	}
	return count, nil
}
