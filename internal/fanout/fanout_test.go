package fanout

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		err := Run(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(nil, 4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := Run(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Cancellation is advisory for in-flight items, but the bulk of the
	// thousand items must have been skipped.
	if n := ran.Load(); n == 1000 {
		t.Fatalf("all %d items ran despite early error", n)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, 4, 100, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Sequential path checks the context too.
	err = Run(ctx, 1, 100, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}
