// Package fanout runs a fixed number of independent work items across a
// bounded goroutine pool. It backs the public batch APIs (SearchBatch,
// StabBatch, InsertBatch) and the forest's scatter-gather query and flush
// paths, so all of them share one cancellation and error discipline.
package fanout

import (
	"context"
	"sync"
	"sync/atomic"
)

// Run executes fn(0..n-1) across at most workers goroutines, returning the
// first error (worker or context). Work indexes are claimed from an atomic
// cursor, so completion order is unspecified; callers that need ordered
// results should write into index i of a pre-sized slice. On the first
// error the remaining work is canceled: items not yet claimed never run,
// items in flight finish. A nil ctx is treated as context.Background();
// workers < 2 (or n < 2) degrades to a sequential loop on the calling
// goroutine.
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		e := err
		if firstErr.CompareAndSwap(nil, &e) {
			cancel()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return *errp
	}
	return nil
}
