//go:build !race

// The race detector instruments allocations and defeats the measurement,
// so this file is excluded from -race builds; the CI forest job still
// runs every functional forest test under -race.

package forest

import (
	"math/rand"
	"testing"

	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/node"
)

// TestForestStreamingAllocs proves the scatter wrapper adds no per-call
// allocations on the streaming read path.
func TestForestStreamingAllocs(t *testing.T) {
	f := newMemForest(t, 4, true)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		if err := f.Insert(randRect(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	query := geom.Rect2(100, 100, 400, 400)
	hits := 0
	fn := func(core.Entry) bool { hits++; return true }
	if err := f.SearchFunc(query, fn); err != nil { // warm pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := f.SearchFunc(query, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SearchFunc allocates %v per run", allocs)
	}
	if hits == 0 {
		t.Fatal("query matched nothing; test is vacuous")
	}
}
