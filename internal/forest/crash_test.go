package forest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
	"segidx/internal/store/faultstore"
)

// The forest crash matrix extends the core matrix to the sharded case:
// one fault-injection disk hosts the manifest and every shard's WAL
// store, power is cut after the Nth disk mutation anywhere in the
// forest, and recovery must land every shard on one of its own commit
// boundaries while the flush protocol's ordering invariant holds — no
// shard's durable epoch is ever ahead of the manifest's.
//
// The workload commits twice (states A and B) and closes (a re-commit
// of B). With the flush protocol ordering — manifest first, then the
// shards — the allowed per-shard states mirror the single-tree matrix:
//
//	crash at n <= opsA:      each shard empty or at A
//	crash at opsA < n <= opsB: each shard at A or B
//	crash at n > opsB:       each shard at B
//
// Shards move through a commit independently, so a crash inside a flush
// legitimately leaves a mixed forest (shard 0 at B, shard 1 still at A);
// what can never happen is a shard ahead of the manifest.

const (
	fcShards    = 3
	fcPreFlush  = 60 // inserts before the first Flush
	fcDeletes   = 8  // deletes after it, so commit B carries frees
	fcPostFlush = 40 // inserts before the second Flush
)

// shardModel is the oracle for one shard: the records routed to it.
type shardModel map[node.RecordID]geom.Rect

func (m shardModel) ids() []node.RecordID {
	out := make([]node.RecordID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func snapshotShards(src []shardModel) []shardModel {
	out := make([]shardModel, len(src))
	for i, m := range src {
		out[i] = make(shardModel, len(m))
		for id, r := range m {
			out[i][id] = r
		}
	}
	return out
}

// driveForestCrashWorkload replays the fixed workload over the given
// disk: create the manifest and shard stores, insert, Flush, delete and
// insert, Flush, Close. It reports the disk op counters observed after
// the manifest creation and after each Flush, and fills mA/mB (when
// non-nil) with the per-shard oracle state at those boundaries. In crash
// runs the returned error is the injected power cut.
func driveForestCrashWorkload(disk *faultstore.Disk, mA, mB *[]shardModel) (opsM, opsA, opsB int, err error) {
	mf, err := CreateManifest(disk, "forest.db", fcShards)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = mf.Close() }() // idempotent; Close also closes it
	opsM = disk.Ops()

	shards := make([]Shard, fcShards)
	for i := range shards {
		st, err := store.OpenWALStoreIn(disk, ShardPath("forest.db", i))
		if err != nil {
			return opsM, 0, 0, err
		}
		defer func() { _ = st.Close() }() // idempotent rollback in crash runs
		tr, err := core.New(smallConfig(false), st)
		if err != nil {
			return opsM, 0, 0, err
		}
		shards[i] = Shard{Eng: tr, Store: st}
	}
	f, err := New(shards, Config{Dims: 2, Manifest: mf})
	if err != nil {
		return opsM, 0, 0, err
	}
	// One worker: the disk op counter is a coordinate system across
	// replays only if flushes hit the disk in a deterministic order.
	f.SetParallelism(1)

	model := make([]shardModel, fcShards)
	for i := range model {
		model[i] = make(shardModel)
	}
	rng := rand.New(rand.NewSource(20260808))
	insert := func(i int) error {
		r := randRect(rng)
		id := node.RecordID(i + 1)
		if err := f.Insert(r, id); err != nil {
			return err
		}
		model[f.Route(r)][id] = r
		return nil
	}
	for i := 0; i < fcPreFlush; i++ {
		if err := insert(i); err != nil {
			return opsM, 0, 0, err
		}
	}
	if err := f.Flush(); err != nil {
		return opsM, 0, 0, err
	}
	opsA = disk.Ops()
	if mA != nil {
		*mA = snapshotShards(model)
	}
	for i := 0; i < fcDeletes; i++ {
		id := node.RecordID(3*i + 1)
		for s := range model {
			if r, ok := model[s][id]; ok {
				if _, err := f.Delete(id, r); err != nil {
					return opsM, opsA, 0, err
				}
				delete(model[s], id)
			}
		}
	}
	for i := fcPreFlush; i < fcPreFlush+fcPostFlush; i++ {
		if err := insert(i); err != nil {
			return opsM, opsA, 0, err
		}
	}
	if err := f.Flush(); err != nil {
		return opsM, opsA, 0, err
	}
	opsB = disk.Ops()
	if mB != nil {
		*mB = snapshotShards(model)
	}
	return opsM, opsA, opsB, f.Close()
}

// forestCrashPoints mirrors the core matrix sampling: the neighborhoods
// of every commit boundary plus a stride over the full range — every
// point when SEGIDX_CRASH_EXHAUSTIVE is set, a coarse sample under
// -short.
func forestCrashPoints(opsM, opsA, opsB, total int) []int {
	var stride int
	switch {
	case os.Getenv("SEGIDX_CRASH_EXHAUSTIVE") != "":
		stride = 1
	case testing.Short():
		stride = total/8 + 1
	default:
		stride = total/24 + 1
	}
	seen := make(map[int]bool)
	var pts []int
	add := func(n int) {
		if n >= 1 && n <= total && !seen[n] {
			seen[n] = true
			pts = append(pts, n)
		}
	}
	for n := 1; n <= total; n += stride {
		add(n)
	}
	for _, n := range []int{1, 2, opsM, opsM + 1, opsA - 1, opsA, opsA + 1, opsB - 1, opsB, opsB + 1, total - 1, total} {
		add(n)
	}
	sort.Ints(pts)
	return pts
}

type forestCrashCell struct {
	tear   int
	policy faultstore.CrashPolicy
	seed   uint64
}

func forestCrashCells() []forestCrashCell {
	tears := []int{0, 7, 1 << 20}
	policies := []forestCrashCell{
		{policy: faultstore.KeepNone},
		{policy: faultstore.KeepAll},
		{policy: faultstore.KeepSubset, seed: 1},
	}
	if testing.Short() {
		tears = []int{0, 1 << 20}
		policies = policies[:2]
	}
	cells := make([]forestCrashCell, 0, len(tears)*len(policies))
	for _, tear := range tears {
		for _, p := range policies {
			cells = append(cells, forestCrashCell{tear: tear, policy: p.policy, seed: p.seed})
		}
	}
	return cells
}

// shardMatches reports whether eng answers exactly like the shard model.
func shardMatches(t *testing.T, eng Engine, m shardModel) bool {
	t.Helper()
	if eng.Len() != len(m) {
		return false
	}
	got, err := eng.Search(geom.Rect2(0, 0, 1000, 1000))
	if err != nil {
		t.Fatalf("recovered shard search: %v", err)
	}
	return sameIDs(ids(got), m.ids())
}

// recoverForestAndClassify reopens the crash image, replays every WAL,
// checks the epoch-ordering invariant, classifies each shard against its
// commit boundaries, and reassembles the full forest to prove it answers
// as the union of the recovered shards. Returns one state per shard
// ("empty", "A", or "B"), or nil when no manifest survived.
func recoverForestAndClassify(t *testing.T, img *faultstore.Disk, mA, mB []shardModel, desc string) []string {
	t.Helper()
	mf, m, err := OpenManifest(img, "forest.db")
	if err != nil {
		if errors.Is(err, ErrNoManifest) {
			return nil
		}
		t.Fatalf("%s: recovery OpenManifest: %v", desc, err)
	}
	if m.Shards != fcShards {
		t.Fatalf("%s: manifest says %d shards, want %d", desc, m.Shards, fcShards)
	}
	states := make([]string, fcShards)
	shards := make([]Shard, fcShards)
	for i := 0; i < fcShards; i++ {
		ws, err := store.OpenWALStoreIn(img, ShardPath("forest.db", i))
		if err != nil {
			t.Fatalf("%s: shard %d recovery open: %v", desc, i, err)
		}
		defer func() { _ = ws.Close() }()
		meta, err := core.ReadMeta(ws)
		if errors.Is(err, core.ErrNoMeta) {
			// Never committed: replace with a fresh empty tree so the
			// forest can still be assembled.
			states[i] = "empty"
			tr, err := core.New(smallConfig(false), ws)
			if err != nil {
				t.Fatalf("%s: shard %d fresh tree: %v", desc, i, err)
			}
			shards[i] = Shard{Eng: tr, Store: ws}
			continue
		}
		if err != nil {
			t.Fatalf("%s: shard %d ReadMeta: %v", desc, i, err)
		}
		// The flush protocol's ordering invariant: the manifest commits
		// before any shard is stamped with the new epoch.
		if meta.Epoch > m.Epoch {
			t.Fatalf("%s: shard %d durable at epoch %d, ahead of manifest epoch %d",
				desc, i, meta.Epoch, m.Epoch)
		}
		tr, err := core.Open(smallConfig(false), ws)
		if err != nil {
			t.Fatalf("%s: shard %d recovery Open: %v", desc, i, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: shard %d violates invariants: %v", desc, i, err)
		}
		switch {
		case shardMatches(t, tr, mA[i]):
			states[i] = "A"
		case shardMatches(t, tr, mB[i]):
			states[i] = "B"
		default:
			t.Fatalf("%s: shard %d (%d records, epoch %d) matches neither boundary (A=%d, B=%d records)",
				desc, i, tr.Len(), meta.Epoch, len(mA[i]), len(mB[i]))
		}
		// The durable epoch must agree with the content it identifies:
		// epoch 1 committed state A; epochs 2 and 3 committed state B.
		wantState := "B"
		if meta.Epoch == 1 {
			wantState = "A"
		}
		if states[i] != wantState {
			t.Fatalf("%s: shard %d at epoch %d holds state %s, epoch says %s",
				desc, i, meta.Epoch, states[i], wantState)
		}
		shards[i] = Shard{Eng: tr, Store: ws}
	}

	// The reassembled forest must answer as the union of its recovered
	// shards and satisfy every forest invariant.
	f, err := New(shards, Config{Dims: 2, Manifest: mf, Epoch: m.Epoch, Rebuild: true})
	if err != nil {
		t.Fatalf("%s: forest reassembly: %v", desc, err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("%s: recovered forest invariants: %v", desc, err)
	}
	var want []node.RecordID
	for i, st := range states {
		switch st {
		case "A":
			want = append(want, mA[i].ids()...)
		case "B":
			want = append(want, mB[i].ids()...)
		}
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	got, err := f.Search(geom.Rect2(0, 0, 1000, 1000))
	if err != nil {
		t.Fatalf("%s: recovered forest search: %v", desc, err)
	}
	if !sameIDs(ids(got), want) {
		t.Fatalf("%s: recovered forest returns %d records, union of shard states has %d",
			desc, len(got), len(want))
	}
	if err := mf.Close(); err != nil {
		t.Fatalf("%s: manifest close: %v", desc, err)
	}
	return states
}

func forestAllowedStates(n, opsA, opsB int) []string {
	switch {
	case n <= opsA:
		return []string{"empty", "A"}
	case n <= opsB:
		return []string{"A", "B"}
	default:
		return []string{"B"}
	}
}

// TestForestCrashMatrix cuts power at sampled disk-op crash points
// during the sharded workload and asserts every shard recovers to a
// commit boundary with the manifest never behind any shard. Set
// SEGIDX_CRASH_EXHAUSTIVE=1 to enumerate every crash point.
func TestForestCrashMatrix(t *testing.T) {
	var mA, mB []shardModel
	ref := faultstore.NewDisk()
	opsM, opsA, opsB, err := driveForestCrashWorkload(ref, &mA, &mB)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := ref.Ops()
	if !(0 < opsM && opsM < opsA && opsA < opsB && opsB <= total) {
		t.Fatalf("degenerate reference run: opsM=%d opsA=%d opsB=%d total=%d", opsM, opsA, opsB, total)
	}
	for i := range mA {
		if len(mA[i]) == 0 || len(mA[i]) == len(mB[i]) {
			t.Fatalf("shard %d boundaries indistinguishable: A=%d B=%d records", i, len(mA[i]), len(mB[i]))
		}
	}
	points := forestCrashPoints(opsM, opsA, opsB, total)
	cells := forestCrashCells()
	t.Logf("opsM=%d opsA=%d opsB=%d total=%d -> %d points x %d cells = %d replays",
		opsM, opsA, opsB, total, len(points), len(cells), len(points)*len(cells))

	for _, n := range points {
		for _, c := range cells {
			desc := fmt.Sprintf("crash@%d/%d tear=%d policy=%v seed=%d", n, total, c.tear, c.policy, c.seed)
			disk := faultstore.NewDisk()
			disk.SetCrashPoint(n, c.tear)
			if _, _, _, err := driveForestCrashWorkload(disk, nil, nil); err == nil {
				t.Fatalf("%s: workload survived its crash point", desc)
			}
			if !disk.Crashed() {
				t.Fatalf("%s: crash point never fired", desc)
			}
			img := disk.CrashImage(c.policy, c.seed)
			states := recoverForestAndClassify(t, img, mA, mB, desc)
			if states == nil {
				// The manifest itself was lost: only possible while its
				// creation commit was still in flight.
				if n > opsM {
					t.Fatalf("%s: manifest lost after its creation committed", desc)
				}
				continue
			}
			want := forestAllowedStates(n, opsA, opsB)
			for i, st := range states {
				ok := false
				for _, w := range want {
					if st == w {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("%s: shard %d recovered %q, want one of %v (all shards: %v)",
						desc, i, st, want, states)
				}
			}
		}
	}
}

// TestForestManifestCommitFailureBreaksForest proves the forest-wide
// broken latch: a manifest commit failure mid-Flush leaves every later
// operation — reads included, on every shard — refusing with ErrBroken,
// while the durable image stays at the previous commit boundary.
func TestForestManifestCommitFailureBreaksForest(t *testing.T) {
	disk := faultstore.NewDisk()
	var mA []shardModel
	// Build the forest by hand so the disk stays writable after Flush A.
	mf, err := CreateManifest(disk, "forest.db", fcShards)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]Shard, fcShards)
	for i := range shards {
		st, err := store.OpenWALStoreIn(disk, ShardPath("forest.db", i))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := core.New(smallConfig(false), st)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = Shard{Eng: tr, Store: st}
	}
	f, err := New(shards, Config{Dims: 2, Manifest: mf})
	if err != nil {
		t.Fatal(err)
	}
	f.SetParallelism(1)
	model := make([]shardModel, fcShards)
	for i := range model {
		model[i] = make(shardModel)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < fcPreFlush; i++ {
		r := randRect(rng)
		id := node.RecordID(i + 1)
		if err := f.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		model[f.Route(r)][id] = r
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	mA = snapshotShards(model)

	// Dirty the forest, then fail the next disk write: the manifest's
	// epoch-2 slot.
	for i := fcPreFlush; i < fcPreFlush+20; i++ {
		if err := f.Insert(randRect(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	disk.FailWrite(1, boom)
	if err := f.Flush(); !errors.Is(err, boom) || !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Flush with failing manifest commit = %v, want the injected error wrapped in ErrBroken", err)
	}
	if _, err := f.Search(geom.Rect2(0, 0, 1000, 1000)); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Search after failed manifest commit = %v, want ErrBroken", err)
	}
	if err := f.Insert(randRect(rng), 99999); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Insert after failed manifest commit = %v, want ErrBroken", err)
	}
	if err := f.FlushShard(0); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("FlushShard after failed manifest commit = %v, want ErrBroken", err)
	}
	if err := f.Close(); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Close = %v, want ErrBroken", err)
	}

	// The durable image is exactly commit boundary A on every shard.
	states := recoverForestAndClassify(t, disk, mA, mA, "manifest-commit-failure")
	for i, st := range states {
		if st != "A" {
			t.Fatalf("shard %d recovered %q, want the first commit boundary", i, st)
		}
	}
}
