package forest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

// The stress suite runs the forest's intended concurrent shape — one
// writer pinned to each shard, scatter-gather readers over all of them,
// and a flush loop — under the race detector, and proves the property
// sharding exists to deliver: a stalled shard does not serialize the
// writers on the other shards.

// shardRects generates count rectangles that route to each shard of an
// n-shard forest, keyed by shard.
func shardRects(rng *rand.Rand, n, count int) [][]geom.Rect {
	out := make([][]geom.Rect, n)
	for {
		done := true
		for s := range out {
			if len(out[s]) < count {
				done = false
			}
		}
		if done {
			return out
		}
		r := randRect(rng)
		s := RouteRect(r, n)
		if len(out[s]) < count {
			out[s] = append(out[s], r)
		}
	}
}

// TestForestConcurrentStress drives pinned writers, scatter-gather
// readers, and a flush loop against one forest at once. Run with -race
// (the CI forest job does); the assertions here are the end-state ones —
// every surviving record answerable, invariants intact.
func TestForestConcurrentStress(t *testing.T) {
	const (
		shards    = 4
		perWriter = 300
		readers   = 2
	)
	f := newMemForest(t, shards, true)
	rects := shardRects(rand.New(rand.NewSource(42)), shards, perWriter)

	var wgWork, wgReaders sync.WaitGroup
	stopReaders := make(chan struct{})
	errs := make(chan error, shards+readers+1)

	// One writer per shard: insert its pinned rectangles, deleting every
	// fifth one again, so flushes commit both allocations and frees.
	for w := 0; w < shards; w++ {
		wgWork.Add(1)
		go func(w int) {
			defer wgWork.Done()
			for i, r := range rects[w] {
				id := node.RecordID(w*1_000_000 + i + 1)
				if err := f.Insert(r, id); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%5 == 0 {
					if _, err := f.Delete(id, r); err != nil {
						errs <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Scatter-gather readers across all shards while the writers run.
	for rd := 0; rd < readers; rd++ {
		wgReaders.Add(1)
		go func(rd int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(int64(100 + rd)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				q := randRect(rng)
				if _, err := f.Search(q); err != nil {
					errs <- fmt.Errorf("reader %d search: %w", rd, err)
					return
				}
				if _, err := f.Count(q); err != nil {
					errs <- fmt.Errorf("reader %d count: %w", rd, err)
					return
				}
				n := 0
				err := f.SearchFunc(q, func(core.Entry) bool { n++; return n < 8 })
				if err != nil {
					errs <- fmt.Errorf("reader %d stream: %w", rd, err)
					return
				}
			}
		}(rd)
	}

	// A flush loop: group-commit individual shards, then the whole forest.
	wgWork.Add(1)
	go func() {
		defer wgWork.Done()
		for round := 0; round < 20; round++ {
			if err := f.FlushShard(round % shards); err != nil {
				errs <- fmt.Errorf("flush shard: %w", err)
				return
			}
			if round%5 == 0 {
				if err := f.Flush(); err != nil {
					errs <- fmt.Errorf("flush: %w", err)
					return
				}
			}
		}
	}()

	// Readers run for as long as the writers and the flusher do.
	wgWork.Wait()
	close(stopReaders)
	wgReaders.Wait()

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	wantLen := shards * (perWriter - (perWriter+4)/5)
	if f.Len() != wantLen {
		t.Fatalf("Len = %d after stress, want %d", f.Len(), wantLen)
	}
	got, err := f.Search(geom.Rect2(0, 0, 1100, 1100))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != wantLen {
		t.Fatalf("full sweep returns %d records, want %d", len(got), wantLen)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// gatedEngine wraps a shard engine so the test can hold its Insert open:
// entered signals once a writer is inside the shard's insert path, and
// release lets it finish.
type gatedEngine struct {
	Engine
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedEngine) Insert(r geom.Rect, id node.RecordID) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.Engine.Insert(r, id)
}

// TestForestBlockedShardDoesNotSerializeWriters is the non-serialization
// proof: while a writer is parked inside shard 0's insert path, writers
// on shards 1..3 must run to completion. A forest that funneled inserts
// through any shared write lock would deadlock here (and the test would
// time out); with per-shard locks the blocked shard is invisible to the
// others.
func TestForestBlockedShardDoesNotSerializeWriters(t *testing.T) {
	const shards = 4
	gate := &gatedEngine{
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	fshards := make([]Shard, shards)
	for i := range fshards {
		st := store.NewMemStore()
		tr, err := core.New(smallConfig(false), st)
		if err != nil {
			t.Fatal(err)
		}
		fshards[i] = Shard{Eng: tr, Store: st}
	}
	gate.Engine = fshards[0].Eng
	fshards[0].Eng = gate
	f, err := New(fshards, Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	rects := shardRects(rand.New(rand.NewSource(7)), shards, 100)

	// Park a writer inside shard 0.
	blockedDone := make(chan error, 1)
	go func() {
		blockedDone <- f.Insert(rects[0][0], 1)
	}()
	<-gate.entered

	// With shard 0 held open, the other writers must finish unaided.
	var wg sync.WaitGroup
	errs := make(chan error, shards-1)
	for w := 1; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, r := range rects[w] {
				if err := f.Insert(r, node.RecordID(w*1000+i+2)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	for w := 1; w < shards; w++ {
		if got := f.ShardLens()[w]; got != 100 {
			t.Fatalf("shard %d holds %d records while shard 0 is blocked, want 100", w, got)
		}
	}

	// Release the parked writer and confirm the forest is whole.
	close(gate.release)
	if err := <-blockedDone; err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1+(shards-1)*100 {
		t.Fatalf("Len = %d after release, want %d", f.Len(), 1+(shards-1)*100)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
