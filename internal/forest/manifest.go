// Package forest shards one logical segment index across N independent
// trees — each with its own page store, write-ahead log, buffer-pool
// budget, and write lock — behind the same operation set a single tree
// exposes. A router assigns every logical record to exactly one shard by
// hashing its rectangle's center, so writers on different shards never
// contend; queries scatter across the shards whose covers overlap the
// query and gather the per-shard results, which need no cross-shard
// deduplication because a record lives wholly in one shard.
package forest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"segidx/internal/store"
)

// The manifest is the forest's durable root: a tiny file holding the
// shard count and the current flush epoch, checksummed and double-slotted
// so an interrupted write can never destroy the last durable state.
//
// Layout: two 64-byte slots. A commit with epoch E writes slot E%2, so
// consecutive commits alternate slots and a torn write tears only the
// slot whose previous content was already superseded. Readers decode both
// slots and adopt the checksum-valid one with the higher epoch.
//
// Slot layout (little endian):
//
//	0  u32 magic "SGFM"
//	4  u16 version
//	6  u16 shard count
//	8  u64 flush epoch
//	16     reserved (zero)
//	60 u32 crc32 (IEEE) over bytes [0, 60)
//
// Ordering contract with the shards: a forest flush first commits the
// manifest at epoch E, then stamps every shard with E and commits it
// (core.Tree.SetEpoch rides the shard's metadata page). A crash at any
// point therefore leaves every shard's durable epoch at or below the
// manifest's — a shard ahead of the manifest is proof of corruption.
const (
	manifestMagic     = 0x5347464d // "SGFM"
	manifestVersion   = 1
	manifestSlotBytes = 64
	manifestCRCOff    = 60
	maxShards         = 1 << 10
)

// ErrNoManifest is returned by OpenManifest when the file holds no valid
// manifest slot (missing, empty, or never successfully committed).
var ErrNoManifest = errors.New("forest: no manifest (was Flush called before close?)")

// Manifest is the decoded durable root of a forest.
type Manifest struct {
	Shards int
	Epoch  uint64
}

// ManifestFile is an open handle to a forest manifest.
type ManifestFile struct {
	mu     sync.Mutex
	f      store.File
	closed bool
}

// ShardPath names shard i's page store under the forest path. The shard's
// write-ahead log (durable forests) lives beside it at the usual
// store.WALSuffix.
func ShardPath(path string, i int) string {
	return fmt.Sprintf("%s.shard%d", path, i)
}

// encodeSlot serializes one manifest slot.
func encodeSlot(m Manifest) []byte {
	buf := make([]byte, manifestSlotBytes)
	binary.LittleEndian.PutUint32(buf[0:4], manifestMagic)
	binary.LittleEndian.PutUint16(buf[4:6], manifestVersion)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(m.Shards))
	binary.LittleEndian.PutUint64(buf[8:16], m.Epoch)
	crc := crc32.ChecksumIEEE(buf[:manifestCRCOff])
	binary.LittleEndian.PutUint32(buf[manifestCRCOff:manifestCRCOff+4], crc)
	return buf
}

// decodeSlot parses one manifest slot; ok is false for anything but a
// checksum-valid slot of the current version.
func decodeSlot(buf []byte) (Manifest, bool) {
	if len(buf) < manifestSlotBytes {
		return Manifest{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != manifestMagic {
		return Manifest{}, false
	}
	if binary.LittleEndian.Uint32(buf[manifestCRCOff:manifestCRCOff+4]) != crc32.ChecksumIEEE(buf[:manifestCRCOff]) {
		return Manifest{}, false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != manifestVersion {
		return Manifest{}, false
	}
	m := Manifest{
		Shards: int(binary.LittleEndian.Uint16(buf[6:8])),
		Epoch:  binary.LittleEndian.Uint64(buf[8:16]),
	}
	if m.Shards < 1 || m.Shards > maxShards {
		return Manifest{}, false
	}
	return m, true
}

// readSlots reads and decodes both slots from f.
func readSlots(f store.File) (best Manifest, found bool, err error) {
	buf := make([]byte, 2*manifestSlotBytes)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return Manifest{}, false, fmt.Errorf("forest: manifest read: %w", err)
	}
	buf = buf[:n]
	for off := 0; off+manifestSlotBytes <= len(buf); off += manifestSlotBytes {
		if m, ok := decodeSlot(buf[off : off+manifestSlotBytes]); ok {
			if !found || m.Epoch > best.Epoch {
				best, found = m, true
			}
		}
	}
	return best, found, nil
}

// CreateManifest creates the manifest for a fresh forest at path inside
// fsys and commits its epoch-0 slot. The file must not already hold a
// manifest.
func CreateManifest(fsys store.FS, path string, shards int) (*ManifestFile, error) {
	if shards < 1 || shards > maxShards {
		return nil, fmt.Errorf("forest: shard count %d outside [1, %d]", shards, maxShards)
	}
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if _, found, err := readSlots(f); err != nil {
		return nil, errors.Join(err, f.Close())
	} else if found {
		return nil, errors.Join(fmt.Errorf("forest: %s already holds a forest manifest", path), f.Close())
	}
	mf := &ManifestFile{f: f}
	if err := mf.Commit(Manifest{Shards: shards, Epoch: 0}); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return mf, nil
}

// OpenManifest opens an existing manifest at path inside fsys and returns
// its recovered state: the checksum-valid slot with the highest epoch.
func OpenManifest(fsys store.FS, path string) (*ManifestFile, Manifest, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, Manifest{}, err
	}
	m, found, err := readSlots(f)
	if err != nil {
		return nil, Manifest{}, errors.Join(err, f.Close())
	}
	if !found {
		return nil, Manifest{}, errors.Join(ErrNoManifest, f.Close())
	}
	return &ManifestFile{f: f}, m, nil
}

// SniffManifest reports whether path inside fsys holds a forest manifest
// slot magic (valid or torn). It distinguishes a forest root from a
// single-tree page file without parsing either.
func SniffManifest(fsys store.FS, path string) bool {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return false
	}
	found := false
	var hdr [4]byte
	for _, off := range []int64{0, manifestSlotBytes} {
		if _, err := f.ReadAt(hdr[:], off); err == nil &&
			binary.LittleEndian.Uint32(hdr[:]) == manifestMagic {
			found = true
			break
		}
	}
	// The sniff never writes; a close failure cannot change the verdict.
	_ = f.Close()
	return found
}

// Commit durably writes m into its slot (Epoch%2) and syncs. On failure
// the previously committed slot is untouched, but the file handle's state
// is unknown; callers treat a failed manifest commit as breaking the
// forest.
func (mf *ManifestFile) Commit(m Manifest) error {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if mf.closed {
		return store.ErrClosed
	}
	off := int64(m.Epoch%2) * manifestSlotBytes
	if _, err := mf.f.WriteAt(encodeSlot(m), off); err != nil {
		return fmt.Errorf("forest: manifest write: %w", err)
	}
	if err := mf.f.Sync(); err != nil {
		return fmt.Errorf("forest: manifest sync: %w", err)
	}
	return nil
}

// Close releases the manifest handle. Idempotent.
func (mf *ManifestFile) Close() error {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if mf.closed {
		return nil
	}
	mf.closed = true
	return mf.f.Close()
}
