package forest

import (
	"errors"
	"path/filepath"
	"testing"

	"segidx/internal/store"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forest.db")
	mf, err := CreateManifest(store.OS, path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CreateManifest(store.OS, path, 4); err == nil {
		t.Fatal("CreateManifest over an existing manifest succeeded")
	}
	for e := uint64(1); e <= 3; e++ {
		if err := mf.Commit(Manifest{Shards: 4, Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	reopened, m, err := OpenManifest(store.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if m.Shards != 4 || m.Epoch != 3 {
		t.Fatalf("recovered %+v, want shards 4 epoch 3", m)
	}
	if !SniffManifest(store.OS, path) {
		t.Fatal("SniffManifest missed a manifest")
	}
}

// TestManifestTornSlot corrupts the most recent slot and verifies reopen
// falls back to the previous epoch — the double-slot crash guarantee.
func TestManifestTornSlot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "forest.db")
	mf, err := CreateManifest(store.OS, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 lands in slot 1, epoch 2 back in slot 0.
	for e := uint64(1); e <= 2; e++ {
		if err := mf.Commit(Manifest{Shards: 2, Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear slot 0 (the epoch-2 slot): flip one payload byte.
	f, err := store.OS.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 9); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, m, err := OpenManifest(store.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if m.Epoch != 1 || m.Shards != 2 {
		t.Fatalf("recovered %+v, want the epoch-1 slot", m)
	}
	// The torn file still sniffs as a forest: slot 1 carries the magic.
	if !SniffManifest(store.OS, path) {
		t.Fatal("SniffManifest missed a torn-but-recoverable manifest")
	}
}

func TestManifestEmptyAndForeign(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.db")
	if _, _, err := OpenManifest(store.OS, empty); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("OpenManifest(empty) = %v, want ErrNoManifest", err)
	}
	if SniffManifest(store.OS, empty) {
		t.Fatal("SniffManifest claimed an empty file")
	}

	foreign := filepath.Join(dir, "tree.db")
	f, err := store.OS.OpenFile(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 256), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if SniffManifest(store.OS, foreign) {
		t.Fatal("SniffManifest claimed a zero-filled file")
	}
	if _, _, err := OpenManifest(store.OS, foreign); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("OpenManifest(foreign) = %v, want ErrNoManifest", err)
	}
}

func TestCreateManifestRejectsBadShardCounts(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []int{0, -1, maxShards + 1} {
		if _, err := CreateManifest(store.OS, filepath.Join(dir, "m.db"), n); err == nil {
			t.Fatalf("CreateManifest(%d) succeeded", n)
		}
	}
}
