package forest

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

// smallConfig mirrors the core test configuration: tiny pages so shards
// grow real depth on small datasets.
func smallConfig(spanning bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Sizes.LeafBytes = 256
	cfg.Spanning = spanning
	return cfg
}

// newMemForest builds an n-shard forest of SR-Trees over fresh in-memory
// stores, without a manifest.
func newMemForest(t *testing.T, n int, spanning bool) *Forest {
	t.Helper()
	shards := make([]Shard, n)
	for i := range shards {
		st := store.NewMemStore()
		tr, err := core.New(smallConfig(spanning), st)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = Shard{Eng: tr, Store: st}
	}
	f, err := New(shards, Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func ids(entries []core.Entry) []node.RecordID {
	out := make([]node.RecordID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func sameIDs(a, b []node.RecordID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestForestMatchesModel drives a forest against a brute-force model:
// interleaved inserts and deletes, then intersection, containment, and
// within queries compared exactly.
func TestForestMatchesModel(t *testing.T) {
	for _, shards := range []int{1, 3, 4} {
		f := newMemForest(t, shards, true)
		rng := rand.New(rand.NewSource(int64(shards)))
		rects := make(map[node.RecordID]geom.Rect)
		for i := 0; i < 600; i++ {
			id := node.RecordID(i + 1)
			r := randRect(rng)
			if err := f.Insert(r, id); err != nil {
				t.Fatal(err)
			}
			rects[id] = r
			if i%7 == 3 {
				victim := node.RecordID(rng.Intn(i+1) + 1)
				if hint, ok := rects[victim]; ok {
					n, err := f.Delete(victim, hint)
					if err != nil {
						t.Fatal(err)
					}
					if n != 1 {
						t.Fatalf("Delete(%d) removed %d", victim, n)
					}
					delete(rects, victim)
				}
			}
		}
		if f.Len() != len(rects) {
			t.Fatalf("shards=%d: Len=%d, model=%d", shards, f.Len(), len(rects))
		}
		for q := 0; q < 150; q++ {
			query := randRect(rng)
			var wantHit, wantWithin, wantContain []node.RecordID
			for id, r := range rects {
				if r.Intersects(query) {
					wantHit = append(wantHit, id)
				}
				if query.Contains(r) {
					wantWithin = append(wantWithin, id)
				}
				if r.Contains(query) {
					wantContain = append(wantContain, id)
				}
			}
			sort.Slice(wantHit, func(a, b int) bool { return wantHit[a] < wantHit[b] })
			sort.Slice(wantWithin, func(a, b int) bool { return wantWithin[a] < wantWithin[b] })
			sort.Slice(wantContain, func(a, b int) bool { return wantContain[a] < wantContain[b] })

			got, err := f.Search(query)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(ids(got), wantHit) {
				t.Fatalf("shards=%d Search(%v): got %v want %v", shards, query, ids(got), wantHit)
			}
			n, err := f.Count(query)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(wantHit) {
				t.Fatalf("shards=%d Count=%d want %d", shards, n, len(wantHit))
			}
			within, err := f.SearchWithin(query)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(ids(within), wantWithin) {
				t.Fatalf("shards=%d SearchWithin: got %v want %v", shards, ids(within), wantWithin)
			}
			containing, err := f.SearchContaining(query)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(ids(containing), wantContain) {
				t.Fatalf("shards=%d SearchContaining: got %v want %v", shards, ids(containing), wantContain)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

// TestForestIDReuseStaysOnOneShard verifies the routing invariant: a
// second insert under a live ID lands on the ID's home shard no matter
// where its rectangle hashes, so dedup and delete semantics survive
// sharding.
func TestForestIDReuseStaysOnOneShard(t *testing.T) {
	f := newMemForest(t, 4, true)
	a := geom.Rect2(0, 0, 10, 10)
	b := geom.Rect2(900, 900, 910, 910) // hashes elsewhere with near-certainty
	if RouteRect(a, 4) == RouteRect(b, 4) {
		b = geom.Rect2(700, 300, 705, 305)
	}
	if err := f.Insert(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(b, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Len mirrors the single tree, which counts every insert — including
	// an ID reuse — and removes one per deleted logical record.
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (single-tree reuse semantics)", f.Len())
	}
	// Searching a region covering both portions reports the ID once.
	got, err := f.Search(geom.Rect2(-1, -1, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Search = %v, want exactly ID 1", ids(got))
	}
	// Delete with a hint covering both portions removes the whole record.
	n, err := f.Delete(1, geom.Rect2(-1, -1, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || f.Len() != 1 {
		t.Fatalf("Delete removed %d, Len=%d (want 1, 1: single-tree reuse semantics)", n, f.Len())
	}
	got, err = f.Search(geom.Rect2(-1, -1, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("record survived delete: %v", ids(got))
	}
}

func TestForestValidatesBeforePruning(t *testing.T) {
	f := newMemForest(t, 2, false) // empty: every query prunes to zero shards
	bad := geom.Rect{Min: []float64{1, 1}, Max: []float64{0, 0}}
	if _, err := f.Search(bad); !errors.Is(err, core.ErrBadRect) {
		t.Fatalf("Search(bad) = %v, want ErrBadRect", err)
	}
	wrong := geom.MustRect([]float64{0}, []float64{1})
	if _, err := f.Count(wrong); !errors.Is(err, core.ErrDims) {
		t.Fatalf("Count(1-d) = %v, want ErrDims", err)
	}
	if err := f.Insert(bad, 1); !errors.Is(err, core.ErrBadRect) {
		t.Fatalf("Insert(bad) = %v, want ErrBadRect", err)
	}
	if _, err := f.Delete(9, bad); !errors.Is(err, core.ErrBadRect) {
		t.Fatalf("Delete(bad hint) = %v, want ErrBadRect", err)
	}
	if err := f.SearchFunc(wrong, func(core.Entry) bool { return true }); !errors.Is(err, core.ErrDims) {
		t.Fatalf("SearchFunc(1-d) = %v, want ErrDims", err)
	}
}

func TestForestStreamEarlyStopCrossesShards(t *testing.T) {
	f := newMemForest(t, 4, true)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		if err := f.Insert(randRect(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	everything := geom.Rect2(-1, -1, 2000, 2000)
	calls := 0
	if err := f.SearchFunc(everything, func(core.Entry) bool {
		calls++
		return calls < 3
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("early stop leaked: %d callbacks", calls)
	}
	calls = 0
	if err := f.VisitPortions(func(int, core.Entry) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("VisitPortions early stop leaked: %d callbacks", calls)
	}
}

// TestForestFlushEpochProtocol verifies the ordering contract: Flush
// bumps the manifest first, shards are stamped with the same epoch, and
// FlushShard never advances it.
func TestForestFlushEpochProtocol(t *testing.T) {
	dir := t.TempDir()
	mf, err := CreateManifest(store.OS, filepath.Join(dir, "f.db"), 2)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]store.Store, 2)
	shards := make([]Shard, 2)
	for i := range shards {
		st := store.NewMemStore()
		tr, err := core.New(smallConfig(true), st)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		shards[i] = Shard{Eng: tr, Store: st}
	}
	f, err := New(shards, Config{Dims: 2, Manifest: mf})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if err := f.Insert(randRect(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 1 {
		t.Fatalf("epoch after first Flush = %d", f.Epoch())
	}
	for i, st := range stores {
		meta, err := core.ReadMeta(st)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Epoch != 1 {
			t.Fatalf("shard %d durable epoch = %d, want 1", i, meta.Epoch)
		}
	}
	// FlushShard persists at the current epoch without bumping it.
	if err := f.FlushShard(0); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 1 {
		t.Fatalf("FlushShard moved the epoch to %d", f.Epoch())
	}
	if err := f.FlushShard(5); err == nil {
		t.Fatal("FlushShard(out of range) succeeded")
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 2 {
		t.Fatalf("epoch after second Flush = %d", f.Epoch())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, m, err := OpenManifest(store.OS, filepath.Join(dir, "f.db"))
	if err != nil {
		t.Fatal(err)
	}
	// Close flushes once more, so the durable epoch is 3.
	if m.Epoch != 3 || m.Shards != 2 {
		t.Fatalf("durable manifest %+v", m)
	}
}

// TestForestRebuild reopens shards with pre-existing data and verifies
// the routing map and covers are reconstructed: queries work, ID reuse
// still pins, and a record split across shards is rejected.
func TestForestRebuild(t *testing.T) {
	mkShard := func(t *testing.T, seed int64, base int) (Shard, map[node.RecordID]geom.Rect) {
		st := store.NewMemStore()
		tr, err := core.New(smallConfig(true), st)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		rects := make(map[node.RecordID]geom.Rect)
		for i := 0; i < 80; i++ {
			id := node.RecordID(base + i)
			r := randRect(rng)
			if err := tr.Insert(r, id); err != nil {
				t.Fatal(err)
			}
			rects[id] = r
		}
		return Shard{Eng: tr, Store: st}, rects
	}
	s0, r0 := mkShard(t, 1, 1000)
	s1, r1 := mkShard(t, 2, 2000)
	f, err := New([]Shard{s0, s1}, Config{Dims: 2, Rebuild: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != len(r0)+len(r1) {
		t.Fatalf("Len = %d", f.Len())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A rebuilt map still routes deletes to the owning shard.
	for id, r := range r0 {
		n, err := f.Delete(id, r)
		if err != nil || n != 1 {
			t.Fatalf("Delete(%d) = %d, %v", id, n, err)
		}
		break
	}

	// Conflicting shards: the same ID stored in both must fail assembly.
	c0, _ := mkShard(t, 3, 5000)
	c1, _ := mkShard(t, 4, 5000)
	if _, err := New([]Shard{c0, c1}, Config{Dims: 2, Rebuild: true}); err == nil {
		t.Fatal("rebuild accepted a record stored in two shards")
	}
}

// TestForestAggregation checks Stats/PoolStats/Analyze merge per-shard
// numbers without double counting: sums of disjoint shard counters.
func TestForestAggregation(t *testing.T) {
	f := newMemForest(t, 4, true)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		if err := f.Insert(randRect(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 40; q++ {
		if _, err := f.Search(randRect(rng)); err != nil {
			t.Fatal(err)
		}
	}
	var wantStats core.Stats
	for _, s := range f.ShardStats() {
		wantStats.Inserts += s.Inserts
		wantStats.Searches += s.Searches
		wantStats.CutPortions += s.CutPortions
	}
	got := f.Stats()
	if got.Inserts != wantStats.Inserts || got.Inserts != 500 {
		t.Fatalf("Stats.Inserts = %d (per-shard sum %d), want 500", got.Inserts, wantStats.Inserts)
	}
	if got.Searches != wantStats.Searches {
		t.Fatalf("Stats.Searches = %d, per-shard sum %d", got.Searches, wantStats.Searches)
	}
	if got.CutPortions != wantStats.CutPortions {
		t.Fatalf("Stats.CutPortions = %d, per-shard sum %d", got.CutPortions, wantStats.CutPortions)
	}

	var gets uint64
	for _, s := range f.ShardPoolStats() {
		gets += s.Gets
	}
	if ps := f.PoolStats(); ps.Gets != gets {
		t.Fatalf("PoolStats.Gets = %d, per-shard sum %d", ps.Gets, gets)
	}

	lens := f.ShardLens()
	sum := 0
	for _, n := range lens {
		sum += n
	}
	if sum != f.Len() || sum != 500 {
		t.Fatalf("shard lens %v sum %d, Len %d", lens, sum, f.Len())
	}

	rep, err := f.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogicalRecords != 500 {
		t.Fatalf("Analyze.LogicalRecords = %d", rep.LogicalRecords)
	}
	if rep.Height != f.Height() {
		t.Fatalf("Analyze.Height = %d, Height() = %d", rep.Height, f.Height())
	}
	nodes := 0
	for _, lv := range rep.Levels {
		nodes += lv.Nodes
		if lv.Occupancy < 0 || lv.Occupancy > 1 {
			t.Fatalf("level %d occupancy %v out of [0,1]", lv.Level, lv.Occupancy)
		}
	}
	if nodes != rep.Nodes {
		t.Fatalf("level nodes %d != total %d", nodes, rep.Nodes)
	}
}

// TestForestDeleteWhere checks the predicate delete sums per-shard
// removals and prunes by cover.
func TestForestDeleteWhere(t *testing.T) {
	f := newMemForest(t, 4, true)
	rng := rand.New(rand.NewSource(13))
	rects := make(map[node.RecordID]geom.Rect)
	for i := 0; i < 300; i++ {
		id := node.RecordID(i + 1)
		r := randRect(rng)
		if err := f.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		rects[id] = r
	}
	cut := geom.Rect2(0, 0, 500, 1050)
	want := 0
	for _, r := range rects {
		if r.Intersects(cut) {
			want++
		}
	}
	n, err := f.DeleteWhere(cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("DeleteWhere removed %d, want %d", n, want)
	}
	if f.Len() != 300-want {
		t.Fatalf("Len = %d", f.Len())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
