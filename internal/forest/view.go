package forest

import (
	"sync/atomic"

	"segidx/internal/core"
	"segidx/internal/geom"
)

// CommitEpoch reports the sum of the shards' commit epochs: a monotonic
// stamp that increases whenever any shard commits a mutation and is stable
// while the forest is quiescent. The HTTP result cache keys on it.
func (f *Forest) CommitEpoch() uint64 {
	var e uint64
	for _, s := range f.shards {
		e += s.CommitEpoch()
	}
	return e
}

// Snapshot pins one view per shard plus a copy of the per-shard covers and
// returns a core.View over the union. Each shard view is a true MVCC
// snapshot (lock-free reads, copy-on-write isolation), so queries on the
// returned view never block behind writers on any shard.
//
// Shard views are pinned in shard order, not atomically across shards: a
// write committing while Snapshot runs may be visible in a later-pinned
// shard but not an earlier one. Since a logical record lives wholly inside
// one shard, each record is still seen atomically (entirely at its shard's
// pinned epoch); only cross-record, cross-shard ordering is relaxed —
// exactly the guarantee concurrent scatter-gather queries already have.
// Pinned under the forest's quiescence the view is exact.
func (f *Forest) Snapshot() core.View {
	v := &forestView{
		f:      f,
		views:  make([]core.View, len(f.shards)),
		covers: make([]geom.Rect, len(f.shards)),
		set:    make([]bool, len(f.shards)),
	}
	for i, s := range f.shards {
		sv := s.Snapshot()
		v.views[i] = sv
		v.covers[i], v.set[i] = f.covers[i].snapshot()
	}
	return v
}

// forestView is a pinned scatter-gather snapshot: per-shard views plus
// frozen covers for pruning. Covers are grow-only on the live forest, so a
// frozen cover is exact for the pinned contents of its shard whenever the
// pin happened with no insert in flight on that shard; an insert racing
// the pin may or may not be visible, as for any query concurrent with a
// write.
type forestView struct {
	f        *Forest
	views    []core.View
	covers   []geom.Rect
	set      []bool
	released atomic.Bool
}

func (v *forestView) check(query geom.Rect) error {
	if v.released.Load() {
		return core.ErrSnapshotReleased
	}
	return v.f.validate(query)
}

// prune reports whether shard i can hold a match for query under the
// frozen covers.
func (v *forestView) prune(i int, query geom.Rect, contains bool) bool {
	if !v.set[i] {
		return false
	}
	if contains {
		return v.covers[i].Contains(query)
	}
	return v.covers[i].Intersects(query)
}

// Search implements core.View across the pinned shards.
func (v *forestView) Search(query geom.Rect) ([]core.Entry, error) {
	return v.gather(query, false, core.View.Search)
}

// SearchContaining implements core.View across the pinned shards.
func (v *forestView) SearchContaining(query geom.Rect) ([]core.Entry, error) {
	return v.gather(query, true, core.View.SearchContaining)
}

// gather runs op on every non-pruned shard view and concatenates, handing
// a single shard's slice through unchanged.
func (v *forestView) gather(query geom.Rect, contains bool,
	op func(core.View, geom.Rect) ([]core.Entry, error),
) ([]core.Entry, error) {
	if err := v.check(query); err != nil {
		return nil, err
	}
	var out []core.Entry
	first := true
	for i, sv := range v.views {
		if !v.prune(i, query, contains) {
			continue
		}
		r, err := op(sv, query)
		if err != nil {
			return nil, err
		}
		switch {
		case len(r) == 0:
		case first && out == nil:
			out = r
		default:
			out = append(out, r...)
		}
		first = false
	}
	return out, nil
}

// SearchFunc implements core.View across the pinned shards, honoring fn's
// early stop across shard boundaries.
func (v *forestView) SearchFunc(query geom.Rect, fn func(core.Entry) bool) error {
	return v.stream(query, false, core.View.SearchFunc, fn)
}

// SearchContainingFunc implements core.View across the pinned shards.
func (v *forestView) SearchContainingFunc(query geom.Rect, fn func(core.Entry) bool) error {
	return v.stream(query, true, core.View.SearchContainingFunc, fn)
}

func (v *forestView) stream(query geom.Rect, contains bool,
	op func(core.View, geom.Rect, func(core.Entry) bool) error,
	fn func(core.Entry) bool,
) error {
	if err := v.check(query); err != nil {
		return err
	}
	stopped := false
	visit := func(e core.Entry) bool {
		if fn(e) {
			return true
		}
		stopped = true
		return false
	}
	for i, sv := range v.views {
		if !v.prune(i, query, contains) {
			continue
		}
		if err := op(sv, query, visit); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Count implements core.View: the sum over non-pruned shards.
func (v *forestView) Count(query geom.Rect) (int, error) {
	if err := v.check(query); err != nil {
		return 0, err
	}
	total := 0
	for i, sv := range v.views {
		if !v.prune(i, query, false) {
			continue
		}
		n, err := sv.Count(query)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Len implements core.View: records across all pinned shard views.
func (v *forestView) Len() int {
	n := 0
	for _, sv := range v.views {
		n += sv.Len()
	}
	return n
}

// Epoch implements core.View: the sum of the pinned shard epochs, on the
// same scale as Forest.CommitEpoch.
func (v *forestView) Epoch() uint64 {
	var e uint64
	for _, sv := range v.views {
		e += sv.Epoch()
	}
	return e
}

// Release implements core.View: unpins every shard view. Idempotent.
func (v *forestView) Release() {
	if !v.released.CompareAndSwap(false, true) {
		return
	}
	for _, sv := range v.views {
		sv.Release()
	}
}
