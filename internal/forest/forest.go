package forest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"segidx/internal/accel"
	"segidx/internal/buffer"
	"segidx/internal/core"
	"segidx/internal/fanout"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

// Engine is the per-shard operation set: everything the public facade
// needs from a tree, plus the epoch stamp a forest flush rides on. Both
// core.Tree and skeleton.Predictor satisfy it.
type Engine interface {
	Insert(geom.Rect, node.RecordID) error
	Delete(node.RecordID, geom.Rect) (int, error)
	DeleteWhere(geom.Rect, func(core.Entry) bool) (int, error)
	Search(geom.Rect) ([]core.Entry, error)
	SearchFunc(geom.Rect, func(core.Entry) bool) error
	SearchWithin(geom.Rect) ([]core.Entry, error)
	SearchContaining(geom.Rect) ([]core.Entry, error)
	SearchContainingFunc(geom.Rect, func(core.Entry) bool) error
	VisitPortions(func(level int, e core.Entry) bool) error
	Count(geom.Rect) (int, error)
	Len() int
	Height() int
	NodeCount() int
	Stats() core.Stats
	PoolStats() buffer.Stats
	Flush() error
	CheckInvariants() error
	Analyze() (*core.Report, error)
	SetEpoch(uint64)
	Snapshot() core.View
	CommitEpoch() uint64
	AccelStats() []accel.Stats
}

// Shard pairs a shard engine with the store it persists to (nil for
// engines whose store the caller manages).
type Shard struct {
	Eng   Engine
	Store store.Store
}

// Config configures forest assembly.
type Config struct {
	// Dims is the dimensionality every operation is validated against.
	Dims int
	// Manifest, when non-nil, is the forest's durable root: Flush commits
	// it at a bumped epoch before stamping and flushing the shards.
	Manifest *ManifestFile
	// Epoch is the manifest epoch the forest starts at (0 for fresh
	// forests; the recovered manifest epoch on reopen).
	Epoch uint64
	// Rebuild walks every shard's stored portions to reconstruct the
	// ID-to-shard routing map and the per-shard covers. Required when the
	// shards hold pre-existing data (reopen); a record found in two shards
	// fails assembly.
	Rebuild bool
}

// Forest shards one logical index across N engines. See the package
// comment for the architecture; the zero value is unusable — use New.
//
// Concurrency: each shard engine carries its own write lock, so writers
// routed to distinct shards proceed in parallel; the forest adds no
// global operation lock. Flush serializes against other flushes only.
type Forest struct {
	dims     int
	shards   []Engine
	stores   []store.Store
	manifest *ManifestFile

	ids    idMap
	covers []cover

	par atomic.Int32

	flushMu sync.Mutex
	epoch   uint64 // guarded by flushMu

	// broken latches the first store.ErrBroken any operation surfaces, so
	// a forest with one sick shard refuses everything, forest-wide, just
	// as a single sick WALStore does.
	broken atomic.Pointer[error]

	scanPool sync.Pool
}

// scanCtx carries one streaming query across shards. Its visit closures
// are bound once at construction and capture only the scanCtx itself, so
// a pooled scanCtx makes the multi-shard wrapping allocation-free: the
// per-call state (the caller's fn, the stop flag) is written into fields
// the closures read through the pointer.
type scanCtx struct {
	fn      func(core.Entry) bool
	levelFn func(int, core.Entry) bool
	stopped bool
	visit   func(core.Entry) bool
	visitL  func(int, core.Entry) bool
}

// New assembles a forest over the given shards. Every shard must already
// be configured identically (dims, page sizes, spanning mode); the forest
// does not verify engine configuration beyond dimensionality of the
// operations it routes.
func New(shards []Shard, cfg Config) (*Forest, error) {
	if len(shards) < 1 {
		return nil, errors.New("forest: need at least one shard")
	}
	if len(shards) > maxShards {
		return nil, fmt.Errorf("forest: %d shards exceeds the limit of %d", len(shards), maxShards)
	}
	if cfg.Dims < 1 {
		return nil, errors.New("forest: dims must be at least 1")
	}
	f := &Forest{
		dims:     cfg.Dims,
		shards:   make([]Engine, len(shards)),
		stores:   make([]store.Store, len(shards)),
		manifest: cfg.Manifest,
		covers:   make([]cover, len(shards)),
		epoch:    cfg.Epoch,
	}
	for i, s := range shards {
		if s.Eng == nil {
			return nil, fmt.Errorf("forest: shard %d has no engine", i)
		}
		f.shards[i] = s.Eng
		f.stores[i] = s.Store
	}
	f.scanPool.New = func() any {
		sc := &scanCtx{}
		sc.visit = func(e core.Entry) bool {
			if sc.fn(e) {
				return true
			}
			sc.stopped = true
			return false
		}
		sc.visitL = func(level int, e core.Entry) bool {
			if sc.levelFn(level, e) {
				return true
			}
			sc.stopped = true
			return false
		}
		return sc
	}
	if cfg.Rebuild {
		if err := f.rebuild(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// rebuild reconstructs the routing map and covers from the shards'
// stored portions.
func (f *Forest) rebuild() error {
	for i, s := range f.shards {
		var conflict node.RecordID
		bad := false
		err := s.VisitPortions(func(_ int, e core.Entry) bool {
			if !f.ids.record(e.ID, i) {
				conflict, bad = e.ID, true
				return false
			}
			f.covers[i].grow(e.Rect)
			return true
		})
		if err != nil {
			return fmt.Errorf("forest: rebuild shard %d: %w", i, err)
		}
		if bad {
			return fmt.Errorf("forest: record %d stored in two shards (corrupt forest)", conflict)
		}
	}
	return nil
}

// guard returns the latched breakage, if any. It allocates nothing.
func (f *Forest) guard() error {
	if p := f.broken.Load(); p != nil {
		return *p
	}
	return nil
}

// note latches err when it carries store.ErrBroken. First breakage wins.
// The box is allocated only on the latch path: taking the parameter's own
// address would heap-move it on every call and break the zero-allocation
// read gates.
func (f *Forest) note(err error) {
	if err == nil || !errors.Is(err, store.ErrBroken) {
		return
	}
	boxed := new(error)
	*boxed = err
	f.broken.CompareAndSwap(nil, boxed)
}

// validate mirrors the single tree's operation-entry rectangle check, so
// a query the forest prunes to zero shards still reports the error a
// single tree would.
func (f *Forest) validate(r geom.Rect) error {
	if !r.Valid() {
		return core.ErrBadRect
	}
	if r.Dims() != f.dims {
		return core.ErrDims
	}
	return nil
}

// Shards reports the number of shards.
func (f *Forest) Shards() int { return len(f.shards) }

// Epoch reports the forest's current manifest epoch.
func (f *Forest) Epoch() uint64 {
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	return f.epoch
}

// SetParallelism bounds the goroutines used for scatter-gather queries
// and multi-shard flushes; 0 restores the default (GOMAXPROCS).
func (f *Forest) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	f.par.Store(int32(n))
}

func (f *Forest) parallelism() int {
	if p := f.par.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// Route reports the shard an insert of r would target absent ID-reuse
// pinning: the rectangle-center hash over the shard count.
func (f *Forest) Route(r geom.Rect) int { return RouteRect(r, len(f.shards)) }

// Insert routes the record to its home shard — the shard already owning
// its ID if the ID was ever seen, else the one its rectangle hashes to —
// and grows that shard's cover.
func (f *Forest) Insert(r geom.Rect, id node.RecordID) error {
	if err := f.guard(); err != nil {
		return err
	}
	if err := f.validate(r); err != nil {
		return err
	}
	shard := f.ids.assign(id, RouteRect(r, len(f.shards)))
	if err := f.shards[shard].Insert(r, id); err != nil {
		f.note(err)
		return err
	}
	f.covers[shard].grow(r)
	return nil
}

// Delete removes the record with the given ID from its owning shard. An
// ID the forest has never seen removes nothing, matching a single tree's
// miss behavior; the hint is validated first either way.
func (f *Forest) Delete(id node.RecordID, hint geom.Rect) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	if err := f.validate(hint); err != nil {
		return 0, err
	}
	shard := f.ids.lookup(id)
	if shard < 0 {
		return 0, nil
	}
	n, err := f.shards[shard].Delete(id, hint)
	f.note(err)
	return n, err
}

// DeleteWhere applies the predicate delete on every shard whose cover
// overlaps query. Shards run sequentially: the predicate is caller code
// and the single-tree contract never invokes it concurrently.
func (f *Forest) DeleteWhere(query geom.Rect, pred func(core.Entry) bool) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	if err := f.validate(query); err != nil {
		return 0, err
	}
	total := 0
	for i := range f.shards {
		if !f.covers[i].intersects(query) {
			continue
		}
		n, err := f.shards[i].DeleteWhere(query, pred)
		total += n
		if err != nil {
			f.note(err)
			return total, err
		}
	}
	return total, nil
}

// scatter fans op across the shards selected by prune and gathers the
// per-shard result slices, merging without copying when at most one shard
// produced results.
func (f *Forest) scatter(query geom.Rect,
	prune func(*cover, geom.Rect) bool,
	op func(Engine, geom.Rect) ([]core.Entry, error),
) ([]core.Entry, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	if err := f.validate(query); err != nil {
		return nil, err
	}
	sel := make([]int, 0, len(f.shards))
	for i := range f.shards {
		if prune(&f.covers[i], query) {
			sel = append(sel, i)
		}
	}
	if len(sel) == 0 {
		return nil, nil
	}
	results := make([][]core.Entry, len(sel))
	err := fanout.Run(nil, f.parallelism(), len(sel), func(i int) error {
		r, err := op(f.shards[sel[i]], query)
		results[i] = r
		return err
	})
	if err != nil {
		f.note(err)
		return nil, err
	}
	// Gather. One non-empty shard hands its slice through unchanged — the
	// common case under effective pruning costs no re-allocation.
	total, nonEmpty, last := 0, 0, -1
	for i, r := range results {
		if len(r) > 0 {
			total += len(r)
			nonEmpty++
			last = i
		}
	}
	switch nonEmpty {
	case 0:
		return nil, nil
	case 1:
		return results[last], nil
	}
	out := make([]core.Entry, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

func intersectsCover(c *cover, q geom.Rect) bool { return c.intersects(q) }
func containsCover(c *cover, q geom.Rect) bool   { return c.contains(q) }

// Search returns the records intersecting query across all shards,
// deduplicated per shard by ID (cross-shard duplicates cannot exist: a
// record lives wholly in one shard).
func (f *Forest) Search(query geom.Rect) ([]core.Entry, error) {
	return f.scatter(query, intersectsCover, Engine.Search)
}

// SearchWithin returns the records entirely contained in query.
func (f *Forest) SearchWithin(query geom.Rect) ([]core.Entry, error) {
	return f.scatter(query, intersectsCover, Engine.SearchWithin)
}

// SearchContaining returns the records that entirely contain query. A
// shard can only hold a match when its cover contains the query, the
// tighter prune.
func (f *Forest) SearchContaining(query geom.Rect) ([]core.Entry, error) {
	return f.scatter(query, containsCover, Engine.SearchContaining)
}

// stream runs a streaming query over the pruned shards sequentially,
// honoring fn's early stop across shard boundaries. The pooled scan
// context keeps the wrapping allocation-free, preserving the per-shard
// zero-allocation read path.
func (f *Forest) stream(query geom.Rect,
	prune func(*cover, geom.Rect) bool,
	op func(Engine, geom.Rect, func(core.Entry) bool) error,
	fn func(core.Entry) bool,
) error {
	if err := f.guard(); err != nil {
		return err
	}
	if err := f.validate(query); err != nil {
		return err
	}
	sc := f.scanPool.Get().(*scanCtx)
	sc.fn, sc.stopped = fn, false
	var err error
	for i := range f.shards {
		if !prune(&f.covers[i], query) {
			continue
		}
		if err = op(f.shards[i], query, sc.visit); err != nil || sc.stopped {
			break
		}
	}
	sc.fn = nil
	f.scanPool.Put(sc)
	f.note(err)
	return err
}

// SearchFunc streams every stored portion intersecting query; fn
// returning false stops early, across shards. Entry rectangles are views
// valid only during the callback.
func (f *Forest) SearchFunc(query geom.Rect, fn func(core.Entry) bool) error {
	return f.stream(query, intersectsCover, Engine.SearchFunc, fn)
}

// SearchContainingFunc streams the records that entirely contain query.
func (f *Forest) SearchContainingFunc(query geom.Rect, fn func(core.Entry) bool) error {
	return f.stream(query, containsCover, Engine.SearchContainingFunc, fn)
}

// Count returns the number of logical records intersecting query, summed
// over the shards whose covers overlap it.
func (f *Forest) Count(query geom.Rect) (int, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	if err := f.validate(query); err != nil {
		return 0, err
	}
	total := 0
	for i := range f.shards {
		if !f.covers[i].intersects(query) {
			continue
		}
		n, err := f.shards[i].Count(query)
		if err != nil {
			f.note(err)
			return 0, err
		}
		total += n
	}
	return total, nil
}

// VisitPortions walks every shard's stored portions in shard order; fn
// returning false stops the walk.
func (f *Forest) VisitPortions(fn func(level int, e core.Entry) bool) error {
	if err := f.guard(); err != nil {
		return err
	}
	sc := f.scanPool.Get().(*scanCtx)
	sc.levelFn, sc.stopped = fn, false
	var err error
	for _, s := range f.shards {
		if err = s.VisitPortions(sc.visitL); err != nil || sc.stopped {
			break
		}
	}
	sc.levelFn = nil
	f.scanPool.Put(sc)
	f.note(err)
	return err
}

// Len reports the number of logical records across all shards.
func (f *Forest) Len() int {
	n := 0
	for _, s := range f.shards {
		n += s.Len()
	}
	return n
}

// Height reports the tallest shard's height.
func (f *Forest) Height() int {
	h := 0
	for _, s := range f.shards {
		if sh := s.Height(); sh > h {
			h = sh
		}
	}
	return h
}

// NodeCount reports the total index nodes across all shards.
func (f *Forest) NodeCount() int {
	n := 0
	for _, s := range f.shards {
		n += s.NodeCount()
	}
	return n
}

// Stats returns activity counters summed across shards. Every field of
// core.Stats is a per-shard count (CutPortions, the only gauge, is a sum
// of disjoint per-shard gauges), so field-wise addition neither drops nor
// double-counts anything.
func (f *Forest) Stats() core.Stats {
	var out core.Stats
	for _, sh := range f.shards {
		s := sh.Stats()
		out.Searches += s.Searches
		out.SearchNodeAccesses += s.SearchNodeAccesses
		out.Inserts += s.Inserts
		out.InsertNodeAccesses += s.InsertNodeAccesses
		out.Deletes += s.Deletes
		out.LeafSplits += s.LeafSplits
		out.NonLeafSplits += s.NonLeafSplits
		out.Cuts += s.Cuts
		out.Remnants += s.Remnants
		out.SpanPlaced += s.SpanPlaced
		out.Promotions += s.Promotions
		out.Demotions += s.Demotions
		out.Relinks += s.Relinks
		out.Coalesces += s.Coalesces
		out.Reinserts += s.Reinserts
		out.CutPortions += s.CutPortions
	}
	return out
}

// PoolStats returns buffer pool counters summed across the shards'
// independent pools.
func (f *Forest) PoolStats() buffer.Stats {
	var out buffer.Stats
	for _, sh := range f.shards {
		s := sh.PoolStats()
		out.Gets += s.Gets
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Writes += s.Writes
	}
	return out
}

// ShardStats returns each shard's activity counters.
func (f *Forest) ShardStats() []core.Stats {
	out := make([]core.Stats, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Stats()
	}
	return out
}

// ShardPoolStats returns each shard's buffer pool counters.
func (f *Forest) ShardPoolStats() []buffer.Stats {
	out := make([]buffer.Stats, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.PoolStats()
	}
	return out
}

// AccelStats concatenates the shards' stab-accelerator counters in shard
// order (shards without an accelerator contribute nothing).
func (f *Forest) AccelStats() []accel.Stats {
	var out []accel.Stats
	for _, s := range f.shards {
		out = append(out, s.AccelStats()...)
	}
	return out
}

// ShardLens returns each shard's logical record count.
func (f *Forest) ShardLens() []int {
	out := make([]int, len(f.shards))
	for i, s := range f.shards {
		out[i] = s.Len()
	}
	return out
}

// Analyze merges the per-shard structural reports: counts sum, height is
// the maximum, and per-level quality metrics are node-weighted means.
func (f *Forest) Analyze() (*core.Report, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	out := &core.Report{}
	var weights []int // per-level node counts backing the weighted means
	for _, s := range f.shards {
		r, err := s.Analyze()
		if err != nil {
			f.note(err)
			return nil, err
		}
		if r.Height > out.Height {
			out.Height = r.Height
		}
		out.Nodes += r.Nodes
		out.LogicalRecords += r.LogicalRecords
		out.StoredPortions += r.StoredPortions
		out.SpanningRecords += r.SpanningRecords
		for _, lv := range r.Levels {
			for len(out.Levels) <= lv.Level {
				out.Levels = append(out.Levels, core.LevelReport{Level: len(out.Levels)})
				weights = append(weights, 0)
			}
			dst := &out.Levels[lv.Level]
			w0, w1 := weights[lv.Level], lv.Nodes
			if w0+w1 > 0 {
				dst.MeanAspect = (dst.MeanAspect*float64(w0) + lv.MeanAspect*float64(w1)) / float64(w0+w1)
				dst.Occupancy = (dst.Occupancy*float64(w0) + lv.Occupancy*float64(w1)) / float64(w0+w1)
			}
			weights[lv.Level] += lv.Nodes
			dst.Nodes += lv.Nodes
			dst.Branches += lv.Branches
			dst.Records += lv.Records
			dst.Area += lv.Area
			dst.Overlap += lv.Overlap
		}
	}
	return out, nil
}

// CheckInvariants validates every shard and the cross-shard invariants:
// no record ID stored in more than one shard, and every stored ID routed
// to the shard that holds it.
func (f *Forest) CheckInvariants() error {
	if err := f.guard(); err != nil {
		return err
	}
	for i, s := range f.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("forest: shard %d: %w", i, err)
		}
	}
	owner := make(map[node.RecordID]int)
	for i, s := range f.shards {
		var ferr error
		err := s.VisitPortions(func(_ int, e core.Entry) bool {
			if prev, ok := owner[e.ID]; ok && prev != i {
				ferr = fmt.Errorf("forest: record %d stored in shards %d and %d", e.ID, prev, i)
				return false
			}
			owner[e.ID] = i
			if got := f.ids.lookup(e.ID); got != i {
				ferr = fmt.Errorf("forest: record %d stored in shard %d but routed to %d", e.ID, i, got)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if ferr != nil {
			return ferr
		}
	}
	return nil
}

// Flush persists the forest at a new epoch: the manifest (when durable)
// commits epoch E first, then every shard is stamped with E and flushed —
// concurrently, each to its own store and WAL. A crash anywhere in this
// sequence leaves every durable shard at an epoch at most E, which reopen
// verifies. All shard flushes are attempted even after one fails; the
// joined error is returned and, when it carries store.ErrBroken, latched
// forest-wide.
func (f *Forest) Flush() error {
	if err := f.guard(); err != nil {
		return err
	}
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	if f.manifest != nil {
		e := f.epoch + 1
		if err := f.manifest.Commit(Manifest{Shards: len(f.shards), Epoch: e}); err != nil {
			err = fmt.Errorf("%w: %w", store.ErrBroken, err)
			f.note(err)
			return err
		}
		f.epoch = e
		for _, s := range f.shards {
			s.SetEpoch(e)
		}
	}
	errs := make([]error, len(f.shards))
	_ = fanout.Run(nil, f.parallelism(), len(f.shards), func(i int) error {
		errs[i] = f.shards[i].Flush()
		return nil // attempt every shard; errors are joined below
	})
	err := errors.Join(errs...)
	f.note(err)
	return err
}

// FlushShard persists one shard at the forest's current epoch, without a
// manifest bump — the group-commit primitive for writers pinned to
// distinct shards. Safe against crashes: the shard's durable epoch never
// exceeds the manifest's.
func (f *Forest) FlushShard(i int) error {
	if err := f.guard(); err != nil {
		return err
	}
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("forest: shard %d out of range [0, %d)", i, len(f.shards))
	}
	err := f.shards[i].Flush()
	f.note(err)
	return err
}

// Close flushes the forest and closes every shard store and the
// manifest. All errors are reported.
func (f *Forest) Close() error {
	err := f.Flush()
	for _, st := range f.stores {
		if st != nil {
			err = errors.Join(err, st.Close())
		}
	}
	if f.manifest != nil {
		err = errors.Join(err, f.manifest.Close())
	}
	return err
}
