package forest

import (
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

func randRect(rng *rand.Rand) geom.Rect {
	x, y := rng.Float64()*1000, rng.Float64()*1000
	w, h := rng.Float64()*50, rng.Float64()*50
	return geom.Rect2(x, y, x+w, y+h)
}

func TestRouteRectDeterministicAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		r := randRect(rng)
		for _, n := range []int{1, 2, 4, 8} {
			s := RouteRect(r, n)
			if s < 0 || s >= n {
				t.Fatalf("RouteRect(%v, %d) = %d out of range", r, n, s)
			}
			if s2 := RouteRect(r.Clone(), n); s2 != s {
				t.Fatalf("RouteRect not deterministic: %d vs %d", s, s2)
			}
		}
	}
	if RouteRect(randRect(rng), 1) != 0 {
		t.Fatal("single shard must route to 0")
	}
}

// TestRouteRectSpreads checks the center hash actually distributes:
// every shard receives a reasonable share of uniform random rectangles.
func TestRouteRectSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, shards = 8000, 8
	counts := make([]int, shards)
	for i := 0; i < n; i++ {
		counts[RouteRect(randRect(rng), shards)]++
	}
	for s, c := range counts {
		if c < n/shards/2 || c > n/shards*2 {
			t.Fatalf("shard %d got %d of %d (counts %v)", s, c, n, counts)
		}
	}
}

// TestRouteRectExtentIndependent verifies routing depends only on the
// center: widening a rectangle symmetrically keeps its shard.
func TestRouteRectExtentIndependent(t *testing.T) {
	r := geom.Rect2(10, 20, 30, 40)
	wide := geom.Rect2(5, 15, 35, 45) // same center (20, 30)
	if RouteRect(r, 8) != RouteRect(wide, 8) {
		t.Fatal("routing changed with extent despite identical center")
	}
}

func TestIDMapPinsFirstAssignment(t *testing.T) {
	var im idMap
	if got := im.lookup(7); got != -1 {
		t.Fatalf("lookup(unseen) = %d, want -1", got)
	}
	if got := im.assign(7, 3); got != 3 {
		t.Fatalf("assign = %d, want 3", got)
	}
	if got := im.assign(7, 5); got != 3 {
		t.Fatalf("re-assign moved the ID: %d, want 3", got)
	}
	if got := im.lookup(7); got != 3 {
		t.Fatalf("lookup = %d, want 3", got)
	}
	// record agrees with an existing binding, refuses a conflicting one.
	if !im.record(7, 3) {
		t.Fatal("record(7, 3) rejected the existing binding")
	}
	if im.record(7, 4) {
		t.Fatal("record(7, 4) accepted a conflicting binding")
	}
	// Stripes cover the whole ID space without panics.
	for id := node.RecordID(0); id < 10000; id += 97 {
		im.assign(id, int(uint64(id)%8))
	}
}

func TestCoverGrowAndPrune(t *testing.T) {
	var c cover
	if c.intersects(geom.Rect2(0, 0, 1, 1)) {
		t.Fatal("empty cover intersects")
	}
	if c.contains(geom.Rect2(0, 0, 1, 1)) {
		t.Fatal("empty cover contains")
	}
	c.grow(geom.Rect2(10, 10, 20, 20))
	c.grow(geom.Rect2(15, 5, 30, 18))
	// Cover is now [10,30]x[5,20].
	if !c.intersects(geom.Rect2(29, 19, 40, 40)) {
		t.Fatal("cover misses an overlapping query")
	}
	if c.intersects(geom.Rect2(31, 0, 40, 40)) {
		t.Fatal("cover intersects a disjoint query")
	}
	if !c.contains(geom.Rect2(12, 6, 28, 19)) {
		t.Fatal("cover fails to contain an inner query")
	}
	if c.contains(geom.Rect2(12, 4, 28, 19)) {
		t.Fatal("cover contains a protruding query")
	}
}
