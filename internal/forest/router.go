package forest

import (
	"math"
	"sync"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// RouteRect picks the home shard for a rectangle among n shards by
// hashing its center, word-wise FNV-1a over the raw float bits of
// Min[d]+Max[d] per dimension (the sum is twice the center; dividing
// first would only discard a mantissa bit). Center hashing keeps a
// record's placement independent of its extent, so re-inserting the same
// interval always lands on the same shard, and the high bits of the hash
// are used for the modulus because FNV-1a mixes them best.
func RouteRect(r geom.Rect, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for d := range r.Min {
		h ^= math.Float64bits(r.Min[d] + r.Max[d])
		h *= 1099511628211
	}
	return int((h >> 33) % uint64(n))
}

// idStripes stripes the record-ID → shard map. 64 stripes keeps writer
// contention negligible without a per-ID lock.
const idStripes = 64

type idStripe struct {
	mu sync.RWMutex
	m  map[node.RecordID]uint32
}

// idMap records which shard owns each live record ID. A record must live
// wholly inside one shard: Insert with a reused ID extends the existing
// logical record, so the forest must route the new portion to the shard
// already holding the ID regardless of where the new rectangle hashes.
// Mappings are never removed — Delete keeps the entry so a later re-insert
// of the ID stays on its historical shard, which costs a few words per
// ever-seen ID and buys stable routing without a liveness census.
type idMap struct {
	stripes [idStripes]idStripe
}

func (im *idMap) stripe(id node.RecordID) *idStripe {
	return &im.stripes[uint64(id)*0x9E3779B97F4A7C15>>58%idStripes]
}

// lookup returns the shard owning id, or -1 if the forest has never seen
// it.
func (im *idMap) lookup(id node.RecordID) int {
	s := im.stripe(id)
	s.mu.RLock()
	got, ok := s.m[id]
	s.mu.RUnlock()
	if !ok {
		return -1
	}
	return int(got)
}

// assign binds id to the shard want unless it already has an owner, and
// returns the binding shard either way.
func (im *idMap) assign(id node.RecordID, want int) int {
	s := im.stripe(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, ok := s.m[id]; ok {
		return int(got)
	}
	if s.m == nil {
		s.m = make(map[node.RecordID]uint32)
	}
	s.m[id] = uint32(want)
	return want
}

// record re-binds id to shard during rebuild from durable shards; it
// reports false when id was already bound to a different shard (a record
// split across shards — corruption).
func (im *idMap) record(id node.RecordID, shard int) bool {
	s := im.stripe(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, ok := s.m[id]; ok {
		return int(got) == shard
	}
	if s.m == nil {
		s.m = make(map[node.RecordID]uint32)
	}
	s.m[id] = uint32(shard)
	return true
}

// cover tracks the grow-only bounding rectangle of everything ever
// inserted into one shard, letting queries skip shards that cannot hold a
// match. It never shrinks on Delete — a stale-large cover is sound (at
// worst an extra shard is scanned), while shrinking would need a census.
type cover struct {
	mu  sync.RWMutex
	set bool
	r   geom.Rect
}

// grow expands the cover to include r. Coordinates are updated in place,
// so after the first call growing allocates nothing.
func (c *cover) grow(r geom.Rect) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.set {
		c.r = r.Clone()
		c.set = true
		return
	}
	for d := range r.Min {
		if r.Min[d] < c.r.Min[d] {
			c.r.Min[d] = r.Min[d]
		}
		if r.Max[d] > c.r.Max[d] {
			c.r.Max[d] = r.Max[d]
		}
	}
}

// intersects reports whether the cover overlaps q. An empty cover
// intersects nothing.
func (c *cover) intersects(q geom.Rect) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.set && c.r.Intersects(q)
}

// contains reports whether the cover fully contains q — the sound prune
// test for SearchContaining/Stab, where a match must contain the probe.
func (c *cover) contains(q geom.Rect) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.set && c.r.Contains(q)
}

// snapshot returns a point-in-time copy of the cover for a pinned view
// (false when nothing was ever inserted).
func (c *cover) snapshot() (geom.Rect, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.set {
		return geom.Rect{}, false
	}
	return c.r.Clone(), true
}
