package node

import (
	"math/rand"
	"strings"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/page"
)

func TestCapacities(t *testing.T) {
	c := Codec{Dims: 2}
	// With K=2: rect 32 bytes, branch 40, record 48, header 16.
	if got := c.RectBytes(); got != 32 {
		t.Errorf("RectBytes = %d, want 32", got)
	}
	if got := c.BranchBytes(); got != 40 {
		t.Errorf("BranchBytes = %d, want 40", got)
	}
	if got := c.RecordBytes(); got != 48 {
		t.Errorf("RecordBytes = %d, want 48", got)
	}
	if got := c.HeaderBytes(); got != 56 {
		t.Errorf("HeaderBytes = %d, want 56", got)
	}
	if got := c.LeafCapacity(1024); got != 20 {
		t.Errorf("LeafCapacity(1024) = %d, want 20", got)
	}
	if got := c.BranchCapacity(2048, 1.0); got != 49 {
		t.Errorf("BranchCapacity(2048, 1) = %d, want 49", got)
	}
	// Paper: 2/3 of entries reserved for branches.
	if got := c.BranchCapacity(2048, 2.0/3.0); got != 33 {
		t.Errorf("BranchCapacity(2048, 2/3) = %d, want 33", got)
	}
	if got := c.SpanningCapacity(2048, 2.0/3.0); got != 13 {
		t.Errorf("SpanningCapacity(2048, 2/3) = %d, want 13", got)
	}
	if got := c.SpanningCapacity(2048, 1.0); got != 0 {
		t.Errorf("SpanningCapacity(2048, 1) = %d, want 0", got)
	}
}

func randNode(rng *rand.Rand, level, nb, nr int) *Node {
	n := &Node{ID: page.ID(rng.Uint64()%1e6 + 1), Level: level}
	for i := 0; i < nb; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		n.Branches = append(n.Branches, Branch{
			Rect:  geom.Rect2(x, y, x+rng.Float64()*100, y+rng.Float64()*100),
			Child: page.ID(rng.Uint64()%1e6 + 1),
		})
	}
	for i := 0; i < nr; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		span := page.Nil
		if level > 0 && nb > 0 {
			span = n.Branches[rng.Intn(nb)].Child
		}
		n.Records = append(n.Records, Record{
			Rect: geom.Rect2(x, y, x+rng.Float64()*100, y),
			ID:   RecordID(rng.Uint64()),
			Span: span,
		})
	}
	return n
}

func nodesEqual(a, b *Node) bool {
	if a.ID != b.ID || a.Level != b.Level ||
		len(a.Branches) != len(b.Branches) || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Branches {
		if a.Branches[i].Child != b.Branches[i].Child || !a.Branches[i].Rect.Equal(b.Branches[i].Rect) {
			return false
		}
	}
	for i := range a.Records {
		if a.Records[i].ID != b.Records[i].ID || a.Records[i].Span != b.Records[i].Span ||
			!a.Records[i].Rect.Equal(b.Records[i].Rect) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	c := Codec{Dims: 2}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		level := rng.Intn(3)
		nb, nr := 0, 0
		if level == 0 {
			nr = rng.Intn(20)
		} else {
			nb = rng.Intn(20) + 1
			nr = rng.Intn(10)
		}
		n := randNode(rng, level, nb, nr)
		pageBytes := c.UsedBytes(n) + rng.Intn(200)
		buf, err := c.Marshal(n, pageBytes)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		if len(buf) != pageBytes {
			t.Fatalf("Marshal returned %d bytes, want %d", len(buf), pageBytes)
		}
		got, err := c.Unmarshal(buf, n.ID)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if !nodesEqual(n, got) {
			t.Fatalf("round trip diverged:\n n=%+v\ngot=%+v", n, got)
		}
	}
}

func TestCodecRejectsOversizedNode(t *testing.T) {
	c := Codec{Dims: 2}
	n := randNode(rand.New(rand.NewSource(1)), 0, 0, 30)
	if _, err := c.Marshal(n, 256); err == nil {
		t.Fatal("Marshal accepted node larger than page")
	}
}

func TestCodecRejectsCorruptPages(t *testing.T) {
	c := Codec{Dims: 2}
	n := randNode(rand.New(rand.NewSource(2)), 1, 3, 2)
	buf, err := c.Marshal(n, 1024)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong expected ID.
	if _, err := c.Unmarshal(buf, n.ID+1); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("ID mismatch not caught: %v", err)
	}
	// Bad magic.
	bad := append([]byte(nil), buf...)
	bad[0] = 0xFF
	if _, err := c.Unmarshal(bad, n.ID); err == nil {
		t.Error("bad magic not caught")
	}
	// Entry counts exceeding page.
	bad = append([]byte(nil), buf...)
	bad[4], bad[5] = 0xFF, 0xFF
	if _, err := c.Unmarshal(bad, n.ID); err == nil {
		t.Error("oversized entry count not caught")
	}
	// Truncated page.
	if _, err := c.Unmarshal(buf[:8], n.ID); err == nil {
		t.Error("truncated page not caught")
	}
	// Corrupt rect (NaN / inverted) caught.
	bad = append([]byte(nil), buf...)
	for i := c.HeaderBytes(); i < c.HeaderBytes()+8; i++ {
		bad[i] = 0xFF // NaN pattern in first branch rect Min[0]
	}
	if _, err := c.Unmarshal(bad, n.ID); err == nil {
		t.Error("corrupt rect not caught")
	}
}

func TestCodecRegionRoundTrip(t *testing.T) {
	c := Codec{Dims: 2}
	n := &Node{ID: 5, Level: 0, Region: geom.Rect2(10, 20, 30, 40)}
	n.Records = append(n.Records, Record{Rect: geom.Rect2(12, 22, 14, 24), ID: 1})
	buf, err := c.Marshal(n, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Unmarshal(buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasRegion() || !got.Region.Equal(n.Region) {
		t.Fatalf("region lost: %v", got.Region)
	}

	// A node without a region decodes to the empty marker.
	n2 := &Node{ID: 6, Level: 0}
	buf2, err := c.Marshal(n2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c.Unmarshal(buf2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got2.HasRegion() {
		t.Fatal("phantom region decoded")
	}
}

func TestCoverIncludesRegion(t *testing.T) {
	n := &Node{ID: 1, Level: 0, Region: geom.Rect2(0, 0, 100, 100)}
	n.Records = append(n.Records, Record{Rect: geom.Rect2(40, 40, 160, 60), ID: 1})
	cover := n.Cover(2)
	want := geom.Rect2(0, 0, 160, 100)
	if !cover.Equal(want) {
		t.Fatalf("Cover = %v, want %v", cover, want)
	}
	// Empty skeleton node still covers its region.
	empty := &Node{ID: 2, Level: 0, Region: geom.Rect2(5, 5, 10, 10)}
	if !empty.Cover(2).Equal(geom.Rect2(5, 5, 10, 10)) {
		t.Fatalf("empty skeleton Cover = %v", empty.Cover(2))
	}
}

func TestMBRIncludesSpanningRecords(t *testing.T) {
	n := &Node{ID: 1, Level: 1}
	n.Branches = append(n.Branches, Branch{Rect: geom.Rect2(10, 10, 20, 20), Child: 2})
	// Spanning record linked to child 2, sticking out beyond the branch.
	n.Records = append(n.Records, Record{Rect: geom.Rect2(5, 15, 25, 15), ID: 9, Span: 2})
	mbr := n.MBR(2)
	want := geom.Rect2(5, 10, 25, 20)
	if !mbr.Equal(want) {
		t.Fatalf("MBR = %v, want %v", mbr, want)
	}
}

func TestBranchIndexAndSpanningFor(t *testing.T) {
	n := &Node{ID: 1, Level: 1}
	n.Branches = []Branch{{Child: 10}, {Child: 20}}
	n.Records = []Record{
		{ID: 1, Span: 10},
		{ID: 2, Span: 20},
		{ID: 3, Span: 10},
	}
	if got := n.BranchIndex(20); got != 1 {
		t.Errorf("BranchIndex(20) = %d, want 1", got)
	}
	if got := n.BranchIndex(99); got != -1 {
		t.Errorf("BranchIndex(99) = %d, want -1", got)
	}
	got := n.SpanningFor(10)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("SpanningFor(10) = %v, want [0 2]", got)
	}
}

func TestRemoveEntries(t *testing.T) {
	n := &Node{ID: 1, Level: 1}
	n.Branches = []Branch{{Child: 1}, {Child: 2}, {Child: 3}}
	n.RemoveBranch(1)
	if len(n.Branches) != 2 || n.Branches[1].Child != 3 {
		t.Errorf("RemoveBranch: %+v", n.Branches)
	}
	n.Records = []Record{{ID: 1}, {ID: 2}, {ID: 3}}
	n.RemoveRecord(0)
	if len(n.Records) != 2 || n.Records[0].ID != 2 {
		t.Errorf("RemoveRecord: %+v", n.Records)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := randNode(rand.New(rand.NewSource(3)), 1, 2, 2)
	c := n.Clone()
	c.Branches[0].Rect.Min[0] = -999
	c.Records[0].ID = 12345
	if n.Branches[0].Rect.Min[0] == -999 {
		t.Error("Clone shares branch rect storage")
	}
	if n.Records[0].ID == 12345 {
		t.Error("Clone shares record storage")
	}
}
