package node

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"segidx/internal/geom"
)

var updateGolden = flag.Bool("update", false, "rewrite golden page images in testdata/")

// goldenPageBytes is the page size all golden images are encoded at; small
// enough to eyeball in a hex dump, large enough for every golden node.
const goldenPageBytes = 512

// goldenNodes enumerates representative page shapes. These double as a
// frozen seed corpus: the .bin files pin the on-page layout (magic, header
// fields, little-endian rect encoding), so any codec change that silently
// breaks compatibility with existing stores fails this test.
func goldenNodes() []struct {
	name string
	node *Node
} {
	return []struct {
		name string
		node *Node
	}{
		{
			name: "empty_leaf",
			node: &Node{ID: 1, Level: 0, Region: geom.EmptyRect(2)},
		},
		{
			name: "leaf_records",
			node: &Node{
				ID: 7, Level: 0, Region: geom.EmptyRect(2),
				Records: []Record{
					{Rect: geom.Rect2(1, 2, 3, 4), ID: 100},
					{Rect: geom.Rect2(0, 0, 0, 0), ID: 101},           // degenerate point
					{Rect: geom.Rect2(-50.5, -1, 999.25, 1), ID: 102}, // negative + fractional
				},
			},
		},
		{
			name: "skeleton_leaf_region",
			node: &Node{
				ID: 9, Level: 0, Region: geom.Rect2(0, 0, 250, 125),
				Records: []Record{
					{Rect: geom.Rect2(10, 10, 20, 20), ID: 5},
				},
			},
		},
		{
			name: "interior_branches",
			node: &Node{
				ID: 12, Level: 2, Region: geom.EmptyRect(2),
				Branches: []Branch{
					{Rect: geom.Rect2(0, 0, 100, 100), Child: 3},
					{Rect: geom.Rect2(100, 0, 200, 100), Child: 4},
					{Rect: geom.Rect2(0, 100, 200, 200), Child: 5},
				},
			},
		},
		{
			name: "interior_spanning",
			node: &Node{
				ID: 21, Level: 1, Region: geom.Rect2(0, 0, 400, 400),
				Branches: []Branch{
					{Rect: geom.Rect2(0, 0, 200, 400), Child: 30},
					{Rect: geom.Rect2(200, 0, 400, 400), Child: 31},
				},
				Records: []Record{
					{Rect: geom.Rect2(0, 150, 210, 160), ID: 77, Span: 30},
					{Rect: geom.Rect2(190, 10, 400, 15), ID: 78, Span: 31},
				},
			},
		},
	}
}

// TestGoldenPages marshals each golden node and compares the page image
// byte-for-byte against testdata/<name>.bin, then decodes the stored image
// and compares the structure. Run with -update to regenerate after a
// deliberate format change (and note it in DESIGN.md: stores written by
// older builds become unreadable).
func TestGoldenPages(t *testing.T) {
	c := Codec{Dims: 2}
	for _, g := range goldenNodes() {
		t.Run(g.name, func(t *testing.T) {
			got, err := c.Marshal(g.node, goldenPageBytes)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			path := filepath.Join("testdata", g.name+".bin")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden image (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("page image for %s deviates from golden file %s:\n%s",
					g.name, path, diffOffsets(got, want))
			}

			decoded, err := c.Unmarshal(want, g.node.ID)
			if err != nil {
				t.Fatalf("Unmarshal golden image: %v", err)
			}
			if decoded.ID != g.node.ID || decoded.Level != g.node.Level {
				t.Fatalf("decoded header %v@%d, want %v@%d", decoded.ID, decoded.Level, g.node.ID, g.node.Level)
			}
			if decoded.HasRegion() != g.node.HasRegion() {
				t.Fatalf("decoded region presence %v, want %v", decoded.HasRegion(), g.node.HasRegion())
			}
			if g.node.HasRegion() && !decoded.Region.Equal(g.node.Region) {
				t.Fatalf("decoded region %v, want %v", decoded.Region, g.node.Region)
			}
			if !reflect.DeepEqual(normalize(decoded.Branches), normalize(g.node.Branches)) {
				t.Fatalf("decoded branches %+v, want %+v", decoded.Branches, g.node.Branches)
			}
			if !reflect.DeepEqual(normalizeRecords(decoded.Records), normalizeRecords(g.node.Records)) {
				t.Fatalf("decoded records %+v, want %+v", decoded.Records, g.node.Records)
			}
		})
	}
}

// normalize maps nil and empty slices to a canonical form for DeepEqual.
func normalize(b []Branch) []Branch {
	if len(b) == 0 {
		return nil
	}
	return b
}

func normalizeRecords(r []Record) []Record {
	if len(r) == 0 {
		return nil
	}
	return r
}

// diffOffsets summarizes where two page images deviate.
func diffOffsets(got, want []byte) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d, golden %d", len(got), len(want))
	}
	var b bytes.Buffer
	shown := 0
	for i := range got {
		if got[i] != want[i] {
			fmt.Fprintf(&b, "  offset %#04x: got %#02x, golden %#02x\n", i, got[i], want[i])
			if shown++; shown == 8 {
				fmt.Fprintf(&b, "  ... further deviations suppressed\n")
				break
			}
		}
	}
	return b.String()
}
