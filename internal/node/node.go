// Package node defines the in-memory and on-page representation of segment
// index nodes.
//
// A node is either a leaf (level 0) holding data records, or a non-leaf node
// holding branches to child nodes. Under the paper's first tactic (Section
// 2.1.1), non-leaf nodes additionally hold spanning index records: data
// records that span the region of at least one child branch, each linked to
// the branch it spans.
//
// Fanout is not configured directly; it derives from the node's page size
// and the byte size of each entry under the binary codec in this package,
// exactly as in a disk-resident index.
package node

import (
	"segidx/internal/geom"
	"segidx/internal/page"
)

// RecordID identifies a logical data record. When a record is cut into
// spanning and remnant portions (Section 3.1.1), every portion carries the
// same RecordID, which is how deletion and result deduplication find all
// pieces of one logical record.
type RecordID uint64

// Branch is a non-leaf entry: the minimal bounding rectangle of a child
// node together with its page ID.
type Branch struct {
	Rect  geom.Rect
	Child page.ID
}

// Record is a data entry. In a leaf it is a stored data item (Span ==
// page.Nil). In a non-leaf node it is a spanning index record and Span holds
// the page ID of the child branch whose region it spans — the paper's "list
// of spanning index records" associated with each branch, kept here as a
// tag so the linkage survives branch reordering during splits.
type Record struct {
	Rect geom.Rect
	ID   RecordID
	Span page.ID
}

// IsSpanning reports whether the record is stored as a spanning index
// record (linked to a branch) rather than a leaf data record.
func (r Record) IsSpanning() bool { return r.Span != page.Nil }

// Node is the in-memory image of one index page.
type Node struct {
	ID    page.ID
	Level int // 0 = leaf

	// Region is the pre-allocated partition region of a skeleton index
	// node (Section 4). Skeleton nodes keep covering their partition even
	// while empty, which is what gives the skeleton its regular
	// decomposition. For non-skeleton nodes Region is the EmptyRect
	// marker and the node covers exactly its content MBR.
	Region geom.Rect

	// Branches are the child pointers of a non-leaf node. Empty for
	// leaves.
	Branches []Branch

	// Records holds data records (leaf) or spanning index records
	// (non-leaf, each tagged with the child branch it spans).
	Records []Record
}

// HasRegion reports whether the node carries a skeleton partition region.
func (n *Node) HasRegion() bool {
	return n.Region.Dims() > 0 && !n.Region.IsEmptyMarker()
}

// Cover computes the rectangle the parent's branch entry must carry: the
// content MBR unioned with the skeleton partition region, if any.
func (n *Node) Cover(dims int) geom.Rect {
	mbr := n.MBR(dims)
	if n.HasRegion() {
		mbr.ExpandInPlace(n.Region)
	}
	return mbr
}

// IsLeaf reports whether the node is at level 0.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR computes the minimal bounding rectangle of everything stored in or
// under the node: the union of all branch rectangles and all record
// rectangles. This is the rectangle the parent's branch entry must carry.
// Spanning records are included because a spanning record may extend beyond
// the branch it spans (it is only guaranteed to be inside the node's own
// region).
func (n *Node) MBR(dims int) geom.Rect {
	mbr := geom.EmptyRect(dims)
	for i := range n.Branches {
		mbr.ExpandInPlace(n.Branches[i].Rect)
	}
	for i := range n.Records {
		mbr.ExpandInPlace(n.Records[i].Rect)
	}
	return mbr
}

// BranchIndex returns the position of the branch pointing to child, or -1.
func (n *Node) BranchIndex(child page.ID) int {
	for i := range n.Branches {
		if n.Branches[i].Child == child {
			return i
		}
	}
	return -1
}

// SpanningFor returns the indexes of records linked to the given child
// branch.
func (n *Node) SpanningFor(child page.ID) []int {
	var out []int
	for i := range n.Records {
		if n.Records[i].Span == child {
			out = append(out, i)
		}
	}
	return out
}

// RemoveRecord deletes the record at index i, preserving order of the rest.
func (n *Node) RemoveRecord(i int) {
	n.Records = append(n.Records[:i], n.Records[i+1:]...)
}

// RemoveBranch deletes the branch at index i, preserving order of the rest.
func (n *Node) RemoveBranch(i int) {
	n.Branches = append(n.Branches[:i], n.Branches[i+1:]...)
}

// Clone returns a deep copy of the node (used by the buffer pool tests and
// the invariant checker snapshots).
func (n *Node) Clone() *Node {
	c := &Node{ID: n.ID, Level: n.Level}
	if n.Region.Dims() > 0 {
		c.Region = n.Region.Clone()
	}
	c.Branches = make([]Branch, len(n.Branches))
	for i, b := range n.Branches {
		c.Branches[i] = Branch{Rect: b.Rect.Clone(), Child: b.Child}
	}
	c.Records = make([]Record, len(n.Records))
	for i, r := range n.Records {
		c.Records[i] = Record{Rect: r.Rect.Clone(), ID: r.ID, Span: r.Span}
	}
	return c
}

// CloneCompact returns a deep copy of n whose rectangles all view one flat
// float backing array. It is the copy-on-write primitive of the buffer
// pool's page versioning: a writer clones the published node and mutates
// the clone, so the per-clone cost is a handful of allocations rather than
// two slices per rectangle as with Clone. The views are capped so an
// append through any rect cannot spill into its neighbor's storage.
func (n *Node) CloneCompact() *Node {
	c := &Node{ID: n.ID, Level: n.Level}
	k := 0
	if len(n.Branches) > 0 {
		k = n.Branches[0].Rect.Dims()
	} else if len(n.Records) > 0 {
		k = n.Records[0].Rect.Dims()
	} else if n.Region.Dims() > 0 {
		k = n.Region.Dims()
	}
	need := 2 * k * (len(n.Branches) + len(n.Records))
	if n.Region.Dims() > 0 {
		need += 2 * n.Region.Dims()
	}
	if need == 0 {
		return c
	}
	flat := make([]float64, need)
	off := 0
	if n.Region.Dims() > 0 {
		c.Region = n.Region.CopyInto(flat, off)
		off += 2 * n.Region.Dims()
	}
	if len(n.Branches) > 0 {
		c.Branches = make([]Branch, len(n.Branches))
		for i, b := range n.Branches {
			c.Branches[i] = Branch{Rect: b.Rect.CopyInto(flat, off), Child: b.Child}
			off += 2 * k
		}
	}
	if len(n.Records) > 0 {
		c.Records = make([]Record, len(n.Records))
		for i, r := range n.Records {
			c.Records[i] = Record{Rect: r.Rect.CopyInto(flat, off), ID: r.ID, Span: r.Span}
			off += 2 * k
		}
	}
	return c
}
