package node

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/page"
)

// fuzzByteReader doles out bytes from the fuzz input, returning zeros once
// exhausted, so every input decodes to some deterministic node shape.
type fuzzByteReader struct {
	data []byte
	pos  int
}

func (r *fuzzByteReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzByteReader) uint16() uint16 {
	return uint16(r.byte()) | uint16(r.byte())<<8
}

// coord maps two input bytes onto a finite coordinate in [0, 6553.5].
func (r *fuzzByteReader) coord() float64 {
	return float64(r.uint16()) / 10
}

func (r *fuzzByteReader) rect(dims int) geom.Rect {
	rect := geom.Rect{Min: make([]float64, dims), Max: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		a, b := r.coord(), r.coord()
		if a > b {
			a, b = b, a
		}
		rect.Min[d], rect.Max[d] = a, b
	}
	return rect
}

// buildFuzzNode derives a structurally valid node from the byte stream:
// bounded entry counts, ordered finite rectangles, and a region only when
// the flag byte says so.
func buildFuzzNode(r *fuzzByteReader, dims int) *Node {
	n := &Node{
		ID:    page.ID(r.uint16()),
		Level: int(r.byte() % 4),
	}
	if r.byte()%2 == 1 {
		n.Region = r.rect(dims)
	} else {
		n.Region = geom.EmptyRect(dims)
	}
	nb := int(r.byte() % 8)
	if n.Level == 0 {
		nb = 0 // leaves carry no branches
	}
	nr := int(r.byte() % 8)
	for i := 0; i < nb; i++ {
		n.Branches = append(n.Branches, Branch{
			Rect:  r.rect(dims),
			Child: page.ID(r.uint16()),
		})
	}
	for i := 0; i < nr; i++ {
		rec := Record{Rect: r.rect(dims), ID: RecordID(r.uint16())}
		if n.Level > 0 {
			rec.Span = page.ID(r.uint16())
		}
		n.Records = append(n.Records, rec)
	}
	return n
}

// FuzzNodeCodec exercises the page codec from both directions. Arbitrary
// bytes must never panic Unmarshal (corrupt pages surface as errors), and a
// structured node derived from the same bytes must round-trip through
// Marshal/Unmarshal with identical fields and a byte-identical re-encoding.
func FuzzNodeCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x49, 0x53})                   // magic only
	f.Add(bytes.Repeat([]byte{0xff}, 128))      // saturated counts
	f.Add(bytes.Repeat([]byte{0x00}, 128))      // zeroed page
	f.Add([]byte{7, 0, 2, 1, 1, 9, 3, 4, 5, 6}) // small structured seed
	// A genuine encoded page as a seed: one leaf record.
	{
		c := Codec{Dims: 2}
		n := &Node{ID: 3, Level: 0, Region: geom.EmptyRect(2)}
		n.Records = append(n.Records, Record{Rect: geom.Rect2(1, 2, 3, 4), ID: 7})
		if buf, err := c.Marshal(n, 256); err == nil {
			f.Add(buf)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c := Codec{Dims: 2}

		// Direction 1: hostile bytes. Unmarshal must return a node or an
		// error, never panic, for any claimed page ID.
		var want page.ID = 1
		if len(data) >= 16 {
			want = page.ID(binary.LittleEndian.Uint64(data[8:16]))
		}
		if n, err := c.Unmarshal(data, want); err == nil {
			// Whatever decodes must re-encode: the decoder's validation
			// (valid rects, counts within the buffer) is exactly what
			// Marshal needs.
			if _, err := c.Marshal(n, len(data)); err != nil {
				t.Fatalf("decoded node does not re-encode into its own page size: %v", err)
			}
		}
		if _, err := c.Unmarshal(data, 0); err == nil && want != 0 && len(data) >= 16 {
			t.Fatal("page claiming a nonzero ID also decoded as page 0")
		}

		// Direction 2: structured round-trip.
		r := &fuzzByteReader{data: data}
		n := buildFuzzNode(r, c.Dims)
		pageBytes := c.UsedBytes(n) + int(r.byte()%64)
		buf, err := c.Marshal(n, pageBytes)
		if err != nil {
			t.Fatalf("Marshal of structurally valid node failed: %v", err)
		}
		if len(buf) != pageBytes {
			t.Fatalf("Marshal returned %d bytes, want %d", len(buf), pageBytes)
		}
		got, err := c.Unmarshal(buf, n.ID)
		if err != nil {
			t.Fatalf("Unmarshal of freshly marshalled node failed: %v", err)
		}
		if got.ID != n.ID || got.Level != n.Level {
			t.Fatalf("round-trip header mismatch: got %v@%d, want %v@%d", got.ID, got.Level, n.ID, n.Level)
		}
		if got.HasRegion() != n.HasRegion() {
			t.Fatalf("round-trip region flag mismatch: got %v, want %v", got.HasRegion(), n.HasRegion())
		}
		if n.HasRegion() && !got.Region.Equal(n.Region) {
			t.Fatalf("round-trip region %v, want %v", got.Region, n.Region)
		}
		if len(got.Branches) != len(n.Branches) || len(got.Records) != len(n.Records) {
			t.Fatalf("round-trip entry counts %d/%d, want %d/%d",
				len(got.Branches), len(got.Records), len(n.Branches), len(n.Records))
		}
		for i := range n.Branches {
			if !reflect.DeepEqual(got.Branches[i], n.Branches[i]) {
				t.Fatalf("branch %d round-trip %+v, want %+v", i, got.Branches[i], n.Branches[i])
			}
		}
		for i := range n.Records {
			if !reflect.DeepEqual(got.Records[i], n.Records[i]) {
				t.Fatalf("record %d round-trip %+v, want %+v", i, got.Records[i], n.Records[i])
			}
		}

		// The decoded node must re-encode byte-identically: the layout has
		// a single canonical form (padding is zeroed).
		again, err := c.Marshal(got, pageBytes)
		if err != nil {
			t.Fatalf("re-Marshal failed: %v", err)
		}
		if !bytes.Equal(buf, again) {
			t.Fatal("re-encoding a decoded node changed the page image")
		}
	})
}
