package node

import (
	"encoding/binary"
	"fmt"
	"math"

	"segidx/internal/geom"
	"segidx/internal/page"
)

// On-page layout (little endian):
//
//	fixed header (24 bytes):
//	  0  u16  magic 0x5349 ("SI")
//	  2  u16  level
//	  4  u16  branch count
//	  6  u16  record count
//	  8  u64  node page ID (self check)
//	 16  u16  flags (bit 0: node has a skeleton partition region)
//	 18  6 reserved bytes
//	then the partition region rect (2*K*8 bytes; zeroed when absent),
//	then branch entries, then record entries.
//
//	branch entry:  rect (2*K*8 bytes) + u64 child page ID
//	record entry:  rect (2*K*8 bytes) + u64 record ID + u64 span page ID
//
// These sizes determine node fanout for a given page size; with K=2 and the
// paper's 1 KiB leaves a leaf holds 20 records.
const (
	codecMagic    = 0x5349
	fixedHeader   = 24
	flagHasRegion = 1 << 0
)

// Codec marshals nodes of a fixed dimensionality.
type Codec struct {
	Dims int
}

// HeaderBytes is the per-page overhead: the fixed header plus the region
// rectangle.
func (c Codec) HeaderBytes() int { return fixedHeader + c.RectBytes() }

// RectBytes is the encoded size of one rectangle.
func (c Codec) RectBytes() int { return 2 * c.Dims * 8 }

// BranchBytes is the encoded size of one branch entry.
func (c Codec) BranchBytes() int { return c.RectBytes() + 8 }

// RecordBytes is the encoded size of one record entry (leaf data record or
// spanning index record).
func (c Codec) RecordBytes() int { return c.RectBytes() + 16 }

// PayloadBytes is the space available for entries on a page of the given
// size.
func (c Codec) PayloadBytes(pageBytes int) int { return pageBytes - c.HeaderBytes() }

// LeafCapacity is the number of data records a leaf page of the given size
// can hold.
func (c Codec) LeafCapacity(pageBytes int) int {
	return c.PayloadBytes(pageBytes) / c.RecordBytes()
}

// BranchCapacity is the number of branches a non-leaf page can hold when
// reserve (a fraction in (0, 1]) of the payload is reserved for branches.
// With reserve == 1 the whole payload is available (the plain R-Tree case).
func (c Codec) BranchCapacity(pageBytes int, reserve float64) int {
	return int(float64(c.PayloadBytes(pageBytes)) * reserve / float64(c.BranchBytes()))
}

// SpanningCapacity is the number of spanning index records a non-leaf page
// can hold alongside its reserved branch space.
func (c Codec) SpanningCapacity(pageBytes int, reserve float64) int {
	return int(float64(c.PayloadBytes(pageBytes)) * (1 - reserve) / float64(c.RecordBytes()))
}

// UsedBytes is the current encoded size of the node's entries.
func (c Codec) UsedBytes(n *Node) int {
	return c.HeaderBytes() + len(n.Branches)*c.BranchBytes() + len(n.Records)*c.RecordBytes()
}

// Marshal encodes the node into a buffer of exactly pageBytes.
func (c Codec) Marshal(n *Node, pageBytes int) ([]byte, error) {
	if need := c.UsedBytes(n); need > pageBytes {
		return nil, fmt.Errorf("node: %v needs %d bytes, page is %d", n.ID, need, pageBytes)
	}
	if len(n.Branches) > math.MaxUint16 || len(n.Records) > math.MaxUint16 {
		return nil, fmt.Errorf("node: %v entry count overflows encoding", n.ID)
	}
	buf := make([]byte, pageBytes)
	binary.LittleEndian.PutUint16(buf[0:2], codecMagic)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(n.Level))
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(n.Branches)))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(n.Records)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(n.ID))
	off := fixedHeader
	if n.HasRegion() {
		binary.LittleEndian.PutUint16(buf[16:18], flagHasRegion)
		off = c.putRect(buf, off, n.Region)
	} else {
		off += c.RectBytes()
	}
	for i := range n.Branches {
		off = c.putRect(buf, off, n.Branches[i].Rect)
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(n.Branches[i].Child))
		off += 8
	}
	for i := range n.Records {
		off = c.putRect(buf, off, n.Records[i].Rect)
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(n.Records[i].ID))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(n.Records[i].Span))
		off += 8
	}
	return buf, nil
}

// Unmarshal decodes a page image into a node. The expected ID guards
// against page-table corruption.
func (c Codec) Unmarshal(buf []byte, want page.ID) (*Node, error) {
	if len(buf) < c.HeaderBytes() {
		return nil, fmt.Errorf("node: page %v too small (%d bytes)", want, len(buf))
	}
	if magic := binary.LittleEndian.Uint16(buf[0:2]); magic != codecMagic {
		return nil, fmt.Errorf("node: page %v bad magic %#x", want, magic)
	}
	n := &Node{
		ID:    page.ID(binary.LittleEndian.Uint64(buf[8:16])),
		Level: int(binary.LittleEndian.Uint16(buf[2:4])),
	}
	if n.ID != want {
		return nil, fmt.Errorf("node: page says it is %v, expected %v", n.ID, want)
	}
	nb := int(binary.LittleEndian.Uint16(buf[4:6]))
	nr := int(binary.LittleEndian.Uint16(buf[6:8]))
	need := c.HeaderBytes() + nb*c.BranchBytes() + nr*c.RecordBytes()
	if need > len(buf) {
		return nil, fmt.Errorf("node: page %v declares %d+%d entries exceeding page size", want, nb, nr)
	}
	flags := binary.LittleEndian.Uint16(buf[16:18])
	off := fixedHeader
	// One flat backing array holds every rectangle on the page — the
	// region plus all branch and record rects — so decoding costs O(1)
	// allocations rather than O(entries). The decoded rects are views
	// into it; mutators replace whole Rect headers (they never write the
	// decoded float storage), so the views stay stable for the node's
	// lifetime. See DESIGN.md "Memory layout and rect lifetimes".
	flat := make([]float64, (1+nb+nr)*2*c.Dims)
	fo := 0
	if flags&flagHasRegion != 0 {
		var region geom.Rect
		region, off, fo = c.getRectFlat(buf, off, flat, fo)
		if !region.Valid() {
			return nil, fmt.Errorf("node: page %v has corrupt region rect", want)
		}
		n.Region = region
	} else {
		n.Region, fo = emptyRectFlat(c.Dims, flat, fo)
		off += c.RectBytes()
	}
	n.Branches = make([]Branch, nb)
	for i := 0; i < nb; i++ {
		var r geom.Rect
		r, off, fo = c.getRectFlat(buf, off, flat, fo)
		if !r.Valid() {
			return nil, fmt.Errorf("node: page %v branch %d has corrupt rect", want, i)
		}
		n.Branches[i] = Branch{Rect: r, Child: page.ID(binary.LittleEndian.Uint64(buf[off : off+8]))}
		off += 8
	}
	n.Records = make([]Record, nr)
	for i := 0; i < nr; i++ {
		var r geom.Rect
		r, off, fo = c.getRectFlat(buf, off, flat, fo)
		if !r.Valid() {
			return nil, fmt.Errorf("node: page %v record %d has corrupt rect", want, i)
		}
		n.Records[i] = Record{
			Rect: r,
			ID:   RecordID(binary.LittleEndian.Uint64(buf[off : off+8])),
			Span: page.ID(binary.LittleEndian.Uint64(buf[off+8 : off+16])),
		}
		off += 16
	}
	return n, nil
}

func (c Codec) putRect(buf []byte, off int, r geom.Rect) int {
	for d := 0; d < c.Dims; d++ {
		binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(r.Min[d]))
		off += 8
	}
	for d := 0; d < c.Dims; d++ {
		binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(r.Max[d]))
		off += 8
	}
	return off
}

// getRectFlat decodes one rectangle from buf at off into the 2*Dims floats
// at flat[fo:], returning a Rect whose corners are views into flat. The
// capped slice expressions keep an append on a view from spilling into the
// neighboring rect's storage.
func (c Codec) getRectFlat(buf []byte, off int, flat []float64, fo int) (geom.Rect, int, int) {
	k := c.Dims
	r := geom.Rect{Min: flat[fo : fo+k : fo+k], Max: flat[fo+k : fo+2*k : fo+2*k]}
	for d := 0; d < k; d++ {
		r.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	for d := 0; d < k; d++ {
		r.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	return r, off, fo + 2*k
}

// emptyRectFlat writes the EmptyRect identity into flat[fo:] and returns a
// view of it (see geom.EmptyRect).
func emptyRectFlat(dims int, flat []float64, fo int) (geom.Rect, int) {
	r := geom.Rect{Min: flat[fo : fo+dims : fo+dims], Max: flat[fo+dims : fo+2*dims : fo+2*dims]}
	for d := 0; d < dims; d++ {
		r.Min[d] = math.Inf(1)
		r.Max[d] = math.Inf(-1)
	}
	return r, fo + 2*dims
}
