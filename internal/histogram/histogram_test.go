package histogram

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0, 4); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := New(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := New(5, 1, 4); err == nil {
		t.Error("inverted domain accepted")
	}
}

func TestUniformQuantiles(t *testing.T) {
	h := Uniform(0, 100)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := h.Quantile(q); math.Abs(got-q*100) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", q, got, q*100)
		}
	}
}

func TestEmptyHistogramFallsBackToUniform(t *testing.T) {
	h, _ := New(0, 10, 8)
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("empty Quantile(0.5) = %g, want 5", got)
	}
}

func TestQuantileOnSkewedData(t *testing.T) {
	h, _ := New(0, 100, 100)
	// 90% of the mass at the low end, 10% at the high end.
	for i := 0; i < 900; i++ {
		h.Add(rand.New(rand.NewSource(int64(i))).Float64() * 10)
	}
	for i := 0; i < 100; i++ {
		h.Add(90 + rand.New(rand.NewSource(int64(i))).Float64()*10)
	}
	med := h.Quantile(0.5)
	if med > 10 {
		t.Errorf("median of skewed data = %g, want <= 10", med)
	}
	q95 := h.Quantile(0.95)
	if q95 < 80 {
		t.Errorf("q95 of skewed data = %g, want >= 80", q95)
	}
	// Quantiles are monotone.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestPartitionEquiDepth(t *testing.T) {
	h, _ := New(0, 1000, 200)
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 10000)
	for i := range vals {
		// Exponential-ish skew truncated to the domain.
		v := rng.ExpFloat64() * 150
		if v > 1000 {
			v = 1000
		}
		vals[i] = v
		h.Add(v)
	}
	const p = 10
	b, err := h.Partition(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p+1 || b[0] != 0 || b[p] != 1000 {
		t.Fatalf("bad boundaries: %v", b)
	}
	// Each slice should hold roughly 1/p of the samples (binning error
	// allows generous slack).
	sort.Float64s(vals)
	for i := 0; i < p; i++ {
		lo, hi := b[i], b[i+1]
		count := 0
		for _, v := range vals {
			if v >= lo && v < hi {
				count++
			}
		}
		if count < 500 || count > 2000 {
			t.Errorf("slice %d [%g,%g) holds %d of 10000 samples, want ~1000", i, lo, hi, count)
		}
	}
}

func TestPartitionDegenerateMass(t *testing.T) {
	h, _ := New(0, 100, 10)
	// All mass in one point: quantiles collapse; Partition must still
	// return strictly increasing boundaries.
	for i := 0; i < 1000; i++ {
		h.Add(50)
	}
	b, err := h.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("boundaries not strictly increasing: %v", b)
		}
	}
	if b[0] != 0 || b[len(b)-1] != 100 {
		t.Fatalf("ends not pinned: %v", b)
	}
}

func TestAddIntervalSpreadsMass(t *testing.T) {
	h, _ := New(0, 100, 10)
	h.AddInterval(0, 100) // uniform mass across all bins
	for i, m := range h.Bins {
		if math.Abs(m-0.1) > 1e-9 {
			t.Errorf("bin %d mass = %g, want 0.1", i, m)
		}
	}
	if math.Abs(h.Total()-1) > 1e-9 {
		t.Errorf("total = %g, want 1", h.Total())
	}
	h2, _ := New(0, 100, 10)
	h2.AddInterval(42, 42) // degenerate interval = point add
	if h2.Bins[4] != 1 {
		t.Errorf("point interval mass = %v", h2.Bins)
	}
	// Out-of-domain interval is clamped, not dropped.
	h3, _ := New(0, 100, 10)
	h3.AddInterval(-50, 150)
	if h3.Total() == 0 {
		t.Error("clamped interval lost all mass")
	}
}

func TestClampOutOfDomain(t *testing.T) {
	h, _ := New(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Bins[0] != 1 || h.Bins[4] != 1 {
		t.Errorf("out-of-domain adds not clamped: %v", h.Bins)
	}
}

func TestPropertyPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		h, _ := New(0, 1000, 50)
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(rng.Float64() * 1000)
		}
		p := rng.Intn(20) + 1
		b, err := h.Partition(p)
		if err != nil {
			return false
		}
		if len(b) != p+1 || b[0] != 0 || b[p] != 1000 {
			return false
		}
		for i := 1; i <= p; i++ {
			if b[i] <= b[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
