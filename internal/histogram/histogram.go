// Package histogram provides per-dimension value histograms used by
// skeleton index construction (Section 4 of the paper): given an estimate
// of the input distribution in each dimension — either assumed or computed
// from a buffered sample ("distribution prediction") — the skeleton builder
// partitions each dimension at equi-depth quantiles so every pre-allocated
// region receives roughly the same number of tuples (Figure 6).
package histogram

import (
	"fmt"
	"sort"
)

// Histogram is a fixed-width binned count histogram over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Bins   []float64 // mass per bin
	total  float64
}

// New creates a histogram over [lo, hi] with the given number of bins.
func New(lo, hi float64, bins int) (*Histogram, error) {
	if hi <= lo {
		return nil, fmt.Errorf("histogram: empty domain [%g, %g]", lo, hi)
	}
	if bins < 1 {
		return nil, fmt.Errorf("histogram: need at least 1 bin, got %d", bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]float64, bins)}, nil
}

// Uniform returns a histogram representing a uniform distribution over
// [lo, hi]; its quantiles are linear.
//
//seglint:allow nodepanic — Must-style constructor; panics only on an empty domain, which callers pass as validated configuration
func Uniform(lo, hi float64) *Histogram {
	h, err := New(lo, hi, 1)
	if err != nil {
		panic(err)
	}
	h.Bins[0] = 1
	h.total = 1
	return h
}

// FromSamples builds a histogram over [lo, hi] from observed values,
// clamping out-of-domain samples into the boundary bins.
func FromSamples(samples []float64, lo, hi float64, bins int) (*Histogram, error) {
	h, err := New(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	for _, v := range samples {
		h.Add(v)
	}
	return h, nil
}

// Add records one observation with weight 1.
func (h *Histogram) Add(v float64) { h.AddWeighted(v, 1) }

// AddWeighted records an observation with the given mass. Out-of-domain
// values clamp to the boundary bins.
func (h *Histogram) AddWeighted(v, w float64) {
	i := h.binOf(v)
	h.Bins[i] += w
	h.total += w
}

// AddInterval spreads one unit of mass uniformly over the interval
// [lo, hi] (clamped to the domain). Point intervals count as Add.
func (h *Histogram) AddInterval(lo, hi float64) {
	if hi <= lo {
		h.Add(lo)
		return
	}
	if lo < h.Lo {
		lo = h.Lo
	}
	if hi > h.Hi {
		hi = h.Hi
	}
	if hi <= lo {
		h.Add(lo)
		return
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	first, last := h.binOf(lo), h.binOf(hi)
	if first == last {
		h.Bins[first]++
		h.total++
		return
	}
	span := hi - lo
	for b := first; b <= last; b++ {
		bLo := h.Lo + float64(b)*width
		bHi := bLo + width
		if bLo < lo {
			bLo = lo
		}
		if bHi > hi {
			bHi = hi
		}
		if bHi > bLo {
			frac := (bHi - bLo) / span
			h.Bins[b] += frac
			h.total += frac
		}
	}
}

func (h *Histogram) binOf(v float64) int {
	if v <= h.Lo {
		return 0
	}
	if v >= h.Hi {
		return len(h.Bins) - 1
	}
	i := int(float64(len(h.Bins)) * (v - h.Lo) / (h.Hi - h.Lo))
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	return i
}

// Total reports the accumulated mass.
func (h *Histogram) Total() float64 { return h.total }

// Quantile returns the value v such that approximately q of the mass lies
// below v, interpolating linearly within bins. Quantile(0) == Lo and
// Quantile(1) == Hi. With zero recorded mass the distribution is treated as
// uniform.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 {
		return h.Lo
	}
	if q >= 1 {
		return h.Hi
	}
	if h.total == 0 {
		return h.Lo + q*(h.Hi-h.Lo)
	}
	target := q * h.total
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	cum := 0.0
	for i, m := range h.Bins {
		if cum+m >= target {
			frac := 0.0
			if m > 0 {
				frac = (target - cum) / m
			}
			return h.Lo + (float64(i)+frac)*width
		}
		cum += m
	}
	return h.Hi
}

// Partition returns p+1 strictly increasing boundaries that split the
// domain into p equi-depth slices: boundary[i] = Quantile(i/p), with the
// ends pinned to the domain and degenerate slices widened minimally so every
// slice has positive width.
func (h *Histogram) Partition(p int) ([]float64, error) {
	if p < 1 {
		return nil, fmt.Errorf("histogram: partition count %d < 1", p)
	}
	b := make([]float64, p+1)
	b[0], b[p] = h.Lo, h.Hi
	for i := 1; i < p; i++ {
		b[i] = h.Quantile(float64(i) / float64(p))
	}
	// Enforce strict monotonicity: a heavily skewed histogram can emit
	// repeated quantiles; widen degenerate slices by distributing them
	// evenly within the surrounding gap.
	minGap := (h.Hi - h.Lo) / float64(p) * 1e-6
	for i := 1; i <= p; i++ {
		if b[i] <= b[i-1] {
			b[i] = b[i-1] + minGap
		}
	}
	if b[p] > h.Hi {
		// Renormalize the tail back into the domain.
		excess := b[p] - h.Hi
		for i := 1; i <= p; i++ {
			b[i] -= excess * float64(i) / float64(p)
		}
		b[p] = h.Hi
		sort.Float64s(b)
	}
	for i := 1; i <= p; i++ {
		if b[i] <= b[i-1] {
			return nil, fmt.Errorf("histogram: cannot carve %d positive-width slices out of [%g, %g]", p, h.Lo, h.Hi)
		}
	}
	return b, nil
}
