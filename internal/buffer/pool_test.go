package buffer

import (
	"errors"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

func newPool(t *testing.T, budget int) (*Pool, *store.MemStore) {
	t.Helper()
	st := store.NewMemStore()
	return New(st, node.Codec{Dims: 2}, budget), st
}

func addRecord(n *node.Node, id uint64) {
	n.Records = append(n.Records, node.Record{
		Rect: geom.Rect2(float64(id), 0, float64(id)+1, 1),
		ID:   node.RecordID(id),
	})
}

func TestNewGetUnpinRoundTrip(t *testing.T) {
	p, _ := newPool(t, 0)
	n, err := p.NewNode(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	addRecord(n, 42)
	if err := p.Unpin(n.ID, true); err != nil {
		t.Fatal(err)
	}

	got, err := p.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Error("resident Get should return the same node object")
	}
	if len(got.Records) != 1 || got.Records[0].ID != 42 {
		t.Fatalf("records = %+v", got.Records)
	}
	if err := p.Unpin(n.ID, false); err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Gets != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	// Budget fits roughly 2 pages of 1024 bytes.
	p, _ := newPool(t, 2*1024)
	var ids []page.ID
	for i := 0; i < 6; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(i+100))
		ids = append(ids, n.ID)
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Resident(); got > 2 {
		t.Fatalf("Resident = %d, want <= 2", got)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Every node, including evicted ones, reloads with its contents.
	for i, id := range ids {
		n, err := p.Get(id)
		if err != nil {
			t.Fatalf("Get(%v): %v", id, err)
		}
		if len(n.Records) != 1 || n.Records[0].ID != node.RecordID(i+100) {
			t.Fatalf("node %v contents lost: %+v", id, n.Records)
		}
		if err := p.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPinnedFramesAreNotEvicted(t *testing.T) {
	p, _ := newPool(t, 1024) // budget of one page
	a, _ := p.NewNode(0, 1024)
	// a stays pinned; allocating b pushes the pool over budget but a must
	// survive because it is pinned.
	b, err := p.NewNode(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	addRecord(a, 1)
	if err := p.Unpin(b.ID, true); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Error("pinned node was evicted")
	}
	p.Unpin(a.ID, true)
	p.Unpin(a.ID, true)
}

func TestUnpinErrors(t *testing.T) {
	p, _ := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	if err := p.Unpin(n.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(n.ID, false); err == nil {
		t.Error("double unpin accepted")
	}
	if err := p.Unpin(page.ID(999), false); err == nil {
		t.Error("unpin of unknown page accepted")
	}
}

func TestFreeRequiresUnpinned(t *testing.T) {
	p, st := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	if err := p.Free(n.ID); !errors.Is(err, ErrPinned) {
		t.Fatalf("Free of pinned = %v, want ErrPinned", err)
	}
	p.Unpin(n.ID, false)
	if err := p.Free(n.ID); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Error("store page not released")
	}
	if _, err := p.Get(n.ID); err == nil {
		t.Error("Get of freed page succeeded")
	}
}

func TestFlushPersists(t *testing.T) {
	st := store.NewMemStore()
	codec := node.Codec{Dims: 2}
	p := New(st, codec, 0)
	n, _ := p.NewNode(1, 2048)
	n.Branches = append(n.Branches, node.Branch{Rect: geom.Rect2(0, 0, 1, 1), Child: 77})
	p.Unpin(n.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second pool over the same store sees the flushed state.
	p2 := New(st, codec, 0)
	got, err := p2.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Branches) != 1 || got.Branches[0].Child != 77 {
		t.Fatalf("flushed node mismatch: %+v", got)
	}
	p2.Unpin(n.ID, false)
}

func TestReadErrorPropagates(t *testing.T) {
	p, st := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	p.Unpin(n.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Force the node out of memory by freeing the frame indirectly: use a
	// tiny-budget pool over the same store instead.
	small := New(st, node.Codec{Dims: 2}, 1)
	boom := errors.New("disk gone")
	st.InjectReadError(1, boom)
	if _, err := small.Get(n.ID); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want injected error", err)
	}
}

func TestCorruptPageRejected(t *testing.T) {
	st := store.NewMemStore()
	id, _ := st.Allocate(1024)
	garbage := make([]byte, 1024)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if err := st.Write(id, garbage); err != nil {
		t.Fatal(err)
	}
	p := New(st, node.Codec{Dims: 2}, 0)
	if _, err := p.Get(id); err == nil {
		t.Fatal("corrupt page decoded successfully")
	}
}

func TestPageBytes(t *testing.T) {
	p, _ := newPool(t, 0)
	n, _ := p.NewNode(2, 4096)
	if got, err := p.PageBytes(n.ID); err != nil || got != 4096 {
		t.Fatalf("PageBytes = %d, %v", got, err)
	}
}

func TestPinChurnUnderPressure(t *testing.T) {
	// Repeatedly pin chains of nodes while the budget allows only a few
	// frames; correctness of contents must survive heavy eviction.
	p, _ := newPool(t, 3*1024)
	const nodes = 32
	ids := make([]page.ID, nodes)
	for i := 0; i < nodes; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(1000+i))
		ids[i] = n.ID
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 50; round++ {
		// Pin a chain of three, mutate the middle one, unpin in reverse.
		a, b, c := ids[round%nodes], ids[(round+7)%nodes], ids[(round+13)%nodes]
		na, err := p.Get(a)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := p.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := p.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		nb.Records[0].ID = node.RecordID(5000 + round)
		_ = na
		_ = nc
		p.Unpin(c, false)
		p.Unpin(b, true)
		p.Unpin(a, false)
		// Read the mutation back, possibly after eviction.
		nb2, err := p.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if nb2.Records[0].ID != node.RecordID(5000+round) {
			t.Fatalf("round %d: mutation lost (got %d)", round, nb2.Records[0].ID)
		}
		p.Unpin(b, false)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions; pressure test is vacuous")
	}
}

func BenchmarkPoolGetHit(b *testing.B) {
	st := store.NewMemStore()
	p := New(st, node.Codec{Dims: 2}, 0)
	n, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(n.ID, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(n.ID); err != nil {
			b.Fatal(err)
		}
		p.Unpin(n.ID, false)
	}
}

func BenchmarkPoolGetMiss(b *testing.B) {
	st := store.NewMemStore()
	codec := node.Codec{Dims: 2}
	// Tiny budget: every other access evicts.
	p := New(st, codec, 1024)
	a, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(a.ID, true)
	c, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(c.ID, true)
	ids := []page.ID{a.ID, c.ID}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%2]
		if _, err := p.Get(id); err != nil {
			b.Fatal(err)
		}
		p.Unpin(id, false)
	}
}
