package buffer

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// newPool builds a single-shard pool: the legacy tests in this file assert
// exact byte-budget and LRU-order behavior, which only one shard provides
// (a sharded pool splits the budget per stripe). The shard-specific tests
// below construct multi-shard pools explicitly.
func newPool(t *testing.T, budget int) (*Pool, *store.MemStore) {
	t.Helper()
	st := store.NewMemStore()
	return NewSharded(st, node.Codec{Dims: 2}, budget, 1), st
}

func addRecord(n *node.Node, id uint64) {
	n.Records = append(n.Records, node.Record{
		Rect: geom.Rect2(float64(id), 0, float64(id)+1, 1),
		ID:   node.RecordID(id),
	})
}

func TestNewGetUnpinRoundTrip(t *testing.T) {
	p, _ := newPool(t, 0)
	n, err := p.NewNode(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	addRecord(n, 42)
	if err := p.Unpin(n.ID, true); err != nil {
		t.Fatal(err)
	}

	got, err := p.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Error("resident Get should return the same node object")
	}
	if len(got.Records) != 1 || got.Records[0].ID != 42 {
		t.Fatalf("records = %+v", got.Records)
	}
	if err := p.Unpin(n.ID, false); err != nil {
		t.Fatal(err)
	}

	s := p.Stats()
	if s.Gets != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	// Budget fits roughly 2 pages of 1024 bytes.
	p, _ := newPool(t, 2*1024)
	var ids []page.ID
	for i := 0; i < 6; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(i+100))
		ids = append(ids, n.ID)
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Resident(); got > 2 {
		t.Fatalf("Resident = %d, want <= 2", got)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// Every node, including evicted ones, reloads with its contents.
	for i, id := range ids {
		n, err := p.Get(id)
		if err != nil {
			t.Fatalf("Get(%v): %v", id, err)
		}
		if len(n.Records) != 1 || n.Records[0].ID != node.RecordID(i+100) {
			t.Fatalf("node %v contents lost: %+v", id, n.Records)
		}
		if err := p.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPinnedFramesAreNotEvicted(t *testing.T) {
	p, _ := newPool(t, 1024) // budget of one page
	a, _ := p.NewNode(0, 1024)
	// a stays pinned; allocating b pushes the pool over budget but a must
	// survive because it is pinned.
	b, err := p.NewNode(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	addRecord(a, 1)
	if err := p.Unpin(b.ID, true); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Error("pinned node was evicted")
	}
	p.Unpin(a.ID, true)
	p.Unpin(a.ID, true)
}

func TestUnpinErrors(t *testing.T) {
	p, _ := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	if err := p.Unpin(n.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(n.ID, false); err == nil {
		t.Error("double unpin accepted")
	}
	if err := p.Unpin(page.ID(999), false); err == nil {
		t.Error("unpin of unknown page accepted")
	}
}

func TestFreeRequiresUnpinned(t *testing.T) {
	p, st := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	if err := p.Free(n.ID); !errors.Is(err, ErrPinned) {
		t.Fatalf("Free of pinned = %v, want ErrPinned", err)
	}
	p.Unpin(n.ID, false)
	if err := p.Free(n.ID); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Error("store page not released")
	}
	if _, err := p.Get(n.ID); err == nil {
		t.Error("Get of freed page succeeded")
	}
}

func TestFlushPersists(t *testing.T) {
	st := store.NewMemStore()
	codec := node.Codec{Dims: 2}
	p := New(st, codec, 0)
	n, _ := p.NewNode(1, 2048)
	n.Branches = append(n.Branches, node.Branch{Rect: geom.Rect2(0, 0, 1, 1), Child: 77})
	p.Unpin(n.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// A second pool over the same store sees the flushed state.
	p2 := New(st, codec, 0)
	got, err := p2.Get(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Branches) != 1 || got.Branches[0].Child != 77 {
		t.Fatalf("flushed node mismatch: %+v", got)
	}
	p2.Unpin(n.ID, false)
}

func TestInvalidateDropsStaleFrames(t *testing.T) {
	p, _ := newPool(t, 0)

	// Two nodes flushed to the store, then dirtied in the pool so the
	// resident copies diverge from the durable image.
	n1, _ := p.NewNode(0, 1024)
	addRecord(n1, 1)
	p.Unpin(n1.ID, true)
	n2, _ := p.NewNode(0, 1024)
	addRecord(n2, 2)
	p.Unpin(n2.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []page.ID{n1.ID, n2.ID} {
		n, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, 99) // never flushed: stale after a failed commit
		p.Unpin(id, true)
	}
	// A third node stays pinned; Invalidate must leave it alone.
	n3, _ := p.NewNode(0, 1024)

	if pinned := p.Invalidate(); pinned != 1 {
		t.Fatalf("Invalidate reported %d pinned frames, want 1", pinned)
	}

	// The dirtied frames are gone: Get reloads the durable image, and the
	// stale record was discarded rather than written back.
	for i, id := range []page.ID{n1.ID, n2.ID} {
		n, err := p.Get(id)
		if err != nil {
			t.Fatalf("Get after invalidate: %v", err)
		}
		if len(n.Records) != 1 || n.Records[0].ID != node.RecordID(i+1) {
			t.Fatalf("node %v after invalidate has records %+v, want the flushed copy", id, n.Records)
		}
		p.Unpin(id, false)
	}
	// The pinned node survived untouched.
	got, err := p.Get(n3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != n3 {
		t.Error("pinned frame was dropped by Invalidate")
	}
	p.Unpin(n3.ID, false)
	p.Unpin(n3.ID, false) // release the original pin
}

func TestReadErrorPropagates(t *testing.T) {
	p, st := newPool(t, 0)
	n, _ := p.NewNode(0, 1024)
	p.Unpin(n.ID, true)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Force the node out of memory by freeing the frame indirectly: use a
	// tiny-budget pool over the same store instead.
	small := New(st, node.Codec{Dims: 2}, 1)
	boom := errors.New("disk gone")
	st.InjectReadError(1, boom)
	if _, err := small.Get(n.ID); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want injected error", err)
	}
}

func TestCorruptPageRejected(t *testing.T) {
	st := store.NewMemStore()
	id, _ := st.Allocate(1024)
	garbage := make([]byte, 1024)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if err := st.Write(id, garbage); err != nil {
		t.Fatal(err)
	}
	p := New(st, node.Codec{Dims: 2}, 0)
	if _, err := p.Get(id); err == nil {
		t.Fatal("corrupt page decoded successfully")
	}
}

func TestPageBytes(t *testing.T) {
	p, _ := newPool(t, 0)
	n, _ := p.NewNode(2, 4096)
	if got, err := p.PageBytes(n.ID); err != nil || got != 4096 {
		t.Fatalf("PageBytes = %d, %v", got, err)
	}
}

func TestPinChurnUnderPressure(t *testing.T) {
	// Repeatedly pin chains of nodes while the budget allows only a few
	// frames; correctness of contents must survive heavy eviction.
	p, _ := newPool(t, 3*1024)
	const nodes = 32
	ids := make([]page.ID, nodes)
	for i := 0; i < nodes; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(1000+i))
		ids[i] = n.ID
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 50; round++ {
		// Pin a chain of three, mutate the middle one, unpin in reverse.
		a, b, c := ids[round%nodes], ids[(round+7)%nodes], ids[(round+13)%nodes]
		na, err := p.Get(a)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := p.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		nc, err := p.Get(c)
		if err != nil {
			t.Fatal(err)
		}
		nb.Records[0].ID = node.RecordID(5000 + round)
		_ = na
		_ = nc
		p.Unpin(c, false)
		p.Unpin(b, true)
		p.Unpin(a, false)
		// Read the mutation back, possibly after eviction.
		nb2, err := p.Get(b)
		if err != nil {
			t.Fatal(err)
		}
		if nb2.Records[0].ID != node.RecordID(5000+round) {
			t.Fatalf("round %d: mutation lost (got %d)", round, nb2.Records[0].ID)
		}
		p.Unpin(b, false)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions; pressure test is vacuous")
	}
}

// TestPoolShardAccounting checks the aggregate counters of a multi-shard
// pool: Stats() must equal the sum of ShardStats(), Hits+Misses must
// equal Gets, and the shard count must round up to a power of two.
func TestPoolShardAccounting(t *testing.T) {
	st := store.NewMemStore()
	p := NewSharded(st, node.Codec{Dims: 2}, 4*1024, 7) // rounds up to 8
	if got := p.Shards(); got != 8 {
		t.Fatalf("Shards = %d, want 8 (rounded up from 7)", got)
	}
	var ids []page.ID
	for i := 0; i < 24; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(i+1))
		ids = append(ids, n.ID)
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read every page a few times to generate hits and misses.
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			n, err := p.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.Records) != 1 {
				t.Fatalf("page %v contents lost", id)
			}
			if err := p.Unpin(id, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	agg := p.Stats()
	var sum Stats
	perShard := p.ShardStats()
	if len(perShard) != p.Shards() {
		t.Fatalf("ShardStats returned %d entries, want %d", len(perShard), p.Shards())
	}
	for _, s := range perShard {
		sum.add(s)
	}
	if agg != sum {
		t.Fatalf("Stats() = %+v, sum of ShardStats() = %+v", agg, sum)
	}
	if agg.Gets != agg.Hits+agg.Misses {
		t.Fatalf("Gets %d != Hits %d + Misses %d", agg.Gets, agg.Hits, agg.Misses)
	}
	if agg.Gets != uint64(3*len(ids)) {
		t.Fatalf("Gets = %d, want %d", agg.Gets, 3*len(ids))
	}
	if agg.Misses == 0 || agg.Evictions == 0 {
		t.Fatalf("expected evictions under a tight budget: %+v", agg)
	}
}

// TestPoolShardPinnedNeverEvicted pins a set of nodes spread across the
// shards of a pool with a budget far below the pinned footprint, churns
// unpinned pages through every shard, and checks each pinned pointer
// still resolves to the identical in-memory node.
func TestPoolShardPinnedNeverEvicted(t *testing.T) {
	st := store.NewMemStore()
	p := NewSharded(st, node.Codec{Dims: 2}, 2*1024, 8)
	const pinned = 12
	type held struct {
		id page.ID
		n  *node.Node
	}
	var hold []held
	for i := 0; i < pinned; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(9000+i))
		hold = append(hold, held{n.ID, n}) // stays pinned
	}
	// Churn: allocate and release far more bytes than the budget so every
	// shard evicts whatever it legally can.
	for i := 0; i < 64; i++ {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions; churn is vacuous")
	}
	for i, h := range hold {
		got, err := p.Get(h.id)
		if err != nil {
			t.Fatal(err)
		}
		if got != h.n {
			t.Fatalf("pinned node %d was evicted and re-decoded", i)
		}
		if got.Records[0].ID != node.RecordID(9000+i) {
			t.Fatalf("pinned node %d contents changed", i)
		}
		p.Unpin(h.id, false) // release the Get pin
		p.Unpin(h.id, true)  // release the original pin
	}
}

// TestPoolConcurrentHammer drives a multi-shard pool from many goroutines
// under -race: all goroutines re-read a shared set of pages (including
// IDs that collide onto the same shard), each goroutine mutates a private
// page, and Flush/Stats/Resident run concurrently. Final contents are
// verified after the storm.
func TestPoolConcurrentHammer(t *testing.T) {
	st := store.NewMemStore()
	p := NewSharded(st, node.Codec{Dims: 2}, 8*1024, 4)
	const (
		sharedPages = 16
		goroutines  = 8
		iters       = 300
	)
	shared := make([]page.ID, sharedPages)
	for i := range shared {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(i+1))
		shared[i] = n.ID
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	private := make([]page.ID, goroutines)
	for g := range private {
		n, err := p.NewNode(0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addRecord(n, uint64(100+g))
		private[g] = n.ID
		if err := p.Unpin(n.ID, true); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Read-only access to a shared page; offsets by goroutine so
				// colliding IDs hit the same shard from different goroutines.
				id := shared[(i+g*3)%sharedPages]
				n, err := p.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if len(n.Records) != 1 {
					errs <- fmt.Errorf("shared page %v lost its record", id)
					return
				}
				if err := p.Unpin(id, false); err != nil {
					errs <- err
					return
				}
				// Mutate this goroutine's private page.
				pn, err := p.Get(private[g])
				if err != nil {
					errs <- err
					return
				}
				pn.Records[0].ID = node.RecordID(1000*g + i)
				if err := p.Unpin(private[g], true); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := p.Flush(); err != nil {
				errs <- err
				return
			}
			_ = p.Stats()
			_ = p.Resident()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := range private {
		n, err := p.Get(private[g])
		if err != nil {
			t.Fatal(err)
		}
		if got := n.Records[0].ID; got != node.RecordID(1000*g+iters-1) {
			t.Fatalf("goroutine %d: final private value = %d, want %d", g, got, 1000*g+iters-1)
		}
		p.Unpin(private[g], false)
	}
	s := p.Stats()
	if s.Gets != s.Hits+s.Misses {
		t.Fatalf("Gets %d != Hits %d + Misses %d", s.Gets, s.Hits, s.Misses)
	}
}

func BenchmarkPoolGetHit(b *testing.B) {
	st := store.NewMemStore()
	p := New(st, node.Codec{Dims: 2}, 0)
	n, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(n.ID, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(n.ID); err != nil {
			b.Fatal(err)
		}
		p.Unpin(n.ID, false)
	}
}

func BenchmarkPoolGetMiss(b *testing.B) {
	st := store.NewMemStore()
	codec := node.Codec{Dims: 2}
	// Tiny budget: every other access evicts.
	p := New(st, codec, 1024)
	a, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(a.ID, true)
	c, err := p.NewNode(0, 1024)
	if err != nil {
		b.Fatal(err)
	}
	p.Unpin(c.ID, true)
	ids := []page.ID{a.ID, c.ID}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%2]
		if _, err := p.Get(id); err != nil {
			b.Fatal(err)
		}
		p.Unpin(id, false)
	}
}
