// Package buffer implements a pinning LRU buffer pool over decoded segment
// index nodes.
//
// The tree layer reads and writes nodes exclusively through a Pool. Nodes
// are decoded once on miss and stay resident until evicted; eviction
// considers only unpinned frames, serializing dirty ones back to the store.
// This mirrors a conventional database buffer manager while letting the
// index algorithms work on structured nodes rather than raw bytes.
//
// The pool is lock-striped: pages hash to one of N shards, each with its
// own mutex, LRU list, byte budget, and counters. Concurrent readers
// touching different pages therefore proceed without contending on a
// single pool-wide lock; only accesses to pages in the same shard
// serialize. The byte budget is split evenly across shards, so the global
// cap is approximate under skewed residency (a shard never exceeds its
// slice, but an idle shard's slack is not lent to a hot one). NewSharded
// with a shard count of 1 restores the exact single-LRU semantics.
//
// The paper's search-cost metric (average index nodes accessed per search)
// is independent of buffer residency; the pool's hit/miss statistics are
// additional observability on top of that logical metric.
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// ErrPinned is returned when an operation requires an unpinned frame.
var ErrPinned = errors.New("buffer: page is pinned")

// Stats counts pool activity since creation. For a sharded pool the
// counters are aggregated across shards.
type Stats struct {
	Gets      uint64 // Get calls
	Hits      uint64 // Get calls satisfied from memory
	Misses    uint64 // Get calls that read from the store
	Evictions uint64 // frames evicted to honor the budget
	Writes    uint64 // dirty pages written back
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Gets += o.Gets
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writes += o.Writes
}

// HitRate returns Hits/Gets, or 0 when no Gets happened.
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

type frame struct {
	n     *node.Node
	bytes int // on-page size of the node
	pins  int
	dirty bool
	// Intrusive LRU links. Frames double as their own list elements so
	// unpinning never allocates (a container/list push costs an Element
	// plus boxing the page ID — one or two heap objects per node visit
	// on the read path). inLRU distinguishes an unlinked frame from one
	// linked at either end of the list.
	lruPrev, lruNext *frame
	inLRU            bool
}

// shard is one lock stripe: an independent LRU pool over the pages that
// hash to it.
type shard struct {
	mu       sync.Mutex
	budget   int // max resident bytes in this shard; 0 means unlimited
	resident map[page.ID]*frame
	// Intrusive list of unpinned frames; lruHead = most recently used,
	// lruTail = eviction candidate.
	lruHead, lruTail *frame
	bytes            int // total resident bytes in this shard
	stats            Stats

	// pad keeps neighboring shards' mutexes off one cache line.
	_ [64]byte
}

// lruPushFront links an unpinned frame at the MRU end. The caller must
// hold s.mu and the frame must not already be linked.
func (s *shard) lruPushFront(f *frame) {
	f.lruPrev = nil
	f.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = f
	}
	s.lruHead = f
	if s.lruTail == nil {
		s.lruTail = f
	}
	f.inLRU = true
}

// lruRemove unlinks a frame from the shard's LRU. The caller must hold
// s.mu and the frame must be linked.
func (s *shard) lruRemove(f *frame) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		s.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		s.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
	f.inLRU = false
}

// Pool is a pinning, lock-striped LRU buffer pool. The zero value is not
// usable; use New or NewSharded.
type Pool struct {
	store  store.Store
	codec  node.Codec
	shards []shard
	mask   uint64 // len(shards) - 1; shard count is a power of two
}

// defaultShardCount sizes the stripe set to the parallelism available at
// construction time: at least 8 shards so small machines still spread
// collisions, at most 128, rounded up to a power of two.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a pool over the given store with the default shard count.
// budgetBytes caps resident node bytes (0 = unlimited). The pool must
// outlive every node pointer handed out while pinned.
func New(st store.Store, codec node.Codec, budgetBytes int) *Pool {
	return NewSharded(st, codec, budgetBytes, 0)
}

// NewSharded creates a pool with an explicit shard count (rounded up to a
// power of two; <= 0 selects the default). One shard gives a single global
// LRU with an exact byte budget; more shards trade budget precision for
// concurrent throughput.
func NewSharded(st store.Store, codec node.Codec, budgetBytes, shards int) *Pool {
	if shards <= 0 {
		shards = defaultShardCount()
	}
	shards = ceilPow2(shards)
	p := &Pool{
		store:  st,
		codec:  codec,
		shards: make([]shard, shards),
		mask:   uint64(shards - 1),
	}
	perShard := 0
	if budgetBytes > 0 {
		perShard = (budgetBytes + shards - 1) / shards
	}
	for i := range p.shards {
		p.shards[i].budget = perShard
		p.shards[i].resident = make(map[page.ID]*frame)
	}
	return p
}

// Shards reports the number of lock stripes.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a page ID to its stripe. Sequentially allocated IDs are
// mixed (Fibonacci hashing) so tree levels do not clump into one shard.
func (p *Pool) shardFor(id page.ID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[(h>>32)&p.mask]
}

// NewNode allocates a fresh page of pageBytes in the store and returns the
// corresponding empty node, pinned and marked dirty.
func (p *Pool) NewNode(level, pageBytes int) (*node.Node, error) {
	id, err := p.store.Allocate(pageBytes)
	if err != nil {
		return nil, err
	}
	n := &node.Node{ID: id, Level: level}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resident[id] = &frame{n: n, bytes: pageBytes, pins: 1, dirty: true}
	s.bytes += pageBytes
	p.evictLocked(s)
	return n, nil
}

// Get returns the node for id, pinned. Every Get must be paired with an
// Unpin.
func (p *Pool) Get(id page.ID) (*node.Node, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	if f, ok := s.resident[id]; ok {
		s.stats.Hits++
		s.pinLocked(f)
		return f.n, nil
	}
	s.stats.Misses++
	// The store read happens under the shard lock: releasing it would
	// allow concurrent duplicate decodes of the same page, and only
	// accesses hashing to this shard wait behind the read.
	buf, err := p.store.Read(id)
	if err != nil {
		return nil, err
	}
	n, err := p.codec.Unmarshal(buf, id)
	if err != nil {
		return nil, fmt.Errorf("buffer: decode %v: %w", id, err)
	}
	f := &frame{n: n, bytes: len(buf), pins: 1}
	s.resident[id] = f
	s.bytes += len(buf)
	p.evictLocked(s)
	return n, nil
}

// Unpin releases one pin. dirty marks the node as modified since fetch; it
// will be written back before eviction or on Flush.
func (p *Pool) Unpin(id page.ID, dirty bool) error {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.unpinLocked(s, id, dirty)
}

// UnpinBatch releases one clean pin on each id, grouping consecutive ids
// that hash to the same shard under a single lock acquisition. The read
// path pins each visited page once per query and returns them all here at
// query end, instead of paying a lock round trip per node visit. On error
// the remaining ids stay pinned (callers treat any failure as fatal, the
// same way Tree.done does).
//
// The unlockpath suppression: cur aliases s after `cur = s`, but the
// analyzer's textual lock keys treat cur.mu and s.mu as distinct; every
// path here holds exactly one shard lock and releases it before return
// or re-acquisition.
//
//seglint:allow unlockpath — cur/s aliasing: one shard lock held at a time, released on every path
func (p *Pool) UnpinBatch(ids []page.ID) error {
	var cur *shard
	for _, id := range ids {
		if s := p.shardFor(id); s != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			s.mu.Lock()
			cur = s
		}
		if err := p.unpinLocked(cur, id, false); err != nil {
			cur.mu.Unlock()
			return err
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	return nil
}

// unpinLocked releases one pin on a resident frame, pushing it onto the
// shard's LRU when the pin count reaches zero. The caller must hold s.mu.
func (p *Pool) unpinLocked(s *shard, id page.ID, dirty bool) error {
	f, ok := s.resident[id]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident %v", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unpin of unpinned %v", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		s.lruPushFront(f)
		p.evictLocked(s)
	}
	return nil
}

// pinLocked pins a frame, removing it from the shard's LRU if it was
// unpinned. The caller must hold the shard lock.
func (s *shard) pinLocked(f *frame) {
	if f.pins == 0 && f.inLRU {
		s.lruRemove(f)
	}
	f.pins++
}

// evictLocked evicts least-recently-used unpinned frames of the shard
// until its budget is honored. Frames that fail to serialize stay resident
// (the error will resurface on Flush). The caller must hold s.mu.
func (p *Pool) evictLocked(s *shard) {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget {
		f := s.lruTail
		if f == nil {
			return // everything pinned; cannot evict further
		}
		if f.dirty {
			if err := p.writeBackLocked(s, f); err != nil {
				// Keep the frame; skip eviction this round to avoid
				// data loss. Promote it so we do not spin on it.
				s.lruRemove(f)
				s.lruPushFront(f)
				return
			}
		}
		s.lruRemove(f)
		delete(s.resident, f.n.ID)
		s.bytes -= f.bytes
		s.stats.Evictions++
	}
}

// writeBackLocked serializes a dirty frame to the store. The caller must
// hold s.mu.
func (p *Pool) writeBackLocked(s *shard, f *frame) error {
	buf, err := p.codec.Marshal(f.n, f.bytes)
	if err != nil {
		return err
	}
	if err := p.store.Write(f.n.ID, buf); err != nil {
		return err
	}
	s.stats.Writes++
	f.dirty = false
	return nil
}

// Flush writes every dirty resident node back to the store, shard by
// shard.
func (p *Pool) Flush() error {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.resident {
			if f.dirty {
				if err := p.writeBackLocked(s, f); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Invalidate drops every unpinned frame — clean and dirty alike — without
// writing anything back. It exists for the failed-commit path: when a
// store commit fails, the durable image is some earlier commit boundary,
// so resident nodes (and especially un-flushed dirty ones) no longer
// describe it and must not be served or written back later. Pinned frames
// cannot be dropped; Invalidate reports how many remain resident.
func (p *Pool) Invalidate() int {
	pinned := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, f := range s.resident {
			if f.pins > 0 {
				pinned++
				continue
			}
			if f.inLRU {
				s.lruRemove(f)
			}
			delete(s.resident, id)
			s.bytes -= f.bytes
		}
		s.mu.Unlock()
	}
	return pinned
}

// Free drops the node from the pool and releases its page in the store.
// The node must be unpinned.
func (p *Pool) Free(id page.ID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.resident[id]; ok {
		if f.pins > 0 {
			s.mu.Unlock()
			return ErrPinned
		}
		if f.inLRU {
			s.lruRemove(f)
		}
		delete(s.resident, id)
		s.bytes -= f.bytes
	}
	s.mu.Unlock()
	return p.store.Free(id)
}

// PageBytes reports the on-page size of a resident or stored node.
func (p *Pool) PageBytes(id page.ID) (int, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.resident[id]; ok {
		s.mu.Unlock()
		return f.bytes, nil
	}
	s.mu.Unlock()
	return p.store.PageSize(id)
}

// Resident reports the number of nodes currently in memory across all
// shards.
func (p *Pool) Resident() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += len(s.resident)
		s.mu.Unlock()
	}
	return total
}

// Stats returns pool counters aggregated across shards. Shards are
// snapshotted one at a time, so under concurrent load the aggregate is a
// consistent-per-shard, approximate-global view.
func (p *Pool) Stats() Stats {
	var out Stats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}

// ShardStats returns a per-shard snapshot of the counters, in shard order.
// Intended for tests and diagnostics.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
	}
	return out
}
