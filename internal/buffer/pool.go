// Package buffer implements a pinning LRU buffer pool over decoded segment
// index nodes, with copy-on-write page versioning for MVCC snapshot reads.
//
// The tree layer reads and writes nodes exclusively through a Pool. Nodes
// are decoded once on miss and stay resident until evicted; eviction
// considers only unpinned frames, serializing dirty ones back to the store.
// This mirrors a conventional database buffer manager while letting the
// index algorithms work on structured nodes rather than raw bytes.
//
// # Page versioning
//
// Every frame carries the epoch it was installed at. The single writer of a
// tree brackets each mutating operation with BeginWrite(e) and Publish(e):
// inside the bracket, GetMut clones the published head of a page before
// mutating it (copy-on-write), retiring the pre-image into the shard's
// version chain with supersession epoch e, and Free defers the store-level
// page release the same way. Readers call GetVersion(id, epoch) with the
// epoch of the tree state they pinned: the resident head serves them when
// it was installed at or before their epoch, otherwise the version chain
// does, otherwise the store does (the retention discipline guarantees the
// durable image is never newer than what such a fall-through may observe —
// see the invariant below). Readers never pin; published node versions are
// immutable, and Go's garbage collector keeps a node alive for as long as
// any query still holds its pointer.
//
// Retention invariant: whenever a page version visible at epoch E is
// superseded or its page freed, the pre-image is retained in the version
// chain until Collect(min) runs with min >= its supersession epoch. The
// tree derives min from its snapshot registry (the smallest pinned epoch,
// or the published epoch when nothing is pinned), so a version is reclaimed
// only once every snapshot pinned at or before its supersession epoch has
// been released. Frames installed inside an unpublished bracket are never
// evicted (their write-back would clobber the durable pre-image), which is
// also what makes Rollback possible: dropping the bracket's heads and
// reinstating their pre-images restores the pool to the published state.
//
// The pool is lock-striped: pages hash to one of N shards, each with its
// own mutex, LRU list, byte budget, and counters. Concurrent readers
// touching different pages therefore proceed without contending on a
// single pool-wide lock; only accesses to pages in the same shard
// serialize. The byte budget is split evenly across shards and covers the
// resident heads; retained superseded versions are accounted separately
// (RetainedBytes) and live exactly as long as the snapshots that need them.
//
// The paper's search-cost metric (average index nodes accessed per search)
// is independent of buffer residency; the pool's hit/miss statistics are
// additional observability on top of that logical metric.
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// ErrPinned is returned when an operation requires an unpinned frame.
var ErrPinned = errors.New("buffer: page is pinned")

// Stats counts pool activity since creation. For a sharded pool the
// counters are aggregated across shards.
type Stats struct {
	Gets      uint64 // Get/GetVersion calls
	Hits      uint64 // calls satisfied from memory
	Misses    uint64 // calls that read from the store
	Evictions uint64 // frames evicted to honor the budget
	Writes    uint64 // dirty pages written back

	Clones        uint64 // copy-on-write clones made by GetMut
	Collected     uint64 // superseded version frames reclaimed by Collect
	DeferredFrees uint64 // store page frees executed after their epoch drained
	Retained      uint64 // superseded version frames currently retained (gauge)
	RetainedBytes uint64 // bytes held by retained version frames (gauge)
}

// add accumulates o's counters into s (gauges are summed too: for a
// sharded pool the aggregate gauge is the total across shards).
func (s *Stats) add(o Stats) {
	s.Gets += o.Gets
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writes += o.Writes
	s.Clones += o.Clones
	s.Collected += o.Collected
	s.DeferredFrees += o.DeferredFrees
	s.Retained += o.Retained
	s.RetainedBytes += o.RetainedBytes
}

// HitRate returns Hits/Gets, or 0 when no Gets happened.
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

type frame struct {
	n     *node.Node
	bytes int // on-page size of the node
	pins  int
	dirty bool

	// install is the write epoch the frame's version was created at (0 for
	// versions loaded from the store outside a write bracket, which are
	// visible to every snapshot). superseded is the epoch a newer version
	// replaced this one at; it is 0 while the frame is the resident head
	// and strictly positive once the frame is retired to a version chain.
	install    uint64
	superseded uint64

	// Intrusive LRU links. Frames double as their own list elements so
	// unpinning never allocates (a container/list push costs an Element
	// plus boxing the page ID — one or two heap objects per node visit
	// on the read path). inLRU distinguishes an unlinked frame from one
	// linked at either end of the list.
	lruPrev, lruNext *frame
	inLRU            bool
}

// visibleAt reports whether a retired version serves a snapshot at epoch e.
func (f *frame) visibleAt(e uint64) bool {
	return f.install <= e && e < f.superseded
}

// pageVersions is the retained history of one page: superseded version
// frames newest-first, plus the epoch the page itself was freed at (0 while
// the page is live). Entries exist only while some retained frame or a
// pending deferred free needs them; Collect removes drained entries.
type pageVersions struct {
	frames []*frame // newest first; every frame has superseded > 0
	deadAt uint64   // epoch the page was freed at; 0 = page is live
}

// shard is one lock stripe: an independent LRU pool over the pages that
// hash to it.
type shard struct {
	mu       sync.Mutex
	budget   int // max resident bytes in this shard; 0 means unlimited
	resident map[page.ID]*frame
	old      map[page.ID]*pageVersions // retained superseded versions + graveyard
	// Intrusive list of unpinned frames; lruHead = most recently used,
	// lruTail = eviction candidate.
	lruHead, lruTail *frame
	bytes            int // resident head bytes in this shard
	retainedBytes    int // bytes held by retained version frames
	stats            Stats

	// pad keeps neighboring shards' mutexes off one cache line.
	_ [64]byte
}

// lruPushFront links an unpinned frame at the MRU end. The caller must
// hold s.mu and the frame must not already be linked.
func (s *shard) lruPushFront(f *frame) {
	f.lruPrev = nil
	f.lruNext = s.lruHead
	if s.lruHead != nil {
		s.lruHead.lruPrev = f
	}
	s.lruHead = f
	if s.lruTail == nil {
		s.lruTail = f
	}
	f.inLRU = true
}

// lruRemove unlinks a frame from the shard's LRU. The caller must hold
// s.mu and the frame must be linked.
func (s *shard) lruRemove(f *frame) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		s.lruHead = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		s.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
	f.inLRU = false
}

// Pool is a pinning, lock-striped LRU buffer pool with copy-on-write page
// versioning. The zero value is not usable; use New or NewSharded.
type Pool struct {
	store  store.Store
	codec  node.Codec
	shards []shard
	mask   uint64 // len(shards) - 1; shard count is a power of two

	// published is the newest committed write epoch: frames installed at
	// or below it are durable-eligible (evictable); frames above it belong
	// to the in-progress bracket. Written under the tree's write lock,
	// read under shard locks, hence atomic.
	published atomic.Uint64

	// writeEpoch is the epoch of the in-progress write bracket (equals
	// published when no bracket is open). Only the single writer touches
	// it, always under the tree's write lock.
	writeEpoch uint64

	// retained counts version frames across all shards' chains; a cheap
	// signal for "is there anything to collect" that readers can poll
	// without taking shard locks.
	retained atomic.Int64
}

// defaultShardCount sizes the stripe set to the parallelism available at
// construction time: at least 8 shards so small machines still spread
// collisions, at most 128, rounded up to a power of two.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0) * 4
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a pool over the given store with the default shard count.
// budgetBytes caps resident node bytes (0 = unlimited). The pool must
// outlive every node pointer handed out while pinned.
func New(st store.Store, codec node.Codec, budgetBytes int) *Pool {
	return NewSharded(st, codec, budgetBytes, 0)
}

// NewSharded creates a pool with an explicit shard count (rounded up to a
// power of two; <= 0 selects the default). One shard gives a single global
// LRU with an exact byte budget; more shards trade budget precision for
// concurrent throughput.
func NewSharded(st store.Store, codec node.Codec, budgetBytes, shards int) *Pool {
	if shards <= 0 {
		shards = defaultShardCount()
	}
	shards = ceilPow2(shards)
	p := &Pool{
		store:  st,
		codec:  codec,
		shards: make([]shard, shards),
		mask:   uint64(shards - 1),
	}
	perShard := 0
	if budgetBytes > 0 {
		perShard = (budgetBytes + shards - 1) / shards
	}
	for i := range p.shards {
		p.shards[i].budget = perShard
		p.shards[i].resident = make(map[page.ID]*frame)
		p.shards[i].old = make(map[page.ID]*pageVersions)
	}
	return p
}

// Shards reports the number of lock stripes.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a page ID to its stripe. Sequentially allocated IDs are
// mixed (Fibonacci hashing) so tree levels do not clump into one shard.
func (p *Pool) shardFor(id page.ID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &p.shards[(h>>32)&p.mask]
}

// BeginWrite opens a write bracket at the given epoch (the tree's published
// epoch plus one). Frames installed by NewNode and GetMut inside the
// bracket carry this epoch and stay resident until Publish or Rollback.
// Only the tree's single writer may call this, under its write lock.
func (p *Pool) BeginWrite(epoch uint64) { p.writeEpoch = epoch }

// Publish commits the open write bracket: frames installed at the epoch
// become evictable and the pre-images retired under it become reclaimable
// once no snapshot needs them (see Collect).
func (p *Pool) Publish(epoch uint64) { p.published.Store(epoch) }

// inBracket reports whether a write bracket is open. Writer-only.
func (p *Pool) inBracket() bool { return p.writeEpoch > p.published.Load() }

// NewNode allocates a fresh page of pageBytes in the store and returns the
// corresponding empty node, pinned and marked dirty. Inside a write bracket
// the frame carries the bracket epoch, so snapshots pinned before the
// bracket never observe it.
func (p *Pool) NewNode(level, pageBytes int) (*node.Node, error) {
	id, err := p.store.Allocate(pageBytes)
	if err != nil {
		return nil, err
	}
	n := &node.Node{ID: id, Level: level}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resident[id] = &frame{n: n, bytes: pageBytes, pins: 1, dirty: true, install: p.writeEpoch}
	s.bytes += pageBytes
	p.evictLocked(s)
	return n, nil
}

// Get returns the newest version of the node for id, pinned. Every Get must
// be paired with an Unpin. Inside a write bracket the newest version may be
// the bracket's unpublished clone — exactly what the writer's read-only
// passes must observe.
func (p *Pool) Get(id page.ID) (*node.Node, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	if f, ok := s.resident[id]; ok {
		s.stats.Hits++
		s.pinLocked(f)
		return f.n, nil
	}
	s.stats.Misses++
	if pv, dead := s.old[id]; dead && pv.deadAt != 0 {
		// The page was freed in a committed or in-progress bracket and the
		// store-level free is merely deferred for old snapshots; to the
		// newest-version view it is gone.
		return nil, fmt.Errorf("buffer: get %v: %w", id, store.ErrNotFound)
	}
	f, err := p.readLocked(s, id)
	if err != nil {
		return nil, err
	}
	f.pins = 1
	s.resident[id] = f
	s.bytes += f.bytes
	p.evictLocked(s)
	return f.n, nil
}

// GetVersion returns the version of the node for id visible at the given
// snapshot epoch, without pinning it. The returned node is immutable (the
// writer mutates only unpublished clones) and remains valid for as long as
// the caller holds the pointer, even across eviction. The caller must hold
// a snapshot registration at the epoch, which is what keeps the version
// chain populated (see the retention invariant in the package comment).
//
//seglint:hotpath
func (p *Pool) GetVersion(id page.ID, epoch uint64) (*node.Node, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	head, ok := s.resident[id]
	if ok && head.install <= epoch {
		s.stats.Hits++
		if head.pins == 0 && head.inLRU {
			s.lruRemove(head)
			s.lruPushFront(head)
		}
		return head.n, nil
	}
	if pv, ok := s.old[id]; ok {
		for _, f := range pv.frames {
			if f.visibleAt(epoch) {
				s.stats.Hits++
				return f.n, nil
			}
		}
		// No retained version covers the epoch: the visible version is the
		// durable image (a freed page's final content, or a chain whose
		// head was evicted). Serve it without caching — installing a head
		// here would collide with the chain's epoch bookkeeping.
		s.stats.Misses++
		f, err := p.readLocked(s, id)
		if err != nil {
			return nil, err
		}
		return f.n, nil
	}
	if ok {
		// head.install > epoch with no version chain: by the retention
		// invariant no registered snapshot at this epoch can exist. Serve
		// the durable pre-image best-effort rather than corrupting state.
		s.stats.Misses++
		f, err := p.readLocked(s, id)
		if err != nil {
			return nil, err
		}
		return f.n, nil
	}
	s.stats.Misses++
	f, err := p.readLocked(s, id)
	if err != nil {
		return nil, err
	}
	s.resident[id] = f
	s.bytes += f.bytes
	s.lruPushFront(f)
	p.evictLocked(s)
	return f.n, nil
}

// readLocked reads and decodes a page from the store, returning an
// uninstalled frame. The install epoch is inferred from the version chain:
// the durable image of a page with retained versions is its most recently
// superseded-away head, which was installed exactly when the newest chain
// entry was retired. The caller must hold s.mu; the store read happens
// under the shard lock so concurrent accesses cannot decode the same page
// twice.
func (p *Pool) readLocked(s *shard, id page.ID) (*frame, error) {
	buf, err := p.store.Read(id)
	if err != nil {
		return nil, err
	}
	n, err := p.codec.Unmarshal(buf, id)
	if err != nil {
		return nil, fmt.Errorf("buffer: decode %v: %w", id, err)
	}
	f := &frame{n: n, bytes: len(buf)}
	if pv, ok := s.old[id]; ok && len(pv.frames) > 0 {
		f.install = pv.frames[0].superseded
	}
	return f, nil
}

// GetMut returns the node for id ready for mutation inside the open write
// bracket, pinned. The first GetMut of a page per bracket clones the
// published head (copy-on-write) and retires the pre-image into the version
// chain; later GetMuts of the same page return the same clone. Outside a
// bracket GetMut degenerates to Get. Only the tree's single writer may call
// this, under its write lock.
func (p *Pool) GetMut(id page.ID) (*node.Node, error) {
	if !p.inBracket() {
		return p.Get(id)
	}
	we := p.writeEpoch
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	if f, ok := s.resident[id]; ok {
		if f.install == we {
			s.stats.Hits++
			s.pinLocked(f)
			return f.n, nil
		}
		if f.pins > 0 {
			// A pinned published head must not be retired: the pin holder
			// would unpin into a frame no longer resident. This is a pin
			// discipline bug in the caller.
			return nil, fmt.Errorf("buffer: copy-on-write of pinned %v: %w", id, ErrPinned)
		}
		s.stats.Hits++
		clone := f.n.CloneCompact()
		if f.inLRU {
			s.lruRemove(f)
		}
		delete(s.resident, id)
		s.bytes -= f.bytes
		p.retireLocked(s, id, f, we)
		nf := &frame{n: clone, bytes: f.bytes, pins: 1, dirty: true, install: we}
		s.resident[id] = nf
		s.bytes += nf.bytes
		s.stats.Clones++
		p.evictLocked(s)
		return clone, nil
	}
	s.stats.Misses++
	if pv, dead := s.old[id]; dead && pv.deadAt != 0 {
		return nil, fmt.Errorf("buffer: get %v: %w", id, store.ErrNotFound)
	}
	pre, err := p.readLocked(s, id)
	if err != nil {
		return nil, err
	}
	// Retain the durable pre-image for snapshots pinned below the bracket,
	// then mutate a clone. The pre-image is reclaimed at the bracket's end
	// when no snapshot needs it.
	p.retireLocked(s, id, pre, we)
	clone := pre.n.CloneCompact()
	nf := &frame{n: clone, bytes: pre.bytes, pins: 1, dirty: true, install: we}
	s.resident[id] = nf
	s.bytes += nf.bytes
	s.stats.Clones++
	p.evictLocked(s)
	return clone, nil
}

// retireLocked pushes a superseded version frame onto the page's chain.
// The caller must hold s.mu and must already have detached f from the
// resident map and LRU.
func (p *Pool) retireLocked(s *shard, id page.ID, f *frame, epoch uint64) {
	f.superseded = epoch
	f.dirty = false
	pv, ok := s.old[id]
	if !ok {
		pv = &pageVersions{}
		s.old[id] = pv
	}
	pv.frames = append(pv.frames, nil)
	copy(pv.frames[1:], pv.frames)
	pv.frames[0] = f
	s.retainedBytes += f.bytes
	p.retained.Add(1)
}

// Unpin releases one pin. dirty marks the node as modified since fetch; it
// will be written back before eviction or on Flush.
func (p *Pool) Unpin(id page.ID, dirty bool) error {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.unpinLocked(s, id, dirty)
}

// UnpinBatch releases one clean pin on each id, grouping consecutive ids
// that hash to the same shard under a single lock acquisition. On error
// the remaining ids stay pinned (callers treat any failure as fatal, the
// same way Tree.done does).
//
// The unlockpath suppression: cur aliases s after `cur = s`, but the
// analyzer's textual lock keys treat cur.mu and s.mu as distinct; every
// path here holds exactly one shard lock and releases it before return
// or re-acquisition.
//
//seglint:allow unlockpath — cur/s aliasing: one shard lock held at a time, released on every path
func (p *Pool) UnpinBatch(ids []page.ID) error {
	var cur *shard
	for _, id := range ids {
		if s := p.shardFor(id); s != cur {
			if cur != nil {
				cur.mu.Unlock()
			}
			s.mu.Lock()
			cur = s
		}
		if err := p.unpinLocked(cur, id, false); err != nil {
			cur.mu.Unlock()
			return err
		}
	}
	if cur != nil {
		cur.mu.Unlock()
	}
	return nil
}

// unpinLocked releases one pin on a resident frame, pushing it onto the
// shard's LRU when the pin count reaches zero. The caller must hold s.mu.
func (p *Pool) unpinLocked(s *shard, id page.ID, dirty bool) error {
	f, ok := s.resident[id]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident %v", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unpin of unpinned %v", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		s.lruPushFront(f)
		p.evictLocked(s)
	}
	return nil
}

// pinLocked pins a frame, removing it from the shard's LRU if it was
// unpinned. The caller must hold the shard lock.
func (s *shard) pinLocked(f *frame) {
	if f.pins == 0 && f.inLRU {
		s.lruRemove(f)
	}
	f.pins++
}

// evictLocked evicts least-recently-used unpinned frames of the shard
// until its budget is honored. Frames installed by the open write bracket
// are skipped: writing them back would clobber the durable pre-image that
// snapshots below the bracket (and Rollback) still rely on. Frames that
// fail to serialize stay resident (the error will resurface on Flush). The
// caller must hold s.mu.
func (p *Pool) evictLocked(s *shard) {
	if s.budget <= 0 {
		return
	}
	published := p.published.Load()
	f := s.lruTail
	for f != nil && s.bytes > s.budget {
		prev := f.lruPrev
		if f.install > published {
			f = prev
			continue
		}
		if f.dirty {
			if err := p.writeBackLocked(s, f); err != nil {
				// Keep the frame; skip it this round to avoid data loss
				// (the error will resurface on Flush).
				f = prev
				continue
			}
		}
		s.lruRemove(f)
		delete(s.resident, f.n.ID)
		s.bytes -= f.bytes
		s.stats.Evictions++
		f = prev
	}
}

// writeBackLocked serializes a dirty frame to the store. The caller must
// hold s.mu.
func (p *Pool) writeBackLocked(s *shard, f *frame) error {
	buf, err := p.codec.Marshal(f.n, f.bytes)
	if err != nil {
		return err
	}
	if err := p.store.Write(f.n.ID, buf); err != nil {
		return err
	}
	s.stats.Writes++
	f.dirty = false
	return nil
}

// Flush writes every dirty resident node back to the store, shard by
// shard. The tree calls it only between write brackets, so every dirty
// frame is a published version.
func (p *Pool) Flush() error {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.resident {
			if f.dirty {
				if err := p.writeBackLocked(s, f); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// Invalidate drops every unpinned resident frame — clean and dirty alike —
// without writing anything back. It exists for the failed-commit path:
// when a store commit fails, the durable image is some earlier commit
// boundary, so resident nodes (and especially un-flushed dirty ones) no
// longer describe it and must not be served or written back later. Pinned
// frames cannot be dropped; Invalidate reports how many remain resident.
// Retained version chains are kept: they are memory-only state serving
// in-flight snapshots, and the broken store latches every later read
// anyway.
func (p *Pool) Invalidate() int {
	pinned := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, f := range s.resident {
			if f.pins > 0 {
				pinned++
				continue
			}
			if f.inLRU {
				s.lruRemove(f)
			}
			delete(s.resident, id)
			s.bytes -= f.bytes
		}
		s.mu.Unlock()
	}
	return pinned
}

// Free releases a page. Outside a write bracket (construction, recovery)
// the frame is dropped and the store page freed immediately. Inside a
// bracket the release is deferred so snapshots pinned below the bracket
// keep reading the page: the published head (if any) is retired into the
// version chain, the page is marked dead at the bracket epoch, and the
// store-level free runs in a later Collect once every snapshot that could
// see the page has been released. The node must be unpinned.
func (p *Pool) Free(id page.ID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	f, ok := s.resident[id]
	if ok && f.pins > 0 {
		s.mu.Unlock()
		return ErrPinned
	}
	if !p.inBracket() {
		if ok {
			if f.inLRU {
				s.lruRemove(f)
			}
			delete(s.resident, id)
			s.bytes -= f.bytes
		}
		s.mu.Unlock()
		return p.store.Free(id)
	}
	we := p.writeEpoch
	if ok {
		if f.inLRU {
			s.lruRemove(f)
		}
		delete(s.resident, id)
		s.bytes -= f.bytes
		if f.install == we {
			// The head was created inside this bracket; no snapshot can
			// see it. If it cloned a published pre-image, the chain entry
			// keeps serving old snapshots; if it was a fresh allocation,
			// nothing references the page and the store free is immediate.
			if pv, chained := s.old[id]; !chained || pv.frames[0].superseded != we {
				s.mu.Unlock()
				return p.store.Free(id)
			}
		} else {
			p.retireLocked(s, id, f, we)
		}
	}
	pv, chained := s.old[id]
	if !chained {
		pv = &pageVersions{}
		s.old[id] = pv
	}
	pv.deadAt = we
	s.mu.Unlock()
	return nil
}

// Rollback aborts the open write bracket: every frame installed at the
// bracket epoch is dropped, pre-images retired under the bracket are
// reinstated as resident heads, and page frees deferred by the bracket are
// undone. Fresh pages allocated by the bracket are freed in the store.
// After Rollback the pool describes exactly the published state. Only the
// tree's single writer may call this, under its write lock.
func (p *Pool) Rollback() error {
	if !p.inBracket() {
		return nil
	}
	we := p.writeEpoch
	var errs []error
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		// Undo deferred frees first so their pre-images are back in the
		// chains for the head-restoration pass below.
		for _, pv := range s.old {
			if pv.deadAt == we {
				pv.deadAt = 0
			}
		}
		for id, f := range s.resident {
			if f.install != we {
				continue
			}
			if f.inLRU {
				s.lruRemove(f)
			}
			delete(s.resident, id)
			s.bytes -= f.bytes
			// An error-path frame may still be pinned (the op bailed out
			// mid-descent); dropping it is exactly the point of rollback.
			if pv, ok := s.old[id]; ok && len(pv.frames) > 0 && pv.frames[0].superseded == we {
				pre := pv.frames[0]
				pv.frames = pv.frames[1:]
				s.retainedBytes -= pre.bytes
				p.retained.Add(-1)
				if len(pv.frames) == 0 && pv.deadAt == 0 {
					delete(s.old, id)
				}
				pre.superseded = 0
				pre.pins = 0
				s.resident[id] = pre
				s.bytes += pre.bytes
				s.lruPushFront(pre)
			} else {
				// Fresh allocation of the aborted bracket.
				if err := p.store.Free(id); err != nil {
					errs = append(errs, err)
				}
			}
		}
		// A page both CoW'd (or freed) and whose clone was already dropped
		// by Free inside the bracket: restore the pre-image head.
		for id, pv := range s.old {
			if _, ok := s.resident[id]; ok {
				continue
			}
			if len(pv.frames) > 0 && pv.frames[0].superseded == we {
				pre := pv.frames[0]
				pv.frames = pv.frames[1:]
				s.retainedBytes -= pre.bytes
				p.retained.Add(-1)
				if len(pv.frames) == 0 && pv.deadAt == 0 {
					delete(s.old, id)
				}
				pre.superseded = 0
				pre.pins = 0
				s.resident[id] = pre
				s.bytes += pre.bytes
				s.lruPushFront(pre)
			}
		}
		p.evictLocked(s)
		s.mu.Unlock()
	}
	p.writeEpoch = p.published.Load()
	return errors.Join(errs...)
}

// Collect reclaims version chain entries whose supersession epoch is at or
// below min — the smallest epoch any registered snapshot is pinned at (or
// the published epoch when nothing is pinned). When freePages is set,
// pages whose deferred free has drained (deadAt <= min) are released in
// the store; reader-triggered collections pass false so store interaction
// stays on writer paths. min must not exceed the published epoch.
func (p *Pool) Collect(min uint64, freePages bool) error {
	var errs []error
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for id, pv := range s.old {
			kept := pv.frames[:0]
			for _, f := range pv.frames {
				if f.superseded > min {
					kept = append(kept, f)
					continue
				}
				s.retainedBytes -= f.bytes
				s.stats.Collected++
				p.retained.Add(-1)
			}
			for j := len(kept); j < len(pv.frames); j++ {
				pv.frames[j] = nil
			}
			pv.frames = kept
			if len(pv.frames) > 0 {
				continue
			}
			if pv.deadAt == 0 {
				delete(s.old, id)
				continue
			}
			if pv.deadAt <= min && freePages {
				if err := p.store.Free(id); err != nil {
					errs = append(errs, err)
					continue
				}
				s.stats.DeferredFrees++
				delete(s.old, id)
			}
		}
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}

// RetainedVersions reports the number of superseded version frames
// currently retained across all shards, without taking shard locks.
func (p *Pool) RetainedVersions() int { return int(p.retained.Load()) }

// PageBytes reports the on-page size of a resident or stored node.
func (p *Pool) PageBytes(id page.ID) (int, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.resident[id]; ok {
		s.mu.Unlock()
		return f.bytes, nil
	}
	s.mu.Unlock()
	return p.store.PageSize(id)
}

// Resident reports the number of nodes currently in memory across all
// shards (resident heads; retained versions are not counted).
func (p *Pool) Resident() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += len(s.resident)
		s.mu.Unlock()
	}
	return total
}

// Stats returns pool counters aggregated across shards. Shards are
// snapshotted one at a time, so under concurrent load the aggregate is a
// consistent-per-shard, approximate-global view.
func (p *Pool) Stats() Stats {
	var out Stats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		st := s.stats
		st.RetainedBytes = uint64(s.retainedBytes)
		st.Retained = 0
		for _, pv := range s.old {
			st.Retained += uint64(len(pv.frames))
		}
		out.add(st)
		s.mu.Unlock()
	}
	return out
}

// ShardStats returns a per-shard snapshot of the counters, in shard order.
// Intended for tests and diagnostics.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		out[i] = s.stats
		out[i].RetainedBytes = uint64(s.retainedBytes)
		for _, pv := range s.old {
			out[i].Retained += uint64(len(pv.frames))
		}
		s.mu.Unlock()
	}
	return out
}
