// Package buffer implements a pinning LRU buffer pool over decoded segment
// index nodes.
//
// The tree layer reads and writes nodes exclusively through a Pool. Nodes
// are decoded once on miss and stay resident until evicted; eviction
// considers only unpinned frames, serializing dirty ones back to the store.
// This mirrors a conventional database buffer manager while letting the
// index algorithms work on structured nodes rather than raw bytes.
//
// The paper's search-cost metric (average index nodes accessed per search)
// is independent of buffer residency; the pool's hit/miss statistics are
// additional observability on top of that logical metric.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// ErrPinned is returned when an operation requires an unpinned frame.
var ErrPinned = errors.New("buffer: page is pinned")

// Stats counts pool activity since creation.
type Stats struct {
	Gets      uint64 // Get calls
	Hits      uint64 // Get calls satisfied from memory
	Misses    uint64 // Get calls that read from the store
	Evictions uint64 // frames evicted to honor the budget
	Writes    uint64 // dirty pages written back
}

type frame struct {
	n     *node.Node
	bytes int // on-page size of the node
	pins  int
	dirty bool
	elem  *list.Element // position in lru; nil while pinned
}

// Pool is a pinning LRU buffer pool. The zero value is not usable; use New.
type Pool struct {
	mu       sync.Mutex
	store    store.Store
	codec    node.Codec
	budget   int // max resident bytes; 0 means unlimited
	resident map[page.ID]*frame
	lru      *list.List // unpinned frames, front = most recently used
	bytes    int        // total resident bytes
	stats    Stats
}

// New creates a pool over the given store. budgetBytes caps resident node
// bytes (0 = unlimited). The pool must outlive every node pointer handed
// out while pinned.
func New(st store.Store, codec node.Codec, budgetBytes int) *Pool {
	return &Pool{
		store:    st,
		codec:    codec,
		budget:   budgetBytes,
		resident: make(map[page.ID]*frame),
		lru:      list.New(),
	}
}

// NewNode allocates a fresh page of pageBytes in the store and returns the
// corresponding empty node, pinned and marked dirty.
func (p *Pool) NewNode(level, pageBytes int) (*node.Node, error) {
	id, err := p.store.Allocate(pageBytes)
	if err != nil {
		return nil, err
	}
	n := &node.Node{ID: id, Level: level}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resident[id] = &frame{n: n, bytes: pageBytes, pins: 1, dirty: true}
	p.bytes += pageBytes
	p.evictLocked()
	return n, nil
}

// Get returns the node for id, pinned. Every Get must be paired with an
// Unpin.
func (p *Pool) Get(id page.ID) (*node.Node, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Gets++
	if f, ok := p.resident[id]; ok {
		p.stats.Hits++
		p.pinLocked(f)
		return f.n, nil
	}
	p.stats.Misses++
	// Read outside would allow concurrent duplicate decodes; for the
	// single-writer workloads of a segment index the simplicity of holding
	// the lock across the read is preferred.
	buf, err := p.store.Read(id)
	if err != nil {
		return nil, err
	}
	n, err := p.codec.Unmarshal(buf, id)
	if err != nil {
		return nil, fmt.Errorf("buffer: decode %v: %w", id, err)
	}
	f := &frame{n: n, bytes: len(buf), pins: 1}
	p.resident[id] = f
	p.bytes += len(buf)
	p.evictLocked()
	return n, nil
}

// Unpin releases one pin. dirty marks the node as modified since fetch; it
// will be written back before eviction or on Flush.
func (p *Pool) Unpin(id page.ID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.resident[id]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident %v", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unpin of unpinned %v", id)
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
	if f.pins == 0 {
		f.elem = p.lru.PushFront(f.n.ID)
		p.evictLocked()
	}
	return nil
}

func (p *Pool) pinLocked(f *frame) {
	if f.pins == 0 && f.elem != nil {
		p.lru.Remove(f.elem)
		f.elem = nil
	}
	f.pins++
}

// evictLocked evicts least-recently-used unpinned frames until the budget
// is honored. Frames that fail to serialize stay resident (the error will
// resurface on Flush).
func (p *Pool) evictLocked() {
	if p.budget <= 0 {
		return
	}
	for p.bytes > p.budget {
		back := p.lru.Back()
		if back == nil {
			return // everything pinned; cannot evict further
		}
		id := back.Value.(page.ID)
		f := p.resident[id]
		if f.dirty {
			if err := p.writeBackLocked(f); err != nil {
				// Keep the frame; skip eviction this round to avoid
				// data loss. Promote it so we do not spin on it.
				p.lru.MoveToFront(back)
				return
			}
		}
		p.lru.Remove(back)
		delete(p.resident, id)
		p.bytes -= f.bytes
		p.stats.Evictions++
	}
}

func (p *Pool) writeBackLocked(f *frame) error {
	buf, err := p.codec.Marshal(f.n, f.bytes)
	if err != nil {
		return err
	}
	if err := p.store.Write(f.n.ID, buf); err != nil {
		return err
	}
	p.stats.Writes++
	f.dirty = false
	return nil
}

// Flush writes every dirty resident node back to the store.
func (p *Pool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.resident {
		if f.dirty {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Free drops the node from the pool and releases its page in the store.
// The node must be unpinned.
func (p *Pool) Free(id page.ID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.resident[id]; ok {
		if f.pins > 0 {
			return ErrPinned
		}
		if f.elem != nil {
			p.lru.Remove(f.elem)
		}
		delete(p.resident, id)
		p.bytes -= f.bytes
	}
	return p.store.Free(id)
}

// PageBytes reports the on-page size of a resident or stored node.
func (p *Pool) PageBytes(id page.ID) (int, error) {
	p.mu.Lock()
	if f, ok := p.resident[id]; ok {
		p.mu.Unlock()
		return f.bytes, nil
	}
	p.mu.Unlock()
	return p.store.PageSize(id)
}

// Resident reports the number of nodes currently in memory.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.resident)
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
