package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// stores returns fresh instances of every Store implementation for
// conformance testing.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	ws, err := OpenWALStore(filepath.Join(t.TempDir(), "wal-pages.db"))
	if err != nil {
		t.Fatalf("OpenWALStore: %v", err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"file": fs,
		"wal":  ws,
	}
}

func TestStoreConformance(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			id, err := s.Allocate(128)
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			if sz, err := s.PageSize(id); err != nil || sz != 128 {
				t.Fatalf("PageSize = %d, %v", sz, err)
			}

			// Fresh pages read back zeroed.
			got, err := s.Read(id)
			if err != nil {
				t.Fatalf("Read fresh: %v", err)
			}
			if !bytes.Equal(got, make([]byte, 128)) {
				t.Error("fresh page not zeroed")
			}

			data := bytes.Repeat([]byte{0xAB}, 128)
			if err := s.Write(id, data); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err = s.Read(id)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Read after write mismatch: %v", err)
			}

			// Size mismatch rejected.
			if err := s.Write(id, make([]byte, 64)); err == nil {
				t.Error("Write with wrong size accepted")
			}

			// Unknown IDs rejected.
			if _, err := s.Read(9999); !errors.Is(err, ErrNotFound) {
				t.Errorf("Read unknown = %v, want ErrNotFound", err)
			}
			if err := s.Free(9999); !errors.Is(err, ErrNotFound) {
				t.Errorf("Free unknown = %v, want ErrNotFound", err)
			}

			if s.Len() != 1 {
				t.Errorf("Len = %d, want 1", s.Len())
			}
			if err := s.Free(id); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if s.Len() != 0 {
				t.Errorf("Len after free = %d, want 0", s.Len())
			}
			if _, err := s.Read(id); !errors.Is(err, ErrNotFound) {
				t.Errorf("Read freed = %v, want ErrNotFound", err)
			}

			// Mixed size classes coexist.
			a, _ := s.Allocate(1024)
			b, _ := s.Allocate(2048)
			if err := s.Write(a, bytes.Repeat([]byte{1}, 1024)); err != nil {
				t.Fatal(err)
			}
			if err := s.Write(b, bytes.Repeat([]byte{2}, 2048)); err != nil {
				t.Fatal(err)
			}
			ga, _ := s.Read(a)
			gb, _ := s.Read(b)
			if ga[0] != 1 || gb[0] != 2 || len(ga) != 1024 || len(gb) != 2048 {
				t.Error("mixed size classes corrupted")
			}

			// Closed store fails.
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := s.Allocate(64); !errors.Is(err, ErrClosed) {
				t.Errorf("Allocate after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestStoreRandomizedAgainstModel(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			rng := rand.New(rand.NewSource(42))
			model := make(map[uint64][]byte) // id -> expected contents
			var ids []uint64
			sizes := []int{256, 512, 1024}
			for op := 0; op < 2000; op++ {
				switch r := rng.Intn(10); {
				case r < 4 || len(ids) == 0: // allocate
					size := sizes[rng.Intn(len(sizes))]
					id, err := s.Allocate(size)
					if err != nil {
						t.Fatalf("op %d Allocate: %v", op, err)
					}
					model[uint64(id)] = make([]byte, size)
					ids = append(ids, uint64(id))
				case r < 7: // write
					id := ids[rng.Intn(len(ids))]
					data := make([]byte, len(model[id]))
					rng.Read(data)
					if err := s.Write(pid(id), data); err != nil {
						t.Fatalf("op %d Write: %v", op, err)
					}
					model[id] = data
				case r < 9: // read + verify
					id := ids[rng.Intn(len(ids))]
					got, err := s.Read(pid(id))
					if err != nil {
						t.Fatalf("op %d Read: %v", op, err)
					}
					if !bytes.Equal(got, model[id]) {
						t.Fatalf("op %d contents diverged for id %d", op, id)
					}
				default: // free
					i := rng.Intn(len(ids))
					id := ids[i]
					if err := s.Free(pid(id)); err != nil {
						t.Fatalf("op %d Free: %v", op, err)
					}
					delete(model, id)
					ids = append(ids[:i], ids[i+1:]...)
				}
			}
			if s.Len() != len(model) {
				t.Errorf("Len = %d, model has %d", s.Len(), len(model))
			}
			for id, want := range model {
				got, err := s.Read(pid(id))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("final verify id %d: %v", id, err)
				}
			}
		})
	}
}

func TestFileStoreReopenRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	contents := map[uint64][]byte{}
	for i := 0; i < 20; i++ {
		size := 256 << uint(i%3)
		id, err := fs.Allocate(size)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, size)
		if err := fs.Write(id, data); err != nil {
			t.Fatal(err)
		}
		contents[uint64(id)] = data
	}
	// Free a few pages; their slots should be reusable after reopen.
	freed := []uint64{3, 7, 11}
	for _, id := range freed {
		if err := fs.Free(pid(id)); err != nil {
			t.Fatal(err)
		}
		delete(contents, id)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	if fs2.Len() != len(contents) {
		t.Fatalf("recovered Len = %d, want %d", fs2.Len(), len(contents))
	}
	for id, want := range contents {
		got, err := fs2.Read(pid(id))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("recovered page %d mismatch: %v", id, err)
		}
	}
	// New allocations must not collide with recovered IDs and should reuse
	// freed slots of the same size.
	before := fileSize(t, path)
	id, err := fs2.Allocate(256 << uint(3%3)) // size of a freed slot? 3%3=0 -> 256
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := contents[uint64(id)]; dup {
		t.Fatalf("allocated ID %d collides with live page", id)
	}
	after := fileSize(t, path)
	if after != before {
		t.Errorf("allocation of freed size grew file from %d to %d", before, after)
	}
}

func TestFileStoreTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Allocate(256)
	if err := fs.Write(id, bytes.Repeat([]byte{9}, 256)); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Append garbage simulating a torn write.
	appendBytes(t, path, []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3})

	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer fs2.Close()
	if fs2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", fs2.Len())
	}
	got, err := fs2.Read(id)
	if err != nil || got[0] != 9 {
		t.Fatalf("page lost after torn-tail recovery: %v", err)
	}
}

func TestMemStoreErrorInjection(t *testing.T) {
	m := NewMemStore()
	id, _ := m.Allocate(64)
	boom := errors.New("boom")
	m.InjectReadError(1, boom)
	if _, err := m.Read(id); !errors.Is(err, boom) {
		t.Errorf("injected read error not delivered: %v", err)
	}
	if _, err := m.Read(id); err != nil {
		t.Errorf("error injection should be one-shot: %v", err)
	}
	m.InjectWriteError(1, boom)
	if err := m.Write(id, make([]byte, 64)); !errors.Is(err, boom) {
		t.Errorf("injected write error not delivered: %v", err)
	}
}

func TestAllocateRejectsBadSize(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, err := s.Allocate(0); err == nil {
				t.Error("Allocate(0) accepted")
			}
			if _, err := s.Allocate(-5); err == nil {
				t.Error("Allocate(-5) accepted")
			}
		})
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			// Pre-allocate pages, then hammer them from several goroutines.
			const pages = 16
			ids := make([]uint64, pages)
			for i := range ids {
				id, err := s.Allocate(256)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = uint64(id)
				data := bytes.Repeat([]byte{byte(i)}, 256)
				if err := s.Write(id, data); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for g := 0; g < 8; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						idx := (g + i) % pages
						if g%2 == 0 {
							got, err := s.Read(pid(ids[idx]))
							if err != nil {
								errs <- err
								return
							}
							// Contents are always a uniform fill byte
							// (no torn page).
							for _, b := range got[1:] {
								if b != got[0] {
									errs <- fmt.Errorf("torn page read")
									return
								}
							}
						} else {
							data := bytes.Repeat([]byte{byte(g*37 + i)}, 256)
							if err := s.Write(pid(ids[idx]), data); err != nil {
								errs <- err
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}
