package store

import (
	"sync"

	"segidx/internal/page"
)

// MemStore is an in-memory Store. It is the default backend for experiments
// and benchmarks, where the cost metric is logical node accesses rather than
// disk time.
type MemStore struct {
	mu     sync.RWMutex
	pages  map[page.ID][]byte
	next   page.ID
	closed bool

	// failReads / failWrites inject errors after N more operations when
	// set to a positive countdown; used by failure-injection tests.
	failReads  int
	failWrites int
	injected   error
}

// NewMemStore creates an empty in-memory page store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[page.ID][]byte), next: 1}
}

// Allocate reserves a zeroed page of the given size.
func (m *MemStore) Allocate(size int) (page.ID, error) {
	if size <= 0 {
		return page.Nil, sizeMismatch(page.Nil, size, size)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return page.Nil, ErrClosed
	}
	id := m.next
	m.next++
	m.pages[id] = make([]byte, size)
	return id, nil
}

// Write replaces the page contents.
func (m *MemStore) Write(id page.ID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.failWrites > 0 {
		m.failWrites--
		if m.failWrites == 0 {
			return m.injected
		}
	}
	buf, ok := m.pages[id]
	if !ok {
		return ErrNotFound
	}
	if len(data) != len(buf) {
		return sizeMismatch(id, len(buf), len(data))
	}
	copy(buf, data)
	return nil
}

// Read returns a copy of the page contents.
func (m *MemStore) Read(id page.ID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.failReads > 0 {
		m.failReads--
		if m.failReads == 0 {
			return nil, m.injected
		}
	}
	buf, ok := m.pages[id]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	return out, nil
}

// Free releases the page.
func (m *MemStore) Free(id page.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.pages[id]; !ok {
		return ErrNotFound
	}
	delete(m.pages, id)
	return nil
}

// PageSize reports the allocated size of the page.
func (m *MemStore) PageSize(id page.ID) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 0, ErrClosed
	}
	buf, ok := m.pages[id]
	if !ok {
		return 0, ErrNotFound
	}
	return len(buf), nil
}

// Len reports the number of live pages.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Close marks the store closed.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// InjectReadError makes the Nth subsequent Read fail with err (N = after).
// Test hook.
func (m *MemStore) InjectReadError(after int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failReads = after
	m.injected = err
}

// InjectWriteError makes the Nth subsequent Write fail with err.
// Test hook.
func (m *MemStore) InjectWriteError(after int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failWrites = after
	m.injected = err
}
