package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"segidx/internal/page"
)

// storeModel mirrors what a FileStore must rebuild on reopen: the live
// page table (id -> contents) and the freed slots (size -> count).
type storeModel struct {
	pages map[page.ID][]byte
	freed map[int]int
}

// snapshotFreeLists returns the store's free-slot offsets per size,
// sorted, for order-insensitive comparison.
func snapshotFreeLists(fs *FileStore) map[int][]int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[int][]int64, len(fs.free))
	for size, offs := range fs.free {
		if len(offs) == 0 {
			continue // drained lists leave empty slices behind
		}
		s := append([]int64(nil), offs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out[size] = s
	}
	return out
}

// TestFileStoreRecoveryProperty drives random Allocate/Write/Free
// sequences, reopens the store, and asserts the rebuilt page table and
// free lists match the model exactly — contents, sizes, free-slot offsets,
// and the next-ID watermark.
func TestFileStoreRecoveryProperty(t *testing.T) {
	seeds := []int64{1, 7, 42, 1991, 31337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "pages.db")
			fs, err := OpenFileStore(path)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			m := storeModel{pages: make(map[page.ID][]byte), freed: make(map[int]int)}
			sizes := []int{64, 256, 1024}
			var live []page.ID
			for op := 0; op < 1500; op++ {
				switch r := rng.Intn(10); {
				case r < 4 || len(live) == 0:
					size := sizes[rng.Intn(len(sizes))]
					id, err := fs.Allocate(size)
					if err != nil {
						t.Fatalf("op %d Allocate: %v", op, err)
					}
					if m.freed[size] > 0 {
						m.freed[size]--
					}
					m.pages[id] = make([]byte, size)
					live = append(live, id)
				case r < 8:
					id := live[rng.Intn(len(live))]
					data := make([]byte, len(m.pages[id]))
					rng.Read(data)
					if err := fs.Write(id, data); err != nil {
						t.Fatalf("op %d Write: %v", op, err)
					}
					m.pages[id] = data
				default:
					i := rng.Intn(len(live))
					id := live[i]
					if err := fs.Free(id); err != nil {
						t.Fatalf("op %d Free: %v", op, err)
					}
					m.freed[len(m.pages[id])]++
					delete(m.pages, id)
					live = append(live[:i], live[i+1:]...)
				}
			}
			wantFree := snapshotFreeLists(fs)
			wantNext := fs.NextID()
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}

			fs2, err := OpenFileStore(path)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer fs2.Close()
			if fs2.Len() != len(m.pages) {
				t.Fatalf("recovered Len = %d, model has %d", fs2.Len(), len(m.pages))
			}
			for id, want := range m.pages {
				got, err := fs2.Read(id)
				if err != nil {
					t.Fatalf("recovered Read(%v): %v", id, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("page %v contents diverged after reopen", id)
				}
				if sz, err := fs2.PageSize(id); err != nil || sz != len(want) {
					t.Fatalf("page %v size = %d, %v; want %d", id, sz, err, len(want))
				}
			}
			gotFree := snapshotFreeLists(fs2)
			if len(gotFree) != len(wantFree) {
				t.Fatalf("free lists: got %d size classes, want %d", len(gotFree), len(wantFree))
			}
			for size, want := range wantFree {
				got := gotFree[size]
				if len(got) != len(want) {
					t.Fatalf("free[%d]: %d slots recovered, want %d", size, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("free[%d][%d] = offset %d, want %d", size, i, got[i], want[i])
					}
				}
				if m.freed[size] != len(want) {
					t.Fatalf("model freed[%d] = %d, store had %d", size, m.freed[size], len(want))
				}
			}
			// New IDs never collide with anything ever allocated.
			if next := fs2.NextID(); next < wantNext {
				t.Fatalf("recovered NextID = %v, want >= %v", next, wantNext)
			}
		})
	}
}

// goldenOps drives a fixed operation sequence whose on-disk image is
// pinned in testdata. Any change to the slot format shows up as a byte
// diff against the golden file.
func goldenOps(t *testing.T, fs *FileStore) {
	t.Helper()
	ids := make([]page.ID, 0, 6)
	for i, size := range []int{64, 128, 64, 256, 128, 64} {
		id, err := fs.Allocate(size)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(0x10 + i)}, size)
		if err := fs.Write(id, data); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free two slots (one reused below, one left on the free list).
	if err := fs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Free(ids[4]); err != nil {
		t.Fatal(err)
	}
	// Reuse the freed 64-byte slot.
	id, err := fs.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(id, bytes.Repeat([]byte{0xEE}, 64)); err != nil {
		t.Fatal(err)
	}
}

const goldenImage = "testdata/filestore_v1.db"

// TestGoldenImageFormat regenerates the golden sequence and compares the
// raw file bytes against testdata, pinning the slot layout (magic, state
// byte, size, id, body placement) against accidental format changes. Run
// with UPDATE_GOLDEN=1 to rewrite the image after a deliberate change.
func TestGoldenImageFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.db")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	goldenOps(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenImage, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenImage, len(got))
		return
	}
	want, err := os.ReadFile(goldenImage)
	if err != nil {
		t.Fatalf("missing golden image (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("on-disk format changed: image is %d bytes, golden is %d; "+
			"if the slot format change is deliberate, regenerate with UPDATE_GOLDEN=1",
			len(got), len(want))
	}
}

// TestGoldenImageRecovers opens a copy of the committed golden image and
// asserts the recovered state, proving today's scanner still reads
// yesterday's files.
func TestGoldenImageRecovers(t *testing.T) {
	img, err := os.ReadFile(goldenImage)
	if err != nil {
		t.Fatalf("missing golden image: %v", err)
	}
	path := filepath.Join(t.TempDir(), "golden.db")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open golden image: %v", err)
	}
	defer fs.Close()
	// Live pages: 1,2,4,6 from the build loop plus 7 (the reuse); 3 and 5
	// were freed.
	wantLive := map[page.ID]struct {
		size int
		fill byte
	}{
		1: {64, 0x10}, 2: {128, 0x11}, 4: {256, 0x13}, 6: {64, 0x15}, 7: {64, 0xEE},
	}
	if fs.Len() != len(wantLive) {
		t.Fatalf("recovered Len = %d, want %d", fs.Len(), len(wantLive))
	}
	for id, want := range wantLive {
		got, err := fs.Read(id)
		if err != nil {
			t.Fatalf("Read(%v): %v", id, err)
		}
		if len(got) != want.size || got[0] != want.fill || got[want.size-1] != want.fill {
			t.Fatalf("page %v = %d bytes fill 0x%02X, want %d bytes fill 0x%02X",
				id, len(got), got[0], want.size, want.fill)
		}
	}
	// One 128-byte slot remains on the free list (page 5's).
	free := snapshotFreeLists(fs)
	if len(free[128]) != 1 {
		t.Fatalf("free 128-byte slots = %d, want 1", len(free[128]))
	}
	if len(free[64]) != 0 {
		t.Fatalf("free 64-byte slots = %d, want 0 (reused)", len(free[64]))
	}
}
