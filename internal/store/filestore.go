package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"segidx/internal/page"
)

// ErrBroken is returned by every operation on a FileStore (or WALStore)
// after a failed Sync. A sync failure means the kernel may have dropped
// dirty pages on the floor; continuing to write would silently mix
// durable and lost data, so the store turns itself off instead.
var ErrBroken = errors.New("store: broken after failed sync")

// FileStore is a durable single-file Store.
//
// Layout: the file is a sequence of slots, each
//
//	[magic u32][state u8][pad u24][size u32][id u64] + size data bytes
//
// Pages are written in place. Free releases a slot to a per-size free list;
// Allocate reuses a freed slot of exactly the requested size before
// extending the file. Opening an existing file rebuilds the page table and
// free lists with a single forward scan, so no separate metadata needs to
// stay consistent with the data (a torn final slot is truncated away).
//
// A bare FileStore offers page-at-a-time durability only: a crash between
// two Writes of one logical update leaves the mix on disk. Wrap it in a
// WALStore for atomic multi-page commits.
type FileStore struct {
	mu     sync.Mutex
	f      File
	pages  map[page.ID]slot
	free   map[int][]int64 // size -> slot offsets
	next   page.ID
	size   int64 // logical end of file
	closed bool
	sick   error // sticky failure; non-nil after a failed Sync
	closeE error // result of the first Close, replayed by later Closes
}

type slot struct {
	off  int64
	size int
}

const (
	slotMagic   = 0x53474958 // "SGIX"
	slotHeader  = 4 + 1 + 3 + 4 + 8
	stateLive   = 1
	stateFree   = 2
	maxPageSize = 1 << 26 // sanity bound when scanning
)

// OpenFileStore opens or creates the file store at path on the real
// filesystem.
func OpenFileStore(path string) (*FileStore, error) {
	return OpenFileStoreIn(OS, path)
}

// OpenFileStoreIn opens or creates the file store named path inside fsys.
// Crash tests pass a fault-injecting filesystem here.
func OpenFileStoreIn(fsys FS, path string) (*FileStore, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{
		f:     f,
		pages: make(map[page.ID]slot),
		free:  make(map[int][]int64),
		next:  1,
	}
	if err := fs.recover(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return fs, nil
}

// recover scans the file to rebuild the page table and free lists.
func (fs *FileStore) recover() error {
	end, err := fs.f.Size()
	if err != nil {
		return fmt.Errorf("store: size: %w", err)
	}
	var off int64
	hdr := make([]byte, slotHeader)
	for off+slotHeader <= end {
		if _, err := fs.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: recover read at %d: %w", off, err)
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		state := hdr[4]
		size := int(binary.LittleEndian.Uint32(hdr[8:12]))
		id := page.ID(binary.LittleEndian.Uint64(hdr[12:20]))
		if magic != slotMagic || size <= 0 || size > maxPageSize {
			break // torn or trailing garbage; truncate here
		}
		if off+slotHeader+int64(size) > end {
			break // torn final slot
		}
		switch state {
		case stateLive:
			fs.pages[id] = slot{off: off, size: size}
			if id >= fs.next {
				fs.next = id + 1
			}
		case stateFree:
			fs.free[size] = append(fs.free[size], off)
		default:
			return fmt.Errorf("store: corrupt slot state %d at offset %d", state, off)
		}
		off += slotHeader + int64(size)
	}
	fs.size = off
	return fs.f.Truncate(off)
}

// usableLocked rejects operations on a closed or broken store. The caller
// must hold fs.mu.
func (fs *FileStore) usableLocked() error {
	if fs.sick != nil {
		return fs.sick
	}
	if fs.closed {
		return ErrClosed
	}
	return nil
}

func (fs *FileStore) writeHeader(off int64, state byte, size int, id page.ID) error {
	hdr := make([]byte, slotHeader)
	binary.LittleEndian.PutUint32(hdr[0:4], slotMagic)
	hdr[4] = state
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(size))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(id))
	_, err := fs.f.WriteAt(hdr, off)
	return err
}

// placeLocked finds a slot for a new page of the given size — reusing a
// freed slot or extending the file — zeroes its body, and writes a live
// header carrying id. The caller must hold fs.mu.
func (fs *FileStore) placeLocked(id page.ID, size int) error {
	var off int64
	reused := false
	if frees := fs.free[size]; len(frees) > 0 {
		off = frees[len(frees)-1]
		fs.free[size] = frees[:len(frees)-1]
		reused = true
	} else {
		off = fs.size
	}
	// Zero the body first so fresh pages read back zeroed whether the slot
	// is reused or newly extended; the header flips to live only after.
	zero := make([]byte, size)
	if _, err := fs.f.WriteAt(zero, off+slotHeader); err != nil {
		if reused {
			fs.free[size] = append(fs.free[size], off)
		}
		return fmt.Errorf("store: zero slot: %w", err)
	}
	if !reused {
		fs.size = off + slotHeader + int64(size)
	}
	if err := fs.writeHeader(off, stateLive, size, id); err != nil {
		return fmt.Errorf("store: slot header: %w", err)
	}
	fs.pages[id] = slot{off: off, size: size}
	return nil
}

// Allocate reserves a page, reusing a freed slot of identical size if one
// exists.
func (fs *FileStore) Allocate(size int) (page.ID, error) {
	if size <= 0 {
		return page.Nil, sizeMismatch(page.Nil, size, size)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return page.Nil, err
	}
	id := fs.next
	if err := fs.placeLocked(id, size); err != nil {
		return page.Nil, err
	}
	fs.next++
	return id, nil
}

// NextID reports the ID the next Allocate will return. WALStore mirrors
// the counter to hand out IDs for allocations it has buffered but not yet
// applied.
func (fs *FileStore) NextID() page.ID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.next
}

// ApplyAlloc materializes an allocation with a caller-chosen ID. It is
// idempotent — re-applying after a crash mid-commit re-zeroes the slot
// body, which is correct because WAL replay re-applies any Write records
// that follow. Used only by WAL replay/commit; regular callers Allocate.
func (fs *FileStore) ApplyAlloc(id page.ID, size int) error {
	if size <= 0 {
		return sizeMismatch(id, size, size)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return err
	}
	if s, ok := fs.pages[id]; ok {
		if s.size != size {
			return sizeMismatch(id, s.size, size)
		}
		// Already placed by an earlier (interrupted) apply; restore the
		// fresh-page contract for the benefit of replayed reads.
		zero := make([]byte, size)
		if _, err := fs.f.WriteAt(zero, s.off+slotHeader); err != nil {
			return fmt.Errorf("store: re-zero slot: %w", err)
		}
	} else if err := fs.placeLocked(id, size); err != nil {
		return err
	}
	if id >= fs.next {
		fs.next = id + 1
	}
	return nil
}

// ApplyFree is the idempotent form of Free used by WAL replay: freeing a
// page that is already gone is a no-op rather than ErrNotFound.
func (fs *FileStore) ApplyFree(id page.ID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return err
	}
	if _, ok := fs.pages[id]; !ok {
		return nil
	}
	return fs.freeLocked(id)
}

// Write replaces the page contents in place.
func (fs *FileStore) Write(id page.ID, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return err
	}
	s, ok := fs.pages[id]
	if !ok {
		return ErrNotFound
	}
	if len(data) != s.size {
		return sizeMismatch(id, s.size, len(data))
	}
	_, err := fs.f.WriteAt(data, s.off+slotHeader)
	return err
}

// Read returns the page contents.
func (fs *FileStore) Read(id page.ID) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return nil, err
	}
	s, ok := fs.pages[id]
	if !ok {
		return nil, ErrNotFound
	}
	buf := make([]byte, s.size)
	if _, err := fs.f.ReadAt(buf, s.off+slotHeader); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read %v: %w", id, err)
	}
	return buf, nil
}

// Free releases the page's slot for reuse by same-size allocations.
func (fs *FileStore) Free(id page.ID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return err
	}
	if _, ok := fs.pages[id]; !ok {
		return ErrNotFound
	}
	return fs.freeLocked(id)
}

// freeLocked marks the page's slot free on disk and in the free lists. The
// caller must hold fs.mu and have checked the page exists.
func (fs *FileStore) freeLocked(id page.ID) error {
	s := fs.pages[id]
	if err := fs.writeHeader(s.off, stateFree, s.size, 0); err != nil {
		return fmt.Errorf("store: free header: %w", err)
	}
	delete(fs.pages, id)
	fs.free[s.size] = append(fs.free[s.size], s.off)
	return nil
}

// PageSize reports the allocated size of the page.
func (fs *FileStore) PageSize(id page.ID) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return 0, err
	}
	s, ok := fs.pages[id]
	if !ok {
		return 0, ErrNotFound
	}
	return s.size, nil
}

// Len reports the number of live pages.
func (fs *FileStore) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.pages)
}

// Sync flushes file contents to stable storage. A failed sync permanently
// breaks the store: every later operation (including Sync and Write)
// returns ErrBroken, because the kernel may have already discarded the
// dirty pages the failed call was meant to persist.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.usableLocked(); err != nil {
		return err
	}
	return fs.syncLocked()
}

// syncLocked syncs the backing file and latches the sticky failure state.
// The caller must hold fs.mu.
func (fs *FileStore) syncLocked() error {
	if err := fs.f.Sync(); err != nil {
		fs.sick = fmt.Errorf("%w: %v", ErrBroken, err)
		return fs.sick
	}
	return nil
}

// Close syncs and closes the backing file. Close is idempotent: repeated
// calls return the first call's result without touching the file again.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fs.closeE
	}
	fs.closed = true
	if fs.sick != nil {
		// Already broken: release the descriptor but report the breakage.
		fs.closeE = errors.Join(fs.sick, fs.f.Close())
		return fs.closeE
	}
	if err := fs.syncLocked(); err != nil {
		fs.closeE = errors.Join(err, fs.f.Close())
		return fs.closeE
	}
	fs.closeE = fs.f.Close()
	return fs.closeE
}
