package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"segidx/internal/page"
)

// FileStore is a durable single-file Store.
//
// Layout: the file is a sequence of slots, each
//
//	[magic u32][state u8][pad u24][size u32][id u64] + size data bytes
//
// Pages are written in place. Free releases a slot to a per-size free list;
// Allocate reuses a freed slot of exactly the requested size before
// extending the file. Opening an existing file rebuilds the page table and
// free lists with a single forward scan, so no separate metadata needs to
// stay consistent with the data (a torn final slot is truncated away).
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	pages  map[page.ID]slot
	free   map[int][]int64 // size -> slot offsets
	next   page.ID
	size   int64 // logical end of file
	closed bool
}

type slot struct {
	off  int64
	size int
}

const (
	slotMagic   = 0x53474958 // "SGIX"
	slotHeader  = 4 + 1 + 3 + 4 + 8
	stateLive   = 1
	stateFree   = 2
	maxPageSize = 1 << 26 // sanity bound when scanning
)

// OpenFileStore opens or creates the file store at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	fs := &FileStore{
		f:     f,
		pages: make(map[page.ID]slot),
		free:  make(map[int][]int64),
		next:  1,
	}
	if err := fs.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// recover scans the file to rebuild the page table and free lists.
func (fs *FileStore) recover() error {
	info, err := fs.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat: %w", err)
	}
	end := info.Size()
	var off int64
	hdr := make([]byte, slotHeader)
	for off+slotHeader <= end {
		if _, err := fs.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: recover read at %d: %w", off, err)
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		state := hdr[4]
		size := int(binary.LittleEndian.Uint32(hdr[8:12]))
		id := page.ID(binary.LittleEndian.Uint64(hdr[12:20]))
		if magic != slotMagic || size <= 0 || size > maxPageSize {
			break // torn or trailing garbage; truncate here
		}
		if off+slotHeader+int64(size) > end {
			break // torn final slot
		}
		switch state {
		case stateLive:
			fs.pages[id] = slot{off: off, size: size}
			if id >= fs.next {
				fs.next = id + 1
			}
		case stateFree:
			fs.free[size] = append(fs.free[size], off)
		default:
			return fmt.Errorf("store: corrupt slot state %d at offset %d", state, off)
		}
		off += slotHeader + int64(size)
	}
	fs.size = off
	return fs.f.Truncate(off)
}

func (fs *FileStore) writeHeader(off int64, state byte, size int, id page.ID) error {
	hdr := make([]byte, slotHeader)
	binary.LittleEndian.PutUint32(hdr[0:4], slotMagic)
	hdr[4] = state
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(size))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(id))
	_, err := fs.f.WriteAt(hdr, off)
	return err
}

// Allocate reserves a page, reusing a freed slot of identical size if one
// exists.
func (fs *FileStore) Allocate(size int) (page.ID, error) {
	if size <= 0 {
		return page.Nil, sizeMismatch(page.Nil, size, size)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return page.Nil, ErrClosed
	}
	id := fs.next
	fs.next++
	var off int64
	if frees := fs.free[size]; len(frees) > 0 {
		off = frees[len(frees)-1]
		fs.free[size] = frees[:len(frees)-1]
		// Zero the reused slot body so fresh pages read back zeroed, the
		// same contract as newly extended slots.
		zero := make([]byte, size)
		if _, err := fs.f.WriteAt(zero, off+slotHeader); err != nil {
			fs.free[size] = append(fs.free[size], off)
			fs.next--
			return page.Nil, fmt.Errorf("store: zero reused slot: %w", err)
		}
	} else {
		off = fs.size
		// Extend with a zeroed slot body so reads of never-written pages
		// succeed.
		zero := make([]byte, size)
		if _, err := fs.f.WriteAt(zero, off+slotHeader); err != nil {
			fs.next--
			return page.Nil, fmt.Errorf("store: extend: %w", err)
		}
		fs.size = off + slotHeader + int64(size)
	}
	if err := fs.writeHeader(off, stateLive, size, id); err != nil {
		fs.next--
		return page.Nil, fmt.Errorf("store: allocate header: %w", err)
	}
	fs.pages[id] = slot{off: off, size: size}
	return id, nil
}

// Write replaces the page contents in place.
func (fs *FileStore) Write(id page.ID, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	s, ok := fs.pages[id]
	if !ok {
		return ErrNotFound
	}
	if len(data) != s.size {
		return sizeMismatch(id, s.size, len(data))
	}
	_, err := fs.f.WriteAt(data, s.off+slotHeader)
	return err
}

// Read returns the page contents.
func (fs *FileStore) Read(id page.ID) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	s, ok := fs.pages[id]
	if !ok {
		return nil, ErrNotFound
	}
	buf := make([]byte, s.size)
	if _, err := fs.f.ReadAt(buf, s.off+slotHeader); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read %v: %w", id, err)
	}
	return buf, nil
}

// Free releases the page's slot for reuse by same-size allocations.
func (fs *FileStore) Free(id page.ID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	s, ok := fs.pages[id]
	if !ok {
		return ErrNotFound
	}
	if err := fs.writeHeader(s.off, stateFree, s.size, 0); err != nil {
		return fmt.Errorf("store: free header: %w", err)
	}
	delete(fs.pages, id)
	fs.free[s.size] = append(fs.free[s.size], s.off)
	return nil
}

// PageSize reports the allocated size of the page.
func (fs *FileStore) PageSize(id page.ID) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return 0, ErrClosed
	}
	s, ok := fs.pages[id]
	if !ok {
		return 0, ErrNotFound
	}
	return s.size, nil
}

// Len reports the number of live pages.
func (fs *FileStore) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.pages)
}

// Sync flushes file contents to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	return fs.f.Sync()
}

// Close syncs and closes the backing file.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.f.Sync(); err != nil {
		fs.f.Close()
		return err
	}
	return fs.f.Close()
}
