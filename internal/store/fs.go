package store

import (
	"fmt"
	"io"
	"os"
)

// File is the random-access file-handle surface the durable stores are
// written against. *os.File satisfies it via the osFile adapter; the
// fault-injection filesystem used by crash tests provides a simulated
// implementation with the same semantics (including short writes and
// post-power-cut failures).
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size; extending zero-fills.
	Truncate(size int64) error
	// Size reports the current file length in bytes.
	Size() (int64, error)
	// Sync flushes written data to stable storage. Data not synced may be
	// lost, reordered, or partially applied by a crash.
	Sync() error
	Close() error
}

// FS opens the files a store needs. Implementations: OS (the real
// filesystem) and faultstore.Disk (deterministic crash simulation).
type FS interface {
	// OpenFile opens name read-write, creating it if absent.
	OpenFile(name string) (File, error)
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
}

// OS is the real-filesystem FS.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", name, err)
	}
	return osFile{f}, nil
}

func (osFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// osFile adapts *os.File to the File interface (Size instead of Stat).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
