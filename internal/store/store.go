// Package store provides page storage backends for segment indexes: an
// in-memory store for experiments (the paper's metric — node accesses — is
// machine independent) and a single-file store demonstrating durable paged
// layout with variable page sizes, free-list reuse, and crash-tolerant
// recovery by scanning.
package store

import (
	"errors"
	"fmt"

	"segidx/internal/page"
)

// ErrNotFound is returned when a page ID has never been allocated or has
// been freed.
var ErrNotFound = errors.New("store: page not found")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is a page allocator and reader/writer. Pages have fixed individual
// sizes chosen at allocation time (segment indexes allocate larger pages at
// higher tree levels). Implementations must be safe for concurrent use.
type Store interface {
	// Allocate reserves a new page of the given size and returns its ID.
	Allocate(size int) (page.ID, error)
	// Write stores data as the page contents. len(data) must equal the
	// allocated size of the page.
	Write(id page.ID, data []byte) error
	// Read returns the page contents. The returned slice is a copy the
	// caller may retain.
	Read(id page.ID) ([]byte, error)
	// Free releases the page for reuse.
	Free(id page.ID) error
	// PageSize reports the allocated size of a live page.
	PageSize(id page.ID) (int, error)
	// Len reports the number of live pages.
	Len() int
	// Close releases resources. Further operations fail with ErrClosed.
	Close() error
}

func sizeMismatch(id page.ID, want, got int) error {
	return fmt.Errorf("store: %v size mismatch: page is %d bytes, data is %d", id, want, got)
}
