package store_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"segidx/internal/page"
	"segidx/internal/store"
	"segidx/internal/store/faultstore"
)

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// walOnDisk allocates a WALStore over a fresh fault-injection disk.
func walOnDisk(t *testing.T) (*faultstore.Disk, *store.WALStore) {
	t.Helper()
	disk := faultstore.NewDisk()
	ws, err := store.OpenWALStoreIn(disk, "pages.db")
	if err != nil {
		t.Fatalf("store.OpenWALStoreIn: %v", err)
	}
	return disk, ws
}

func TestWALStoreCommitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	ws, err := store.OpenWALStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ws.Allocate(128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.Allocate(256)
	if err != nil {
		t.Fatal(err)
	}
	da := bytes.Repeat([]byte{0xA1}, 128)
	db := bytes.Repeat([]byte{0xB2}, 256)
	if err := ws.Write(a, da); err != nil {
		t.Fatal(err)
	}
	if err := ws.Write(b, db); err != nil {
		t.Fatal(err)
	}
	if err := ws.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Committed batch clears pending and trims the log.
	if ws.Pending() != 0 {
		t.Errorf("Pending after commit = %d, want 0", ws.Pending())
	}
	if got := fileSize(t, path+store.WALSuffix); got != 0 {
		t.Errorf("log size after commit = %d, want 0", got)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	ws2, err := store.OpenWALStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	got, err := ws2.Read(a)
	if err != nil || !bytes.Equal(got, da) {
		t.Fatalf("page a after reopen: %v", err)
	}
	got, err = ws2.Read(b)
	if err != nil || !bytes.Equal(got, db) {
		t.Fatalf("page b after reopen: %v", err)
	}
	// IDs continue past the committed ones.
	c, err := ws2.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c == b {
		t.Fatalf("Allocate reused committed ID %v", c)
	}
}

func TestWALStoreUncommittedDiscardedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	ws, err := store.OpenWALStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	// Second batch: a new page and an overwrite, never committed.
	b, _ := ws.Allocate(64)
	if err := ws.Write(b, bytes.Repeat([]byte{2}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Write(a, bytes.Repeat([]byte{3}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	ws2, err := store.OpenWALStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	if ws2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (uncommitted batch must vanish)", ws2.Len())
	}
	got, err := ws2.Read(a)
	if err != nil || got[0] != 1 {
		t.Fatalf("page a = %v, %v; want committed contents", got[:4], err)
	}
	if _, err := ws2.Read(b); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("uncommitted page b = %v, want store.ErrNotFound", err)
	}
}

func TestWALStoreAllocFreeCancels(t *testing.T) {
	_, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Free(a); err != nil {
		t.Fatal(err)
	}
	if ws.Pending() != 0 {
		t.Errorf("alloc+free in one batch left %d pending ops", ws.Pending())
	}
	if _, err := ws.Read(a); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Read canceled page = %v, want store.ErrNotFound", err)
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 0 {
		t.Errorf("Len = %d, want 0", ws.Len())
	}
}

func TestWALStoreFreeCommittedPage(t *testing.T) {
	_, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	b, _ := ws.Allocate(64)
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Read(a); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Read of pending-freed page = %v, want store.ErrNotFound", err)
	}
	if err := ws.Free(a); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("double Free = %v, want store.ErrNotFound", err)
	}
	if ws.Len() != 1 {
		t.Errorf("Len = %d, want 1", ws.Len())
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Read(b); err != nil {
		t.Errorf("surviving page unreadable: %v", err)
	}
	if _, err := ws.Read(a); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("freed page after commit = %v, want store.ErrNotFound", err)
	}
}

func TestWALStoreEmptyCommitIsNoOp(t *testing.T) {
	disk, ws := walOnDisk(t)
	before := disk.Ops()
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if disk.Ops() != before {
		t.Errorf("empty commit performed %d file mutations", disk.Ops()-before)
	}
}

// TestWALStoreReplayFinishesCommit pins the "finish" half of recovery: a
// crash after the log sync but before the in-place apply must reproduce
// the full batch on reopen.
func TestWALStoreReplayFinishesCommit(t *testing.T) {
	disk, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	// The commit's first mutating op is the log batch write; crash right
	// after it (tear = full batch), so the log survives but nothing was
	// applied in place.
	batchOp := disk.Ops() + 1
	disk.SetCrashPoint(batchOp, 1<<20)
	if err := ws.Commit(); err == nil {
		t.Fatal("Commit survived a power cut")
	}

	img := disk.CrashImage(faultstore.KeepAll, 0)
	ws2, err := store.OpenWALStoreIn(img, "pages.db")
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer ws2.Close()
	got, err := ws2.Read(a)
	if err != nil || got[0] != 7 {
		t.Fatalf("replay did not finish the commit: %v", err)
	}
	// The log must be trimmed after replay: reopening again must not
	// re-apply anything.
	if size, _ := img.OpenFile("pages.db" + store.WALSuffix); size != nil {
		n, err := size.Size()
		if err != nil || n != 0 {
			t.Errorf("log not trimmed after replay: size=%d err=%v", n, err)
		}
	}
}

// TestWALStoreReplayDiscardsTornCommit pins the "discard" half: a torn log
// batch (crash mid-append) must leave the previous state intact.
func TestWALStoreReplayDiscardsTornCommit(t *testing.T) {
	disk, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ws.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Write(a, bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	// Tear the second commit's log append after 10 bytes: header survives,
	// records do not.
	disk.SetCrashPoint(disk.Ops()+1, 10)
	if err := ws.Commit(); err == nil {
		t.Fatal("Commit survived a power cut")
	}

	img := disk.CrashImage(faultstore.KeepAll, 0)
	ws2, err := store.OpenWALStoreIn(img, "pages.db")
	if err != nil {
		t.Fatalf("reopen after torn commit: %v", err)
	}
	defer ws2.Close()
	got, err := ws2.Read(a)
	if err != nil || got[0] != 1 {
		t.Fatalf("torn commit leaked: page a = %v, %v; want first-commit contents", got[:4], err)
	}
}

// TestWALStoreCommitFailureIsSticky: after any commit-path failure the
// store refuses every subsequent operation rather than silently writing
// to a file whose durable state it no longer knows.
func TestWALStoreCommitFailureIsSticky(t *testing.T) {
	disk, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	disk.FailSync(1, boom)
	err := ws.Commit()
	if err == nil {
		t.Fatal("Commit with failing sync succeeded")
	}
	if !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Commit error = %v, want store.ErrBroken", err)
	}
	for name, op := range map[string]func() error{
		"Write":    func() error { return ws.Write(a, make([]byte, 64)) },
		"Read":     func() error { _, err := ws.Read(a); return err },
		"Allocate": func() error { _, err := ws.Allocate(64); return err },
		"Free":     func() error { return ws.Free(a) },
		"Commit":   func() error { return ws.Commit() },
		"PageSize": func() error { _, err := ws.PageSize(a); return err },
	} {
		if err := op(); !errors.Is(err, store.ErrBroken) {
			t.Errorf("%s after failed commit = %v, want store.ErrBroken", name, err)
		}
	}
	// Close reports the breakage and stays idempotent.
	first := ws.Close()
	if !errors.Is(first, store.ErrBroken) {
		t.Errorf("Close after breakage = %v, want store.ErrBroken", first)
	}
	if again := ws.Close(); !errors.Is(again, store.ErrBroken) {
		t.Errorf("second Close = %v, want first result replayed", again)
	}
}

// TestWALStoreShortWriteBreaksCommit: a short write on the log append must
// fail the commit, and recovery must discard the partial batch.
func TestWALStoreShortWriteBreaksCommit(t *testing.T) {
	disk, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, bytes.Repeat([]byte{4}, 64)); err != nil {
		t.Fatal(err)
	}
	disk.ShortWrite(1)
	if err := ws.Commit(); err == nil {
		t.Fatal("Commit with short log write succeeded")
	}
	img := disk.CrashImage(faultstore.KeepAll, 0)
	ws2, err := store.OpenWALStoreIn(img, "pages.db")
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer ws2.Close()
	if ws2.Len() != 0 {
		t.Errorf("half-written batch recovered %d pages, want 0", ws2.Len())
	}
}

func TestWALStoreWriteValidation(t *testing.T) {
	_, ws := walOnDisk(t)
	a, _ := ws.Allocate(64)
	if err := ws.Write(a, make([]byte, 32)); err == nil {
		t.Error("Write with wrong size accepted")
	}
	if err := ws.Write(page.ID(999), make([]byte, 64)); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Write to unknown page = %v, want store.ErrNotFound", err)
	}
	// Fresh pending pages read back zeroed.
	got, err := ws.Read(a)
	if err != nil || !bytes.Equal(got, make([]byte, 64)) {
		t.Errorf("pending fresh page not zeroed: %v", err)
	}
}

// TestFileStoreSyncFailureIsSticky pins the FileStore half of the sticky
// contract: a failed Sync poisons every subsequent operation.
func TestFileStoreSyncFailureIsSticky(t *testing.T) {
	disk := faultstore.NewDisk()
	fs, err := store.OpenFileStoreIn(disk, "pages.db")
	if err != nil {
		t.Fatal(err)
	}
	id, err := fs.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	disk.FailSync(1, boom)
	if err := fs.Sync(); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Sync = %v, want store.ErrBroken", err)
	}
	if err := fs.Write(id, make([]byte, 64)); !errors.Is(err, store.ErrBroken) {
		t.Errorf("Write after failed sync = %v, want store.ErrBroken", err)
	}
	if _, err := fs.Read(id); !errors.Is(err, store.ErrBroken) {
		t.Errorf("Read after failed sync = %v, want store.ErrBroken", err)
	}
	if _, err := fs.Allocate(64); !errors.Is(err, store.ErrBroken) {
		t.Errorf("Allocate after failed sync = %v, want store.ErrBroken", err)
	}
	if err := fs.Sync(); !errors.Is(err, store.ErrBroken) {
		t.Errorf("second Sync = %v, want store.ErrBroken", err)
	}
	first := fs.Close()
	if !errors.Is(first, store.ErrBroken) {
		t.Errorf("Close after breakage = %v, want store.ErrBroken", first)
	}
	if again := fs.Close(); !errors.Is(again, store.ErrBroken) {
		t.Errorf("repeated Close = %v, want first result replayed", again)
	}
}

// TestFileStoreCloseIdempotent: Close twice on a healthy store returns nil
// both times and does not disturb the file.
func TestFileStoreCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Allocate(64)
	if err := fs.Write(id, bytes.Repeat([]byte{5}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	fs2, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.Read(id)
	if err != nil || got[0] != 5 {
		t.Fatalf("contents after double close: %v", err)
	}
}

// TestFileStoreCloseSyncFailure: the sync inside Close latches the sticky
// error, and the recorded close result is replayed.
func TestFileStoreCloseSyncFailure(t *testing.T) {
	disk := faultstore.NewDisk()
	fs, err := store.OpenFileStoreIn(disk, "pages.db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Allocate(64); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	disk.FailSync(1, boom)
	first := fs.Close()
	if !errors.Is(first, store.ErrBroken) {
		t.Fatalf("Close with failing sync = %v, want store.ErrBroken", first)
	}
	if again := fs.Close(); !errors.Is(again, store.ErrBroken) {
		t.Errorf("repeated Close = %v, want the recorded failure", again)
	}
	if _, err := fs.Allocate(64); !errors.Is(err, store.ErrBroken) {
		t.Errorf("Allocate after broken close = %v, want store.ErrBroken", err)
	}
}
