package store

import (
	"os"
	"testing"

	pg "segidx/internal/page"
)

// pid converts a raw uint64 to a page.ID in tests.
func pid(id uint64) pg.ID { return pg.ID(id) }

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
