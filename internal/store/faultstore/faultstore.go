// Package faultstore is a deterministic fault-injection filesystem for
// crash-consistency testing. It implements store.FS over in-memory files
// and can inject I/O errors, short writes, and a simulated power cut after
// the Nth mutating operation, with the crashing write torn at any byte
// offset — so every byte-offset crash point of a store protocol is
// reachable from tests.
//
// Each file tracks two states: the synced image (what the last Sync made
// durable) and a journal of mutations since. A power cut freezes the disk;
// CrashImage then materializes the surviving bytes under an explicit
// policy — unsynced mutations all lost, all kept, or a seeded subset kept
// (modeling the kernel reordering page writeback) — as a fresh Disk the
// test reopens its store on. Everything is deterministic: the same
// operation sequence, crash point, policy, and seed produce the same
// image.
package faultstore

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"segidx/internal/store"
)

// ErrPowerCut is returned by every file operation after the simulated
// power cut fires.
var ErrPowerCut = errors.New("faultstore: power cut")

// CrashPolicy selects which unsynced mutations survive a crash.
type CrashPolicy int

const (
	// KeepNone loses every mutation since the last Sync: the most
	// conservative durable image.
	KeepNone CrashPolicy = iota
	// KeepAll retains every unsynced mutation (the crashing write still
	// torn): the disk happened to write everything back before dying.
	KeepAll
	// KeepSubset retains a deterministic seed-selected subset of unsynced
	// writes, modeling reordered writeback; truncations are kept in order.
	KeepSubset
)

func (p CrashPolicy) String() string {
	switch p {
	case KeepNone:
		return "keep-none"
	case KeepAll:
		return "keep-all"
	case KeepSubset:
		return "keep-subset"
	default:
		return fmt.Sprintf("CrashPolicy(%d)", int(p))
	}
}

// journalOp is one unsynced mutation.
type journalOp struct {
	truncate bool
	off      int64 // write offset, or truncate target size
	data     []byte
}

// file is one simulated file: the synced image plus the unsynced journal.
// cur is the journal applied — what reads observe.
type file struct {
	synced  []byte
	journal []journalOp
	cur     []byte
}

// Disk is a deterministic in-memory filesystem with fault injection. The
// zero value is not usable; use NewDisk. All methods are safe for
// concurrent use, though crash tests are single-goroutine by design.
type Disk struct {
	mu    sync.Mutex
	files map[string]*file

	ops     int // mutating ops (WriteAt, Truncate) performed so far
	crashAt int // fire the power cut on the Nth mutating op; 0 = never
	tear    int // bytes of the crashing write that reach the journal
	crashed bool

	failWriteAt int // one-shot: the Nth mutating op fails with failErr
	failErr     error
	shortAt     int // one-shot: the Nth write is cut to half its bytes
	syncs       int
	failSyncAt  int // one-shot: the Nth Sync fails with failSyncErr
	failSyncErr error
}

// NewDisk creates an empty disk with no faults armed.
func NewDisk() *Disk {
	return &Disk{files: make(map[string]*file)}
}

// SetCrashPoint arms the power cut: the nth mutating operation (1-based)
// applies only tear bytes of its payload (a truncate applies only if
// tear > 0), then every subsequent operation fails with ErrPowerCut.
func (d *Disk) SetCrashPoint(n, tear int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = n
	d.tear = tear
}

// FailWrite arms a one-shot write error: the nth mutating operation from
// now fails with err without applying any bytes.
func (d *Disk) FailWrite(n int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failWriteAt = d.ops + n
	d.failErr = err
}

// ShortWrite arms a one-shot short write: the nth mutating operation from
// now applies only half its payload and returns io.ErrShortWrite-style
// failure.
func (d *Disk) ShortWrite(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shortAt = d.ops + n
}

// FailSync arms a one-shot sync error: the nth Sync from now fails with
// err, leaving the journal unsynced.
func (d *Disk) FailSync(n int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failSyncAt = d.syncs + n
	d.failSyncErr = err
}

// Ops reports the number of mutating operations performed so far. Run a
// workload once fault-free to learn the crash-point range.
func (d *Disk) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the power cut has fired.
func (d *Disk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// OpenFile opens or creates a file. Opening never counts as a mutation.
func (d *Disk) OpenFile(name string) (store.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrPowerCut
	}
	f, ok := d.files[name]
	if !ok {
		f = &file{}
		d.files[name] = f
	}
	return &handle{d: d, f: f}, nil
}

// Remove deletes a file; removing a missing file is a no-op.
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrPowerCut
	}
	delete(d.files, name)
	return nil
}

// CrashImage materializes the durable state as a fresh, fault-free Disk:
// for each file, the synced image plus the journal mutations the policy
// keeps. It may be called whether or not the power cut has fired (calling
// it before models a process kill with no disk loss only under KeepAll).
func (d *Disk) CrashImage(policy CrashPolicy, seed uint64) *Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := NewDisk()
	for name, f := range d.files {
		data := append([]byte(nil), f.synced...)
		for i, op := range f.journal {
			keep := true
			switch policy {
			case KeepNone:
				keep = false
			case KeepAll:
				keep = true
			case KeepSubset:
				// Truncations model metadata ops the journal orders;
				// data writes survive per a deterministic coin flip.
				keep = op.truncate || subsetBit(seed, i)
			}
			if keep {
				data = applyOp(data, op)
			}
		}
		img.files[name] = &file{
			synced: append([]byte(nil), data...),
			cur:    data,
		}
	}
	return img
}

// subsetBit is a deterministic per-op coin flip (splitmix64 finalizer).
func subsetBit(seed uint64, i int) bool {
	x := seed + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x&1 == 1
}

// applyOp applies one journal mutation to a byte image.
func applyOp(data []byte, op journalOp) []byte {
	if op.truncate {
		size := int(op.off)
		if size <= len(data) {
			return data[:size]
		}
		return append(data, make([]byte, size-len(data))...)
	}
	end := op.off + int64(len(op.data))
	if int64(len(data)) < end {
		data = append(data, make([]byte, end-int64(len(data)))...)
	}
	copy(data[op.off:end], op.data)
	return data
}

// handle is an open file. It implements store.File.
type handle struct {
	d      *Disk
	f      *file
	closed bool
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrPowerCut
	}
	if h.closed {
		return 0, errors.New("faultstore: read on closed file")
	}
	if off < 0 || off >= int64(len(h.f.cur)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// mutate runs one counted mutating operation, handling crash and error
// injection. apply is called with the number of payload bytes to apply
// (full on the happy path, torn on the crashing op).
func (h *handle) mutate(payload int, apply func(keep int)) (int, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrPowerCut
	}
	if h.closed {
		return 0, errors.New("faultstore: write on closed file")
	}
	h.d.ops++
	if h.d.failWriteAt > 0 && h.d.ops == h.d.failWriteAt {
		h.d.failWriteAt = 0
		return 0, h.d.failErr
	}
	if h.d.shortAt > 0 && h.d.ops == h.d.shortAt {
		h.d.shortAt = 0
		keep := payload / 2
		apply(keep)
		return keep, fmt.Errorf("faultstore: short write (%d of %d bytes)", keep, payload)
	}
	if h.d.crashAt > 0 && h.d.ops == h.d.crashAt {
		keep := h.d.tear
		if keep > payload {
			keep = payload
		}
		apply(keep)
		h.d.crashed = true
		return 0, ErrPowerCut
	}
	apply(payload)
	return payload, nil
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("faultstore: negative offset")
	}
	return h.mutate(len(p), func(keep int) {
		if keep == 0 {
			return
		}
		op := journalOp{off: off, data: append([]byte(nil), p[:keep]...)}
		h.f.journal = append(h.f.journal, op)
		h.f.cur = applyOp(h.f.cur, op)
	})
}

func (h *handle) Truncate(size int64) error {
	if size < 0 {
		return errors.New("faultstore: negative truncate")
	}
	// A truncate "payload" of 1 makes tear==0 drop it and tear>0 apply it.
	_, err := h.mutate(1, func(keep int) {
		if keep == 0 {
			return
		}
		op := journalOp{truncate: true, off: size}
		h.f.journal = append(h.f.journal, op)
		h.f.cur = applyOp(h.f.cur, op)
	})
	return err
}

func (h *handle) Size() (int64, error) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return 0, ErrPowerCut
	}
	return int64(len(h.f.cur)), nil
}

func (h *handle) Sync() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.crashed {
		return ErrPowerCut
	}
	if h.closed {
		return errors.New("faultstore: sync on closed file")
	}
	h.d.syncs++
	if h.d.failSyncAt > 0 && h.d.syncs == h.d.failSyncAt {
		h.d.failSyncAt = 0
		return h.d.failSyncErr
	}
	h.f.synced = append([]byte(nil), h.f.cur...)
	h.f.journal = nil
	return nil
}

func (h *handle) Close() error {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	h.closed = true
	return nil
}
