package faultstore

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func mustOpen(t *testing.T, d *Disk, name string) *handle {
	t.Helper()
	f, err := d.OpenFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return f.(*handle)
}

func TestReadBackAndSize(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("world"), 5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("read back %q", buf)
	}
	if n, _ := f.Size(); n != 10 {
		t.Fatalf("Size = %d, want 10", n)
	}
	// Sparse write extends with zeros.
	if _, err := f.WriteAt([]byte{0xFF}, 15); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 16)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[10:15], make([]byte, 5)) || buf[15] != 0xFF {
		t.Fatalf("sparse gap not zeroed: %v", buf[10:])
	}
	// Reads past EOF report EOF like os.File.
	if _, err := f.ReadAt(make([]byte, 4), 100); err != io.EOF {
		t.Fatalf("read past EOF = %v, want io.EOF", err)
	}
}

func TestPowerCutFreezesDisk(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	d.SetCrashPoint(2, 3) // second write torn after 3 bytes
	if _, err := f.WriteAt([]byte("aaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("bbbb"), 4); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("crashing write = %v, want ErrPowerCut", err)
	}
	if !d.Crashed() {
		t.Fatal("disk not crashed")
	}
	for name, op := range map[string]func() error{
		"WriteAt":  func() error { _, err := f.WriteAt([]byte{1}, 0); return err },
		"ReadAt":   func() error { _, err := f.ReadAt(make([]byte, 1), 0); return err },
		"Sync":     func() error { return f.Sync() },
		"Truncate": func() error { return f.Truncate(0) },
		"Open":     func() error { _, err := d.OpenFile("b"); return err },
	} {
		if err := op(); !errors.Is(err, ErrPowerCut) {
			t.Errorf("%s after power cut = %v, want ErrPowerCut", name, err)
		}
	}
}

func TestCrashImagePolicies(t *testing.T) {
	build := func() *Disk {
		d := NewDisk()
		f := mustOpen(t, d, "a")
		if _, err := f.WriteAt([]byte("base"), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		// Two unsynced writes, then a torn third (2 of 4 bytes).
		d.SetCrashPoint(d.Ops()+3, 2)
		f.WriteAt([]byte("AAAA"), 4) //nolint - errors irrelevant pre-crash
		f.WriteAt([]byte("BBBB"), 8)
		f.WriteAt([]byte("CCCC"), 12)
		return d
	}

	read := func(img *Disk) []byte {
		f, err := img.OpenFile("a")
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, n)
		if n > 0 {
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		return buf
	}

	if got := read(build().CrashImage(KeepNone, 0)); string(got) != "base" {
		t.Errorf("KeepNone image = %q, want synced prefix only", got)
	}
	if got := read(build().CrashImage(KeepAll, 0)); string(got) != "baseAAAABBBBCC" {
		t.Errorf("KeepAll image = %q, want all writes with torn tail", got)
	}
	// Subset images are deterministic for a fixed seed.
	s1 := read(build().CrashImage(KeepSubset, 42))
	s2 := read(build().CrashImage(KeepSubset, 42))
	if !bytes.Equal(s1, s2) {
		t.Errorf("KeepSubset not deterministic: %q vs %q", s1, s2)
	}
	// The synced prefix always survives.
	if len(s1) < 4 || string(s1[:4]) != "base" {
		t.Errorf("KeepSubset lost synced data: %q", s1)
	}
}

func TestCrashImageIsFaultFree(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	d.SetCrashPoint(1, 0)
	f.WriteAt([]byte("x"), 0) //nolint - crashing write
	img := d.CrashImage(KeepNone, 0)
	g, err := img.OpenFile("a")
	if err != nil {
		t.Fatalf("image open: %v", err)
	}
	if _, err := g.WriteAt([]byte("fresh"), 0); err != nil {
		t.Fatalf("image write: %v", err)
	}
}

func TestFailWriteOneShot(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	boom := errors.New("boom")
	d.FailWrite(2, boom)
	if _, err := f.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{2}, 1); !errors.Is(err, boom) {
		t.Fatalf("second write = %v, want injected error", err)
	}
	if _, err := f.WriteAt([]byte{3}, 1); err != nil {
		t.Fatalf("injection not one-shot: %v", err)
	}
	// The failed write applied nothing.
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf[1] != 3 {
		t.Fatalf("failed write leaked bytes: %v", buf)
	}
}

func TestShortWriteAppliesPrefix(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	d.ShortWrite(1)
	n, err := f.WriteAt([]byte("abcdef"), 0)
	if err == nil {
		t.Fatal("short write reported success")
	}
	if n != 3 {
		t.Fatalf("short write applied %d bytes, want 3", n)
	}
	if size, _ := f.Size(); size != 3 {
		t.Fatalf("file size %d after short write, want 3", size)
	}
}

func TestFailSyncLeavesJournalUnsynced(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	boom := errors.New("boom")
	if _, err := f.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	d.FailSync(1, boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want injected error", err)
	}
	// The write stayed in the journal: KeepNone loses it.
	if img := d.CrashImage(KeepNone, 0); func() int64 {
		g, _ := img.OpenFile("a")
		n, _ := g.Size()
		return n
	}() != 0 {
		t.Error("failed sync still made data durable")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("later sync = %v, want nil (one-shot)", err)
	}
}

func TestTruncateJournaled(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	if _, err := f.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Size(); n != 2 {
		t.Fatalf("size after truncate = %d", n)
	}
	// Unsynced truncate is lost under KeepNone, kept under KeepAll and
	// KeepSubset (metadata ops stay ordered).
	for _, tc := range []struct {
		policy CrashPolicy
		want   int64
	}{{KeepNone, 6}, {KeepAll, 2}, {KeepSubset, 2}} {
		img := d.CrashImage(tc.policy, 7)
		g, _ := img.OpenFile("a")
		if n, _ := g.Size(); n != tc.want {
			t.Errorf("%v image size = %d, want %d", tc.policy, n, tc.want)
		}
	}
}

func TestOpsCounting(t *testing.T) {
	d := NewDisk()
	f := mustOpen(t, d, "a")
	if d.Ops() != 0 {
		t.Fatalf("fresh disk Ops = %d", d.Ops())
	}
	f.WriteAt([]byte{1}, 0) //nolint
	f.Truncate(0)           //nolint
	f.Sync()                //nolint - syncs are not mutations
	f.ReadAt(make([]byte, 1), 0)
	if d.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2 (write + truncate)", d.Ops())
	}
}
