package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"segidx/internal/page"
)

// Committer is implemented by stores whose mutations become durable only
// at explicit commit points. Between commits, reads observe the pending
// mutations; a crash discards them atomically.
type Committer interface {
	// Commit makes every mutation since the previous Commit durable as one
	// atomic unit: after a crash at any byte offset, recovery observes
	// either all of the batch or none of it.
	Commit() error
}

// WALStore makes a FileStore crash-consistent. Allocate, Write, and Free
// are buffered in memory; Commit appends the whole batch to a checksummed
// write-ahead log, fsyncs it, applies the batch to the FileStore in place,
// fsyncs that, and trims the log. Opening a WALStore replays the log: a
// complete, checksum-valid batch is finished (idempotently — a crash
// mid-apply re-applies), anything less is discarded, so the store always
// recovers to exactly a commit boundary.
//
// The log holds at most one batch: it is truncated (and the truncation
// synced) before Commit returns, so recovery never has to order batches.
//
// Log layout (little endian):
//
//	batch:  [magic u32 "SGWB"][record count u32] records... trailer
//	record: [op u8][page id u64][n u32][n data bytes — writes only]
//	        op 1 = alloc (n is the page size), 2 = write, 3 = free
//	trailer:[magic u32 "SGWC"][crc32 u32 over everything before the trailer]
//
// A torn batch cannot masquerade as a complete one: the record count fixes
// how many records must parse, and the trailer checksum covers them all.
type WALStore struct {
	mu    sync.Mutex
	inner *FileStore
	log   File

	// Pending mutations since the last commit. An id allocated and freed
	// in the same batch cancels out of all three maps.
	allocs map[page.ID]int    // pending new pages: id -> size
	writes map[page.ID][]byte // pending contents (pending or existing pages)
	freed  map[page.ID]bool   // existing pages pending release

	nextID page.ID
	closed bool
	sick   error // sticky failure; non-nil after a failed commit or sync
	closeE error
}

const (
	walBatchMagic  = 0x53475742 // "SGWB"
	walCommitMagic = 0x53475743 // "SGWC"
	walRecHeader   = 1 + 8 + 4
	walOpAlloc     = 1
	walOpWrite     = 2
	walOpFree      = 3
)

// WALSuffix is appended to the store path to name the write-ahead log.
const WALSuffix = ".wal"

// OpenWALStore opens or creates a crash-consistent store at path on the
// real filesystem. The log lives beside it at path+WALSuffix.
func OpenWALStore(path string) (*WALStore, error) {
	return OpenWALStoreIn(OS, path)
}

// OpenWALStoreIn opens or creates a crash-consistent store named path
// inside fsys, replaying (or discarding) any interrupted commit.
func OpenWALStoreIn(fsys FS, path string) (*WALStore, error) {
	inner, err := OpenFileStoreIn(fsys, path)
	if err != nil {
		return nil, err
	}
	logf, err := fsys.OpenFile(path + WALSuffix)
	if err != nil {
		return nil, errors.Join(err, inner.Close())
	}
	ws := &WALStore{
		inner:  inner,
		log:    logf,
		allocs: make(map[page.ID]int),
		writes: make(map[page.ID][]byte),
		freed:  make(map[page.ID]bool),
	}
	if err := ws.replay(); err != nil {
		return nil, errors.Join(err, logf.Close(), inner.Close())
	}
	ws.nextID = inner.NextID()
	return ws, nil
}

// replay finishes or discards the batch found in the log at open.
func (ws *WALStore) replay() error {
	size, err := ws.log.Size()
	if err != nil {
		return fmt.Errorf("store: wal size: %w", err)
	}
	if size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := ws.log.ReadAt(buf, 0); err != nil && err != io.EOF {
		return fmt.Errorf("store: wal read: %w", err)
	}
	recs, ok := parseBatch(buf)
	if !ok {
		// Interrupted before the commit record was durable: the batch
		// never happened. Discard it.
		return ws.trimLog()
	}
	if err := ws.applyLocked(recs); err != nil {
		return err
	}
	if err := ws.inner.Sync(); err != nil {
		return err
	}
	return ws.trimLog()
}

// trimLog empties the log and syncs the truncation so a later crash cannot
// resurrect a stale batch over a newer store state.
func (ws *WALStore) trimLog() error {
	if err := ws.log.Truncate(0); err != nil {
		return fmt.Errorf("store: wal trim: %w", err)
	}
	if err := ws.log.Sync(); err != nil {
		return fmt.Errorf("store: wal trim sync: %w", err)
	}
	return nil
}

// walRecord is one logged mutation.
type walRecord struct {
	op   byte
	id   page.ID
	size int    // alloc page size
	data []byte // write contents
}

// parseBatch decodes a log image. ok is false when the image is anything
// other than a complete, checksum-valid batch.
func parseBatch(buf []byte) ([]walRecord, bool) {
	if len(buf) < 8 || binary.LittleEndian.Uint32(buf[0:4]) != walBatchMagic {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	off := 8
	recs := make([]walRecord, 0, count)
	for i := 0; i < count; i++ {
		if off+walRecHeader > len(buf) {
			return nil, false
		}
		op := buf[off]
		id := page.ID(binary.LittleEndian.Uint64(buf[off+1 : off+9]))
		n := int(binary.LittleEndian.Uint32(buf[off+9 : off+13]))
		off += walRecHeader
		rec := walRecord{op: op, id: id}
		switch op {
		case walOpAlloc:
			if n <= 0 || n > maxPageSize {
				return nil, false
			}
			rec.size = n
		case walOpWrite:
			if n < 0 || off+n > len(buf) {
				return nil, false
			}
			rec.data = buf[off : off+n]
			off += n
		case walOpFree:
			if n != 0 {
				return nil, false
			}
		default:
			return nil, false
		}
		recs = append(recs, rec)
	}
	if off+8 > len(buf) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(buf[off:off+4]) != walCommitMagic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(buf[off+4:off+8]) != crc32.ChecksumIEEE(buf[:off]) {
		return nil, false
	}
	return recs, true
}

// applyLocked applies a parsed batch to the inner store using its
// idempotent primitives, so re-applying after a crash mid-apply converges
// on the same state.
func (ws *WALStore) applyLocked(recs []walRecord) error {
	for _, r := range recs {
		var err error
		switch r.op {
		case walOpAlloc:
			err = ws.inner.ApplyAlloc(r.id, r.size)
		case walOpWrite:
			err = ws.inner.Write(r.id, r.data)
		case walOpFree:
			err = ws.inner.ApplyFree(r.id)
		}
		if err != nil {
			return fmt.Errorf("store: wal apply op %d on %v: %w", r.op, r.id, err)
		}
	}
	return nil
}

// usableLocked rejects operations on a closed or broken store. The caller
// must hold ws.mu.
func (ws *WALStore) usableLocked() error {
	if ws.sick != nil {
		return ws.sick
	}
	if ws.closed {
		return ErrClosed
	}
	return nil
}

// Allocate reserves a page ID. The page exists only in the pending batch
// until Commit.
func (ws *WALStore) Allocate(size int) (page.ID, error) {
	if size <= 0 {
		return page.Nil, sizeMismatch(page.Nil, size, size)
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return page.Nil, err
	}
	id := ws.nextID
	ws.nextID++
	ws.allocs[id] = size
	return id, nil
}

// pageSizeLocked resolves a live page's size across pending state and the
// inner store. The caller must hold ws.mu.
func (ws *WALStore) pageSizeLocked(id page.ID) (int, error) {
	if ws.freed[id] {
		return 0, ErrNotFound
	}
	if size, ok := ws.allocs[id]; ok {
		return size, nil
	}
	return ws.inner.PageSize(id)
}

// Write buffers new page contents for the next commit.
func (ws *WALStore) Write(id page.ID, data []byte) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return err
	}
	size, err := ws.pageSizeLocked(id)
	if err != nil {
		return err
	}
	if len(data) != size {
		return sizeMismatch(id, size, len(data))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	ws.writes[id] = buf
	return nil
}

// Read returns the page contents as the next commit would persist them.
func (ws *WALStore) Read(id page.ID) ([]byte, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return nil, err
	}
	if ws.freed[id] {
		return nil, ErrNotFound
	}
	if buf, ok := ws.writes[id]; ok {
		out := make([]byte, len(buf))
		copy(out, buf)
		return out, nil
	}
	if size, ok := ws.allocs[id]; ok {
		return make([]byte, size), nil
	}
	return ws.inner.Read(id)
}

// Free buffers the release of a page. Freeing a page allocated in the same
// batch cancels the allocation entirely.
func (ws *WALStore) Free(id page.ID) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return err
	}
	if ws.freed[id] {
		return ErrNotFound
	}
	if _, ok := ws.allocs[id]; ok {
		delete(ws.allocs, id)
		delete(ws.writes, id)
		return nil
	}
	if _, err := ws.inner.PageSize(id); err != nil {
		return err
	}
	delete(ws.writes, id)
	ws.freed[id] = true
	return nil
}

// PageSize reports the allocated size of a live page.
func (ws *WALStore) PageSize(id page.ID) (int, error) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return 0, err
	}
	return ws.pageSizeLocked(id)
}

// Len reports the number of live pages, counting pending allocations and
// discounting pending frees.
func (ws *WALStore) Len() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.inner.Len() + len(ws.allocs) - len(ws.freed)
}

// Pending reports the number of buffered mutations awaiting Commit.
func (ws *WALStore) Pending() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return len(ws.allocs) + len(ws.writes) + len(ws.freed)
}

// encodeBatchLocked serializes the pending mutations in canonical order
// (allocs, then writes, then frees, each sorted by page ID) so the on-disk
// commit image is deterministic. The caller must hold ws.mu.
func (ws *WALStore) encodeBatchLocked() []byte {
	count := len(ws.allocs) + len(ws.writes) + len(ws.freed)
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, walBatchMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	rec := func(op byte, id page.ID, n int) {
		buf = append(buf, op)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	for _, id := range sortedIDs(ws.allocs) {
		rec(walOpAlloc, id, ws.allocs[id])
	}
	for _, id := range sortedIDs(ws.writes) {
		rec(walOpWrite, id, len(ws.writes[id]))
		buf = append(buf, ws.writes[id]...)
	}
	for _, id := range sortedIDs(ws.freed) {
		rec(walOpFree, id, 0)
	}
	crc := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, walCommitMagic)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// pendingRecordsLocked converts the pending maps to the same canonical
// record order the encoder writes. The caller must hold ws.mu.
func (ws *WALStore) pendingRecordsLocked() []walRecord {
	recs := make([]walRecord, 0, len(ws.allocs)+len(ws.writes)+len(ws.freed))
	for _, id := range sortedIDs(ws.allocs) {
		recs = append(recs, walRecord{op: walOpAlloc, id: id, size: ws.allocs[id]})
	}
	for _, id := range sortedIDs(ws.writes) {
		recs = append(recs, walRecord{op: walOpWrite, id: id, data: ws.writes[id]})
	}
	for _, id := range sortedIDs(ws.freed) {
		recs = append(recs, walRecord{op: walOpFree, id: id})
	}
	return recs
}

func sortedIDs[V any](m map[page.ID]V) []page.ID {
	ids := make([]page.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Commit makes the pending batch durable: log, sync, apply in place, sync,
// trim. Any failure on that path permanently breaks the store — the
// durable image is still exactly a commit boundary (recoverable by
// reopening), but the in-memory state can no longer be trusted to match
// it.
func (ws *WALStore) Commit() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.usableLocked(); err != nil {
		return err
	}
	if len(ws.allocs)+len(ws.writes)+len(ws.freed) == 0 {
		return nil
	}
	fail := func(err error) error {
		ws.sick = fmt.Errorf("%w: %w", ErrBroken, err)
		return ws.sick
	}
	batch := ws.encodeBatchLocked()
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return fail(fmt.Errorf("store: wal append: %w", err))
	}
	if err := ws.log.Sync(); err != nil {
		return fail(fmt.Errorf("store: wal sync: %w", err))
	}
	// The batch is durable from here on: even if applying fails, reopening
	// replays the log to completion.
	if err := ws.applyLocked(ws.pendingRecordsLocked()); err != nil {
		return fail(err)
	}
	if err := ws.inner.Sync(); err != nil {
		return fail(err)
	}
	if err := ws.trimLog(); err != nil {
		return fail(err)
	}
	ws.allocs = make(map[page.ID]int)
	ws.writes = make(map[page.ID][]byte)
	ws.freed = make(map[page.ID]bool)
	return nil
}

// Close discards any uncommitted batch (rollback) and closes the log and
// the inner store. Close is idempotent: repeated calls return the first
// call's result.
func (ws *WALStore) Close() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.closed {
		return ws.closeE
	}
	ws.closed = true
	ws.closeE = errors.Join(ws.log.Close(), ws.inner.Close())
	if ws.sick != nil {
		ws.closeE = errors.Join(ws.sick, ws.closeE)
	}
	return ws.closeE
}
