package server

import (
	"sync/atomic"
	"time"
)

// latencyBoundsUS are the histogram bucket upper bounds in microseconds;
// observations beyond the last bound land in an overflow bucket. The
// geometric spacing covers the span from a cache hit (tens of
// microseconds) to a cold multi-shard scatter over a spinning store
// (hundreds of milliseconds) with bounded relative error per bucket.
var latencyBoundsUS = [...]uint64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000,
}

const nBuckets = len(latencyBoundsUS) + 1 // +1 for overflow

// latencyHist is a lock-free fixed-bucket latency histogram. Counters are
// independently atomic: a snapshot is not a consistent cut, but each
// counter is exact, which is all /metrics needs.
type latencyHist struct {
	buckets [nBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// observe records one request duration.
func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := 0
	for i < len(latencyBoundsUS) && us > latencyBoundsUS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile returns the upper bound (in microseconds) of the bucket
// containing the q-th quantile, the standard fixed-bucket approximation.
// The overflow bucket reports the largest finite bound.
func (h *latencyHist) quantile(q float64, counts *[nBuckets]uint64, total uint64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if rank < cum {
			if i < len(latencyBoundsUS) {
				return latencyBoundsUS[i]
			}
			return latencyBoundsUS[len(latencyBoundsUS)-1]
		}
	}
	return latencyBoundsUS[len(latencyBoundsUS)-1]
}

// LatencyStats is the JSON form of a latency histogram snapshot.
type LatencyStats struct {
	Count  uint64 `json:"count"`
	MeanUS uint64 `json:"mean_us"`
	P50US  uint64 `json:"p50_us"`
	P95US  uint64 `json:"p95_us"`
	P99US  uint64 `json:"p99_us"`
	// BucketsUS maps each bucket's upper bound to its count; the final
	// element (bound 0) is the overflow bucket.
	BucketsUS []LatencyBucket `json:"buckets_us"`
}

// LatencyBucket is one histogram bucket: observations at most LE
// microseconds (LE 0 means +Inf, the overflow bucket).
type LatencyBucket struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// snapshot computes the exported view of the histogram.
func (h *latencyHist) snapshot() LatencyStats {
	var counts [nBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := LatencyStats{
		Count:     total,
		P50US:     h.quantile(0.50, &counts, total),
		P95US:     h.quantile(0.95, &counts, total),
		P99US:     h.quantile(0.99, &counts, total),
		BucketsUS: make([]LatencyBucket, 0, nBuckets),
	}
	if total > 0 {
		s.MeanUS = h.sumUS.Load() / total
	}
	for i, n := range counts {
		le := uint64(0)
		if i < len(latencyBoundsUS) {
			le = latencyBoundsUS[i]
		}
		s.BucketsUS = append(s.BucketsUS, LatencyBucket{LE: le, Count: n})
	}
	return s
}

// epMetrics tracks one endpoint's request totals and latencies.
type epMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	latency  latencyHist
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests uint64       `json:"requests"`
	Errors   uint64       `json:"errors"`
	Latency  LatencyStats `json:"latency"`
}

func (m *epMetrics) snapshot() EndpointStats {
	return EndpointStats{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Latency:  m.latency.snapshot(),
	}
}
