package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"segidx"
	"segidx/internal/store"
)

// Config tunes a Server. The zero value picks usable defaults.
type Config struct {
	// CacheEntries caps the result cache (default 1024; negative
	// disables caching).
	CacheEntries int
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// FlushEvery, when positive, flushes the index after every n
	// acknowledged mutations — a group commit bounding how much
	// acknowledged-but-volatile state a crash can lose. Zero flushes only
	// at Close (graceful shutdown still loses nothing).
	FlushEvery int
}

// Server serves a segment index over HTTP. Create one with New, mount
// Handler on an http.Server, and call Close on the way out to flush the
// index (Close does not close the index itself unless the server was
// built with OwnIndex).
//
// A Server is safe for concurrent use: all added state is either atomic
// (metrics) or internally locked (result cache); the index's own locking
// covers the engine. The cache invalidation epoch is the index's own MVCC
// commit epoch — the same stamp that versions snapshot reads — so the
// server carries no mutation counter of its own.
type Server struct {
	idx   *segidx.Index
	cache *cache
	cfg   Config

	mutations atomic.Uint64 // total acknowledged mutation requests
	started   time.Time

	mux *http.ServeMux

	search   epMetrics
	stab     epMetrics
	count    epMetrics
	insert   epMetrics
	delete   epMetrics
	bulkload epMetrics
	metrics  epMetrics
}

// New wraps idx in a Server. The caller keeps ownership of idx: closing
// the server flushes but does not close it.
func New(idx *segidx.Index, cfg Config) *Server {
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	s := &Server{
		idx:     idx,
		cache:   newCache(cfg.CacheEntries),
		cfg:     cfg,
		started: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.instrument(&s.search, http.MethodPost, s.handleSearch))
	s.mux.HandleFunc("/stab", s.instrument(&s.stab, http.MethodPost, s.handleStab))
	s.mux.HandleFunc("/count", s.instrument(&s.count, http.MethodPost, s.handleCount))
	s.mux.HandleFunc("/insert", s.instrument(&s.insert, http.MethodPost, s.handleInsert))
	s.mux.HandleFunc("/delete", s.instrument(&s.delete, http.MethodPost, s.handleDelete))
	s.mux.HandleFunc("/bulkload", s.instrument(&s.bulkload, http.MethodPost, s.handleBulkload))
	s.mux.HandleFunc("/metrics", s.instrument(&s.metrics, http.MethodGet, s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.instrument(&s.metrics, http.MethodGet, s.handleHealthz))
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Epoch returns the index's commit epoch (0 before the first mutation on
// a fresh index): the stamp the result cache is keyed on.
func (s *Server) Epoch() uint64 { return s.idx.CommitEpoch() }

// Close flushes the index so every acknowledged mutation is durable. It
// does not close the index; the owner does that (segidx.Index.Close also
// flushes, so daemons typically call only idx.Close after draining HTTP).
func (s *Server) Close() error { return s.idx.Flush() }

// errorJSON is every non-2xx response body.
type errorJSON struct {
	Error string `json:"error"`
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// An encode failure past WriteHeader cannot be reported to the
	// client; the connection error is the client's signal.
	_ = enc.Encode(v)
}

// writeError maps err to its HTTP status and writes the JSON error body.
// The mapping is: decoder errors carry their own status (400/413), engine
// validation errors are 400, a broken store is 503 (the daemon is up but
// its durable state refuses further writes), everything else is 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, segidx.ErrDims), errors.Is(err, segidx.ErrBadRect):
		status = http.StatusBadRequest
	case errors.Is(err, store.ErrBroken):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with method enforcement, request counting,
// and latency observation.
func (s *Server) instrument(m *epMetrics, method string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeJSON(rec, http.StatusMethodNotAllowed,
				errorJSON{Error: "method " + r.Method + " not allowed; use " + method})
		} else {
			h(rec, r)
		}
		if rec.status >= 400 {
			m.errors.Add(1)
		}
		m.latency.observe(time.Since(start))
	}
}

// entryJSON is one search result on the wire.
type entryJSON struct {
	ID  uint64    `json:"id"`
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// queryResponse is the body of /search and /stab: one result list per
// query, in request order. Cached reports how many of the lists were
// served from the result cache.
type queryResponse struct {
	Results []json.RawMessage `json:"results"`
	Cached  int               `json:"cached"`
	Epoch   uint64            `json:"epoch"`
}

// marshalEntries renders one query's results as the cached JSON fragment.
func marshalEntries(entries []segidx.Entry) ([]byte, error) {
	out := make([]entryJSON, len(entries))
	for i, e := range entries {
		out[i] = entryJSON{ID: uint64(e.ID), Min: e.Rect.Min, Max: e.Rect.Max}
	}
	return json.Marshal(out)
}

// serveCachedQueries runs the (endpoint, key) queries through the result
// cache, computes the misses with runMisses (indexes are positions in
// keys), and returns the per-query JSON fragments plus the hit count.
//
// The commit epoch is snapshotted once, before any engine work: results
// computed concurrently with a mutation are stored under the pre-commit
// epoch, so the commit's bump invalidates them (see the cache doc
// comment). The engine bumps the epoch when the mutation commits — before
// the mutation request is even acknowledged — which only widens the safe
// margin.
func (s *Server) serveCachedQueries(
	keys []string,
	runMisses func(miss []int) ([][]byte, error),
) ([]json.RawMessage, int, uint64, error) {
	epoch := s.idx.CommitEpoch()
	results := make([]json.RawMessage, len(keys))
	var miss []int
	for i, k := range keys {
		if val, ok := s.cache.get(k, epoch); ok {
			results[i] = val
		} else {
			miss = append(miss, i)
		}
	}
	cached := len(keys) - len(miss)
	if len(miss) > 0 {
		fresh, err := runMisses(miss)
		if err != nil {
			return nil, 0, 0, err
		}
		for j, i := range miss {
			results[i] = fresh[j]
			s.cache.put(keys[i], epoch, fresh[j])
		}
	}
	return results, cached, epoch, nil
}

// handleSearch serves POST /search: records intersecting each query rect,
// deduplicated by ID, through the SearchBatch worker pool.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	rects, err := req.rects()
	if err != nil {
		writeError(w, err)
		return
	}
	keys := make([]string, len(rects))
	for i, rc := range rects {
		keys[i] = searchKey("search", rc)
	}
	results, cached, epoch, err := s.serveCachedQueries(keys, func(miss []int) ([][]byte, error) {
		queries := make([]segidx.Rect, len(miss))
		for j, i := range miss {
			queries[j] = rects[i]
		}
		batches, err := s.idx.SearchBatch(r.Context(), queries)
		if err != nil {
			return nil, err
		}
		out := make([][]byte, len(batches))
		for j, entries := range batches {
			if out[j], err = marshalEntries(entries); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{Results: results, Cached: cached, Epoch: epoch})
}

// handleStab serves POST /stab: records containing each query point (the
// paper's stabbing query) through the StabBatch worker pool.
func (s *Server) handleStab(w http.ResponseWriter, r *http.Request) {
	var req stabRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	points, err := req.points()
	if err != nil {
		writeError(w, err)
		return
	}
	keys := make([]string, len(points))
	for i, p := range points {
		keys[i] = stabKey(p)
	}
	results, cached, epoch, err := s.serveCachedQueries(keys, func(miss []int) ([][]byte, error) {
		queries := make([][]float64, len(miss))
		for j, i := range miss {
			queries[j] = points[i]
		}
		batches, err := s.idx.StabBatch(r.Context(), queries)
		if err != nil {
			return nil, err
		}
		out := make([][]byte, len(batches))
		for j, entries := range batches {
			if out[j], err = marshalEntries(entries); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{Results: results, Cached: cached, Epoch: epoch})
}

// countResponse is the body of /count: one count per query rect.
type countResponse struct {
	Counts []json.RawMessage `json:"counts"`
	Cached int               `json:"cached"`
	Epoch  uint64            `json:"epoch"`
}

// handleCount serves POST /count: the number of records intersecting each
// query rect. Counts ride the same cache as search results.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	rects, err := req.rects()
	if err != nil {
		writeError(w, err)
		return
	}
	keys := make([]string, len(rects))
	for i, rc := range rects {
		keys[i] = searchKey("count", rc)
	}
	counts, cached, epoch, err := s.serveCachedQueries(keys, func(miss []int) ([][]byte, error) {
		out := make([][]byte, len(miss))
		for j, i := range miss {
			n, err := s.idx.Count(rects[i])
			if err != nil {
				return nil, err
			}
			if out[j], err = json.Marshal(n); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, countResponse{Counts: counts, Cached: cached, Epoch: epoch})
}

// afterMutation counts the acknowledged mutation and runs the
// group-commit flush when configured. Cache invalidation needs no action
// here: the engine bumped its commit epoch when the mutation committed.
func (s *Server) afterMutation() error {
	n := s.mutations.Add(1)
	if fe := uint64(s.cfg.FlushEvery); fe > 0 && n%fe == 0 {
		return s.idx.Flush()
	}
	return nil
}

// mutationResponse is the body of /insert, /delete, and /bulkload.
type mutationResponse struct {
	// Applied is 1 for insert, the records-removed count for delete, and
	// the records-loaded count for bulkload.
	Applied int    `json:"applied"`
	Len     int    `json:"len"`
	Epoch   uint64 `json:"epoch"`
}

// handleInsert serves POST /insert: one record.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req recordJSON
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	rec, err := req.toRecord()
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.idx.Insert(rec.Rect, rec.ID); err != nil {
		writeError(w, err)
		return
	}
	if err := s.afterMutation(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{Applied: 1, Len: s.idx.Len(), Epoch: s.idx.CommitEpoch()})
}

// handleDelete serves POST /delete: remove one record by ID; the hint
// rect must cover the rectangle originally inserted.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.ID == 0 {
		writeError(w, badRequest("delete needs a nonzero id"))
		return
	}
	if req.Hint == nil {
		writeError(w, badRequest("delete needs a hint rect covering the inserted rect"))
		return
	}
	hint, err := req.Hint.toRect()
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := s.idx.Delete(segidx.RecordID(req.ID), hint)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.afterMutation(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{Applied: n, Len: s.idx.Len(), Epoch: s.idx.CommitEpoch()})
}

// handleBulkload serves POST /bulkload: insert a batch of records through
// the InsertBatch worker pool. On error the batch may be partially
// applied (see segidx.InsertBatch); the epoch is bumped regardless so no
// stale cache entry survives a partial load.
func (s *Server) handleBulkload(w http.ResponseWriter, r *http.Request) {
	var req bulkloadRequest
	if err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Records) == 0 {
		writeError(w, badRequest(`body needs a non-empty "records" array`))
		return
	}
	if len(req.Records) > maxBulkRecords {
		writeError(w, badRequest("bulkload of %d records exceeds the %d-record limit",
			len(req.Records), maxBulkRecords))
		return
	}
	recs := make([]segidx.BulkRecord, len(req.Records))
	for i := range req.Records {
		rec, err := req.Records[i].toRecord()
		if err != nil {
			writeError(w, err)
			return
		}
		recs[i] = rec
	}
	if err := s.idx.InsertBatch(r.Context(), recs); err != nil {
		// Workers may have inserted a prefix before the failure; each of
		// those inserts already bumped the commit epoch, so cached results
		// computed against the old state are invalid without further action.
		writeError(w, err)
		return
	}
	if err := s.afterMutation(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, mutationResponse{
		Applied: len(recs), Len: s.idx.Len(), Epoch: s.idx.CommitEpoch(),
	})
}

// Metrics is the /metrics document: server, cache, per-endpoint, and
// engine counters in one JSON object (expvar-style: flat, scrapeable,
// monotonic counters plus gauges).
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Epoch         uint64  `json:"epoch"`
	Mutations     uint64  `json:"mutations"`

	Cache CacheStats `json:"cache"`

	Endpoints map[string]EndpointStats `json:"endpoints"`

	Engine EngineStats `json:"engine"`
}

// EngineStats surfaces the index's own counters through /metrics.
type EngineStats struct {
	Kind        string             `json:"kind"`
	Len         int                `json:"len"`
	Height      int                `json:"height"`
	Nodes       int                `json:"nodes"`
	Parallelism int                `json:"parallelism"`
	Shards      int                `json:"shards"`
	ShardLens   []int              `json:"shard_lens"`
	Stats       segidx.Stats       `json:"stats"`
	Pool        segidx.PoolStats   `json:"pool"`
	ShardPools  []segidx.PoolStats `json:"shard_pools,omitempty"`
	// Accel lists the per-shard stab-accelerator sidecars (absent when
	// none is attached).
	Accel []segidx.AccelStats `json:"accel,omitempty"`
}

// snapshotMetrics assembles the full metrics document.
func (s *Server) snapshotMetrics() Metrics {
	m := Metrics{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Epoch:         s.idx.CommitEpoch(),
		Mutations:     s.mutations.Load(),
		Cache:         s.cache.stats(),
		Endpoints: map[string]EndpointStats{
			"search":   s.search.snapshot(),
			"stab":     s.stab.snapshot(),
			"count":    s.count.snapshot(),
			"insert":   s.insert.snapshot(),
			"delete":   s.delete.snapshot(),
			"bulkload": s.bulkload.snapshot(),
			"metrics":  s.metrics.snapshot(),
		},
		Engine: EngineStats{
			Kind:        s.idx.Kind(),
			Len:         s.idx.Len(),
			Height:      s.idx.Height(),
			Nodes:       s.idx.NodeCount(),
			Parallelism: s.idx.Parallelism(),
			Shards:      s.idx.Shards(),
			ShardLens:   s.idx.ShardLens(),
			Stats:       s.idx.Stats(),
			Pool:        s.idx.PoolStats(),
		},
	}
	if m.Engine.Shards > 1 {
		m.Engine.ShardPools = s.idx.ShardPoolStats()
	}
	m.Engine.Accel = s.idx.AccelStats()
	return m
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// healthResponse is the body of /healthz.
type healthResponse struct {
	Status string `json:"status"`
	Len    int    `json:"len"`
	Shards int    `json:"shards"`
}

// handleHealthz serves GET /healthz: a cheap liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status: "ok",
		Len:    s.idx.Len(),
		Shards: s.idx.Shards(),
	})
}
