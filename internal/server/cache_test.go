package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"segidx"
)

// TestCacheLRU exercises the cache in isolation: LRU eviction order,
// epoch invalidation, replacement, and the disabled configuration.
func TestCacheLRU(t *testing.T) {
	c := newCache(2)
	c.put("a", 0, []byte("A"))
	c.put("b", 0, []byte("B"))
	if v, ok := c.get("a", 0); !ok || string(v) != "A" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.put("c", 0, []byte("C"))
	if _, ok := c.get("b", 0); ok {
		t.Fatalf("b survived eviction")
	}
	if _, ok := c.get("a", 0); !ok {
		t.Fatalf("a evicted out of LRU order")
	}

	// Epoch invalidation: entries stored at epoch 0 miss at epoch 1 and
	// are removed.
	if _, ok := c.get("a", 1); ok {
		t.Fatalf("stale-epoch entry served")
	}
	s := c.stats()
	if s.Invalidations != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation, 1 eviction", s)
	}
	if s.Entries != 1 { // "c" remains
		t.Fatalf("entries = %d, want 1", s.Entries)
	}

	// Replacement updates value and epoch in place.
	c.put("c", 1, []byte("C1"))
	if v, ok := c.get("c", 1); !ok || string(v) != "C1" {
		t.Fatalf("replaced entry = %q, %v", v, ok)
	}

	// Disabled cache: never stores, never hits, never counts a hit.
	d := newCache(0)
	d.put("x", 0, []byte("X"))
	if _, ok := d.get("x", 0); ok {
		t.Fatalf("disabled cache returned a hit")
	}
	if ds := d.stats(); ds.Hits != 0 || ds.Entries != 0 {
		t.Fatalf("disabled cache stats = %+v", ds)
	}
}

// idsOf extracts the sorted record IDs from one result fragment.
func idsOf(t *testing.T, frag json.RawMessage) []uint64 {
	t.Helper()
	var entries []entryJSON
	if err := json.Unmarshal(frag, &entries); err != nil {
		t.Fatalf("unmarshal entries: %v", err)
	}
	ids := make([]uint64, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// mirrorIDs runs the same query directly against an index and returns the
// sorted IDs.
func mirrorIDs(t *testing.T, idx *segidx.Index, q segidx.Rect) []uint64 {
	t.Helper()
	entries, err := idx.Search(q)
	if err != nil {
		t.Fatalf("mirror Search: %v", err)
	}
	ids := make([]uint64, len(entries))
	for i, e := range entries {
		ids[i] = uint64(e.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestCacheDifferential proves cached responses ≡ fresh engine responses
// across interleaved mutations: a server (sharded, cached) and a plain
// mirror index receive the identical operation stream; after every
// mutation round each query in a fixed, deliberately repeated set must
// return the same ID set from both — no matter whether the server
// answered from cache or engine. If epoch invalidation ever served a
// stale entry, the ID sets would diverge at the next mutation round.
func TestCacheDifferential(t *testing.T) {
	srvIdx, err := segidx.NewSRTree(segidx.WithDims(2), segidx.WithShards(4))
	if err != nil {
		t.Fatalf("server index: %v", err)
	}
	defer srvIdx.Close()
	mirror, err := segidx.NewSRTree(segidx.WithDims(2))
	if err != nil {
		t.Fatalf("mirror index: %v", err)
	}
	defer mirror.Close()

	s := New(srvIdx, Config{CacheEntries: 64})
	rng := rand.New(rand.NewPCG(42, 1991))
	randBox := func() segidx.Rect {
		x := rng.Float64() * 900
		y := rng.Float64() * 900
		return segidx.Box(x, y, x+rng.Float64()*100, y+rng.Float64()*100)
	}

	// A fixed query set, smaller than the traffic it serves, so queries
	// repeat and hit the cache between mutation rounds.
	queries := make([]segidx.Rect, 16)
	for i := range queries {
		queries[i] = randBox()
	}

	live := map[uint64]segidx.Rect{}
	nextID := uint64(1)
	postOK := func(path, body string) mutationResponse {
		t.Helper()
		rec := do(t, s, "POST", path, body)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d (%s)", path, rec.Code, rec.Body.String())
		}
		var resp mutationResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp
	}

	checkAll := func(round int) {
		t.Helper()
		for qi, q := range queries {
			// Ask twice: first answer may be fresh, second is served from
			// cache; both must equal the mirror.
			want := mirrorIDs(t, mirror, q)
			for pass := 0; pass < 2; pass++ {
				body := fmt.Sprintf(`{"rect": {"min": [%g, %g], "max": [%g, %g]}}`,
					q.Min[0], q.Min[1], q.Max[0], q.Max[1])
				rec := do(t, s, "POST", "/search", body)
				if rec.Code != 200 {
					t.Fatalf("round %d query %d: status %d", round, qi, rec.Code)
				}
				var resp queryResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Fatal(err)
				}
				got := idsOf(t, resp.Results[0])
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("round %d query %d pass %d: served %v, mirror %v (cached=%d)",
						round, qi, pass, got, want, resp.Cached)
				}
			}
		}
	}

	for round := 0; round < 30; round++ {
		// Mutate both sides identically: a few inserts, sometimes a
		// delete, occasionally a bulk load.
		switch round % 3 {
		case 0, 1:
			for i := 0; i < 8; i++ {
				r := randBox()
				body, _ := json.Marshal(map[string]any{
					"id":   nextID,
					"rect": map[string]any{"min": r.Min, "max": r.Max},
				})
				postOK("/insert", string(body))
				if err := mirror.Insert(r, segidx.RecordID(nextID)); err != nil {
					t.Fatalf("mirror insert: %v", err)
				}
				live[nextID] = r
				nextID++
			}
			if round%2 == 1 && len(live) > 0 {
				// Delete one live record from both sides.
				var id uint64
				for id = range live {
					break
				}
				r := live[id]
				body, _ := json.Marshal(map[string]any{
					"id":   id,
					"hint": map[string]any{"min": r.Min, "max": r.Max},
				})
				resp := postOK("/delete", string(body))
				if resp.Applied != 1 {
					t.Fatalf("delete id %d applied %d", id, resp.Applied)
				}
				if n, err := mirror.Delete(segidx.RecordID(id), r); err != nil || n != 1 {
					t.Fatalf("mirror delete: %d, %v", n, err)
				}
				delete(live, id)
			}
		case 2:
			recs := make([]map[string]any, 5)
			for i := range recs {
				r := randBox()
				recs[i] = map[string]any{
					"id":   nextID,
					"rect": map[string]any{"min": r.Min, "max": r.Max},
				}
				if err := mirror.Insert(r, segidx.RecordID(nextID)); err != nil {
					t.Fatalf("mirror insert: %v", err)
				}
				live[nextID] = r
				nextID++
			}
			body, _ := json.Marshal(map[string]any{"records": recs})
			postOK("/bulkload", string(body))
		}
		checkAll(round)
	}

	if srvIdx.Len() != mirror.Len() {
		t.Fatalf("server Len %d != mirror Len %d", srvIdx.Len(), mirror.Len())
	}
	// The cache must actually have been exercised for the test to mean
	// anything.
	cs := s.cache.stats()
	if cs.Hits == 0 || cs.Invalidations == 0 {
		t.Fatalf("cache saw no traffic: %+v", cs)
	}
}

// TestConcurrentReadersWriters is the -race stress test: concurrent HTTP
// readers (search/stab/count, hitting and filling the cache) against
// concurrent writers (insert/delete) on a sharded durable index over real
// HTTP connections. The assertions are structural — no failed requests,
// an epoch that moved, and a final Len consistent with the applied
// mutations — while the race detector checks the rest.
func TestConcurrentReadersWriters(t *testing.T) {
	dir := t.TempDir()
	idx, err := segidx.NewSRTree(
		segidx.WithDims(2),
		segidx.WithShards(4),
		segidx.WithDurableFile(filepath.Join(dir, "forest.db")),
	)
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	defer idx.Close()

	s := New(idx, Config{CacheEntries: 128, FlushEvery: 50})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		writers        = 4
		readers        = 8
		opsPerWriter   = 150
		readsPerReader = 300
	)

	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	post := func(client *http.Client, path, body string) (int, error) {
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for i := 0; i < opsPerWriter; i++ {
				id := uint64(w*opsPerWriter + i + 1)
				x, y := rng.Float64()*1000, rng.Float64()*1000
				body := fmt.Sprintf(`{"id": %d, "rect": {"min": [%g, %g], "max": [%g, %g]}}`,
					id, x, y, x+10, y+10)
				status, err := post(client, "/insert", body)
				if err != nil {
					errCh <- fmt.Errorf("writer %d insert: %w", w, err)
					return
				}
				if status != 200 {
					errCh <- fmt.Errorf("writer %d insert: status %d", w, status)
					return
				}
				// Occasionally delete what we just inserted.
				if i%10 == 9 {
					body := fmt.Sprintf(`{"id": %d, "hint": {"min": [%g, %g], "max": [%g, %g]}}`,
						id, x, y, x+10, y+10)
					status, err := post(client, "/delete", body)
					if err != nil || status != 200 {
						errCh <- fmt.Errorf("writer %d delete: status %d, %v", w, status, err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := ts.Client()
			rng := rand.New(rand.NewPCG(uint64(r), 99))
			for i := 0; i < readsPerReader; i++ {
				// A small query vocabulary maximizes cache interaction.
				x := float64(int(rng.Float64()*10)) * 100
				y := float64(int(rng.Float64()*10)) * 100
				var path, body string
				switch i % 3 {
				case 0:
					path = "/search"
					body = fmt.Sprintf(`{"rect": {"min": [%g, %g], "max": [%g, %g]}}`, x, y, x+150, y+150)
				case 1:
					path = "/stab"
					body = fmt.Sprintf(`{"point": [%g, %g]}`, x+5, y+5)
				case 2:
					path = "/count"
					body = fmt.Sprintf(`{"rect": {"min": [%g, %g], "max": [%g, %g]}}`, x, y, x+150, y+150)
				}
				status, err := post(client, path, body)
				if err != nil {
					errCh <- fmt.Errorf("reader %d %s: %w", r, path, err)
					return
				}
				if status != 200 {
					errCh <- fmt.Errorf("reader %d %s: status %d", r, path, status)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	const deletesPerWriter = opsPerWriter / 10
	wantLen := writers * (opsPerWriter - deletesPerWriter)
	if idx.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", idx.Len(), wantLen)
	}
	wantEpoch := uint64(writers * (opsPerWriter + deletesPerWriter))
	if got := s.Epoch(); got != wantEpoch {
		t.Fatalf("epoch = %d, want %d", got, wantEpoch)
	}
}
