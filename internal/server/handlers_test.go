package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"segidx"
)

// newTestServer builds a small in-memory SR-Tree with a few known records
// behind a Server configured with a tiny body limit so the oversized-body
// cases stay cheap.
func newTestServer(t *testing.T, cfg Config) (*Server, *segidx.Index) {
	t.Helper()
	idx, err := segidx.NewSRTree(segidx.WithDims(2))
	if err != nil {
		t.Fatalf("NewSRTree: %v", err)
	}
	t.Cleanup(func() { idx.Close() })
	for i, r := range []segidx.Rect{
		segidx.Box(0, 0, 10, 10),
		segidx.Box(5, 5, 15, 15),
		segidx.Box(100, 100, 110, 110),
	} {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	return New(idx, cfg), idx
}

// do issues one request against the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// errBody decodes the error body, failing the test on a malformed one.
func errBody(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %v (body %q)", err, rec.Body.String())
	}
	if e.Error == "" {
		t.Fatalf("error body has empty error field: %q", rec.Body.String())
	}
	return e.Error
}

// TestHandlerTable drives every endpoint through the request classes the
// issue demands: valid request, malformed JSON, wrong method,
// out-of-range dimensions, oversized body.
func TestHandlerTable(t *testing.T) {
	const maxBody = 1 << 10
	// longNum is a valid JSON number longer than the body limit, so the
	// decoder hits MaxBytesReader's cap mid-token rather than a syntax
	// error.
	longNum := "0." + strings.Repeat("1", maxBody)
	big := `{"rect": {"min": [` + longNum + `, 0], "max": [1, 1]}}`

	nineDims := `[0,0,0,0,0,0,0,0,0]`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		// wantError is matched exactly when the message is ours, by
		// prefix (trailing "*") when part of it comes from the stdlib.
		wantError string
		// check runs extra assertions on a 200 body.
		check func(t *testing.T, body []byte)
	}{
		// ---- /search ----
		{
			name: "search valid single rect", method: "POST", path: "/search",
			body:       `{"rect": {"min": [0, 0], "max": [20, 20]}}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp queryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if len(resp.Results) != 1 {
					t.Fatalf("got %d result lists, want 1", len(resp.Results))
				}
				var entries []entryJSON
				if err := json.Unmarshal(resp.Results[0], &entries); err != nil {
					t.Fatalf("unmarshal entries: %v", err)
				}
				if len(entries) != 2 {
					t.Fatalf("got %d entries, want 2 (ids 1 and 2)", len(entries))
				}
			},
		},
		{
			name: "search valid multi rect", method: "POST", path: "/search",
			body:       `{"rects": [{"min": [0, 0], "max": [1, 1]}, {"min": [99, 99], "max": [120, 120]}]}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp queryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if len(resp.Results) != 2 {
					t.Fatalf("got %d result lists, want 2", len(resp.Results))
				}
			},
		},
		{
			name: "search malformed JSON", method: "POST", path: "/search",
			body: `{"rect": {`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "search unknown field", method: "POST", path: "/search",
			body: `{"rectangle": {"min": [0,0], "max": [1,1]}}`, wantStatus: 400,
			wantError: "malformed JSON body: *",
		},
		{
			name: "search trailing garbage", method: "POST", path: "/search",
			body:       `{"rect": {"min": [0,0], "max": [1,1]}} {"x": 1}`,
			wantStatus: 400, wantError: "trailing data after JSON body",
		},
		{
			name: "search wrong method", method: "GET", path: "/search",
			wantStatus: 405, wantError: "method GET not allowed; use POST",
		},
		{
			name: "search both rect and rects", method: "POST", path: "/search",
			body:       `{"rect": {"min": [0,0], "max": [1,1]}, "rects": [{"min": [0,0], "max": [1,1]}]}`,
			wantStatus: 400, wantError: `body needs exactly one of "rect" or "rects"`,
		},
		{
			name: "search neither rect nor rects", method: "POST", path: "/search",
			body: `{}`, wantStatus: 400, wantError: `body needs exactly one of "rect" or "rects"`,
		},
		{
			name: "search too many dimensions", method: "POST", path: "/search",
			body:       `{"rect": {"min": ` + nineDims + `, "max": ` + nineDims + `}}`,
			wantStatus: 400, wantError: "rect has 9 dimensions, max 8",
		},
		{
			name: "search dims mismatch with index", method: "POST", path: "/search",
			body:       `{"rect": {"min": [0,0,0], "max": [1,1,1]}}`,
			wantStatus: 400, wantError: "*", // engine ErrDims text
		},
		{
			name: "search min/max length mismatch", method: "POST", path: "/search",
			body:       `{"rect": {"min": [0,0], "max": [1,1,1]}}`,
			wantStatus: 400, wantError: "rect min has 2 dimensions, max has 3",
		},
		{
			name: "search inverted rect", method: "POST", path: "/search",
			body:       `{"rect": {"min": [5,5], "max": [1,1]}}`,
			wantStatus: 400, wantError: "invalid rect: *",
		},
		{
			name: "search oversized body", method: "POST", path: "/search",
			body: big, wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /stab ----
		{
			name: "stab valid", method: "POST", path: "/stab",
			body:       `{"point": [7, 7]}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp queryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				var entries []entryJSON
				if err := json.Unmarshal(resp.Results[0], &entries); err != nil {
					t.Fatalf("unmarshal entries: %v", err)
				}
				if len(entries) != 2 {
					t.Fatalf("stab(7,7) got %d entries, want 2", len(entries))
				}
			},
		},
		{
			name: "stab valid multi", method: "POST", path: "/stab",
			body:       `{"points": [[7, 7], [105, 105]]}`,
			wantStatus: 200,
		},
		{
			name: "stab malformed JSON", method: "POST", path: "/stab",
			body: `[1, 2`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "stab wrong method", method: "PUT", path: "/stab",
			wantStatus: 405, wantError: "method PUT not allowed; use POST",
		},
		{
			name: "stab empty point", method: "POST", path: "/stab",
			body: `{"point": []}`, wantStatus: 400, wantError: "point 0 is empty",
		},
		{
			name: "stab too many dimensions", method: "POST", path: "/stab",
			body:       `{"point": ` + nineDims + `}`,
			wantStatus: 400, wantError: "point 0 has 9 dimensions, max 8",
		},
		{
			name: "stab dims mismatch with index", method: "POST", path: "/stab",
			body: `{"point": [1, 2, 3]}`, wantStatus: 400, wantError: "*",
		},
		{
			name: "stab oversized body", method: "POST", path: "/stab",
			body:       `{"point": [` + longNum + `, 0]}`,
			wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /count ----
		{
			name: "count valid", method: "POST", path: "/count",
			body:       `{"rect": {"min": [0, 0], "max": [200, 200]}}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp countResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				var n int
				if err := json.Unmarshal(resp.Counts[0], &n); err != nil {
					t.Fatalf("unmarshal count: %v", err)
				}
				if n != 3 {
					t.Fatalf("count = %d, want 3", n)
				}
			},
		},
		{
			name: "count malformed JSON", method: "POST", path: "/count",
			body: `nope`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "count wrong method", method: "DELETE", path: "/count",
			wantStatus: 405, wantError: "method DELETE not allowed; use POST",
		},
		{
			name: "count too many dimensions", method: "POST", path: "/count",
			body:       `{"rect": {"min": ` + nineDims + `, "max": ` + nineDims + `}}`,
			wantStatus: 400, wantError: "rect has 9 dimensions, max 8",
		},
		{
			name: "count oversized body", method: "POST", path: "/count",
			body: big, wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /insert ----
		{
			name: "insert valid", method: "POST", path: "/insert",
			body:       `{"id": 99, "rect": {"min": [50, 50], "max": [60, 60]}}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp mutationResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				// Epoch is the index's MVCC commit epoch: 3 seed
				// inserts plus this one.
				if resp.Applied != 1 || resp.Len != 4 || resp.Epoch != 4 {
					t.Fatalf("insert response = %+v, want applied 1, len 4, epoch 4", resp)
				}
			},
		},
		{
			name: "insert malformed JSON", method: "POST", path: "/insert",
			body: `{"id": }`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "insert wrong method", method: "GET", path: "/insert",
			wantStatus: 405, wantError: "method GET not allowed; use POST",
		},
		{
			name: "insert zero id", method: "POST", path: "/insert",
			body:       `{"id": 0, "rect": {"min": [0,0], "max": [1,1]}}`,
			wantStatus: 400, wantError: "record needs a nonzero id",
		},
		{
			name: "insert missing rect", method: "POST", path: "/insert",
			body: `{"id": 7}`, wantStatus: 400, wantError: "record needs a rect",
		},
		{
			name: "insert too many dimensions", method: "POST", path: "/insert",
			body:       `{"id": 7, "rect": {"min": ` + nineDims + `, "max": ` + nineDims + `}}`,
			wantStatus: 400, wantError: "rect has 9 dimensions, max 8",
		},
		{
			name: "insert dims mismatch with index", method: "POST", path: "/insert",
			body:       `{"id": 7, "rect": {"min": [0], "max": [1]}}`,
			wantStatus: 400, wantError: "*",
		},
		{
			name: "insert oversized body", method: "POST", path: "/insert",
			body:       `{"id": 7, "rect": {"min": [` + longNum + `, 0], "max": [1, 1]}}`,
			wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /delete ----
		{
			name: "delete valid", method: "POST", path: "/delete",
			body:       `{"id": 1, "hint": {"min": [0, 0], "max": [10, 10]}}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp mutationResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if resp.Applied != 1 || resp.Len != 2 {
					t.Fatalf("delete response = %+v, want applied 1, len 2", resp)
				}
			},
		},
		{
			name: "delete absent id", method: "POST", path: "/delete",
			body:       `{"id": 12345, "hint": {"min": [0, 0], "max": [10, 10]}}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp mutationResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if resp.Applied != 0 || resp.Len != 3 {
					t.Fatalf("delete response = %+v, want applied 0, len 3", resp)
				}
			},
		},
		{
			name: "delete malformed JSON", method: "POST", path: "/delete",
			body: `{{`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "delete wrong method", method: "GET", path: "/delete",
			wantStatus: 405, wantError: "method GET not allowed; use POST",
		},
		{
			name: "delete zero id", method: "POST", path: "/delete",
			body:       `{"id": 0, "hint": {"min": [0,0], "max": [1,1]}}`,
			wantStatus: 400, wantError: "delete needs a nonzero id",
		},
		{
			name: "delete missing hint", method: "POST", path: "/delete",
			body:       `{"id": 1}`,
			wantStatus: 400, wantError: "delete needs a hint rect covering the inserted rect",
		},
		{
			name: "delete too many dimensions", method: "POST", path: "/delete",
			body:       `{"id": 1, "hint": {"min": ` + nineDims + `, "max": ` + nineDims + `}}`,
			wantStatus: 400, wantError: "rect has 9 dimensions, max 8",
		},
		{
			name: "delete oversized body", method: "POST", path: "/delete",
			body:       `{"id": 1, "hint": {"min": [` + longNum + `, 0], "max": [1, 1]}}`,
			wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /bulkload ----
		{
			name: "bulkload valid", method: "POST", path: "/bulkload",
			body:       `{"records": [{"id": 50, "rect": {"min": [1,1], "max": [2,2]}}, {"id": 51, "rect": {"min": [3,3], "max": [4,4]}}]}`,
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var resp mutationResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if resp.Applied != 2 || resp.Len != 5 {
					t.Fatalf("bulkload response = %+v, want applied 2, len 5", resp)
				}
			},
		},
		{
			name: "bulkload malformed JSON", method: "POST", path: "/bulkload",
			body: `{"records": [}`, wantStatus: 400, wantError: "malformed JSON body: *",
		},
		{
			name: "bulkload wrong method", method: "GET", path: "/bulkload",
			wantStatus: 405, wantError: "method GET not allowed; use POST",
		},
		{
			name: "bulkload empty records", method: "POST", path: "/bulkload",
			body: `{"records": []}`, wantStatus: 400, wantError: `body needs a non-empty "records" array`,
		},
		{
			name: "bulkload too many dimensions", method: "POST", path: "/bulkload",
			body:       `{"records": [{"id": 50, "rect": {"min": ` + nineDims + `, "max": ` + nineDims + `}}]}`,
			wantStatus: 400, wantError: "rect has 9 dimensions, max 8",
		},
		{
			name: "bulkload zero id", method: "POST", path: "/bulkload",
			body:       `{"records": [{"id": 0, "rect": {"min": [0,0], "max": [1,1]}}]}`,
			wantStatus: 400, wantError: "record needs a nonzero id",
		},
		{
			name: "bulkload oversized body", method: "POST", path: "/bulkload",
			body:       `{"records": [{"id": 50, "rect": {"min": [` + longNum + `, 0], "max": [1, 1]}}]}`,
			wantStatus: 413, wantError: "body exceeds 1024 bytes",
		},

		// ---- /metrics and /healthz ----
		{
			name: "metrics valid", method: "GET", path: "/metrics",
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var m Metrics
				if err := json.Unmarshal(body, &m); err != nil {
					t.Fatalf("unmarshal metrics: %v", err)
				}
				if m.Engine.Len != 3 || m.Engine.Shards != 1 {
					t.Fatalf("metrics engine = %+v, want len 3, shards 1", m.Engine)
				}
			},
		},
		{
			name: "metrics wrong method", method: "POST", path: "/metrics",
			wantStatus: 405, wantError: "method POST not allowed; use GET",
		},
		{
			name: "healthz valid", method: "GET", path: "/healthz",
			wantStatus: 200,
			check: func(t *testing.T, body []byte) {
				var h healthResponse
				if err := json.Unmarshal(body, &h); err != nil {
					t.Fatalf("unmarshal healthz: %v", err)
				}
				if h.Status != "ok" || h.Len != 3 {
					t.Fatalf("healthz = %+v, want ok/3", h)
				}
			},
		},
		{
			name: "unknown path", method: "GET", path: "/nope",
			wantStatus: 404,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t, Config{MaxBodyBytes: maxBody})
			rec := do(t, s, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantStatus == 405 {
				if allow := rec.Header().Get("Allow"); allow == "" {
					t.Errorf("405 response missing Allow header")
				}
			}
			switch {
			case tc.wantStatus >= 400 && tc.wantStatus != 404:
				got := errBody(t, rec)
				want := tc.wantError
				switch {
				case want == "*":
					// any non-empty message (asserted by errBody)
				case strings.HasSuffix(want, "*"):
					if !strings.HasPrefix(got, strings.TrimSuffix(want, "*")) {
						t.Errorf("error = %q, want prefix %q", got, strings.TrimSuffix(want, "*"))
					}
				default:
					if got != want {
						t.Errorf("error = %q, want %q", got, want)
					}
				}
			case tc.check != nil:
				tc.check(t, rec.Body.Bytes())
			}
			if tc.wantStatus != 404 { // the mux's own 404 is text/plain
				if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
					t.Errorf("Content-Type = %q, want application/json", ct)
				}
			}
		})
	}
}

// TestMetricsCounters verifies that request, error, cache, and latency
// counters move as traffic flows.
func TestMetricsCounters(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	// Two identical searches: the second must be a cache hit.
	for i := 0; i < 2; i++ {
		rec := do(t, s, "POST", "/search", `{"rect": {"min": [0,0], "max": [20,20]}}`)
		if rec.Code != 200 {
			t.Fatalf("search %d: status %d", i, rec.Code)
		}
	}
	// One error.
	if rec := do(t, s, "POST", "/search", `bad`); rec.Code != 400 {
		t.Fatalf("bad search: status %d", rec.Code)
	}

	var m Metrics
	rec := do(t, s, "GET", "/metrics", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("unmarshal metrics: %v", err)
	}
	ep := m.Endpoints["search"]
	if ep.Requests != 3 || ep.Errors != 1 {
		t.Fatalf("search endpoint = %+v, want 3 requests, 1 error", ep)
	}
	if ep.Latency.Count != 3 || ep.Latency.P50US == 0 {
		t.Fatalf("search latency = %+v, want count 3 and nonzero p50", ep.Latency)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache = %+v, want 1 hit, 1 miss", m.Cache)
	}
	if m.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.Cache.HitRate)
	}
	if m.Engine.Stats.Searches == 0 {
		t.Fatalf("engine search counter did not move: %+v", m.Engine.Stats)
	}
}

// TestCachedResponseByteIdentical asserts a cache hit returns exactly the
// bytes a fresh query produced.
func TestCachedResponseByteIdentical(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body := `{"rect": {"min": [0,0], "max": [20,20]}}`
	first := do(t, s, "POST", "/search", body)
	second := do(t, s, "POST", "/search", body)
	var a, b queryResponse
	if err := json.Unmarshal(first.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if a.Cached != 0 || b.Cached != 1 {
		t.Fatalf("cached flags = %d, %d; want 0 then 1", a.Cached, b.Cached)
	}
	if string(a.Results[0]) != string(b.Results[0]) {
		t.Fatalf("cached result differs from fresh result:\n%s\n%s", a.Results[0], b.Results[0])
	}
}
