package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzHTTPDecode throws arbitrary bytes at every request decoder — the
// full path a network client reaches: MaxBytesReader, strict JSON
// decoding, then rect/point/record validation. The invariants:
//
//   - no decoder panics, whatever the input;
//   - every accepted rect is engine-legal: 1..MaxDims dimensions, equal
//     min/max lengths, no NaN, no inverted extent;
//   - every accepted point is 1..MaxDims NaN-free coordinates;
//   - every accepted record has a nonzero ID and a legal rect.
//
// A seed corpus covers each endpoint's happy path plus the tricky JSON
// shapes (huge numbers, deep nesting, duplicate keys, null fields).
func FuzzHTTPDecode(f *testing.F) {
	seeds := []string{
		`{"rect": {"min": [0, 0], "max": [1, 1]}}`,
		`{"rects": [{"min": [0], "max": [1]}, {"min": [2], "max": [3]}]}`,
		`{"point": [1, 2]}`,
		`{"points": [[1], [2], [3]]}`,
		`{"id": 1, "rect": {"min": [0, 0], "max": [1, 1]}}`,
		`{"id": 1, "hint": {"min": [0, 0], "max": [1, 1]}}`,
		`{"records": [{"id": 1, "rect": {"min": [0], "max": [1]}}]}`,
		`{"rect": {"min": [1e308, -1e308], "max": [1e309, 0]}}`,
		`{"rect": {"min": [0.00000000000000000001], "max": [1]}}`,
		`{"rect": {"min": null, "max": null}}`,
		`{"rect": {"min": [0, 0], "max": [1, 1]}, "rects": []}`,
		`{"point": [null]}`,
		`{"id": -1, "rect": {"min": [0], "max": [1]}}`,
		`{"id": 18446744073709551615, "rect": {"min": [0], "max": [1]}}`,
		`[[[[[[[[[[]]]]]]]]]]`,
		`{"rect": {"min": [0, 0], "max": [1, 1]}}{"x": 1}`,
		strings.Repeat(`{"rects": [`, 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	checkRect := func(t *testing.T, min, max []float64, from string) {
		if len(min) == 0 || len(min) > MaxDims || len(min) != len(max) {
			t.Fatalf("%s: accepted rect with dims min=%d max=%d", from, len(min), len(max))
		}
		for d := range min {
			if math.IsNaN(min[d]) || math.IsNaN(max[d]) {
				t.Fatalf("%s: accepted NaN coordinate", from)
			}
			if min[d] > max[d] {
				t.Fatalf("%s: accepted inverted extent [%g, %g]", from, min[d], max[d])
			}
		}
	}

	f.Fuzz(func(t *testing.T, body string) {
		// Each decoder gets its own request: bodies are one-shot readers.
		newReq := func() (*httptest.ResponseRecorder, *http.Request) {
			return httptest.NewRecorder(),
				httptest.NewRequest("POST", "/x", strings.NewReader(body))
		}
		const maxBytes = 1 << 16

		var sr searchRequest
		if w, r := newReq(); decodeBody(w, r, maxBytes, &sr) == nil {
			if rects, err := sr.rects(); err == nil {
				for _, rc := range rects {
					checkRect(t, rc.Min, rc.Max, "search")
				}
			}
		}

		var st stabRequest
		if w, r := newReq(); decodeBody(w, r, maxBytes, &st) == nil {
			if points, err := st.points(); err == nil {
				if len(points) == 0 {
					t.Fatalf("stab: accepted empty point set")
				}
				for _, p := range points {
					if len(p) == 0 || len(p) > MaxDims {
						t.Fatalf("stab: accepted point with %d dims", len(p))
					}
					for _, v := range p {
						if math.IsNaN(v) {
							t.Fatalf("stab: accepted NaN coordinate")
						}
					}
				}
			}
		}

		var rec recordJSON
		if w, r := newReq(); decodeBody(w, r, maxBytes, &rec) == nil {
			if br, err := rec.toRecord(); err == nil {
				if br.ID == 0 {
					t.Fatalf("insert: accepted zero record ID")
				}
				checkRect(t, br.Rect.Min, br.Rect.Max, "insert")
			}
		}

		var del deleteRequest
		if w, r := newReq(); decodeBody(w, r, maxBytes, &del) == nil {
			if del.Hint != nil {
				if hint, err := del.Hint.toRect(); err == nil {
					checkRect(t, hint.Min, hint.Max, "delete")
				}
			}
		}

		var bl bulkloadRequest
		if w, r := newReq(); decodeBody(w, r, maxBytes, &bl) == nil {
			for i := range bl.Records {
				if br, err := bl.Records[i].toRecord(); err == nil {
					if br.ID == 0 {
						t.Fatalf("bulkload: accepted zero record ID")
					}
					checkRect(t, br.Rect.Min, br.Rect.Max, "bulkload")
				}
			}
		}
	})
}
