package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"segidx"
)

// MaxDims bounds the dimensionality accepted over the wire. It matches the
// engine's supported range (WithDims documents 1 through 8); rejecting
// higher values at the decoder keeps hostile requests from building huge
// coordinate slices before the engine sees them.
const MaxDims = 8

// maxBulkRecords bounds one /bulkload request. Larger loads are split by
// the client; the bound keeps a single request from holding the decoder's
// memory hostage.
const maxBulkRecords = 100_000

// httpError is an error carrying the HTTP status it should produce.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// rectJSON is the wire form of a rectangle.
type rectJSON struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// toRect validates the wire rectangle and builds the engine form.
func (r *rectJSON) toRect() (segidx.Rect, error) {
	if len(r.Min) == 0 || len(r.Max) == 0 {
		return segidx.Rect{}, badRequest("rect needs non-empty min and max")
	}
	if len(r.Min) != len(r.Max) {
		return segidx.Rect{}, badRequest("rect min has %d dimensions, max has %d", len(r.Min), len(r.Max))
	}
	if len(r.Min) > MaxDims {
		return segidx.Rect{}, badRequest("rect has %d dimensions, max %d", len(r.Min), MaxDims)
	}
	rect, err := segidx.NewRect(r.Min, r.Max)
	if err != nil {
		return segidx.Rect{}, badRequest("invalid rect: %v", err)
	}
	return rect, nil
}

// fromRect converts an engine rectangle to the wire form.
func fromRect(r segidx.Rect) rectJSON { return rectJSON{Min: r.Min, Max: r.Max} }

// searchRequest is the body of /search and /count: one rect or several.
type searchRequest struct {
	Rect  *rectJSON  `json:"rect,omitempty"`
	Rects []rectJSON `json:"rects,omitempty"`
}

// rects resolves the single/plural forms into the query list.
func (q *searchRequest) rects() ([]segidx.Rect, error) {
	if (q.Rect == nil) == (len(q.Rects) == 0) {
		return nil, badRequest(`body needs exactly one of "rect" or "rects"`)
	}
	var wire []rectJSON
	if q.Rect != nil {
		wire = []rectJSON{*q.Rect}
	} else {
		wire = q.Rects
	}
	out := make([]segidx.Rect, len(wire))
	for i := range wire {
		r, err := wire[i].toRect()
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// stabRequest is the body of /stab: one point or several.
type stabRequest struct {
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

// points resolves the single/plural forms, validating each coordinate
// slice (the engine's Point panics on NaN-free invalid input only via
// rect validation, so dimensions are bounded here).
func (q *stabRequest) points() ([][]float64, error) {
	if (q.Point == nil) == (len(q.Points) == 0) {
		return nil, badRequest(`body needs exactly one of "point" or "points"`)
	}
	pts := q.Points
	if q.Point != nil {
		pts = [][]float64{q.Point}
	}
	for i, p := range pts {
		if len(p) == 0 {
			return nil, badRequest("point %d is empty", i)
		}
		if len(p) > MaxDims {
			return nil, badRequest("point %d has %d dimensions, max %d", i, len(p), MaxDims)
		}
		for d, v := range p {
			if math.IsNaN(v) {
				return nil, badRequest("point %d has NaN in dimension %d", i, d)
			}
		}
	}
	return pts, nil
}

// recordJSON is the wire form of one record: /insert's body and the
// elements of /bulkload.
type recordJSON struct {
	ID   uint64    `json:"id"`
	Rect *rectJSON `json:"rect"`
}

// toRecord validates the wire record. IDs must be nonzero: RecordID 0 is
// reserved so a zero-valued (or id-less) request cannot silently collide
// on one record.
func (rec *recordJSON) toRecord() (segidx.BulkRecord, error) {
	if rec.ID == 0 {
		return segidx.BulkRecord{}, badRequest("record needs a nonzero id")
	}
	if rec.Rect == nil {
		return segidx.BulkRecord{}, badRequest("record needs a rect")
	}
	r, err := rec.Rect.toRect()
	if err != nil {
		return segidx.BulkRecord{}, err
	}
	return segidx.BulkRecord{ID: segidx.RecordID(rec.ID), Rect: r}, nil
}

// deleteRequest is the body of /delete. Hint must cover the rectangle
// originally inserted; see (*segidx.Index).Delete.
type deleteRequest struct {
	ID   uint64    `json:"id"`
	Hint *rectJSON `json:"hint"`
}

// bulkloadRequest is the body of /bulkload.
type bulkloadRequest struct {
	Records []recordJSON `json:"records"`
}

// decodeBody decodes the request body as a single strict JSON value into
// v: unknown fields, trailing garbage, and bodies over the server's byte
// limit are errors. The returned error is an *httpError carrying 400 or
// 413.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{
				status: http.StatusRequestEntityTooLarge,
				msg:    fmt.Sprintf("body exceeds %d bytes", maxBytes),
			}
		}
		return badRequest("malformed JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	// Drain any remaining whitespace so keep-alive connections can be
	// reused; MaxBytesReader keeps this bounded.
	_, _ = io.Copy(io.Discard, body) // best-effort drain
	return nil
}

// Cache keys encode the exact float64 bit patterns of a query, so two
// rects are assigned the same key iff they are bit-identical — no epsilon
// collapsing, which keeps a cached response byte-exact for its query.

// appendCoords appends the IEEE-754 bit patterns of coords to key.
func appendCoords(key []byte, coords []float64) []byte {
	for _, v := range coords {
		key = append(key, '|')
		key = strconv.AppendUint(key, math.Float64bits(v), 16)
	}
	return key
}

// searchKey builds the cache key for a rect query on an endpoint
// ("search", "within", "count", ...).
func searchKey(endpoint string, r segidx.Rect) string {
	key := make([]byte, 0, len(endpoint)+1+len(r.Min)*36)
	key = append(key, endpoint...)
	key = appendCoords(key, r.Min)
	key = append(key, '/')
	key = appendCoords(key, r.Max)
	return string(key)
}

// stabKey builds the cache key for a stab point.
func stabKey(p []float64) string {
	key := make([]byte, 0, 5+len(p)*18)
	key = append(key, "stab"...)
	key = appendCoords(key, p)
	return string(key)
}
