// Package server exposes a segment index over HTTP: JSON endpoints for
// search, stab, count, insert, delete, and bulk load, an epoch-invalidated
// LRU result cache in front of the read path, and a /metrics endpoint
// surfacing cache, per-endpoint latency, and engine counters.
//
// The server is a thin shell: every query goes through the public segidx
// facade (reads fan out through the SearchBatch/StabBatch worker pool), so
// the zero-allocation engine path, sharded scatter-gather, and WAL
// durability all apply unchanged. The one piece of state the server adds —
// the result cache — is kept correct by a mutation epoch; see cache.go and
// DESIGN.md §10 for the invalidation protocol.
package server

import (
	"container/list"
	"sync"
)

// cache is a fixed-capacity LRU of marshaled query results keyed by
// (endpoint, query) strings. Correctness under mutations comes from an
// epoch check, not from eager invalidation: every entry records the
// mutation epoch observed *before* its query ran, and a lookup only
// returns entries stamped with the current epoch. A mutation bumps the
// server's epoch counter, which implicitly invalidates the whole cache;
// stale entries are evicted lazily when a lookup trips over them or when
// LRU pressure recycles their slots. The engine's read path is therefore
// untouched on a miss — no locks, callbacks, or bookkeeping are added to
// the zero-alloc query itself.
//
// The epoch protocol is safe against the read/write race: a reader
// snapshots the epoch first and queries second, so a result computed
// concurrently with a mutation is stored under the pre-mutation epoch and
// can never be served after the mutation's bump. The worst case is a
// wasted store (a fresh result stamped with an epoch that is already
// stale), never a stale hit.
type cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element holding *centry

	hits          uint64
	misses        uint64
	evictions     uint64 // entries dropped for capacity
	invalidations uint64 // stale-epoch entries dropped on lookup
}

// centry is one cached result: the response fragment exactly as it will be
// written to clients (pre-marshaled JSON), plus the epoch it was computed
// under.
type centry struct {
	key   string
	epoch uint64
	val   []byte
}

// newCache returns an LRU holding at most capacity entries; capacity <= 0
// disables caching (every lookup misses, stores are dropped).
func newCache(capacity int) *cache {
	c := &cache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element, capacity)
	}
	return c
}

// get returns the cached value for key if it was stored under the given
// epoch. A present entry with a stale epoch is removed (lazy
// invalidation) and counts as a miss.
func (c *cache) get(key string, epoch uint64) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ce := el.Value.(*centry)
	if ce.epoch != epoch {
		c.ll.Remove(el)
		delete(c.items, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ce.val, true
}

// put stores val under key at the given epoch, evicting the least
// recently used entry if the cache is full. An existing entry for the key
// is replaced regardless of its epoch.
func (c *cache) put(key string, epoch uint64, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*centry)
		ce.epoch = epoch
		ce.val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*centry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&centry{key: key, epoch: epoch, val: val})
}

// CacheStats is a snapshot of result-cache counters for /metrics.
type CacheStats struct {
	Capacity      int     `json:"capacity"`
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// stats returns a consistent snapshot of the cache counters.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
	if c.ll != nil {
		s.Entries = c.ll.Len()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
