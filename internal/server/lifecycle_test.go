package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"segidx"
	"segidx/internal/store"
	"segidx/internal/store/faultstore"
)

// TestGracefulShutdownFlushesWAL mirrors the daemon's exit path: serve
// mutations (none of which flush on their own), drain HTTP, close the
// index, and verify a durable reopen sees every acknowledged insert. The
// index is a sharded durable forest so the flush must commit every
// shard's WAL plus the manifest.
func TestGracefulShutdownFlushesWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "forest.db")
	idx, err := segidx.NewSRTree(
		segidx.WithDims(2),
		segidx.WithShards(4),
		segidx.WithDurableFile(path),
	)
	if err != nil {
		t.Fatalf("index: %v", err)
	}

	s := New(idx, Config{}) // FlushEvery 0: durability rides on shutdown alone
	ts := httptest.NewServer(s.Handler())

	const inserts = 200
	for i := 1; i <= inserts; i++ {
		x := float64(i * 3)
		body := fmt.Sprintf(`{"id": %d, "rect": {"min": [%g, %g], "max": [%g, %g]}}`,
			i, x, x, x+5, x+5)
		rec := do(t, s, "POST", "/insert", body)
		if rec.Code != 200 {
			t.Fatalf("insert %d: status %d (%s)", i, rec.Code, rec.Body.String())
		}
	}
	// Delete one acknowledged record so the reopen check also covers
	// mutations that shrink the index.
	rec := do(t, s, "POST", "/delete", `{"id": 1, "hint": {"min": [3, 3], "max": [8, 8]}}`)
	if rec.Code != 200 {
		t.Fatalf("delete: status %d", rec.Code)
	}

	// The daemon's shutdown sequence: stop accepting, drain, flush+close.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("server Close (flush): %v", err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("index Close: %v", err)
	}

	re, err := segidx.OpenDurable(path)
	if err != nil {
		t.Fatalf("OpenDurable after shutdown: %v", err)
	}
	defer re.Close()
	if re.Len() != inserts-1 {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), inserts-1)
	}
	for i := 2; i <= inserts; i++ {
		x := float64(i * 3)
		got, err := re.Count(segidx.Box(x, x, x+5, x+5))
		if err != nil {
			t.Fatalf("Count: %v", err)
		}
		if got < 1 {
			t.Fatalf("acknowledged insert %d missing after reopen", i)
		}
	}
	if n, err := re.Count(segidx.Box(3, 3, 8, 8)); err != nil || n != 1 {
		// Only record 2's rect [6,6]x[11,11] overlaps; record 1 is gone.
		t.Fatalf("deleted record check: count %d, err %v", n, err)
	}
}

// TestBrokenEngine503 backs the server's index with a WAL store on a
// fault-injecting disk, breaks the disk under it, and asserts mutations
// surface HTTP 503 — not a panic, not a 500 — once the store latches
// ErrBroken.
func TestBrokenEngine503(t *testing.T) {
	disk := faultstore.NewDisk()
	ws, err := store.OpenWALStoreIn(disk, "idx")
	if err != nil {
		t.Fatalf("OpenWALStoreIn: %v", err)
	}
	idx, err := segidx.NewSRTree(segidx.WithDims(2), segidx.WithStore(ws))
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	defer ws.Close()

	// FlushEvery 1: every mutation is a group commit, so the injected
	// sync failure hits inside a request handler.
	s := New(idx, Config{FlushEvery: 1})

	// A healthy mutation first.
	rec := do(t, s, "POST", "/insert", `{"id": 1, "rect": {"min": [0,0], "max": [1,1]}}`)
	if rec.Code != 200 {
		t.Fatalf("healthy insert: status %d (%s)", rec.Code, rec.Body.String())
	}

	// Break the disk: the next sync fails, the store latches ErrBroken.
	disk.FailSync(1, errors.New("injected sync failure"))

	rec = do(t, s, "POST", "/insert", `{"id": 2, "rect": {"min": [2,2], "max": [3,3]}}`)
	if rec.Code != 503 {
		t.Fatalf("insert on failing disk: status %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	var e errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("503 body is not an error JSON: %q", rec.Body.String())
	}

	// The store is latched: every further mutation is 503 regardless of
	// endpoint, while the daemon itself keeps serving.
	for _, probe := range []struct{ path, body string }{
		{"/insert", `{"id": 3, "rect": {"min": [4,4], "max": [5,5]}}`},
		{"/delete", `{"id": 1, "hint": {"min": [0,0], "max": [1,1]}}`},
		{"/bulkload", `{"records": [{"id": 4, "rect": {"min": [6,6], "max": [7,7]}}]}`},
	} {
		rec := do(t, s, "POST", probe.path, probe.body)
		if rec.Code != 503 {
			t.Fatalf("%s on broken store: status %d, want 503 (%s)",
				probe.path, rec.Code, rec.Body.String())
		}
	}

	// Liveness endpoints still answer 200: the daemon reports its state
	// instead of dying.
	if rec := do(t, s, "GET", "/metrics", ""); rec.Code != 200 {
		t.Fatalf("/metrics on broken store: status %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("/healthz on broken store: status %d", rec.Code)
	}
}

// TestFlushEveryGroupCommit verifies the group-commit knob: with
// FlushEvery n, acknowledged mutations up to the last multiple of n are
// durable even without a graceful shutdown (simulated by reopening from
// the store file without closing).
func TestFlushEveryGroupCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.db")
	idx, err := segidx.NewSRTree(segidx.WithDims(2), segidx.WithDurableFile(path))
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	defer idx.Close()

	s := New(idx, Config{FlushEvery: 10})
	for i := 1; i <= 25; i++ {
		body := fmt.Sprintf(`{"id": %d, "rect": {"min": [%d, %d], "max": [%d, %d]}}`,
			i, i, i, i+1, i+1)
		if rec := do(t, s, "POST", "/insert", body); rec.Code != 200 {
			t.Fatalf("insert %d: status %d", i, rec.Code)
		}
	}
	// 25 mutations with FlushEvery 10: commits at 10 and 20. A crash now
	// (reopen without Close) must recover at least the first 20.
	re, err := segidx.OpenDurable(path)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	defer re.Close()
	if re.Len() != 20 {
		t.Fatalf("recovered Len = %d, want 20 (last group commit)", re.Len())
	}
}
