// Package accel implements a HINT-style hierarchical main-memory interval
// index (Christodoulou et al., "HINT: A Hierarchical Index for Intervals in
// Main Memory") used as a sidecar accelerator for one hot dimension of a
// segment index tree.
//
// The hot-dimension domain [Lo, Hi] is partitioned into 2^Levels equal
// bottom cells; level l (0 = root) has 2^l nodes, each covering a dyadic
// run of bottom cells. An interval's cell range [a, b] is decomposed into
// its canonical segment-tree cover: at most two nodes per level, pairwise
// disjoint, whose cell runs tile [a, b] exactly. Each assigned node stores
// the record in one of two flat slot lists:
//
//   - covers: nodes whose cell run contains neither a nor b. For a stab at
//     point q landing in such a run, cellOf(start) < cellOf(q) <
//     cellOf(end) holds by construction, and because cellOf is monotone
//     this proves start < q < end with no float comparison at query time —
//     the "comparison-free" property HINT is built around.
//   - bounds: the (at most two per level) end nodes whose run contains a
//     or b; these candidates are verified with ordinary comparisons.
//
// Each record is additionally registered once in the origin list of bottom
// cell a = cellOf(start), which lets an intersection query [qa, qb] be
// answered duplicate-free as the disjoint union of a stab at qa (records
// with start <= qa) and an origin scan of cells cellOf(qa)..cellOf(qb)
// (records with start > qa).
//
// Values outside [Lo, Hi] clamp to the edge cells: cellOf stays monotone,
// so every answer stays exact — out-of-domain data only crowds the edge
// cells and costs performance, never correctness.
//
// Concurrency follows the owning tree's MVCC discipline. The single writer
// stages inserts and deletes under the tree's write lock and applies them
// in Commit, inside the tree's copy-on-write bracket and before the tree
// publishes its new state. Readers are lock-free: record columns live in
// an append-only table published through an atomic pointer (the prefix
// visible through any published header is immutable), deletes never remove
// slots but stamp an atomic death epoch, and every read filters by its
// pinned snapshot epoch — birth <= epoch < death. Slot lists are published
// per cell through atomic pointers with in-place append beyond the visible
// length; superseded headers are reclaimed by the Go GC once the last
// reader drops them, and dead slots are compacted out of their cell lists
// once the tree's epoch GC proves no live snapshot can still see them.
package accel

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"segidx/internal/geom"
)

// deathChunkShift sizes the fixed death-stamp chunks (4096 slots). Chunks
// never move once allocated, so the atomic death cells stay addressable
// while the column slices around them grow.
const (
	deathChunkShift = 12
	deathChunkSize  = 1 << deathChunkShift
	deathChunkMask  = deathChunkSize - 1
)

type deathChunk [deathChunkSize]uint64

// recTable is one published version of the record columns. Append-only and
// prefix-stable: every version's visible prefix is immutable, versions
// share backing arrays, and a new header is published per appending
// commit. Slot indices are stable for the life of the accelerator.
type recTable struct {
	rects  []float64 // 2*k floats per slot: min coords then max coords
	starts []float64 // hot-dimension min, denormalized for the scan loops
	ends   []float64 // hot-dimension max
	ids    []uint64
	births []uint64      // commit epoch the slot became visible
	deaths []*deathChunk // atomic death epochs; 0 = live
}

// slotList is one published version of a cell's slot list. The visible
// prefix slots[:len] is immutable; appends write beyond it into shared
// backing and publish a longer header.
type slotList struct {
	slots []uint32
}

// Mode selects the hybrid routing policy; see Accel.RouteContain.
type Mode int32

const (
	// ModeAuto routes each query by the adaptive cost gate.
	ModeAuto Mode = iota
	// ModeAlways routes every eligible query through the accelerator
	// (degraded accelerators still fall back to the tree).
	ModeAlways
	// ModeOff never routes; the accelerator is maintained but unused.
	ModeOff
)

func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeAlways:
		return "always"
	case ModeOff:
		return "off"
	default:
		return fmt.Sprintf("Mode(%d)", int32(m))
	}
}

// ParseMode resolves the -hybrid flag spelling of a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "auto":
		return ModeAuto, nil
	case "always":
		return ModeAlways, nil
	case "off":
		return ModeOff, nil
	default:
		return 0, fmt.Errorf("accel: unknown hybrid mode %q (want off, always, auto)", s)
	}
}

// Config describes one accelerator.
type Config struct {
	// Dims is the dimensionality of the indexed rectangles.
	Dims int
	// Dim is the hot dimension the hierarchy partitions.
	Dim int
	// Levels is the partition depth m: the bottom level has 2^m cells.
	Levels int
	// Lo, Hi bound the hot-dimension domain. Out-of-domain values clamp
	// to the edge cells (exact but slower).
	Lo, Hi float64
	// Mode is the initial routing policy.
	Mode Mode
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dims < 1 || c.Dims > 8 {
		return fmt.Errorf("accel: Dims %d outside [1, 8]", c.Dims)
	}
	if c.Dim < 0 || c.Dim >= c.Dims {
		return fmt.Errorf("accel: hot dimension %d outside [0, %d)", c.Dim, c.Dims)
	}
	if c.Levels < 1 || c.Levels > 16 {
		return fmt.Errorf("accel: Levels %d outside [1, 16]", c.Levels)
	}
	if !(c.Lo < c.Hi) {
		return fmt.Errorf("accel: domain [%g, %g] is empty", c.Lo, c.Hi)
	}
	if c.Mode != ModeAuto && c.Mode != ModeAlways && c.Mode != ModeOff {
		return fmt.Errorf("accel: unknown mode %d", int32(c.Mode))
	}
	return nil
}

// staged is one buffered insert awaiting Commit.
type staged struct {
	rect []float64 // 2*k floats, owned copy
	id   uint64
}

// retire queues a cell list for compaction once the tree's GC floor
// reaches the stamping epoch.
type retire struct {
	list  *atomic.Pointer[slotList]
	epoch uint64
}

// Accel is the accelerator. Read methods are safe for concurrent lock-free
// use; the Stage*/Commit/Abort maintenance methods must be serialized by
// the owning tree's write lock.
type Accel struct {
	k      int
	dim    int
	levels int
	nCells uint32
	lo     float64
	hi     float64
	scale  float64 // nCells / (hi - lo)

	// recs is the published record-column header.
	recs atomic.Pointer[recTable]

	// covers and bounds are heap-indexed over the node hierarchy (root at
	// 1, bottom cell c at nCells+c, parent v>>1); origins is indexed by
	// bottom cell.
	covers  []atomic.Pointer[slotList]
	bounds  []atomic.Pointer[slotList]
	origins []atomic.Pointer[slotList]

	mode     atomic.Int32
	degraded atomic.Bool

	// Cost-gate state; see route.go.
	ewma        [4]atomic.Uint64
	seq         atomic.Uint64
	routedAccel atomic.Uint64
	routedTree  atomic.Uint64
	probes      atomic.Uint64

	// Writer state, guarded by the owning tree's write lock.
	pendIns []staged
	pendDel []uint64
	live    map[uint64]uint32
	retired []retire
	dead    int
}

// New creates an empty accelerator.
func New(cfg Config) (*Accel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := uint32(1) << cfg.Levels
	a := &Accel{
		k:       cfg.Dims,
		dim:     cfg.Dim,
		levels:  cfg.Levels,
		nCells:  n,
		lo:      cfg.Lo,
		hi:      cfg.Hi,
		scale:   float64(n) / (cfg.Hi - cfg.Lo),
		covers:  make([]atomic.Pointer[slotList], 2*n),
		bounds:  make([]atomic.Pointer[slotList], 2*n),
		origins: make([]atomic.Pointer[slotList], n),
		live:    make(map[uint64]uint32),
	}
	a.mode.Store(int32(cfg.Mode))
	a.recs.Store(&recTable{})
	return a, nil
}

// Dim reports the hot dimension.
func (a *Accel) Dim() int { return a.dim }

// SetMode changes the routing policy.
func (a *Accel) SetMode(m Mode) { a.mode.Store(int32(m)) }

// Degrade permanently disables routing: every future query goes to the
// tree. Used when the accelerator's one-rect-per-ID model cannot represent
// the tree's contents (duplicate record IDs); the tree remains the source
// of truth, so degrading is always safe.
func (a *Accel) Degrade() {
	a.degraded.Store(true)
	// Frozen state serves no reader; drop the writer-side buffers.
	a.pendIns, a.pendDel, a.retired = nil, nil, nil
	a.live = nil
}

// Degraded reports whether routing is permanently disabled.
func (a *Accel) Degraded() bool { return a.degraded.Load() }

// cellOf maps a hot-dimension value to its bottom cell, clamping
// out-of-domain values to the edge cells. Monotone: v <= w implies
// cellOf(v) <= cellOf(w), which the comparison-free covers proof and the
// candidate-completeness arguments rely on.
//
//seglint:hotpath
func (a *Accel) cellOf(v float64) uint32 {
	f := (v - a.lo) * a.scale
	if !(f > 0) { // also catches NaN defensively
		return 0
	}
	if f >= float64(a.nCells) {
		return a.nCells - 1
	}
	return uint32(f)
}

// nodeRun returns the bottom-cell run [first, last] covered by heap node v.
func (a *Accel) nodeRun(v uint32) (first, last uint32) {
	shift := uint(a.levels - (bits.Len32(v) - 1))
	first = v<<shift - a.nCells
	last = first + 1<<shift - 1
	return first, last
}

// decompose visits the canonical segment-tree cover of the cell range
// [ca, cb]: at most two nodes per level, pairwise disjoint, tiling the
// range exactly. bound reports whether the node's run contains ca or cb
// (the verified end nodes); all other assigned nodes are comparison-free
// covers nodes.
func (a *Accel) decompose(ca, cb uint32, fn func(v uint32, bound bool)) {
	assign := func(v uint32) {
		first, last := a.nodeRun(v)
		fn(v, first == ca || last == cb)
	}
	l := ca + a.nCells
	r := cb + 1 + a.nCells
	for l < r {
		if l&1 == 1 {
			assign(l)
			l++
		}
		if r&1 == 1 {
			r--
			assign(r)
		}
		l >>= 1
		r >>= 1
	}
}

// StageInsert buffers one insert for the next Commit. rect is copied; the
// caller keeps ownership. Must hold the owning tree's write lock.
func (a *Accel) StageInsert(r geom.Rect, id uint64) {
	if a.degraded.Load() {
		return
	}
	flat := make([]float64, 2*a.k)
	copy(flat, r.Min)
	copy(flat[a.k:], r.Max)
	a.pendIns = append(a.pendIns, staged{rect: flat, id: id})
}

// StageDelete buffers one whole-record delete for the next Commit. Must
// hold the owning tree's write lock.
func (a *Accel) StageDelete(id uint64) {
	if a.degraded.Load() {
		return
	}
	a.pendDel = append(a.pendDel, uint64(id))
}

// Abort drops the staged operations of a failed tree operation. The
// applied state is untouched — staging never mutates published data — so
// no undo is needed. Must hold the owning tree's write lock.
func (a *Accel) Abort() {
	a.pendIns = a.pendIns[:0]
	a.pendDel = a.pendDel[:0]
}

// Commit applies the staged operations as the given commit epoch and
// publishes them. The owning tree calls this inside its write bracket,
// before publishing its own new state, so any reader that can pin newEpoch
// already sees the matching accelerator contents. minEpoch is the tree's
// epoch-GC floor (no live snapshot is pinned below it): cell lists retired
// at or below it are compacted now. Must hold the owning tree's write
// lock.
func (a *Accel) Commit(newEpoch, minEpoch uint64) {
	if a.degraded.Load() {
		return
	}
	t := a.recs.Load()

	// Deletes: stamp the death epoch and queue the slot's cells for
	// compaction once no snapshot below newEpoch survives. An ID the
	// accelerator does not hold (a no-op or hint-mismatched tree delete)
	// is skipped — the tree removed nothing the accelerator reported.
	for _, id := range a.pendDel {
		slot, ok := a.live[id]
		if !ok {
			continue
		}
		delete(a.live, id)
		a.dead++
		chunk := t.deaths[slot>>deathChunkShift]
		atomic.StoreUint64(&chunk[slot&deathChunkMask], newEpoch)
		ca := a.cellOf(t.starts[slot])
		cb := a.cellOf(t.ends[slot])
		a.decompose(ca, cb, func(v uint32, bound bool) {
			if bound {
				a.retired = append(a.retired, retire{list: &a.bounds[v], epoch: newEpoch})
			} else {
				a.retired = append(a.retired, retire{list: &a.covers[v], epoch: newEpoch})
			}
		})
		a.retired = append(a.retired, retire{list: &a.origins[ca], epoch: newEpoch})
	}
	a.pendDel = a.pendDel[:0]

	// Inserts. A reused live ID breaks the one-rect-per-ID model: the
	// tree now holds several independent portions under the ID, which the
	// flat slabs cannot answer intersection queries for. Degrade — the
	// tree keeps serving every query exactly.
	for i := range a.pendIns {
		if _, dup := a.live[a.pendIns[i].id]; dup {
			a.Degrade()
			return
		}
		slot := uint32(len(t.ids))
		nt := &recTable{
			rects:  append(t.rects, a.pendIns[i].rect...),
			starts: append(t.starts, a.pendIns[i].rect[a.dim]),
			ends:   append(t.ends, a.pendIns[i].rect[a.k+a.dim]),
			ids:    append(t.ids, a.pendIns[i].id),
			births: append(t.births, newEpoch),
			deaths: t.deaths,
		}
		if int(slot>>deathChunkShift) == len(nt.deaths) {
			nt.deaths = append(nt.deaths, new(deathChunk))
		}
		t = nt
		a.live[a.pendIns[i].id] = slot
		ca := a.cellOf(t.starts[slot])
		cb := a.cellOf(t.ends[slot])
		a.decompose(ca, cb, func(v uint32, bound bool) {
			if bound {
				appendSlot(&a.bounds[v], slot)
			} else {
				appendSlot(&a.covers[v], slot)
			}
		})
		appendSlot(&a.origins[ca], slot)
	}
	a.pendIns = a.pendIns[:0]
	a.recs.Store(t)

	a.drainRetired(t, minEpoch)
}

// appendSlot publishes list ∪ {slot}: in place beyond the visible length
// while capacity lasts (the immutable prefix is untouched), into fresh
// backing otherwise. Readers holding older headers keep their shorter
// immutable view either way.
func appendSlot(p *atomic.Pointer[slotList], slot uint32) {
	cur := p.Load()
	if cur == nil {
		s := make([]uint32, 1, 8)
		s[0] = slot
		p.Store(&slotList{slots: s})
		return
	}
	n := len(cur.slots)
	var s []uint32
	if n < cap(cur.slots) {
		s = cur.slots[:n+1]
	} else {
		s = make([]uint32, n+1, 2*(n+1))
		copy(s, cur.slots)
	}
	s[n] = slot
	p.Store(&slotList{slots: s})
}

// drainRetired compacts every cell list whose retirement epoch the GC
// floor has reached: dead slots with death <= minEpoch are invisible to
// every live and future snapshot, so filtering them out of a fresh backing
// array (shared backing is never edited under readers) changes no answer.
func (a *Accel) drainRetired(t *recTable, minEpoch uint64) {
	i := 0
	for i < len(a.retired) && a.retired[i].epoch <= minEpoch {
		a.compact(t, a.retired[i].list, minEpoch)
		i++
	}
	if i > 0 {
		n := copy(a.retired, a.retired[i:])
		a.retired = a.retired[:n]
		a.dead -= i // approximate: one retire group per dead record's cells
		if a.dead < 0 {
			a.dead = 0
		}
	}
}

// compact republishes a cell list without the slots dead at or below
// minEpoch.
func (a *Accel) compact(t *recTable, p *atomic.Pointer[slotList], minEpoch uint64) {
	cur := p.Load()
	if cur == nil {
		return
	}
	keep := cur.slots[:0:0]
	dropped := false
	for _, s := range cur.slots {
		chunk := t.deaths[s>>deathChunkShift]
		d := atomic.LoadUint64(&chunk[s&deathChunkMask])
		if d != 0 && d <= minEpoch {
			dropped = true
			continue
		}
		keep = append(keep, s)
	}
	if dropped {
		p.Store(&slotList{slots: keep})
	}
}

// Stats is a point-in-time snapshot of accelerator occupancy and routing
// counters.
type Stats struct {
	// Dim is the hot dimension; Levels the partition depth.
	Dim    int `json:"dim"`
	Levels int `json:"levels"`
	// Slots is the total record slots ever allocated; Live the currently
	// visible records; Staged the operations awaiting commit.
	Slots int `json:"slots"`
	Live  int `json:"live"`
	// Degraded reports whether routing is permanently disabled.
	Degraded bool `json:"degraded"`
	// Routing counters: queries answered by the accelerator, queries sent
	// to the tree while an accelerator was attached, and cost-gate probes.
	RoutedAccel uint64 `json:"routed_accel"`
	RoutedTree  uint64 `json:"routed_tree"`
	Probes      uint64 `json:"probes"`
	// Cost-gate EWMAs in nanoseconds (0 = unmeasured).
	EwmaContainTreeNs  uint64 `json:"ewma_contain_tree_ns"`
	EwmaContainAccelNs uint64 `json:"ewma_contain_accel_ns"`
	EwmaRangeTreeNs    uint64 `json:"ewma_range_tree_ns"`
	EwmaRangeAccelNs   uint64 `json:"ewma_range_accel_ns"`
}

// Stats returns current counters. Safe to call concurrently with readers;
// Live and Slots are writer-side gauges and may lag one commit when read
// without the tree's write lock.
func (a *Accel) Stats() Stats {
	t := a.recs.Load()
	return Stats{
		Dim:                a.dim,
		Levels:             a.levels,
		Slots:              len(t.ids),
		Live:               len(a.live),
		Degraded:           a.degraded.Load(),
		RoutedAccel:        a.routedAccel.Load(),
		RoutedTree:         a.routedTree.Load(),
		Probes:             a.probes.Load(),
		EwmaContainTreeNs:  a.ewma[ewContainTree].Load(),
		EwmaContainAccelNs: a.ewma[ewContainAccel].Load(),
		EwmaRangeTreeNs:    a.ewma[ewRangeTree].Load(),
		EwmaRangeAccelNs:   a.ewma[ewRangeAccel].Load(),
	}
}
