package accel

import (
	"math/rand"
	"sort"
	"testing"

	"segidx/internal/geom"
)

// oracleRec mirrors one accelerator record for the brute-force oracle.
type oracleRec struct {
	r     geom.Rect
	id    uint64
	birth uint64
	death uint64 // 0 = live
}

func visibleAt(o oracleRec, epoch uint64) bool {
	return o.birth <= epoch && (o.death == 0 || o.death > epoch)
}

func contains(r, q geom.Rect) bool {
	for i := range q.Min {
		if r.Min[i] > q.Min[i] || r.Max[i] < q.Max[i] {
			return false
		}
	}
	return true
}

func intersects(r, q geom.Rect) bool {
	for i := range q.Min {
		if r.Min[i] > q.Max[i] || r.Max[i] < q.Min[i] {
			return false
		}
	}
	return true
}

func collectIDs(a *Accel, epoch uint64, q geom.Rect, rangeQ bool) []uint64 {
	var ids []uint64
	fn := func(min, max []float64, id uint64) bool {
		ids = append(ids, id)
		return true
	}
	if rangeQ {
		a.RangeVisit(epoch, q.Min, q.Max, fn)
	} else {
		a.ContainVisit(epoch, q.Min, q.Max, fn)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func oracleIDs(recs []oracleRec, epoch uint64, q geom.Rect, rangeQ bool) []uint64 {
	var ids []uint64
	for _, o := range recs {
		if !visibleAt(o, epoch) {
			continue
		}
		if rangeQ && intersects(o.r, q) || !rangeQ && contains(o.r, q) {
			ids = append(ids, o.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAccelOracle drives interleaved inserts/deletes through epoched
// commits and checks stab, containing, and intersection answers against a
// brute-force oracle at every historical epoch — including values outside
// the configured domain, which must clamp, not break.
func TestAccelOracle(t *testing.T) {
	a, err := New(Config{Dims: 2, Dim: 0, Levels: 6, Lo: 0, Hi: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var oracle []oracleRec
	nextID := uint64(1)
	epoch := uint64(1)

	randRect := func() geom.Rect {
		// Deliberately overshoots the domain on both sides.
		lo := rng.Float64()*1400 - 200
		hi := lo + rng.Float64()*300
		y := rng.Float64() * 100
		return geom.Rect2(lo, y, hi, y+rng.Float64()*20)
	}

	for step := 0; step < 60; step++ {
		// One commit: a few inserts, sometimes a delete.
		newEpoch := epoch + 1
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			r := randRect()
			a.StageInsert(r, nextID)
			oracle = append(oracle, oracleRec{r: r, id: nextID, birth: newEpoch})
			nextID++
		}
		if step%3 == 2 {
			// Delete a random live record.
			live := make([]int, 0, len(oracle))
			for i, o := range oracle {
				if o.death == 0 && o.birth <= epoch {
					live = append(live, i)
				}
			}
			if len(live) > 0 {
				i := live[rng.Intn(len(live))]
				a.StageDelete(oracle[i].id)
				oracle[i].death = newEpoch
			}
		}
		// minEpoch trails the commit so compaction stays active.
		minEpoch := uint64(1)
		if newEpoch > 5 {
			minEpoch = newEpoch - 5
		}
		a.Commit(newEpoch, minEpoch)
		epoch = newEpoch
		if a.Degraded() {
			t.Fatalf("step %d: unexpected degrade", step)
		}

		// Check answers at several epochs, including historical ones that
		// compaction must not have disturbed (only epochs >= minEpoch are
		// pinnable in the real system).
		for _, e := range []uint64{epoch, epoch - 1, minEpoch} {
			for q := 0; q < 8; q++ {
				x := rng.Float64()*1400 - 200
				y := rng.Float64() * 100
				stab := geom.Point(x, y)
				if got, want := collectIDs(a, e, stab, false), oracleIDs(oracle, e, stab, false); !equalIDs(got, want) {
					t.Fatalf("step %d epoch %d stab(%g,%g): got %v want %v", step, e, x, y, got, want)
				}
				box := randRect()
				if got, want := collectIDs(a, e, box, true), oracleIDs(oracle, e, box, true); !equalIDs(got, want) {
					t.Fatalf("step %d epoch %d range %v: got %v want %v", step, e, box, got, want)
				}
				if got, want := collectIDs(a, e, box, false), oracleIDs(oracle, e, box, false); !equalIDs(got, want) {
					t.Fatalf("step %d epoch %d contain %v: got %v want %v", step, e, box, got, want)
				}
			}
		}
	}
	st := a.Stats()
	if st.Slots == 0 || st.Live == 0 {
		t.Fatalf("implausible stats after churn: %+v", st)
	}
}

// TestAccelAbort proves staged operations vanish on Abort and the next
// commit applies only its own staging.
func TestAccelAbort(t *testing.T) {
	a, err := New(Config{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.StageInsert(geom.Rect2(10, 0, 20, 0), 1)
	a.Commit(2, 1)
	a.StageInsert(geom.Rect2(30, 0, 40, 0), 2)
	a.StageDelete(1)
	a.Abort()
	a.StageInsert(geom.Rect2(50, 0, 60, 0), 3)
	a.Commit(3, 1)

	got := collectIDs(a, 3, geom.Rect2(0, 0, 100, 0), true)
	if !equalIDs(got, []uint64{1, 3}) {
		t.Fatalf("after abort+commit: got %v want [1 3]", got)
	}
}

// TestAccelDegradeOnDuplicateID proves a reused live ID permanently
// disables routing instead of serving wrong answers.
func TestAccelDegradeOnDuplicateID(t *testing.T) {
	a, err := New(Config{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 100, Mode: ModeAlways})
	if err != nil {
		t.Fatal(err)
	}
	a.StageInsert(geom.Rect2(10, 0, 20, 0), 7)
	a.Commit(2, 1)
	if a.Degraded() {
		t.Fatal("degraded too early")
	}
	a.StageInsert(geom.Rect2(80, 0, 90, 0), 7) // duplicate live ID
	a.Commit(3, 1)
	if !a.Degraded() {
		t.Fatal("duplicate live ID must degrade")
	}
	if a.RouteContain() || a.RouteRange([]float64{0, 0}, []float64{1, 1}) {
		t.Fatal("degraded accelerator must never route, even in ModeAlways")
	}
}

// TestAccelDeleteUnknownID proves deleting an ID the accelerator never
// held (or already deleted) is a harmless no-op.
func TestAccelDeleteUnknownID(t *testing.T) {
	a, err := New(Config{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.StageInsert(geom.Rect2(10, 0, 20, 5), 1)
	a.StageDelete(99)
	a.Commit(2, 1)
	a.StageDelete(1)
	a.StageDelete(1)
	a.Commit(3, 2)
	if got := collectIDs(a, 2, geom.Point(15, 2), false); !equalIDs(got, []uint64{1}) {
		t.Fatalf("epoch 2 stab: got %v want [1]", got)
	}
	if got := collectIDs(a, 3, geom.Point(15, 2), false); len(got) != 0 {
		t.Fatalf("epoch 3 stab after delete: got %v want empty", got)
	}
}

// TestAccelRouting exercises the three modes and the degenerate gate
// states.
func TestAccelRouting(t *testing.T) {
	a, err := New(Config{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.SetMode(ModeOff)
	if a.RouteContain() {
		t.Fatal("ModeOff routed")
	}
	a.SetMode(ModeAlways)
	if !a.RouteContain() {
		t.Fatal("ModeAlways refused")
	}
	a.SetMode(ModeAuto)
	// Unmeasured accelerator side gets first claim (modulo probes).
	accel, tree := 0, 0
	for i := 0; i < 256; i++ {
		if a.RouteContain() {
			accel++
		} else {
			tree++
		}
	}
	if accel == 0 {
		t.Fatal("auto mode never tried the unmeasured accelerator")
	}
	if tree == 0 {
		t.Fatal("auto mode never probed the other side")
	}
	// Teach the gate the accelerator is slow; routing must flip.
	for i := 0; i < 64; i++ {
		a.ObserveContain(true, 1_000_000)
		a.ObserveContain(false, 1_000)
	}
	tree = 0
	for i := 0; i < 63; i++ {
		if !a.RouteContain() {
			tree++
		}
	}
	if tree < 32 {
		t.Fatalf("gate did not learn the slow side: only %d/63 tree routes", tree)
	}
	// A domain-wide range is statically guarded in auto mode.
	for i := 0; i < 64; i++ {
		a.ObserveRange(true, 1)
	}
	if a.RouteRange([]float64{0, 0}, []float64{100, 0}) {
		t.Fatal("domain-wide range must not route in auto mode")
	}
	if got := a.Stats(); got.RoutedAccel == 0 || got.RoutedTree == 0 || got.Probes == 0 {
		t.Fatalf("stats counters not advancing: %+v", got)
	}
}

// TestParseMode covers the flag spellings.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"auto", ModeAuto}, {"always", ModeAlways}, {"off", ModeOff}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Mode %v String = %q", got, got.String())
		}
	}
	if _, err := ParseMode("sometimes"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
}

// TestConfigValidate covers the rejection paths.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dims: 0, Dim: 0, Levels: 4, Lo: 0, Hi: 1},
		{Dims: 2, Dim: 2, Levels: 4, Lo: 0, Hi: 1},
		{Dims: 2, Dim: -1, Levels: 4, Lo: 0, Hi: 1},
		{Dims: 2, Dim: 0, Levels: 0, Lo: 0, Hi: 1},
		{Dims: 2, Dim: 0, Levels: 17, Lo: 0, Hi: 1},
		{Dims: 2, Dim: 0, Levels: 4, Lo: 1, Hi: 1},
		{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 1, Mode: Mode(9)},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(Config{Dims: 2, Dim: 0, Levels: 4, Lo: 0, Hi: 1}); err != nil {
		t.Fatal(err)
	}
}
