package accel

// The adaptive cost gate. Per query class (containing-style stabs vs.
// intersection ranges) the gate keeps one EWMA of observed latency per
// side and routes each query to the cheaper side, with a deterministic
// 1-in-probePeriod probe sent to the other side so both averages stay
// current as the workload drifts. Probing is free in the only currency
// that matters: both sides return identical answers, a probe only moves
// where the time is spent. The EWMA update is a racy load-compute-store —
// concurrent readers can lose each other's samples — which is acceptable
// for a heuristic that only has to track which side is cheaper, never an
// exact figure.

// EWMA slot indices.
const (
	ewContainTree = iota
	ewContainAccel
	ewRangeTree
	ewRangeAccel
)

// probePeriod routes every Nth auto-mode query to the side the gate
// currently disfavors.
const probePeriod = 64

// maxRangeWidthFrac is the static guard for intersection queries: wider
// than this fraction of the hot domain, the origin-cell scan touches too
// much of the bottom level to win, and auto mode goes straight to the
// tree without polluting the range EWMA.
const maxRangeWidthFrac = 0.25

// RouteContain decides whether a containing-style query (Stab,
// SearchContaining) should run on the accelerator.
func (a *Accel) RouteContain() bool {
	return a.route(ewContainTree, ewContainAccel, false)
}

// RouteRange decides whether an intersection query (Search, Count) should
// run on the accelerator.
func (a *Accel) RouteRange(qmin, qmax []float64) bool {
	wide := (qmax[a.dim]-qmin[a.dim])*a.scale > maxRangeWidthFrac*float64(a.nCells)
	return a.route(ewRangeTree, ewRangeAccel, wide)
}

func (a *Accel) route(treeIdx, accelIdx int, guard bool) bool {
	if a.degraded.Load() {
		return false
	}
	switch Mode(a.mode.Load()) {
	case ModeOff:
		return false
	case ModeAlways:
		return true
	}
	if guard {
		return false
	}
	at := a.ewma[accelIdx].Load()
	tt := a.ewma[treeIdx].Load()
	var prefer bool
	switch {
	case at == 0: // unmeasured sides get first claim
		prefer = true
	case tt == 0:
		prefer = false
	default:
		prefer = at <= tt
	}
	if a.seq.Add(1)%probePeriod == 0 {
		a.probes.Add(1)
		return !prefer
	}
	return prefer
}

// ObserveContain feeds one containing-style query latency (ns) back into
// the gate. usedAccel tells which side produced it.
func (a *Accel) ObserveContain(usedAccel bool, ns int64) {
	a.observe(ewContainTree, ewContainAccel, usedAccel, ns)
}

// ObserveRange feeds one intersection query latency (ns) back into the
// gate.
func (a *Accel) ObserveRange(usedAccel bool, ns int64) {
	a.observe(ewRangeTree, ewRangeAccel, usedAccel, ns)
}

func (a *Accel) observe(treeIdx, accelIdx int, usedAccel bool, ns int64) {
	if ns < 0 {
		ns = 0
	}
	idx := treeIdx
	if usedAccel {
		idx = accelIdx
		a.routedAccel.Add(1)
	} else {
		a.routedTree.Add(1)
	}
	e := &a.ewma[idx]
	old := e.Load()
	nv := old - old/8 + uint64(ns)/8
	if old == 0 {
		nv = uint64(ns)
	}
	if nv == 0 {
		nv = 1 // keep a measured side distinguishable from an unmeasured one
	}
	e.Store(nv)
}
