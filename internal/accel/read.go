package accel

import "sync/atomic"

// VisitFunc receives one matching record. min and max alias the
// accelerator's flat column storage — valid only for the duration of the
// call; copy to retain. Return false to stop the traversal.
type VisitFunc func(min, max []float64, id uint64) bool

// ContainVisit streams every record, visible at the pinned snapshot
// epoch, whose rectangle contains [qmin, qmax] — the accelerator's answer
// to SearchContaining and Stab. Bottom-up: the leaf-to-root path of
// cellOf(qmin[dim]) holds every candidate, because a containing record's
// hot interval covers the stab point, so exactly one node of its
// canonical decomposition has the stab cell in its run and that node lies
// on the path. When the query is degenerate in the hot dimension (a true
// stab), candidates from covers lists skip the hot-dimension comparison
// entirely: the canonical cover's cell run bounds prove start < q < end
// through the monotonicity of cellOf. Returns false if fn stopped the
// scan. Allocation-free; safe for concurrent lock-free use.
//
//seglint:hotpath
func (a *Accel) ContainVisit(epoch uint64, qmin, qmax []float64, fn VisitFunc) bool {
	t := a.recs.Load()
	skipHot := -1
	if !(qmin[a.dim] < qmax[a.dim]) { // degenerate hot extent: covers lists are comparison-free
		skipHot = a.dim
	}
	for v := a.cellOf(qmin[a.dim]) + a.nCells; v >= 1; v >>= 1 {
		if !a.scanContain(t, epoch, a.covers[v].Load(), qmin, qmax, skipHot, fn) {
			return false
		}
		if !a.scanContain(t, epoch, a.bounds[v].Load(), qmin, qmax, -1, fn) {
			return false
		}
	}
	return true
}

// scanContain filters one slot list by snapshot visibility and
// containment. skipHot names a dimension already proven to contain the
// query (or -1).
//
//seglint:hotpath
func (a *Accel) scanContain(t *recTable, epoch uint64, l *slotList, qmin, qmax []float64, skipHot int, fn VisitFunc) bool {
	if l == nil {
		return true
	}
	k := a.k
	nRec := len(t.ids)
	for _, s := range l.slots {
		// A list header can be newer than our column header; slots past
		// its visible prefix belong to younger epochs anyway.
		if int(s) >= nRec || t.births[s] > epoch {
			continue
		}
		chunk := t.deaths[s>>deathChunkShift]
		if d := atomic.LoadUint64(&chunk[s&deathChunkMask]); d != 0 && d <= epoch {
			continue
		}
		off := int(s) * 2 * k
		rmin := t.rects[off : off+k : off+k]
		rmax := t.rects[off+k : off+2*k : off+2*k]
		ok := true
		for i := 0; i < k; i++ {
			if i != skipHot && (rmin[i] > qmin[i] || rmax[i] < qmax[i]) {
				ok = false
				break
			}
		}
		if ok && !fn(rmin, rmax, t.ids[s]) {
			return false
		}
	}
	return true
}

// RangeVisit streams every record, visible at the pinned snapshot epoch,
// whose rectangle intersects [qmin, qmax] — the accelerator's answer to
// Search. The result is assembled duplicate-free from two disjoint
// classes split on the record's hot start s against qa = qmin[dim]:
//
//   - s <= qa: exactly the containing-style stab at cellOf(qa). Covers
//     candidates on that path are emitted with no hot-dimension
//     comparison at all — the cell run bounds prove s < qa < e, which is
//     both the class predicate and the hot-dimension overlap.
//   - s > qa: the record's origin cell cellOf(s) lies in
//     [cellOf(qa), cellOf(qb)], so a scan of those origin lists, filtered
//     by s > qa and full intersection, finds each exactly once.
//
// Returns false if fn stopped the scan. Allocation-free; safe for
// concurrent lock-free use.
//
//seglint:hotpath
func (a *Accel) RangeVisit(epoch uint64, qmin, qmax []float64, fn VisitFunc) bool {
	t := a.recs.Load()
	qa := qmin[a.dim]
	ca := a.cellOf(qa)
	cb := a.cellOf(qmax[a.dim])
	for v := ca + a.nCells; v >= 1; v >>= 1 {
		if !a.scanIntersect(t, epoch, a.covers[v].Load(), qmin, qmax, a.dim, qa, false, fn) {
			return false
		}
		if !a.scanIntersect(t, epoch, a.bounds[v].Load(), qmin, qmax, -1, qa, false, fn) {
			return false
		}
	}
	for c := ca; c <= cb; c++ {
		if !a.scanIntersect(t, epoch, a.origins[c].Load(), qmin, qmax, -1, qa, true, fn) {
			return false
		}
	}
	return true
}

// scanIntersect filters one slot list by snapshot visibility, the
// start-split predicate (start > qa when originPart, start <= qa
// otherwise), and rectangle intersection. skipHot names a dimension whose
// overlap — and class predicate — the hierarchy already proved (or -1).
//
//seglint:hotpath
func (a *Accel) scanIntersect(t *recTable, epoch uint64, l *slotList, qmin, qmax []float64, skipHot int, qa float64, originPart bool, fn VisitFunc) bool {
	if l == nil {
		return true
	}
	k := a.k
	nRec := len(t.ids)
	for _, s := range l.slots {
		if int(s) >= nRec || t.births[s] > epoch {
			continue
		}
		chunk := t.deaths[s>>deathChunkShift]
		if d := atomic.LoadUint64(&chunk[s&deathChunkMask]); d != 0 && d <= epoch {
			continue
		}
		if skipHot < 0 {
			if originPart {
				if !(t.starts[s] > qa) {
					continue
				}
			} else if t.starts[s] > qa {
				continue
			}
		}
		off := int(s) * 2 * k
		rmin := t.rects[off : off+k : off+k]
		rmax := t.rects[off+k : off+2*k : off+2*k]
		ok := true
		for i := 0; i < k; i++ {
			if i != skipHot && (rmin[i] > qmax[i] || rmax[i] < qmin[i]) {
				ok = false
				break
			}
		}
		if ok && !fn(rmin, rmax, t.ids[s]) {
			return false
		}
	}
	return true
}
