// Package page defines the page identifiers and per-level size classes used
// by the paged segment-index structures.
//
// The paper (Section 5) uses 1 KiB leaf nodes whose size doubles at each
// successively higher level of the index (tactic 2, Section 2.1.2: larger
// nodes at higher levels preserve fanout when non-leaf nodes also carry
// spanning index records). A SizeClasser maps a node's level to its page
// size in bytes.
package page

import "fmt"

// ID identifies a page within a Store. The zero ID is reserved as "no page".
type ID uint64

// Nil is the reserved null page ID.
const Nil ID = 0

// String renders the ID for diagnostics.
func (id ID) String() string {
	if id == Nil {
		return "page(nil)"
	}
	return fmt.Sprintf("page(%d)", uint64(id))
}

// SizeClasses computes per-level page sizes.
type SizeClasses struct {
	// LeafBytes is the page size of level-0 (leaf) nodes.
	LeafBytes int
	// Growth multiplies the page size at each successively higher level.
	// Growth 1 keeps all nodes the same size; the paper uses 2.
	Growth int
	// MaxBytes caps the page size; levels above the cap reuse it.
	// Zero means no cap.
	MaxBytes int
}

// DefaultSizeClasses returns the paper's configuration: 1 KiB leaves,
// doubling per level, capped at 64 KiB (a cap the paper's 4-to-5-level trees
// never reach; it merely bounds pathological configurations).
func DefaultSizeClasses() SizeClasses {
	return SizeClasses{LeafBytes: 1024, Growth: 2, MaxBytes: 64 * 1024}
}

// Validate reports whether the configuration is usable.
func (s SizeClasses) Validate() error {
	if s.LeafBytes < 128 {
		return fmt.Errorf("page: leaf size %d below minimum 128", s.LeafBytes)
	}
	if s.Growth < 1 {
		return fmt.Errorf("page: growth factor %d below 1", s.Growth)
	}
	if s.MaxBytes != 0 && s.MaxBytes < s.LeafBytes {
		return fmt.Errorf("page: max bytes %d below leaf size %d", s.MaxBytes, s.LeafBytes)
	}
	return nil
}

// BytesForLevel returns the page size of a node at the given level
// (level 0 = leaf).
func (s SizeClasses) BytesForLevel(level int) int {
	b := s.LeafBytes
	for i := 0; i < level; i++ {
		next := b * s.Growth
		if s.MaxBytes != 0 && next > s.MaxBytes {
			return s.MaxBytes
		}
		b = next
	}
	return b
}
