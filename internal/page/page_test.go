package page

import "testing"

func TestBytesForLevel(t *testing.T) {
	s := DefaultSizeClasses()
	cases := []struct {
		level int
		want  int
	}{
		{0, 1024},
		{1, 2048},
		{2, 4096},
		{3, 8192},
		{6, 65536},
		{7, 65536}, // capped
		{20, 65536},
	}
	for _, c := range cases {
		if got := s.BytesForLevel(c.level); got != c.want {
			t.Errorf("BytesForLevel(%d) = %d, want %d", c.level, got, c.want)
		}
	}
}

func TestFixedSizeClasses(t *testing.T) {
	s := SizeClasses{LeafBytes: 4096, Growth: 1}
	for level := 0; level < 5; level++ {
		if got := s.BytesForLevel(level); got != 4096 {
			t.Errorf("fixed BytesForLevel(%d) = %d, want 4096", level, got)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultSizeClasses().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := []SizeClasses{
		{LeafBytes: 16, Growth: 2},
		{LeafBytes: 1024, Growth: 0},
		{LeafBytes: 1024, Growth: 2, MaxBytes: 512},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", s)
		}
	}
}

func TestIDString(t *testing.T) {
	if Nil.String() != "page(nil)" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
	if ID(7).String() != "page(7)" {
		t.Errorf("ID(7).String() = %q", ID(7).String())
	}
}
