package harness

import (
	"strings"
	"testing"

	"segidx/internal/workload"
)

// smallSpec shrinks an experiment so it runs in test time while keeping
// every mechanism engaged.
func smallSpec(ds workload.Dataset, tuples int) Spec {
	spec := NewSpec("test: "+ds.String(), ds, tuples)
	spec.LeafBytes = 512
	spec.QueriesPerQAR = 20
	spec.QARs = []float64{0.001, 0.1, 1, 10, 1000}
	spec.CoalesceEvery = 200
	spec.CheckInvariants = true
	return spec
}

func TestRunProducesCompleteResult(t *testing.T) {
	spec := smallSpec(workload.I3, 4000)
	res, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 || len(res.Builds) != 4 {
		t.Fatalf("curves=%d builds=%d", len(res.Curves), len(res.Builds))
	}
	for _, c := range res.Curves {
		if len(c.Points) != len(spec.QARs) {
			t.Fatalf("%v: %d points", c.Kind, len(c.Points))
		}
		for _, p := range c.Points {
			if p.AvgNodes <= 0 {
				t.Fatalf("%v at qar %g: avg %g", c.Kind, p.QAR, p.AvgNodes)
			}
		}
	}
	// The SR variants must actually hold spanning records on exponential
	// length data.
	for _, b := range res.Builds {
		switch b.Kind {
		case KindSRTree, KindSkeletonSRTree:
			if b.SpanningRecords == 0 {
				t.Errorf("%v stored no spanning records on I3", b.Kind)
			}
		case KindRTree, KindSkeletonRTree:
			if b.SpanningRecords != 0 {
				t.Errorf("%v stored spanning records", b.Kind)
			}
		}
	}
}

func TestPaperShapeSkeletonWinsVQAR(t *testing.T) {
	// The paper's headline shape at reduced scale: on exponential-length
	// interval data, skeleton indexes beat non-skeleton indexes in the
	// vertical QAR range.
	spec := smallSpec(workload.I3, 6000)
	res, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.CurveFor(KindRTree).Mean(VQAR)
	skelSR := res.CurveFor(KindSkeletonSRTree).Mean(VQAR)
	if skelSR >= rt {
		t.Errorf("VQAR mean: Skeleton SR-Tree %.1f not below R-Tree %.1f", skelSR, rt)
	}
	skelR := res.CurveFor(KindSkeletonRTree).Mean(VQAR)
	if skelSR >= skelR {
		t.Errorf("VQAR mean: Skeleton SR-Tree %.1f not below Skeleton R-Tree %.1f (Graph 3 shape)", skelSR, skelR)
	}
}

func TestFormatters(t *testing.T) {
	spec := smallSpec(workload.R1, 1500)
	spec.QueriesPerQAR = 10
	res, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"QAR", "R-Tree", "Skeleton SR-Tree", "0.001"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "qar,R-Tree,SR-Tree,Skeleton_R-Tree,Skeleton_SR-Tree") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != len(spec.QARs)+1 {
		t.Errorf("csv rows = %d", got)
	}
	chart := res.Chart()
	if !strings.Contains(chart, "aspect ratio") || !strings.Contains(chart, "S Skeleton SR-Tree") {
		t.Errorf("chart malformed:\n%s", chart)
	}
	summary := res.BuildSummary()
	if !strings.Contains(summary, "spanning") {
		t.Errorf("summary malformed:\n%s", summary)
	}
}

func TestGraphSpec(t *testing.T) {
	for g := 1; g <= 8; g++ {
		spec, err := GraphSpec(g, 1000)
		if err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
		if spec.Tuples != 1000 || len(spec.Kinds) != 4 {
			t.Fatalf("graph %d spec: %+v", g, spec)
		}
	}
	if _, err := GraphSpec(9, 1000); err == nil {
		t.Error("graph 9 accepted")
	}
	if _, err := GraphSpec(0, 1000); err == nil {
		t.Error("graph 0 accepted")
	}
}

func TestCurveMean(t *testing.T) {
	c := Curve{Points: []Point{{0.1, 10}, {1, 20}, {10, 30}}}
	if got := c.Mean(VQAR); got != 10 {
		t.Errorf("VQAR mean = %g", got)
	}
	if got := c.Mean(HQAR); got != 30 {
		t.Errorf("HQAR mean = %g", got)
	}
}

func TestPackedKindInHarness(t *testing.T) {
	spec := smallSpec(workload.I1, 2000)
	spec.Kinds = []Kind{KindRTree, KindPackedRTree}
	spec.QueriesPerQAR = 10
	res, err := Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	packed := res.CurveFor(KindPackedRTree)
	if packed == nil {
		t.Fatal("no packed curve")
	}
	for _, p := range packed.Points {
		if p.AvgNodes <= 0 {
			t.Fatalf("packed avg %g at qar %g", p.AvgNodes, p.QAR)
		}
	}
	// Packing yields full occupancy: fewer nodes than the dynamic build.
	var dynNodes, packedNodes int
	for _, b := range res.Builds {
		switch b.Kind {
		case KindRTree:
			dynNodes = b.Nodes
		case KindPackedRTree:
			packedNodes = b.Nodes
		}
	}
	if packedNodes >= dynNodes {
		t.Errorf("packed build has %d nodes, dynamic %d", packedNodes, dynNodes)
	}
}

func TestKindStringsAndMarkers(t *testing.T) {
	kinds := append(AllKinds(), KindPackedRTree)
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", int(k), s)
		}
		seen[s] = true
		if k.Marker() == '?' {
			t.Errorf("kind %v has no marker", k)
		}
	}
	if Kind(99).Marker() != '?' || Kind(99).String() == "" {
		t.Error("unknown kind not handled")
	}
}
