package harness

import (
	"fmt"
	"strings"
)

// Claim is one falsifiable statement from the paper's Section 5 about the
// shape of a graph's curves.
type Claim struct {
	Graph     int
	Statement string // the paper's prose claim
	Check     func(*Result) error
}

// Claims returns the paper's qualitative claims, keyed to the graph they
// concern. Evaluating them against harness results turns the reproduction
// into a regression test: `segbench -verify` and TestPaperClaims run them
// at reduced scale.
func Claims() []Claim {
	return []Claim{
		{1, "Graph 1: the two non-Skeleton indexes perform (nearly) identically",
			func(r *Result) error { return curvesClose(r, KindRTree, KindSRTree, 0.35) }},
		{1, "Graph 1: the two Skeleton indexes perform nearly identically",
			func(r *Result) error { return curvesClose(r, KindSkeletonRTree, KindSkeletonSRTree, 0.25) }},
		{1, "Graph 1: Skeleton indexes beat non-Skeleton indexes in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindRTree, VQAR, 1.0) }},
		{1, "Graph 1: Skeleton indexes also beat non-Skeleton indexes in the HQAR range (no crossover)",
			func(r *Result) error { return meanBelow(r, KindSkeletonRTree, KindRTree, HQAR, 1.0) }},

		{2, "Graph 2: Skeleton indexes beat non-Skeleton indexes in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindRTree, VQAR, 1.0) }},
		{2, "Graph 2: the Skeleton advantage is larger in VQAR than in HQAR",
			func(r *Result) error { return advantageLarger(r, KindSkeletonRTree, KindRTree, VQAR, HQAR) }},

		{3, "Graph 3: the Skeleton SR-Tree substantially outperforms the Skeleton R-Tree in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindSkeletonRTree, VQAR, 0.95) }},
		{3, "Graph 3: Skeleton indexes beat non-Skeleton indexes in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindRTree, VQAR, 1.0) }},
		{3, "Graph 3: SR-Tree and R-Tree differ only slightly (non-Skeleton case)",
			func(r *Result) error { return curvesClose(r, KindRTree, KindSRTree, 0.35) }},

		{4, "Graph 4: the Skeleton SR-Tree outperforms the Skeleton R-Tree in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindSkeletonRTree, VQAR, 1.0) }},
		{4, "Graph 4: Skeleton indexes beat non-Skeleton indexes in the VQAR range",
			func(r *Result) error { return meanBelow(r, KindSkeletonSRTree, KindRTree, VQAR, 1.0) }},

		{5, "Graph 5: Skeleton indexes greatly outperform non-Skeleton indexes",
			func(r *Result) error { return meanBelow(r, KindSkeletonRTree, KindRTree, anyQAR, 0.85) }},
		{5, "Graph 5: performance is nearly symmetric over the QAR range",
			func(r *Result) error { return symmetric(r, KindSkeletonRTree, 2.0) }},
		{5, "Graph 5: the two Skeleton indexes perform nearly identically",
			func(r *Result) error { return curvesClose(r, KindSkeletonRTree, KindSkeletonSRTree, 0.25) }},

		{6, "Graph 6: the Skeleton SR-Tree is superior to all other index types",
			func(r *Result) error {
				for _, k := range []Kind{KindRTree, KindSRTree, KindSkeletonRTree} {
					if err := meanBelow(r, KindSkeletonSRTree, k, anyQAR, 1.0); err != nil {
						return err
					}
				}
				return nil
			}},
		{6, "Graph 6: performance is nearly symmetric over the QAR range",
			func(r *Result) error { return symmetric(r, KindSkeletonSRTree, 2.0) }},
	}
}

func anyQAR(float64) bool { return true }

// curvesClose fails when the two curves differ by more than tol
// (relative) on average.
func curvesClose(r *Result, a, b Kind, tol float64) error {
	ca, cb := r.CurveFor(a), r.CurveFor(b)
	if ca == nil || cb == nil {
		return fmt.Errorf("missing curve")
	}
	var relSum float64
	for i := range ca.Points {
		pa, pb := ca.Points[i].AvgNodes, cb.Points[i].AvgNodes
		if m := (pa + pb) / 2; m > 0 {
			d := pa - pb
			if d < 0 {
				d = -d
			}
			relSum += d / m
		}
	}
	rel := relSum / float64(len(ca.Points))
	if rel > tol {
		return fmt.Errorf("%v and %v differ by %.0f%% on average (tolerance %.0f%%)", a, b, rel*100, tol*100)
	}
	return nil
}

// meanBelow fails unless a's mean over the range is below factor * b's.
func meanBelow(r *Result, a, b Kind, rng func(float64) bool, factor float64) error {
	ca, cb := r.CurveFor(a), r.CurveFor(b)
	if ca == nil || cb == nil {
		return fmt.Errorf("missing curve")
	}
	ma, mb := ca.Mean(rng), cb.Mean(rng)
	if !(ma < mb*factor) {
		return fmt.Errorf("%v mean %.1f not below %.2fx %v mean %.1f", a, ma, factor, b, mb)
	}
	return nil
}

// advantageLarger fails unless a's advantage over b (ratio of means) is
// larger in range1 than in range2.
func advantageLarger(r *Result, a, b Kind, range1, range2 func(float64) bool) error {
	ca, cb := r.CurveFor(a), r.CurveFor(b)
	if ca == nil || cb == nil {
		return fmt.Errorf("missing curve")
	}
	adv1 := cb.Mean(range1) / ca.Mean(range1)
	adv2 := cb.Mean(range2) / ca.Mean(range2)
	if !(adv1 > adv2) {
		return fmt.Errorf("advantage %.2fx in first range not above %.2fx in second", adv1, adv2)
	}
	return nil
}

// symmetric fails when the curve's endpoints (most vertical vs most
// horizontal QAR) differ by more than the given factor.
func symmetric(r *Result, k Kind, factor float64) error {
	c := r.CurveFor(k)
	if c == nil || len(c.Points) < 2 {
		return fmt.Errorf("missing curve")
	}
	lo := c.Points[0].AvgNodes
	hi := c.Points[len(c.Points)-1].AvgNodes
	ratio := lo / hi
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > factor {
		return fmt.Errorf("%v endpoints %.1f vs %.1f (ratio %.2f > %.2f)", k, lo, hi, ratio, factor)
	}
	return nil
}

// VerifyClaims runs every claim for the graphs present in results and
// returns a report plus the number of failures. results maps graph number
// to a completed Result.
func VerifyClaims(results map[int]*Result) (string, int) {
	var b strings.Builder
	failures := 0
	for _, claim := range Claims() {
		res, ok := results[claim.Graph]
		if !ok {
			continue
		}
		if err := claim.Check(res); err != nil {
			failures++
			fmt.Fprintf(&b, "FAIL %s\n     %v\n", claim.Statement, err)
		} else {
			fmt.Fprintf(&b, "ok   %s\n", claim.Statement)
		}
	}
	return b.String(), failures
}
