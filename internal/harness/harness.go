// Package harness runs the paper's performance experiments (Section 5):
// build each of the four index types over a synthetic dataset, insert the
// whole dataset in random order, then sweep query rectangles of area 10⁶
// across the thirteen query aspect ratios, recording the average number of
// index nodes accessed per search — the paper's cost metric.
package harness

import (
	"fmt"
	"io"
	"time"

	"segidx"
	"segidx/internal/workload"
)

// Kind identifies one of the paper's four index types.
type Kind int

const (
	KindRTree Kind = iota
	KindSRTree
	KindSkeletonRTree
	KindSkeletonSRTree
	// KindPackedRTree is the static bulk-loaded R-Tree ([ROUS85]); not
	// part of the paper's comparison (it is the static method skeletons
	// are the dynamic alternative to) but available for the packing
	// ablation.
	KindPackedRTree
)

// AllKinds lists the four index types in the paper's presentation order.
func AllKinds() []Kind {
	return []Kind{KindRTree, KindSRTree, KindSkeletonRTree, KindSkeletonSRTree}
}

func (k Kind) String() string {
	switch k {
	case KindRTree:
		return "R-Tree"
	case KindSRTree:
		return "SR-Tree"
	case KindSkeletonRTree:
		return "Skeleton R-Tree"
	case KindSkeletonSRTree:
		return "Skeleton SR-Tree"
	case KindPackedRTree:
		return "Packed R-Tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Marker is the plot marker for the kind.
func (k Kind) Marker() byte {
	switch k {
	case KindRTree:
		return 'r'
	case KindSRTree:
		return 's'
	case KindSkeletonRTree:
		return 'R'
	case KindSkeletonSRTree:
		return 'S'
	case KindPackedRTree:
		return 'p'
	default:
		return '?'
	}
}

// Spec describes one experiment. NewSpec supplies the paper's defaults.
type Spec struct {
	Name    string
	Dataset workload.Dataset
	Tuples  int
	Seed    uint64
	Kinds   []Kind

	QARs          []float64
	QueriesPerQAR int

	// Index configuration (paper defaults in NewSpec).
	LeafBytes     int
	Growth        int
	BranchReserve float64
	LeafPromotion bool

	// Skeleton configuration.
	PredictSample      int // tuples buffered for distribution prediction
	CoalesceEvery      int
	CoalesceCandidates int

	// CheckInvariants validates each index after its build (slower).
	CheckInvariants bool

	// ExtraOptions are appended to every build's option list (e.g. the
	// stab-accelerator options for the -accel showdown).
	ExtraOptions []segidx.Option
}

// NewSpec returns a Spec with the paper's experimental parameters: 1 KiB
// leaves doubling per level, 2/3 branch reserve, distribution prediction
// over the first 10,000 tuples (scaled down for small runs), coalescing
// every 1,000 insertions among the 10 least-modified leaves, 100 queries
// per QAR.
func NewSpec(name string, ds workload.Dataset, tuples int) Spec {
	sample := 10000
	if sample > tuples/2 {
		sample = tuples / 10
	}
	if sample < 1 {
		sample = 1
	}
	return Spec{
		Name:               name,
		Dataset:            ds,
		Tuples:             tuples,
		Seed:               1991, // the paper's year; any fixed seed works
		Kinds:              AllKinds(),
		QARs:               workload.QARs(),
		QueriesPerQAR:      workload.QueriesPerQAR,
		LeafBytes:          1024,
		Growth:             2,
		BranchReserve:      2.0 / 3.0,
		LeafPromotion:      true,
		PredictSample:      sample,
		CoalesceEvery:      1000,
		CoalesceCandidates: 10,
	}
}

// GraphSpec returns the spec reproducing one of the paper's graphs (1-6)
// or the omitted exponential-centroid rectangle runs (7-8) at the given
// tuple count (the paper plots 200K).
func GraphSpec(graph, tuples int) (Spec, error) {
	datasets := map[int]workload.Dataset{
		1: workload.I1, 2: workload.I2, 3: workload.I3, 4: workload.I4,
		5: workload.R1, 6: workload.R2, 7: workload.RE1, 8: workload.RE2,
	}
	ds, ok := datasets[graph]
	if !ok {
		return Spec{}, fmt.Errorf("harness: no graph %d (1-8)", graph)
	}
	name := fmt.Sprintf("Graph %d: %s, %d tuples", graph, ds.Describe(), tuples)
	if graph >= 7 {
		name = fmt.Sprintf("Extra %d: %s, %d tuples (omitted in the paper)", graph, ds.Describe(), tuples)
	}
	return NewSpec(name, ds, tuples), nil
}

// Point is one measurement: average nodes accessed per search at a QAR.
type Point struct {
	QAR      float64
	AvgNodes float64
}

// Curve is one index type's sweep.
type Curve struct {
	Kind   Kind
	Points []Point
}

// BuildInfo records per-index build statistics.
type BuildInfo struct {
	Kind            Kind
	Height          int
	Nodes           int
	SpanningRecords int
	Stats           segidx.Stats
	// Pool holds the buffer pool counters accumulated over the whole run
	// (build plus query sweep); the hit rate shows how well the working
	// set fit the pool budget.
	Pool      segidx.PoolStats
	BuildTime time.Duration
}

// Result holds a completed experiment.
type Result struct {
	Spec   Spec
	Curves []Curve
	Builds []BuildInfo
}

// Build constructs and fully loads one index of the given kind for the
// spec (bulk packing for KindPackedRTree, per-record inserts otherwise),
// returning the loaded index and the build wall time.
func Build(spec Spec, kind Kind) (*segidx.Index, time.Duration, error) {
	data := spec.Dataset.Generate(spec.Tuples, spec.Seed)
	if kind == KindPackedRTree {
		recs := make([]segidx.BulkRecord, len(data))
		for i, r := range data {
			recs[i] = segidx.BulkRecord{Rect: r, ID: segidx.RecordID(i + 1)}
		}
		opts := append([]segidx.Option{
			segidx.WithLeafNodeBytes(spec.LeafBytes),
			segidx.WithNodeGrowth(spec.Growth),
		}, spec.ExtraOptions...)
		start := time.Now()
		idx, err := segidx.BulkLoadRTree(recs, 1.0, opts...)
		if err != nil {
			return nil, 0, fmt.Errorf("harness: %v: %w", kind, err)
		}
		return idx, time.Since(start), nil
	}
	idx, err := buildIndex(spec, kind)
	if err != nil {
		return nil, 0, fmt.Errorf("harness: %v: %w", kind, err)
	}
	start := time.Now()
	for i, r := range data {
		if err := idx.Insert(r, segidx.RecordID(i+1)); err != nil {
			idx.Close()
			return nil, 0, fmt.Errorf("harness: %v insert %d: %w", kind, i, err)
		}
	}
	return idx, time.Since(start), nil
}

// Run executes the experiment, writing progress lines to progress (may be
// nil).
func Run(spec Spec, progress io.Writer) (*Result, error) {
	if progress == nil {
		progress = io.Discard
	}
	res := &Result{Spec: spec}
	for _, kind := range spec.Kinds {
		idx, buildTime, err := Build(spec, kind)
		if err != nil {
			return nil, err
		}
		if spec.CheckInvariants {
			if err := idx.CheckInvariants(); err != nil {
				idx.Close()
				return nil, fmt.Errorf("harness: %v invariants: %w", kind, err)
			}
		}
		rep, err := idx.Analyze()
		if err != nil {
			idx.Close()
			return nil, err
		}
		fmt.Fprintf(progress, "%-17s built: %d tuples in %v, height %d, %d nodes, %d spanning records\n",
			kind, spec.Tuples, buildTime.Round(time.Millisecond), rep.Height, rep.Nodes, rep.SpanningRecords)

		curve := Curve{Kind: kind}
		for _, qar := range spec.QARs {
			queries := workload.Queries(qar, spec.QueriesPerQAR, spec.Seed)
			before := idx.Stats()
			for _, q := range queries {
				if _, err := idx.Search(q); err != nil {
					idx.Close()
					return nil, err
				}
			}
			after := idx.Stats()
			avg := float64(after.SearchNodeAccesses-before.SearchNodeAccesses) / float64(len(queries))
			curve.Points = append(curve.Points, Point{QAR: qar, AvgNodes: avg})
		}
		res.Curves = append(res.Curves, curve)
		res.Builds = append(res.Builds, BuildInfo{
			Kind:            kind,
			Height:          rep.Height,
			Nodes:           rep.Nodes,
			SpanningRecords: rep.SpanningRecords,
			Stats:           idx.Stats(),
			Pool:            idx.PoolStats(),
			BuildTime:       buildTime,
		})
		if err := idx.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(progress, "%-17s swept %d QARs x %d queries\n", kind, len(spec.QARs), spec.QueriesPerQAR)
	}
	return res, nil
}

func buildIndex(spec Spec, kind Kind) (*segidx.Index, error) {
	opts := []segidx.Option{
		segidx.WithLeafNodeBytes(spec.LeafBytes),
		segidx.WithNodeGrowth(spec.Growth),
		segidx.WithBranchReserve(spec.BranchReserve),
		segidx.WithLeafPromotion(spec.LeafPromotion),
		segidx.WithCoalescing(spec.CoalesceEvery, spec.CoalesceCandidates),
	}
	opts = append(opts, spec.ExtraOptions...)
	est := segidx.SkeletonEstimate{
		Tuples:          spec.Tuples,
		Domain:          segidx.Box(workload.DomainLo, workload.DomainLo, workload.DomainHi, workload.DomainHi),
		PredictFraction: float64(spec.PredictSample) / float64(spec.Tuples),
	}
	switch kind {
	case KindRTree:
		return segidx.NewRTree(opts...)
	case KindSRTree:
		return segidx.NewSRTree(opts...)
	case KindSkeletonRTree:
		return segidx.NewSkeletonRTree(est, opts...)
	case KindSkeletonSRTree:
		return segidx.NewSkeletonSRTree(est, opts...)
	default:
		return nil, fmt.Errorf("harness: unknown kind %d", int(kind))
	}
}
