package harness

import (
	"fmt"
	"math"
	"strings"

	"segidx/internal/textplot"
)

// Table renders the result as the paper's graph data: one row per QAR, one
// column of average node accesses per index type.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Spec.Name)
	fmt.Fprintf(&b, "avg index nodes accessed per search (100 searches per QAR)\n\n")
	fmt.Fprintf(&b, "%12s", "QAR")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, " %17s", c.Kind)
	}
	b.WriteByte('\n')
	for i, qar := range r.Spec.QARs {
		fmt.Fprintf(&b, "%12g", qar)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, " %17.1f", c.Points[i].AvgNodes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated values with a header row.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("qar")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(c.Kind.String(), " ", "_"))
	}
	b.WriteByte('\n')
	for i, qar := range r.Spec.QARs {
		fmt.Fprintf(&b, "%g", qar)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, ",%.2f", c.Points[i].AvgNodes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders the result as an ASCII chart in the paper's axes: log10
// QAR on X, average node accesses on Y.
func (r *Result) Chart() string {
	chart := &textplot.Chart{
		Title:  r.Spec.Name,
		XLabel: "horizontal/vertical query aspect ratio",
		YLabel: "average number of nodes accessed per search",
		LogX:   true,
		Width:  66,
		Height: 22,
	}
	for _, c := range r.Curves {
		s := textplot.Series{Name: c.Kind.String(), Marker: c.Kind.Marker()}
		for _, p := range c.Points {
			s.X = append(s.X, p.QAR)
			s.Y = append(s.Y, p.AvgNodes)
		}
		chart.Series = append(chart.Series, s)
	}
	return chart.Render()
}

// BuildSummary renders per-index build statistics, including the buffer
// pool hit rate accumulated over the run.
func (r *Result) BuildSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-17s %7s %8s %9s %8s %8s %8s %8s %9s %8s\n",
		"index", "height", "nodes", "spanning", "splits", "promos", "demos", "cuts", "poolgets", "hitrate")
	for _, bi := range r.Builds {
		fmt.Fprintf(&b, "%-17s %7d %8d %9d %8d %8d %8d %8d %9d %7.1f%%\n",
			bi.Kind, bi.Height, bi.Nodes, bi.SpanningRecords,
			bi.Stats.LeafSplits+bi.Stats.NonLeafSplits, bi.Stats.Promotions,
			bi.Stats.Demotions, bi.Stats.Cuts,
			bi.Pool.Gets, 100*bi.Pool.HitRate())
	}
	return b.String()
}

// Mean returns a curve's average node accesses over a QAR predicate
// (useful for summarizing the VQAR and HQAR ranges).
func (c Curve) Mean(include func(qar float64) bool) float64 {
	sum, n := 0.0, 0
	for _, p := range c.Points {
		if include(p.QAR) {
			sum += p.AvgNodes
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// VQAR selects the paper's vertical range (log QAR < 0).
func VQAR(qar float64) bool { return qar < 1 }

// HQAR selects the paper's horizontal range (log QAR > 0).
func HQAR(qar float64) bool { return qar > 1 }

// CurveFor returns the curve of the given kind, or nil.
func (r *Result) CurveFor(kind Kind) *Curve {
	for i := range r.Curves {
		if r.Curves[i].Kind == kind {
			return &r.Curves[i]
		}
	}
	return nil
}
