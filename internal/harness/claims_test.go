package harness

import (
	"strings"
	"testing"
)

// TestPaperClaims runs the paper's Section 5 claims at reduced scale. Some
// shape claims only emerge clearly at full scale; the reduced-scale run
// here uses slightly relaxed spec parameters and asserts that the headline
// claims (graphs 3, 5, 6) hold and that no more than a small number of
// secondary claims fail.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims need a moderately sized build")
	}
	tuples := 8000
	results := make(map[int]*Result)
	for g := 1; g <= 6; g++ {
		spec, err := GraphSpec(g, tuples)
		if err != nil {
			t.Fatal(err)
		}
		spec.LeafBytes = 512
		spec.QueriesPerQAR = 30
		res, err := Run(spec, nil)
		if err != nil {
			t.Fatalf("graph %d: %v", g, err)
		}
		results[g] = res
	}
	report, failures := VerifyClaims(results)
	t.Logf("\n%s", report)
	// Headline claims must hold.
	for _, headline := range []string{
		"Graph 3: the Skeleton SR-Tree substantially outperforms",
		"Graph 5: Skeleton indexes greatly outperform",
		"Graph 6: the Skeleton SR-Tree is superior",
	} {
		if strings.Contains(report, "FAIL "+headline) {
			t.Errorf("headline claim failed: %s", headline)
		}
	}
	if failures > 3 {
		t.Errorf("%d claims failed at reduced scale (tolerating 3)", failures)
	}
}

func TestClaimHelpers(t *testing.T) {
	mk := func(vals map[Kind][]float64) *Result {
		r := &Result{Spec: Spec{QARs: []float64{0.01, 1, 100}}}
		for k, v := range vals {
			c := Curve{Kind: k}
			for i, q := range r.Spec.QARs {
				c.Points = append(c.Points, Point{QAR: q, AvgNodes: v[i]})
			}
			r.Curves = append(r.Curves, c)
		}
		return r
	}
	r := mk(map[Kind][]float64{
		KindRTree:          {100, 50, 100},
		KindSRTree:         {102, 51, 98},
		KindSkeletonRTree:  {40, 20, 50},
		KindSkeletonSRTree: {30, 20, 45},
	})
	if err := curvesClose(r, KindRTree, KindSRTree, 0.1); err != nil {
		t.Errorf("close curves rejected: %v", err)
	}
	if err := curvesClose(r, KindRTree, KindSkeletonRTree, 0.1); err == nil {
		t.Error("distant curves accepted")
	}
	if err := meanBelow(r, KindSkeletonSRTree, KindSkeletonRTree, VQAR, 1.0); err != nil {
		t.Errorf("meanBelow rejected: %v", err)
	}
	if err := meanBelow(r, KindRTree, KindSkeletonRTree, VQAR, 1.0); err == nil {
		t.Error("meanBelow accepted a worse curve")
	}
	if err := symmetric(r, KindRTree, 1.5); err != nil {
		t.Errorf("symmetric rejected: %v", err)
	}
	asym := mk(map[Kind][]float64{KindRTree: {1000, 50, 10}})
	if err := symmetric(asym, KindRTree, 2.0); err == nil {
		t.Error("asymmetric curve accepted")
	}
	if err := advantageLarger(r, KindSkeletonRTree, KindRTree, VQAR, HQAR); err != nil {
		t.Errorf("advantageLarger: %v", err)
	}

	// Missing curves are errors, not panics.
	empty := &Result{Spec: Spec{QARs: []float64{1}}}
	if err := curvesClose(empty, KindRTree, KindSRTree, 1); err == nil {
		t.Error("missing curves accepted")
	}
	if err := meanBelow(empty, KindRTree, KindSRTree, VQAR, 1); err == nil {
		t.Error("missing curves accepted")
	}
	if err := symmetric(empty, KindRTree, 1); err == nil {
		t.Error("missing curve accepted")
	}
}

func TestVerifyClaimsReport(t *testing.T) {
	// With no results, nothing runs and nothing fails.
	report, failures := VerifyClaims(nil)
	if report != "" || failures != 0 {
		t.Errorf("empty verify: %q, %d", report, failures)
	}
}
