package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"segidx"
)

// The BENCH JSON format: machine-readable result lines, one JSON object
// per line, each prefixed with "BENCH " so they can be grepped out of
// mixed human-readable output. Every segbench mode emits them under
// -json; the -parallel mode emits them unconditionally.

// PoolJSON is the wire form of buffer pool counters.
type PoolJSON struct {
	Gets      uint64  `json:"gets"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Writes    uint64  `json:"writes"`
	HitRate   float64 `json:"hit_rate"`
}

// NewPoolJSON converts a pool stats snapshot (or delta) to its wire form.
func NewPoolJSON(s segidx.PoolStats) PoolJSON {
	return PoolJSON{
		Gets:      s.Gets,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Writes:    s.Writes,
		HitRate:   s.HitRate(),
	}
}

// PoolDelta returns the counter deltas from before to after.
func PoolDelta(before, after segidx.PoolStats) segidx.PoolStats {
	return segidx.PoolStats{
		Gets:      after.Gets - before.Gets,
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Writes:    after.Writes - before.Writes,
	}
}

type curvePointJSON struct {
	QAR            float64 `json:"qar"`
	NodesPerSearch float64 `json:"nodes_per_search"`
}

type graphJSON struct {
	Experiment      string           `json:"experiment"`
	Name            string           `json:"name"`
	Kind            string           `json:"kind"`
	Tuples          int              `json:"tuples"`
	Seed            uint64           `json:"seed"`
	Height          int              `json:"height"`
	Nodes           int              `json:"nodes"`
	SpanningRecords int              `json:"spanning_records"`
	BuildMS         float64          `json:"build_ms"`
	Pool            PoolJSON         `json:"pool"`
	Curve           []curvePointJSON `json:"curve"`
}

// BenchJSON renders the result as BENCH JSON: one line per index type,
// carrying the build statistics, the accumulated buffer pool counters,
// and the full QAR curve.
func (r *Result) BenchJSON() string {
	var b strings.Builder
	for i, c := range r.Curves {
		g := graphJSON{
			Experiment: "graph",
			Name:       r.Spec.Name,
			Kind:       c.Kind.String(),
			Tuples:     r.Spec.Tuples,
			Seed:       r.Spec.Seed,
		}
		if i < len(r.Builds) {
			bi := r.Builds[i]
			g.Height = bi.Height
			g.Nodes = bi.Nodes
			g.SpanningRecords = bi.SpanningRecords
			g.BuildMS = float64(bi.BuildTime.Microseconds()) / 1000
			g.Pool = NewPoolJSON(bi.Pool)
		}
		for _, p := range c.Points {
			g.Curve = append(g.Curve, curvePointJSON{QAR: p.QAR, NodesPerSearch: p.AvgNodes})
		}
		buf, err := json.Marshal(g)
		if err != nil {
			// A marshal failure here is a programming error (the struct
			// is plain data); surface it in the output stream.
			fmt.Fprintf(&b, "BENCH {\"error\":%q}\n", err.Error())
			continue
		}
		b.WriteString("BENCH ")
		b.Write(buf)
		b.WriteByte('\n')
	}
	return b.String()
}
