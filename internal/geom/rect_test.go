package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	cases := []struct {
		name    string
		min     []float64
		max     []float64
		wantErr bool
	}{
		{"ok", []float64{0, 0}, []float64{1, 1}, false},
		{"degenerate", []float64{1, 2}, []float64{1, 2}, false},
		{"inverted", []float64{1, 0}, []float64{0, 1}, true},
		{"mismatch", []float64{0}, []float64{1, 1}, true},
		{"empty", nil, nil, true},
		{"nan", []float64{math.NaN()}, []float64{1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewRect(c.min, c.max)
			if (err != nil) != c.wantErr {
				t.Fatalf("NewRect(%v,%v) err=%v, wantErr=%v", c.min, c.max, err, c.wantErr)
			}
		})
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := Rect2(0, 0, 4, 2)
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g, want 6", got)
	}
	if got := r.Center(0); got != 2 {
		t.Errorf("Center(0) = %g, want 2", got)
	}
	if got := r.LongestDim(); got != 0 {
		t.Errorf("LongestDim = %d, want 0", got)
	}
	if got := Point(3, 3).Area(); got != 0 {
		t.Errorf("point area = %g, want 0", got)
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := Rect2(0, 0, 1, 1)
	b := Rect2(2, 2, 3, 3)
	u := a.Union(b)
	if !u.Equal(Rect2(0, 0, 3, 3)) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Enlargement(b); got != 9-1 {
		t.Errorf("Enlargement = %g, want 8", got)
	}
	if got := a.Enlargement(Rect2(0.2, 0.2, 0.8, 0.8)); got != 0 {
		t.Errorf("Enlargement of contained = %g, want 0", got)
	}
}

func TestIntersection(t *testing.T) {
	a := Rect2(0, 0, 2, 2)
	b := Rect2(1, 1, 3, 3)
	got, ok := a.Intersection(b)
	if !ok || !got.Equal(Rect2(1, 1, 2, 2)) {
		t.Fatalf("Intersection = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersection(Rect2(5, 5, 6, 6)); ok {
		t.Error("disjoint rects intersected")
	}
	// Touching boundaries intersect (closed semantics) with zero overlap area.
	touch := Rect2(2, 0, 4, 2)
	if !a.Intersects(touch) {
		t.Error("touching rects should intersect")
	}
	if a.OverlapArea(touch) != 0 {
		t.Error("touching rects should have zero overlap area")
	}
	if a.OverlapArea(b) != 1 {
		t.Errorf("OverlapArea = %g, want 1", a.OverlapArea(b))
	}
}

func TestSpanRelations(t *testing.T) {
	node := Rect2(10, 10, 20, 20)
	horizontal := Rect2(5, 15, 25, 15) // segment crossing node in X
	if !horizontal.SpansDim(node, 0) {
		t.Error("horizontal segment should span node in dim 0")
	}
	if horizontal.SpansDim(node, 1) {
		t.Error("horizontal segment must not span node in dim 1")
	}
	if !horizontal.SpansAnyDim(node) {
		t.Error("SpansAnyDim should hold")
	}
	if horizontal.Spans(node) {
		t.Error("Spans (all dims) must not hold")
	}
	full := Rect2(0, 0, 30, 30)
	if !full.Spans(node) {
		t.Error("containing rect spans in all dims")
	}
	// Exact equality spans (<=, >= semantics).
	if !node.Spans(node) {
		t.Error("rect spans itself")
	}
}

func TestRemnantsTiling(t *testing.T) {
	region := Rect2(10, 10, 20, 20)
	cases := []Rect{
		Rect2(5, 12, 25, 14),  // sticks out both sides in X
		Rect2(12, 5, 14, 25),  // sticks out both sides in Y
		Rect2(5, 5, 25, 25),   // sticks out everywhere
		Rect2(12, 12, 18, 18), // fully contained
		Rect2(30, 30, 40, 40), // disjoint
		Rect2(5, 15, 15, 15),  // degenerate segment crossing the left edge
		Rect2(10, 10, 20, 20), // exactly the region
		Rect2(0, 10, 10, 20),  // touching along an edge
	}
	for _, r := range cases {
		rem := r.Remnants(region)
		clip, hasClip := r.Clip(region)
		// Total area must be preserved.
		total := 0.0
		if hasClip {
			total += clip.Area()
		}
		for _, p := range rem {
			total += p.Area()
			if !p.Valid() {
				t.Errorf("remnant %v of %v invalid", p, r)
			}
			if !r.Contains(p) {
				t.Errorf("remnant %v not within original %v", p, r)
			}
			if p.OverlapArea(region) != 0 {
				t.Errorf("remnant %v overlaps region interior", p)
			}
		}
		if math.Abs(total-r.Area()) > 1e-9 {
			t.Errorf("pieces of %v have area %g, want %g", r, total, r.Area())
		}
		// Pieces must be pairwise interior-disjoint.
		for i := range rem {
			for j := i + 1; j < len(rem); j++ {
				if rem[i].OverlapArea(rem[j]) != 0 {
					t.Errorf("remnants %v and %v overlap", rem[i], rem[j])
				}
			}
		}
		if region.Contains(r) && len(rem) != 0 {
			t.Errorf("contained rect produced remnants: %v", rem)
		}
	}
}

func TestEmptyRectIdentity(t *testing.T) {
	e := EmptyRect(2)
	if !e.IsEmptyMarker() {
		t.Fatal("EmptyRect should be marked empty")
	}
	r := Rect2(1, 2, 3, 4)
	e.ExpandInPlace(r)
	if !e.Equal(r) {
		t.Fatalf("identity expand = %v, want %v", e, r)
	}
	if e.IsEmptyMarker() {
		t.Error("expanded rect should not be empty marker")
	}
}

func TestAspectRatio(t *testing.T) {
	if got := Rect2(0, 0, 10, 2).AspectRatio(); got != 5 {
		t.Errorf("AspectRatio = %g, want 5", got)
	}
	if got := Rect2(0, 0, 10, 0).AspectRatio(); !math.IsInf(got, 1) {
		t.Errorf("degenerate-height AspectRatio = %g, want +Inf", got)
	}
	if got := Point(1, 1).AspectRatio(); got != 1 {
		t.Errorf("point AspectRatio = %g, want 1", got)
	}
}

// randRect generates a random, possibly degenerate rectangle for property
// tests.
func randRect(rng *rand.Rand, dims int) Rect {
	min := make([]float64, dims)
	max := make([]float64, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64() * 100
		b := a
		if rng.Intn(4) != 0 { // 25% degenerate extents
			b = a + rng.Float64()*50
		}
		min[d], max[d] = a, b
	}
	return Rect{Min: min, Max: max}
}

func TestPropertyUnionContainsOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := randRect(rng, 2)
		s := randRect(rng, 2)
		u := r.Union(s)
		return u.Contains(r) && u.Contains(s) && u.Area() >= r.Area() && u.Area() >= s.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySpanIsTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		a := randRect(rng, 2)
		b := randRect(rng, 2)
		c := randRect(rng, 2)
		// Spans (containment) is transitive.
		if a.Spans(b) && b.Spans(c) && !a.Spans(c) {
			return false
		}
		// SpansDim is transitive per dimension.
		for d := 0; d < 2; d++ {
			if a.SpansDim(b, d) && b.SpansDim(c, d) && !a.SpansDim(c, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCutTilesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := randRect(rng, 2)
		region := randRect(rng, 2)
		clip, hasClip := r.Clip(region)
		total := 0.0
		if hasClip {
			total += clip.Area()
			if !region.Contains(clip) || !r.Contains(clip) {
				return false
			}
		}
		for _, p := range r.Remnants(region) {
			if !p.Valid() || !r.Contains(p) {
				return false
			}
			total += p.Area()
		}
		return math.Abs(total-r.Area()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := randRect(rng, 3)
		s := randRect(rng, 3)
		a, okA := r.Intersection(s)
		b, okB := s.Intersection(r)
		if okA != okB {
			return false
		}
		if okA && !a.Equal(b) {
			return false
		}
		return r.Intersects(s) == s.Intersects(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Rect2(0, 0, 1, 1)
	c := r.Clone()
	c.Min[0] = -5
	if r.Min[0] != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestConstructors(t *testing.T) {
	if r := Interval1(3, 7); r.Dims() != 1 || r.Min[0] != 3 || r.Max[0] != 7 {
		t.Errorf("Interval1 = %v", r)
	}
	if r := Point(1, 2, 3); r.Dims() != 3 || !r.Valid() || r.Area() != 0 {
		t.Errorf("Point = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRect did not panic on invalid input")
		}
	}()
	MustRect([]float64{1}, []float64{0})
}

func TestLongestDimAndLength(t *testing.T) {
	r := Rect2(0, 0, 2, 10)
	if r.LongestDim() != 1 {
		t.Errorf("LongestDim = %d", r.LongestDim())
	}
	if r.Length(0) != 2 || r.Length(1) != 10 {
		t.Errorf("Lengths = %g, %g", r.Length(0), r.Length(1))
	}
	// Ties break toward the lower dimension.
	if Rect2(0, 0, 5, 5).LongestDim() != 0 {
		t.Error("tie break wrong")
	}
}

func TestContainsPoint(t *testing.T) {
	r := Rect2(0, 0, 10, 10)
	if !r.ContainsPoint([]float64{0, 0}) || !r.ContainsPoint([]float64{10, 10}) {
		t.Error("boundary points not contained")
	}
	if r.ContainsPoint([]float64{10.0001, 5}) {
		t.Error("outside point contained")
	}
}

func TestStringFormat(t *testing.T) {
	if got := Rect2(1, 2, 3, 4).String(); got != "[1,3]x[2,4]" {
		t.Errorf("String = %q", got)
	}
	if got := Interval1(1, 2).String(); got != "[1,2]" {
		t.Errorf("1-D String = %q", got)
	}
}

func TestOverlapAreaSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := randRect(rng, 2)
		s := randRect(rng, 2)
		if r.OverlapArea(s) != s.OverlapArea(r) {
			return false
		}
		// Overlap area is bounded by both areas.
		o := r.OverlapArea(s)
		return o <= r.Area()+1e-9 && o <= s.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
