// Package geom provides K-dimensional interval and rectangle arithmetic for
// segment indexes.
//
// A Rect is a closed axis-aligned box in K >= 1 dimensions. Degenerate
// extents (Min[d] == Max[d]) are legal and represent points or lower
// dimensional intervals; the paper's "interval data" (a time interval crossed
// with a point attribute) is a Rect whose Y extent is degenerate.
//
// The package implements the paper's span relation (Section 2): interval I1
// spans interval I2 iff I1.low <= I2.low and I1.high >= I2.high, extended to
// rectangles per dimension, and the segment-cutting decomposition of Section
// 3.1.1 (a record is cut into a spanning portion clipped to an enclosing
// region plus remnant portions that tile the remainder).
package geom

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Rect is a closed axis-aligned rectangle in len(Min) dimensions.
// Min[d] <= Max[d] must hold in every dimension for a valid Rect.
type Rect struct {
	Min, Max []float64
}

// ErrDimMismatch is returned when two rectangles of different dimensionality
// are combined.
var ErrDimMismatch = errors.New("geom: dimension mismatch")

// NewRect builds a validated Rect from min/max corner coordinates.
// The slices are copied.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, ErrDimMismatch
	}
	if len(min) == 0 {
		return Rect{}, errors.New("geom: zero-dimensional rect")
	}
	for d := range min {
		if math.IsNaN(min[d]) || math.IsNaN(max[d]) {
			return Rect{}, fmt.Errorf("geom: NaN coordinate in dimension %d", d)
		}
		if min[d] > max[d] {
			return Rect{}, fmt.Errorf("geom: inverted extent in dimension %d: [%g, %g]", d, min[d], max[d])
		}
	}
	r := Rect{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...)}
	return r, nil
}

// MustRect is NewRect that panics on invalid input. Intended for tests,
// examples, and literals whose validity is evident at the call site.
//
//seglint:allow nodepanic — Must-style constructor, panics by documented contract
func MustRect(min, max []float64) Rect {
	r, err := NewRect(min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Rect2 builds a 2-dimensional rectangle [xlo, xhi] x [ylo, yhi].
// It panics on inverted extents; use NewRect for checked construction.
func Rect2(xlo, ylo, xhi, yhi float64) Rect {
	return MustRect([]float64{xlo, ylo}, []float64{xhi, yhi})
}

// Point returns the degenerate rectangle containing exactly the given point.
func Point(coords ...float64) Rect {
	return MustRect(coords, coords)
}

// Interval1 builds a 1-dimensional interval [lo, hi].
func Interval1(lo, hi float64) Rect {
	return MustRect([]float64{lo}, []float64{hi})
}

// Dims reports the dimensionality of r. A zero Rect has zero dimensions.
func (r Rect) Dims() int { return len(r.Min) }

// Valid reports whether r is a well-formed rectangle: at least one
// dimension, matching corner lengths, no NaNs, and Min <= Max everywhere.
func (r Rect) Valid() bool {
	if len(r.Min) == 0 || len(r.Min) != len(r.Max) {
		return false
	}
	for d := range r.Min {
		if math.IsNaN(r.Min[d]) || math.IsNaN(r.Max[d]) || r.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of r that shares no storage with r.
func (r Rect) Clone() Rect {
	return Rect{
		Min: append([]float64(nil), r.Min...),
		Max: append([]float64(nil), r.Max...),
	}
}

// CopyInto copies r's corners into the 2K floats at dst[off:off+2K] and
// returns a Rect viewing that storage. It is the arena-materialization
// primitive of the query path: result rects are packed into one
// caller-growable backing array instead of costing two heap slices each.
// The capped views keep an append through the result from spilling into
// the neighboring rect's storage.
func (r Rect) CopyInto(dst []float64, off int) Rect {
	k := len(r.Min)
	out := Rect{Min: dst[off : off+k : off+k], Max: dst[off+k : off+2*k : off+2*k]}
	copy(out.Min, r.Min)
	copy(out.Max, r.Max)
	return out
}

// Equal reports whether r and s have identical corners. Equality is exact
// by design: the tree uses it to detect branch-rectangle changes, and a
// tolerance here would let a cover drift past its parent rectangle while
// containment checks (which are exact) still fail. Use Feq for approximate
// coordinate comparisons.
//
//seglint:allow floatcmp — exactness is load-bearing for change detection
func (r Rect) Equal(s Rect) bool {
	if r.Dims() != s.Dims() {
		return false
	}
	for d := range r.Min {
		if r.Min[d] != s.Min[d] || r.Max[d] != s.Max[d] {
			return false
		}
	}
	return true
}

// Area returns the K-dimensional volume of r. Degenerate rectangles have
// zero area.
func (r Rect) Area() float64 {
	a := 1.0
	for d := range r.Min {
		a *= r.Max[d] - r.Min[d]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the K-dimensional
// perimeter analogue used by some split heuristics).
func (r Rect) Margin() float64 {
	m := 0.0
	for d := range r.Min {
		m += r.Max[d] - r.Min[d]
	}
	return m
}

// Length returns the extent of r in dimension d.
func (r Rect) Length(d int) float64 { return r.Max[d] - r.Min[d] }

// Center returns the centroid coordinate of r in dimension d.
func (r Rect) Center(d int) float64 { return (r.Min[d] + r.Max[d]) / 2 }

// LongestDim returns the dimension in which r is widest, breaking ties in
// favor of the lower dimension index.
func (r Rect) LongestDim() int {
	best, bestLen := 0, r.Length(0)
	for d := 1; d < r.Dims(); d++ {
		if l := r.Length(d); l > bestLen {
			best, bestLen = d, l
		}
	}
	return best
}

// Union returns the minimal bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	u := r.Clone()
	u.ExpandInPlace(s)
	return u
}

// ExpandInPlace grows r (in place) to the minimal bounding rectangle of r
// and s. r must already be allocated with the same dimensionality as s.
func (r *Rect) ExpandInPlace(s Rect) {
	for d := range r.Min {
		if s.Min[d] < r.Min[d] {
			r.Min[d] = s.Min[d]
		}
		if s.Max[d] > r.Max[d] {
			r.Max[d] = s.Max[d]
		}
	}
}

// Enlargement returns the increase in area of r needed to fully enclose s.
// It is the quantity minimized by Guttman's ChooseLeaf.
func (r Rect) Enlargement(s Rect) float64 {
	enlarged := 1.0
	for d := range r.Min {
		lo, hi := r.Min[d], r.Max[d]
		if s.Min[d] < lo {
			lo = s.Min[d]
		}
		if s.Max[d] > hi {
			hi = s.Max[d]
		}
		enlarged *= hi - lo
	}
	return enlarged - r.Area()
}

// Intersects reports whether r and s share at least one point. Touching
// boundaries count as intersection (closed rectangles).
func (r Rect) Intersects(s Rect) bool {
	for d := range r.Min {
		if s.Max[d] < r.Min[d] || s.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Intersection returns r ∩ s and whether it is non-empty. When non-empty,
// the result is a valid (possibly degenerate) rectangle.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	out := r.Clone()
	for d := range out.Min {
		if s.Min[d] > out.Min[d] {
			out.Min[d] = s.Min[d]
		}
		if s.Max[d] < out.Max[d] {
			out.Max[d] = s.Max[d]
		}
	}
	return out, true
}

// OverlapArea returns the area of r ∩ s (zero when disjoint or touching).
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for d := range r.Min {
		lo := math.Max(r.Min[d], s.Min[d])
		hi := math.Min(r.Max[d], s.Max[d])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Contains reports whether s lies entirely inside r (boundaries included).
func (r Rect) Contains(s Rect) bool {
	for d := range r.Min {
		if s.Min[d] < r.Min[d] || s.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p lies inside r.
func (r Rect) ContainsPoint(p []float64) bool {
	for d := range r.Min {
		if p[d] < r.Min[d] || p[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// SpansDim reports whether r spans s in dimension d using the paper's
// definition: r.Min[d] <= s.Min[d] && r.Max[d] >= s.Max[d].
func (r Rect) SpansDim(s Rect, d int) bool {
	return r.Min[d] <= s.Min[d] && r.Max[d] >= s.Max[d]
}

// Spans reports whether r spans s in every dimension, i.e. r contains s.
// For 1-dimensional intervals this is exactly the paper's span relation.
func (r Rect) Spans(s Rect) bool { return r.Contains(s) }

// SpansAnyDim reports whether r spans s in at least one dimension. This is
// the paper's qualification test for a K-dimensional spanning index record
// (Section 3.1.1: a rectangle qualifies "if it spans B's region in either or
// both dimensions").
func (r Rect) SpansAnyDim(s Rect) bool {
	for d := range r.Min {
		if r.SpansDim(s, d) {
			return true
		}
	}
	return false
}

// Clip returns the portion of r inside region, and whether it is non-empty.
// This is the "spanning portion" of the paper's cutting operation.
func (r Rect) Clip(region Rect) (Rect, bool) {
	return r.Intersection(region)
}

// Remnants decomposes r \ region into at most 2K disjoint rectangles (the
// "remnant portions" of Section 3.1.1, Figure 3). The returned pieces,
// together with the clip of r to region, exactly tile r with
// disjoint interiors. When r and region are disjoint, the sole remnant is r
// itself.
func (r Rect) Remnants(region Rect) []Rect {
	if region.Contains(r) {
		return nil
	}
	if !r.Intersects(region) {
		return []Rect{r.Clone()}
	}
	var out []Rect
	rem := r.Clone()
	for d := range rem.Min {
		if rem.Min[d] < region.Min[d] {
			piece := rem.Clone()
			piece.Max[d] = region.Min[d]
			out = append(out, piece)
			rem.Min[d] = region.Min[d]
		}
		if rem.Max[d] > region.Max[d] {
			piece := rem.Clone()
			piece.Min[d] = region.Max[d]
			out = append(out, piece)
			rem.Max[d] = region.Max[d]
		}
	}
	return out
}

// AspectRatio returns the horizontal-to-vertical aspect ratio of a
// 2-dimensional rectangle: extent in dimension 0 divided by extent in
// dimension 1. Degenerate denominators yield +Inf; 0/0 yields 1.
func (r Rect) AspectRatio() float64 {
	w, h := r.Length(0), r.Length(1)
	if Fzero(h) {
		if Fzero(w) {
			return 1
		}
		return math.Inf(1)
	}
	return w / h
}

// String renders r as [lo,hi]x[lo,hi]... for diagnostics.
func (r Rect) String() string {
	var b strings.Builder
	for d := range r.Min {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%g,%g]", r.Min[d], r.Max[d])
	}
	return b.String()
}

// EmptyRect returns the identity element for Union in dims dimensions: a
// rectangle with inverted infinite extents. Expanding it with any valid
// rectangle yields that rectangle. It is not Valid() on its own.
func EmptyRect(dims int) Rect {
	r := Rect{Min: make([]float64, dims), Max: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		r.Min[d] = math.Inf(1)
		r.Max[d] = math.Inf(-1)
	}
	return r
}

// IsEmptyMarker reports whether r is the EmptyRect identity (or has never
// been expanded).
func (r Rect) IsEmptyMarker() bool {
	return r.Dims() > 0 && r.Min[0] > r.Max[0]
}
