package geom

import "math"

// Eps is the tolerance used by the package's approximate float comparisons.
// Coordinates in segment indexes come from data domains, histogram quantile
// cuts, and midpoint splits; 1e-9 absorbs the rounding those operations
// introduce while staying far below any meaningful geometric distance.
const Eps = 1e-9

// Feq reports whether a and b are equal within Eps, scaled by magnitude:
// |a - b| <= Eps * max(1, |a|, |b|). It is the comparison the repo's
// floatcmp analyzer requires in place of raw == / != on coordinates.
func Feq(a, b float64) bool {
	if a == b { //seglint:allow floatcmp — the epsilon helper's exact fast path (also handles ±Inf)
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // distinct infinities (or an infinity vs a finite value)
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= Eps*scale
}

// Fzero reports whether x is zero within the absolute tolerance Eps.
func Fzero(x float64) bool {
	return math.Abs(x) <= Eps
}
