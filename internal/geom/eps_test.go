package geom

import (
	"math"
	"testing"
)

func TestFeq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1e12, 1e12 + 1, true}, // relative tolerance at large magnitude
		{1e12, 1e12 * (1 + 1e-6), false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		{-5, 5, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := Feq(c.a, c.b); got != c.want {
			t.Errorf("Feq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Feq(c.b, c.a); got != c.want {
			t.Errorf("Feq(%g, %g) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestFzero(t *testing.T) {
	for _, c := range []struct {
		x    float64
		want bool
	}{
		{0, true},
		{1e-12, true},
		{-1e-12, true},
		{1e-6, false},
		{1, false},
		{math.NaN(), false},
	} {
		if got := Fzero(c.x); got != c.want {
			t.Errorf("Fzero(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}
