package geom

import (
	"math"
	"testing"
)

// fuzzRect builds a valid 2-D rectangle from four arbitrary float64s:
// non-finite inputs are rejected, magnitudes clamped to ±1e6 (keeping area
// arithmetic well inside float64 precision), and coordinates ordered per
// dimension.
func fuzzRect(a, b, c, d float64) (Rect, bool) {
	vals := [4]float64{a, b, c, d}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Rect{}, false
		}
		if v > 1e6 {
			vals[i] = 1e6
		} else if v < -1e6 {
			vals[i] = -1e6
		}
	}
	xlo, xhi := vals[0], vals[2]
	if xlo > xhi {
		xlo, xhi = xhi, xlo
	}
	ylo, yhi := vals[1], vals[3]
	if ylo > yhi {
		ylo, yhi = yhi, ylo
	}
	return Rect2(xlo, ylo, xhi, yhi), true
}

// FuzzRectOps checks metamorphic properties of the rectangle algebra that
// the tree's correctness rests on: union/intersection containment and
// symmetry, overlap-area consistency, and — the paper's cutting operation —
// that Clip plus Remnants exactly tile the clipped rectangle with disjoint
// pieces.
func FuzzRectOps(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 5.0, 5.0, 15.0, 15.0) // partial overlap
	f.Add(0.0, 0.0, 10.0, 10.0, 2.0, 2.0, 4.0, 4.0)   // containment
	f.Add(0.0, 0.0, 1.0, 1.0, 5.0, 5.0, 6.0, 6.0)     // disjoint
	f.Add(0.0, 0.0, 10.0, 0.0, 3.0, 0.0, 7.0, 0.0)    // degenerate segments
	f.Add(-3.0, -3.0, 3.0, 3.0, -3.0, -3.0, 3.0, 3.0) // identical
	f.Add(0.0, 0.0, 8.0, 8.0, 8.0, 0.0, 16.0, 8.0)    // touching edge
	f.Add(-1e6, -1e6, 1e6, 1e6, -0.5, -0.5, 0.5, 0.5) // extreme scale gap
	f.Fuzz(func(t *testing.T, a1, b1, c1, d1, a2, b2, c2, d2 float64) {
		r, ok := fuzzRect(a1, b1, c1, d1)
		if !ok {
			t.Skip()
		}
		s, ok := fuzzRect(a2, b2, c2, d2)
		if !ok {
			t.Skip()
		}

		// Union: symmetric, contains both operands, and never shrinks.
		u := r.Union(s)
		if !u.Equal(s.Union(r)) {
			t.Fatalf("Union not symmetric: %v vs %v", u, s.Union(r))
		}
		if !u.Contains(r) || !u.Contains(s) {
			t.Fatalf("Union %v does not contain operands %v, %v", u, r, s)
		}
		if u.Area() < r.Area() || u.Area() < s.Area() {
			t.Fatalf("Union area %g below operand areas %g, %g", u.Area(), r.Area(), s.Area())
		}
		if r.Contains(s) && !u.Equal(r) {
			t.Fatalf("r contains s but Union %v != r %v", u, r)
		}

		// Enlargement is never negative.
		if r.Enlargement(s) < 0 {
			t.Fatalf("Enlargement(%v, %v) = %g < 0", r, s, r.Enlargement(s))
		}

		// Intersection: symmetric with Intersects, contained in both, and
		// its area matches OverlapArea.
		iv, has := r.Intersection(s)
		if has != r.Intersects(s) || r.Intersects(s) != s.Intersects(r) {
			t.Fatalf("Intersects/Intersection disagree for %v, %v", r, s)
		}
		if has {
			if !r.Contains(iv) || !s.Contains(iv) {
				t.Fatalf("intersection %v escapes operands %v, %v", iv, r, s)
			}
			if !Feq(iv.Area(), r.OverlapArea(s)) {
				t.Fatalf("OverlapArea %g != intersection area %g", r.OverlapArea(s), iv.Area())
			}
		} else if r.OverlapArea(s) != 0 {
			t.Fatalf("disjoint rects report OverlapArea %g", r.OverlapArea(s))
		}

		// Cutting (paper Section 3.1.1): the clip of r to s plus the
		// remnants of r outside s tile r exactly — areas sum to Area(r),
		// pieces stay inside r, remnant interiors are pairwise disjoint and
		// disjoint from s.
		rem := r.Remnants(s)
		if len(rem) > 2*r.Dims() {
			t.Fatalf("%d remnants, max is 2K=%d", len(rem), 2*r.Dims())
		}
		total := 0.0
		if clip, ok := r.Clip(s); ok {
			total += clip.Area()
			if !r.Contains(clip) {
				t.Fatalf("clip %v escapes r %v", clip, r)
			}
		}
		for i, p := range rem {
			if !p.Valid() {
				t.Fatalf("remnant %d invalid: %v", i, p)
			}
			if !r.Contains(p) {
				t.Fatalf("remnant %v escapes r %v", p, r)
			}
			if p.OverlapArea(s) > 0 {
				t.Fatalf("remnant %v overlaps the cutting region %v", p, s)
			}
			for j := i + 1; j < len(rem); j++ {
				if p.OverlapArea(rem[j]) > 0 {
					t.Fatalf("remnants %v and %v overlap", p, rem[j])
				}
			}
			total += p.Area()
		}
		if !Feq(total, r.Area()) {
			t.Fatalf("clip+remnant areas %g do not tile r (area %g)", total, r.Area())
		}
		if s.Contains(r) && len(rem) != 0 {
			t.Fatalf("r inside region but %d remnants returned", len(rem))
		}
	})
}
