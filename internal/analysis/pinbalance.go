package analysis

// pinbalance proves buffer-pool pin discipline on the query and mutation
// paths: every node pinned by Tree.fetch/fetchMut, Pool.Get/GetMut, or
// Pool.NewNode, every query context taken from Tree.getQctx/getQctxAt,
// every MVCC snapshot taken by a Snapshot() call, and every write bracket
// opened by Tree.beginOp, is released (Tree.done, Pool.Unpin,
// Tree.releaseQctx, View.Release, Tree.publishOp/abortOp) on every path
// out of the function — by a deferred release or an explicit one per path.
//
// The write bracket matters beyond the page pool: publishOp commits and
// abortOp discards the stab-accelerator sidecar staging buffers, so a
// path that returns between beginOp and either close leaves staged
// sidecar records to be committed under some later, unrelated epoch —
// silently corrupting historical snapshot answers.
//
// A release resolves against the *live* pin on its page: the
// release-refetch-release idiom (done(id); fetchMut(id); ... done(id))
// creates two pins on the same ID, and each done call discharges the one
// currently held. A release with no live matching pin on some path is a
// double unpin.
//
// Ownership transfer is respected: a pin whose variable escapes the
// function (returned, stored into a struct/map/slice, or handed bare to a
// helper call) is no longer this function's to release and is not
// reported. Reading through the variable (v.Field, v.Method(...)) and
// passing it to a recognized release call are borrows, not escapes. The
// error-result idiom is modeled flow-sensitively: after
// `n, err := t.fetch(id)`, the `err != nil` arm holds no pin, so an early
// error return there is clean.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PinBalance proves per-path pin/unpin balance on the audited packages.
var PinBalance = &Analyzer{
	Name: "pinbalance",
	Doc:  "prove every buffer-pool pin and query context is released on all paths (flow-sensitive)",
	Run:  runPinBalance,
	AppliesTo: func(pkgPath string) bool {
		// The tree core and the root package own pins; the forest, server,
		// and skeleton layers own MVCC snapshots; the accelerator sidecar
		// rides the core's write bracket. Everything else only borrows
		// nodes.
		return strings.HasSuffix(pkgPath, "internal/core") ||
			strings.HasSuffix(pkgPath, "internal/forest") ||
			strings.HasSuffix(pkgPath, "internal/server") ||
			strings.HasSuffix(pkgPath, "internal/skeleton") ||
			strings.HasSuffix(pkgPath, "internal/accel") ||
			!strings.Contains(pkgPath, "/")
	},
}

type pinKind uint8

const (
	pinPage pinKind = iota
	pinQctx
	pinSnap
	pinBracket
)

// pinInfo is the flow-independent description of one pin birth site.
type pinInfo struct {
	birth   ast.Node // the CFG node (assignment) that acquires the pin
	pos     token.Pos
	kind    pinKind
	desc    string // e.g. "t.fetch(t.root)"
	argKey  string // rendered page-ID argument; "" for NewNode
	varObj  types.Object
	errObj  types.Object
	aliases map[types.Object]bool // objects assigned from varObj.ID
	escaped bool
}

// pinFact is the per-path state of one pin.
type pinFact struct {
	held     tri
	deferred tri
	// errLive is true while the birth's error variable still describes
	// this acquisition, enabling `err != nil` edge refinement.
	errLive bool
}

type pinState map[*pinInfo]*pinFact

type pinAnalysis struct {
	p       *Pass
	pins    []*pinInfo
	byBirth map[ast.Node]*pinInfo
	report  bool
}

func runPinBalance(p *Pass) {
	forEachFunc(p.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		a := &pinAnalysis{p: p, byBirth: make(map[ast.Node]*pinInfo)}
		a.collectPins(body)
		if len(a.pins) == 0 {
			return
		}
		g := BuildCFG(body)
		in, converged := Solve[pinState](g, a)
		if !converged {
			p.Reportf(body.Pos(), "%s: dataflow solver hit its step bound before reaching a fixpoint; pin-balance facts for this function are incomplete", name)
		}
		a.report = true
		for _, b := range g.Reachable() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = a.Clone(s)
			for _, n := range b.Nodes {
				s = a.Transfer(n, s)
			}
			for _, e := range b.Succs {
				if e.To != g.Exit || e.Kind == EdgePanic {
					continue
				}
				pos := body.Rbrace
				if len(b.Nodes) > 0 {
					pos = b.Nodes[len(b.Nodes)-1].Pos()
				}
				a.checkExit(name, pos, s)
			}
		}
	})
}

// collectPins finds every pin birth in the body (closures excluded — they
// are analyzed as their own functions), then resolves aliases and escapes.
func (a *pinAnalysis) collectPins(body *ast.BlockStmt) {
	inspectNoFuncLit(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		var lhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			c, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			call, lhs = c, n.Lhs
		case *ast.ExprStmt:
			c, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			call = c
		default:
			return true
		}
		kind, argKey, desc, ok := a.pinSource(call)
		if !ok {
			return true
		}
		pi := &pinInfo{birth: n, pos: call.Pos(), kind: kind, argKey: argKey, desc: desc}
		if len(lhs) >= 1 {
			if id, ok := lhs[0].(*ast.Ident); ok && id.Name != "_" {
				pi.varObj = objOf(a.p.Info, id)
			}
		}
		if len(lhs) >= 2 {
			if id, ok := lhs[1].(*ast.Ident); ok && id.Name != "_" {
				pi.errObj = objOf(a.p.Info, id)
			}
		}
		a.pins = append(a.pins, pi)
		a.byBirth[n] = pi
		return true
	})
	for _, pi := range a.pins {
		if pi.varObj == nil {
			continue
		}
		pi.aliases = a.collectAliases(body, pi.varObj)
		pi.escaped = a.escapes(body, pi)
	}
}

// collectAliases finds `x := v.ID` style assignments so a later release
// through the alias (t.done(old, false)) still matches the pin.
func (a *pinAnalysis) collectAliases(body *ast.BlockStmt, varObj types.Object) map[types.Object]bool {
	aliases := make(map[types.Object]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sel, ok := as.Rhs[0].(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ID" {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || objOf(a.p.Info, base) != varObj {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if o := objOf(a.p.Info, id); o != nil {
				aliases[o] = true
			}
		}
		return true
	})
	return aliases
}

// escapes reports whether the pin variable leaves the function's custody:
// any bare use that is not a field/method access, a nil comparison, an
// overwrite, or an argument to a recognized release call.
func (a *pinAnalysis) escapes(body *ast.BlockStmt, pi *pinInfo) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || objOf(a.p.Info, id) != pi.varObj {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			if parent.X == id {
				return true // v.Field or v.Method(...): a borrow
			}
		case *ast.BinaryExpr:
			return true // comparisons (v == nil) do not retain the pointer
		case *ast.CallExpr:
			if _, isRelease := a.releaseTargets(parent); isRelease {
				return true // the release itself is not an escape
			}
		case *ast.AssignStmt:
			for _, l := range parent.Lhs {
				if l == id {
					return true // overwrite, not a use
				}
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// pinSource classifies a call as a pin acquisition.
func (a *pinAnalysis) pinSource(call *ast.CallExpr) (kind pinKind, argKey, desc string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, "", "", false
	}
	recv := namedTypeName(a.p.Info, sel.X)
	name := sel.Sel.Name
	switch {
	case (name == "fetch" || name == "fetchMut") && recv == "Tree" && len(call.Args) >= 1:
		argKey = exprText(a.p.Fset, call.Args[0])
	case (name == "Get" || name == "GetMut") && recv == "Pool" && len(call.Args) == 1:
		argKey = exprText(a.p.Fset, call.Args[0])
	case name == "NewNode" && recv == "Pool":
		// Released only through the node's ID.
	case (name == "getQctx" || name == "getQctxAt") && recv == "Tree":
		return pinQctx, "", exprText(a.p.Fset, sel.X) + "." + name + "()", true
	case name == "beginOp" && recv == "Tree" && len(call.Args) == 0:
		// A write bracket: must reach publishOp or abortOp on every path
		// (both close the bracket and settle the sidecar staging).
		return pinBracket, "", exprText(a.p.Fset, sel.X) + ".beginOp()", true
	case name == "Snapshot" && recv != "" && len(call.Args) == 0:
		// An MVCC snapshot pin: any Snapshot() method on a named receiver
		// (Tree, Index, Forest, Predictor, the facade engine interface).
		return pinSnap, "", exprText(a.p.Fset, sel.X) + ".Snapshot()", true
	default:
		return 0, "", "", false
	}
	desc = exprText(a.p.Fset, sel.X) + "." + name + "(" + argKey + ")"
	return pinPage, argKey, desc, true
}

// releaseTargets classifies a call as a pin release and resolves which
// tracked pins it releases. isRelease may be true with no targets (e.g.
// UnpinBatch over escaped cached pins).
func (a *pinAnalysis) releaseTargets(call *ast.CallExpr) ([]*pinInfo, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	recv := namedTypeName(a.p.Info, sel.X)
	name := sel.Sel.Name
	switch {
	case name == "done" && recv == "Tree" && len(call.Args) == 2,
		name == "Unpin" && recv == "Pool" && len(call.Args) == 2:
		return a.matchPagePins(call.Args[0]), true
	case name == "releaseQctx" && recv == "Tree" && len(call.Args) == 1:
		var targets []*pinInfo
		argObj := identObj(a.p.Info, call.Args[0])
		for _, pi := range a.pins {
			if pi.kind != pinQctx {
				continue
			}
			if argObj == nil || pi.varObj == argObj {
				targets = append(targets, pi)
			}
		}
		return targets, true
	case name == "UnpinBatch" && recv == "Pool":
		return nil, true
	case (name == "publishOp" || name == "abortOp") && recv == "Tree":
		var targets []*pinInfo
		for _, pi := range a.pins {
			if pi.kind == pinBracket {
				targets = append(targets, pi)
			}
		}
		return targets, true
	case name == "Release" && len(call.Args) == 0:
		// Snapshot release: v.Release() discharges the snapshot held in v.
		var targets []*pinInfo
		xObj := identObj(a.p.Info, sel.X)
		for _, pi := range a.pins {
			if pi.kind == pinSnap && xObj != nil && pi.varObj == xObj {
				targets = append(targets, pi)
			}
		}
		return targets, true
	}
	return nil, false
}

// matchPagePins resolves a release call's page-ID argument against the
// tracked pins: v.ID on the pin variable, an alias of it, or the same
// rendered expression as the acquisition argument.
func (a *pinAnalysis) matchPagePins(arg ast.Expr) []*pinInfo {
	var targets []*pinInfo
	argObj := identObj(a.p.Info, arg)
	var idBase types.Object
	if sel, ok := arg.(*ast.SelectorExpr); ok && sel.Sel.Name == "ID" {
		idBase = identObj(a.p.Info, sel.X)
	}
	argText := ""
	for _, pi := range a.pins {
		if pi.kind != pinPage {
			continue
		}
		switch {
		case idBase != nil && pi.varObj == idBase:
		case argObj != nil && pi.aliases[argObj]:
		default:
			if pi.argKey == "" {
				continue
			}
			if argText == "" {
				argText = exprText(a.p.Fset, arg)
			}
			if argText != pi.argKey {
				continue
			}
		}
		targets = append(targets, pi)
	}
	return targets
}

func (a *pinAnalysis) EntryState() pinState { return make(pinState) }

func (a *pinAnalysis) Clone(s pinState) pinState {
	out := make(pinState, len(s))
	for k, f := range s {
		c := *f
		out[k] = &c
	}
	return out
}

func (a *pinAnalysis) Join(dst, src pinState) (pinState, bool) {
	changed := false
	for k, sf := range src {
		df, ok := dst[k]
		if !ok {
			nf := *sf
			nf.held = joinPath(triBot, sf.held)
			nf.deferred = joinPath(triBot, sf.deferred)
			dst[k] = &nf
			changed = true
			continue
		}
		if h := joinPath(df.held, sf.held); h != df.held {
			df.held = h
			changed = true
		}
		if d := joinPath(df.deferred, sf.deferred); d != df.deferred {
			df.deferred = d
			changed = true
		}
		if df.errLive && !sf.errLive {
			df.errLive = false
			changed = true
		}
	}
	for k, df := range dst {
		if _, ok := src[k]; ok {
			continue
		}
		if h := joinPath(df.held, triBot); h != df.held {
			df.held = h
			changed = true
		}
		if d := joinPath(df.deferred, triBot); d != df.deferred {
			df.deferred = d
			changed = true
		}
	}
	return dst, changed
}

func (a *pinAnalysis) Transfer(n ast.Node, s pinState) pinState {
	if pi, ok := a.byBirth[n]; ok {
		// The assignment also overwrites whatever the variables held
		// before: other pins sharing the variable or error object lose
		// their tracking/refinement first.
		if as, ok := n.(*ast.AssignStmt); ok {
			a.transferAssign(as, s)
		}
		f := s[pi]
		if f == nil {
			f = &pinFact{}
			s[pi] = f
		}
		f.held = triYes
		f.errLive = pi.errObj != nil
		return s
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		a.transferDefer(ds, s)
		return s
	}
	inspectCFGNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		targets, isRelease := a.releaseTargets(call)
		if !isRelease {
			return true
		}
		// The release discharges the live pin(s) on its target: with the
		// release-refetch-release idiom two pins share an ID, and a done
		// call belongs to whichever is currently held. Only when no
		// matching pin is live is this a double unpin.
		var live []*pinInfo
		for _, pi := range targets {
			if f := s[pi]; f != nil && (f.held == triYes || f.held == triMaybe) {
				live = append(live, pi)
			}
		}
		if len(live) == 0 && a.report {
			var released *pinInfo
			for _, pi := range targets {
				if f := s[pi]; f != nil && f.held == triNo {
					if released == nil || pi.pos > released.pos {
						released = pi
					}
				}
			}
			if released != nil {
				a.p.Reportf(call.Pos(), "releases %s but it was already released on this path (double unpin)", released.desc)
			}
		}
		if len(live) == 0 {
			live = targets
		}
		for _, pi := range live {
			f := s[pi]
			if f == nil {
				f = &pinFact{}
				s[pi] = f
			}
			f.held = triNo
		}
		return true
	})
	if as, ok := n.(*ast.AssignStmt); ok {
		a.transferAssign(as, s)
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		// The range head re-assigns its key/value each iteration; an
		// overwrite of a pin or error variable there must be observed.
		if as := rangeHeadAssign(r); as != nil {
			a.transferAssign(as, s)
		}
	}
	return s
}

// transferAssign handles overwrites: reassigning a pin's error variable
// disables its edge refinement; reassigning the pin variable itself ends
// this function's view of the pin.
func (a *pinAnalysis) transferAssign(as *ast.AssignStmt, s pinState) {
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := objOf(a.p.Info, id)
		if obj == nil {
			continue
		}
		for pi, f := range s {
			if pi.birth == ast.Node(as) {
				continue
			}
			if pi.errObj == obj {
				f.errLive = false
			}
			if pi.varObj == obj {
				f.held = triNo
			}
		}
	}
}

// transferDefer records releases scheduled by defer, directly or inside a
// deferred closure.
func (a *pinAnalysis) transferDefer(ds *ast.DeferStmt, s pinState) {
	mark := func(call *ast.CallExpr) {
		targets, isRelease := a.releaseTargets(call)
		if !isRelease {
			return
		}
		for _, pi := range targets {
			f := s[pi]
			if f == nil {
				f = &pinFact{}
				s[pi] = f
			}
			f.deferred = triYes
		}
	}
	if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
		inspectNoFuncLit(lit, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
		return
	}
	mark(ds.Call)
}

// TransferEdge kills pins on the failed arm of their own error check:
// after `n, err := t.fetch(id)`, the `err != nil` path holds no pin.
func (a *pinAnalysis) TransferEdge(e Edge, s pinState) pinState {
	if e.Cond == nil {
		return s
	}
	bin, ok := e.Cond.(*ast.BinaryExpr)
	if !ok {
		return s
	}
	var operand ast.Expr
	switch {
	case isNilIdent(bin.X):
		operand = bin.Y
	case isNilIdent(bin.Y):
		operand = bin.X
	default:
		return s
	}
	errFailed := (bin.Op == token.NEQ && e.Kind == EdgeCondTrue) ||
		(bin.Op == token.EQL && e.Kind == EdgeCondFalse)
	if !errFailed {
		return s
	}
	obj := identObj(a.p.Info, operand)
	if obj == nil {
		return s
	}
	for pi, f := range s {
		if f.errLive && pi.errObj == obj {
			f.held = triNo
		}
	}
	return s
}

func (a *pinAnalysis) checkExit(fn string, pos token.Pos, s pinState) {
	pins := make([]*pinInfo, 0, len(s))
	for pi := range s {
		pins = append(pins, pi)
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i].pos < pins[j].pos })
	for _, pi := range pins {
		if pi.escaped {
			continue
		}
		f := s[pi]
		if f.held != triYes && f.held != triMaybe {
			continue
		}
		if f.deferred == triYes {
			continue
		}
		line := a.p.Fset.Position(pi.pos).Line
		what := fmt.Sprintf("the page pinned by %s at line %d", pi.desc, line)
		release := "unpin it on this path or defer the release"
		switch pi.kind {
		case pinQctx:
			what = fmt.Sprintf("the query context from %s at line %d", pi.desc, line)
			release = "call releaseQctx on this path or defer it"
		case pinSnap:
			what = fmt.Sprintf("the snapshot from %s at line %d", pi.desc, line)
			release = "call its Release on this path or defer it"
		case pinBracket:
			what = fmt.Sprintf("the write bracket opened by %s at line %d", pi.desc, line)
			release = "commit it with publishOp or roll it back with abortOp on this path"
		}
		switch {
		case f.deferred == triMaybe:
			a.p.Reportf(pos, "%s may return without releasing %s: its deferred release is scheduled on only some paths", fn, what)
		case f.held == triYes:
			a.p.Reportf(pos, "%s returns without releasing %s; %s", fn, what, release)
		default:
			a.p.Reportf(pos, "%s may return without releasing %s (released on some paths but not this one)", fn, what)
		}
	}
}

// namedTypeName resolves the named type of an expression's (possibly
// pointer) type, or "".
func namedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// objOf resolves an identifier whether it defines or uses the object.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(info, id)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
