package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the zero-allocation read path: functions marked with a
// "//seglint:hotpath" line in their doc comment must not use allocating
// constructs. The pass flags
//
//   - Clone() method calls (deep-copy allocations);
//   - make with a map, slice, or channel type, and map/slice composite
//     literals;
//   - append whose destination is a variable declared inside the marked
//     function — a fresh local slice growing in the hot loop. Appends to
//     fields of a reused query context (selector expressions like
//     qc.stack) are the sanctioned pattern and stay allowed: their backing
//     arrays amortize to zero allocations across queries.
//
// Escape analysis is out of reach for a syntax-level pass, so hotalloc is
// deliberately a conservative style gate: a flagged construct is not
// guaranteed to allocate per call, but the hot path has cheap idioms for
// every flagged shape. Deliberate exceptions (one-time growth paths,
// error formatting on cold branches) opt out per line with a
// seglint:allow directive carrying a rationale.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid allocating constructs in functions marked //seglint:hotpath",
	Run:       runHotAlloc,
	AppliesTo: libraryPackage,
}

// hotpathMarked reports whether the function's doc comment carries a
// seglint:hotpath line. CommentGroup.Text() strips directive-style lines,
// so scan the raw comments.
func hotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, "seglint:hotpath") {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathMarked(fd) {
				continue
			}
			p.checkHotFunc(fd)
		}
	}
}

func (p *Pass) checkHotFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(fd, e)
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(e); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					p.Reportf(e.Pos(), "map literal allocates in hotpath function %s; reuse a query-context map", fd.Name.Name)
				case *types.Slice:
					p.Reportf(e.Pos(), "slice literal allocates in hotpath function %s; reuse a query-context buffer", fd.Name.Name)
				}
			}
		}
		return true
	})
}

func (p *Pass) checkHotCall(fd *ast.FuncDecl, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Clone" {
			p.Reportf(call.Pos(), "Clone call allocates in hotpath function %s; work on the decoded view or copy into a reused buffer", fd.Name.Name)
		}
	case *ast.Ident:
		obj, ok := p.Info.Uses[fun].(*types.Builtin)
		if !ok {
			return
		}
		switch obj.Name() {
		case "make":
			p.Reportf(call.Pos(), "make allocates in hotpath function %s; hoist the allocation into the query context", fd.Name.Name)
		case "append":
			if len(call.Args) == 0 {
				return
			}
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return // selector-expression destinations (qc.buf) are the reuse pattern
			}
			v, ok := p.Info.Uses[dst].(*types.Var)
			if !ok {
				return
			}
			if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
				p.Reportf(call.Pos(), "append to function-local slice %s in hotpath function %s; grow a query-context buffer instead", dst.Name, fd.Name.Name)
			}
		}
	}
}
