package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks src as a single-file package. The loader is
// rooted at the enclosing module so fixtures may import real segidx
// packages (the errchecklite fixtures call into internal/store).
func loadFixture(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

// checkFixture runs the analyzer over src and compares the diagnostics
// against "// want <analyzer>" markers in the fixture: every marked line
// must produce exactly one diagnostic from that analyzer, and no unmarked
// line may produce any.
func checkFixture(t *testing.T, a *Analyzer, src string) {
	t.Helper()
	checkFixtureAt(t, a, "fixture", src)
}

// checkFixtureAt is checkFixture with an explicit package path, for rules
// that key on the analyzed package's import path (the errchecklite
// durability rule fires only inside internal/store and internal/core).
func checkFixtureAt(t *testing.T, a *Analyzer, pkgPath, src string) {
	t.Helper()
	pkg := loadFixture(t, pkgPath, src)
	diags := RunUnfiltered(pkg, []*Analyzer{a})

	want := make(map[string]bool) // "line:analyzer"
	for i, line := range strings.Split(src, "\n") {
		if idx := strings.Index(line, "// want "); idx >= 0 {
			name := strings.TrimSpace(line[idx+len("// want "):])
			want[fmt.Sprintf("%d:%s", i+1, name)] = true
		}
	}
	got := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer)
		if got[key] {
			t.Errorf("duplicate diagnostic on line %d: %s", d.Pos.Line, d.Message)
		}
		got[key] = true
		if !want[key] {
			t.Errorf("unexpected diagnostic at line %d: %s", d.Pos.Line, d.Message)
		}
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing expected diagnostic %q", key)
		}
	}
}

func TestLockCheck(t *testing.T) {
	checkFixture(t, LockCheck, `package fixture

import "sync"

type Tree struct {
	mu   sync.RWMutex
	size int
}

// helper reads state. The caller must hold t.mu.
func (t *Tree) helper() int { return t.size }

// badHelper re-acquires the lock it requires. The caller must hold t.mu.
func (t *Tree) badHelper() int {
	t.mu.RLock()         // want lockcheck
	defer t.mu.RUnlock() // want lockcheck
	return t.size
}

// Good acquires before calling the helper.
func (t *Tree) Good() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.helper()
}

// Bad never acquires the lock.
func (t *Tree) Bad() int {
	return t.helper() // want lockcheck
}

// Late acquires only after the helper call.
func (t *Tree) Late() int {
	v := t.helper() // want lockcheck
	t.mu.Lock()
	v += t.size
	t.mu.Unlock()
	return v
}

// unexportedCaller is exempt: assumed to run under its caller's lock.
func (t *Tree) unexportedCaller() int { return t.helper() }

// Allowed is excused by directive.
//
//seglint:allow lockcheck — fixture: receiver is unpublished here
func (t *Tree) Allowed() int { return t.helper() }

// NoHelpers needs no lock because it calls no locked helper.
func (t *Tree) NoHelpers() int { return 42 }

// evictLocked is a locked helper by naming convention alone (no doc
// phrase); it must not re-acquire, and exported callers must lock first.
func (t *Tree) evictLocked() {
	t.mu.Lock() // want lockcheck
	t.size--
	t.mu.Unlock() // want lockcheck
}

// Shrink calls a Locked-suffix helper without acquiring.
func (t *Tree) Shrink() {
	t.evictLocked() // want lockcheck
}

// ShrinkSafe locks first.
func (t *Tree) ShrinkSafe() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictLocked()
}

// shardHelper uses the striped-pool phrasing. The caller must hold the
// shard lock.
func (t *Tree) shardHelper() int { return t.size }

// ShardUser calls it without locking.
func (t *Tree) ShardUser() int {
	return t.shardHelper() // want lockcheck
}

var (
	mu    sync.Mutex
	count int
)

// bareHelper guards a package-level mutex. The caller must hold the lock.
func bareHelper() int { return count }

// bareBad re-acquires the bare identifier mutex. The caller must hold
// the lock.
func bareBad() int {
	mu.Lock()         // want lockcheck
	defer mu.Unlock() // want lockcheck
	return count
}

// BareGood acquires the package-level mutex before the helper call.
func BareGood() int {
	mu.Lock()
	defer mu.Unlock()
	return bareHelper()
}

// scratchLocked locks a function-local scratch mutex; that is not a
// re-acquisition of the caller's lock. The caller must hold t.mu.
func (t *Tree) scratchLocked() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return t.size
}

// LocalOnly locks only a function-local mutex, which cannot satisfy a
// locked helper's contract on the package-level state.
func LocalOnly() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return bareHelper() // want lockcheck
}
`)
}

func TestFloatCmp(t *testing.T) {
	checkFixture(t, FloatCmp, `package fixture

func eq(a, b float64) bool { return a == b } // want floatcmp
func ne(a, b float64) bool { return a != b } // want floatcmp
func zero(x float64) bool  { return x == 0 } // want floatcmp
func f32(a, b float32) bool { return a == b } // want floatcmp

func lt(a, b float64) bool { return a < b }
func ints(a, b int) bool   { return a == b }
func strs(a, b string) bool { return a == b }

const c1, c2 = 1.5, 2.5

var constsEqual = c1 == c2 // exact by definition: both compile-time constants

func mixed(xs []float64, i int) bool {
	return xs[i] == 0 // want floatcmp
}

func allowed(a, b float64) bool {
	return a == b //seglint:allow floatcmp — fixture rationale
}
`)
}

func TestErrCheckLite(t *testing.T) {
	checkFixture(t, ErrCheckLite, `package fixture

import (
	"segidx/internal/page"
	"segidx/internal/store"
)

func drop(st store.Store, id page.ID, buf []byte) {
	st.Write(id, buf)  // want errchecklite
	go st.Free(id)     // want errchecklite
	defer st.Close()   // want errchecklite

	_ = st.Write(id, buf) // explicit discard is the visible opt-out
	if err := st.Write(id, buf); err != nil {
		_ = err
	}
	st.Len() // no error result; fine as a statement

	//seglint:allow errchecklite — fixture rationale
	st.Free(id)
}

func local() {}

func callLocal() { local() } // package-local calls are out of scope
`)
}

// TestErrCheckLiteDurability pins the stricter rule for the commit
// protocol: Write, Sync, and Commit errors may not be dropped even by
// code in the same package.
func TestErrCheckLiteDurability(t *testing.T) {
	src := `package store

type DB struct{}

func (d *DB) Write(p []byte) error { return nil }
func (d *DB) Sync() error          { return nil }
func (d *DB) Commit() error        { return nil }
func (d *DB) Len() int             { return 0 }
func (d *DB) helper() error        { return nil }

func use(d *DB) {
	d.Write(nil)     // want errchecklite
	d.Sync()         // want errchecklite
	defer d.Commit() // want errchecklite
	go d.Sync()      // want errchecklite

	d.Len()    // no error result; fine
	d.helper() // same-package, not part of the commit protocol: fine

	_ = d.Sync() // explicit discard stays the opt-out
	if err := d.Commit(); err != nil {
		_ = err
	}
}
`
	checkFixtureAt(t, ErrCheckLite, "fixture/internal/store", src)

	// The same fixture outside store/core only triggers on nothing: the
	// package rule skips same-package calls and the path has no
	// durability suffix.
	clean := strings.ReplaceAll(src, " // want errchecklite", "")
	checkFixtureAt(t, ErrCheckLite, "fixture/internal/other", clean)
}

func TestNodePanic(t *testing.T) {
	checkFixture(t, NodePanic, `package fixture

import (
	"fmt"
	"io"
	"log"
	"os"
)

func bad(x int) {
	if x < 0 {
		panic("negative") // want nodepanic
	}
	fmt.Println("hi")   // want nodepanic
	fmt.Printf("%d", x) // want nodepanic
	fmt.Print(x)        // want nodepanic
	log.Fatalf("bye")   // want nodepanic
	log.Panicln("no")   // want nodepanic
	os.Exit(1)          // want nodepanic
	println("dbg")      // want nodepanic
}

func ok(w io.Writer, x int) error {
	fmt.Fprintf(w, "%d", x) // caller-supplied writer: fine
	s := fmt.Sprintf("%d", x)
	return fmt.Errorf("x=%s", s)
}

// MustOK is excused by a doc-comment directive covering the whole function.
//
//seglint:allow nodepanic — fixture: Must-style constructor
func MustOK(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}
`)
}

// TestAppliesTo pins the package filters: floatcmp only guards geom/core,
// and the library-package filter exempts cmd and examples.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{FloatCmp, "segidx/internal/geom", true},
		{FloatCmp, "segidx/internal/core", true},
		{FloatCmp, "segidx/internal/workload", false},
		{NodePanic, "segidx/internal/core", true},
		{NodePanic, "segidx/cmd/segbench", false},
		{NodePanic, "segidx/examples/quickstart", false},
		{NodePanic, "segidx", true},
		{LockCheck, "segidx/rulelock", true},
		{ErrCheckLite, "segidx/cmd/seglint", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}

// TestLoaderLoadsRealPackage exercises the loader against an actual module
// package, including its transitive module-internal imports.
func TestLoaderLoadsRealPackage(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	pkg, err := l.Load("segidx/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "core" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	// The cache must return the identical package on re-load.
	again, err := l.Load("segidx/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("loader did not cache the package")
	}
}

func TestMatchPatterns(t *testing.T) {
	l := &Loader{ModulePath: "segidx"}
	cases := []struct {
		pkg, pattern string
		want         bool
	}{
		{"segidx", "./...", true},
		{"segidx/internal/geom", "./...", true},
		{"segidx/internal/geom", "./internal/...", true},
		{"segidx/internal/geom", "./internal/geom", true},
		{"segidx/internal/geom", "./internal/core", false},
		{"segidx/internal/geom", "segidx/internal/geom", true},
		{"segidx", "./internal/...", false},
	}
	for _, c := range cases {
		if got := l.Match(c.pkg, c.pattern); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pkg, c.pattern, got, c.want)
		}
	}
}

func TestHotAlloc(t *testing.T) {
	checkFixture(t, HotAlloc, `package fixture

type Rect struct{ Min, Max []float64 }

func (r Rect) Clone() Rect {
	return Rect{Min: append([]float64(nil), r.Min...), Max: append([]float64(nil), r.Max...)}
}

type queryCtx struct {
	stack   []uint64
	entries []Rect
}

type Tree struct{ qc queryCtx }

// hot is on the read path.
//
//seglint:hotpath
func (t *Tree) hot(r Rect) int {
	seen := make(map[uint64]bool) // want hotalloc
	buf := []float64{1, 2}        // want hotalloc
	c := r.Clone()                // want hotalloc
	var local []Rect
	local = append(local, c) // want hotalloc
	t.qc.stack = append(t.qc.stack, 1)
	t.qc.entries = append(t.qc.entries, r)
	return len(seen) + len(buf) + len(local) + len(t.qc.stack)
}

// hotAllowed documents a deliberate exception.
//
//seglint:hotpath
func (t *Tree) hotAllowed(r Rect) Rect {
	//seglint:allow hotalloc — fixture: cold error branch
	c := r.Clone()
	return c
}

// cold is unmarked: the same constructs are fine here.
func (t *Tree) cold(r Rect) []Rect {
	out := make([]Rect, 0, 4)
	return append(out, r.Clone())
}
`)
}
