package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgOf builds the CFG of a function body given as source statements and
// renders it block-by-block. Only parsing is needed: the graph is purely
// syntactic.
func cfgOf(t *testing.T, body string) string {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body).debugString(fset)
}

func checkCFG(t *testing.T, body, want string) {
	t.Helper()
	if got := cfgOf(t, body); got != want {
		t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCFGGotoForward(t *testing.T) {
	// The goto block is empty (the jump is pure control transfer) and the
	// skipped statement keeps its own block; both converge on the label.
	checkCFG(t, `
	x := 1
	if x > 0 {
		goto done
	}
	x = 2
done:
	x = 3
`, `b0: [x := 1] [x > 0] -> b2(T) b1(F)
b1: [x = 2] -> b3
b2: -> b3
b3: [x = 3] -> exit(end)
`)
}

func TestCFGGotoBackward(t *testing.T) {
	// A backward goto forms a loop: the label block is its own predecessor
	// through the goto block.
	checkCFG(t, `
	x := 0
	_ = x
loop:
	x++
	if x < 10 {
		goto loop
	}
`, `b0: [x := 0] [_ = x] -> b1
b1: [x++] [x < 10] -> b3(T) b2(F)
b2: -> exit(end)
b3: -> b1
`)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	// continue outer targets the outer post block (b5), break outer the
	// outer join (b4); the inner loop's own join (b8) becomes unreachable
	// because every inner-body path jumps out.
	checkCFG(t, `
outer:
	for i := 0; i < 3; i++ {
		for {
			if i == 1 {
				continue outer
			}
			break outer
		}
	}
`, `b0: -> b1
b1: [i := 0] -> b2
b2: [i < 3] -> b3(T) b4(F)
b3: -> b6
b4: -> exit(end)
b5: [i++] -> b2
b6: -> b7
b7: [i == 1] -> b10(T) b9(F)
b9: -> b4
b10: -> b5
`)
}

func TestCFGDeferInLoop(t *testing.T) {
	// defer stays an ordinary node in the loop body — its call runs at
	// function exit, which the dataflow layer models as a scheduled fact,
	// not as extra edges.
	checkCFG(t, `
	for i := 0; i < 3; i++ {
		defer release(i)
	}
	return
`, `b0: [i := 0] -> b1
b1: [i < 3] -> b2(T) b3(F)
b2: [defer release(i)] -> b4
b3: [return] -> exit(ret)
b4: [i++] -> b1
`)
}

func TestCFGSelectWithDefault(t *testing.T) {
	// Every comm clause (including default) is a head successor; the comm
	// statement executes inside its clause body, and with a default present
	// there is no head->join edge.
	checkCFG(t, `
	select {
	case v := <-ch:
		use(v)
	default:
		use(0)
	}
`, `b0: -> b2 b3
b1: -> exit(end)
b2: [v := <-ch] [use(v)] -> b1
b3: [use(0)] -> b1
`)
}

func TestCFGPanicBranch(t *testing.T) {
	// panic exits through a dedicated edge kind so exit checks can skip it
	// (deferred releases still run; explicit per-path cleanup does not).
	checkCFG(t, `
	if bad {
		panic("bad")
	}
	ok()
`, `b0: [bad] -> b2(T) b1(F)
b1: [ok()] -> exit(end)
b2: [panic("bad")] -> exit(panic)
`)
}

func TestCFGPanicOnlyExit(t *testing.T) {
	// A body that always panics has a single reachable block and no
	// falloff edge.
	checkCFG(t, `
	panic("boom")
`, `b0: [panic("boom")] -> exit(panic)
`)
}

func TestCFGRangeHead(t *testing.T) {
	// The range expression evaluates once in the predecessor block; the
	// head block holds only the per-iteration assignment. The dataflow
	// passes rely on this: a release inside the body must not be re-applied
	// at the head (see inspectCFGNode).
	checkCFG(t, `
	for _, v := range xs {
		use(v)
	}
`, `b0: [xs] -> b1
b1: [range xs] -> b2 b3
b2: [use(v)] -> b1
b3: -> exit(end)
`)
}

// divergeProblem is deliberately non-monotone: Join always reports a
// change, so on a cyclic CFG the solver can only stop at its step bound.
type divergeProblem struct{}

func (divergeProblem) EntryState() int                { return 0 }
func (divergeProblem) Clone(s int) int                { return s }
func (divergeProblem) Transfer(n ast.Node, s int) int { return s + 1 }
func (divergeProblem) TransferEdge(e Edge, s int) int { return s }
func (divergeProblem) Join(dst, src int) (int, bool)  { return src, true }

// stableProblem reaches a fixpoint immediately: Join never changes dst.
type stableProblem struct{}

func (stableProblem) EntryState() int                { return 0 }
func (stableProblem) Clone(s int) int                { return s }
func (stableProblem) Transfer(n ast.Node, s int) int { return s }
func (stableProblem) TransferEdge(e Edge, s int) int { return s }
func (stableProblem) Join(dst, src int) (int, bool)  { return dst, false }

// TestSolveConvergence pins the solver's truncation contract: a
// non-monotone problem on a looping graph reports converged=false instead
// of silently returning a partial result, and a well-behaved problem on
// the same graph reports converged=true.
func TestSolveConvergence(t *testing.T) {
	src := "package p\nfunc f() {\n\tfor {\n\t\tg()\n\t}\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := BuildCFG(file.Decls[0].(*ast.FuncDecl).Body)
	if _, converged := Solve[int](g, divergeProblem{}); converged {
		t.Error("non-monotone problem reported convergence")
	}
	if _, converged := Solve[int](g, stableProblem{}); !converged {
		t.Error("stable problem reported non-convergence")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// fallthrough jumps straight into the next case body; without a
	// default clause the head keeps an edge to the join.
	checkCFG(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	}
`, `b0: [x] -> b2 b3 b1
b1: -> exit(end)
b2: [1] [a()] -> b3
b3: [2] [b()] -> b1
`)
}
