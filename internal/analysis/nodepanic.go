package analysis

import (
	"go/ast"
	"go/types"
)

// NodePanic keeps process-terminating and stdout-writing calls out of
// library packages: panic, print/println, os.Exit, log.Fatal*/log.Panic*,
// and fmt.Print* (the stdout variants; fmt.Fprintf to a caller-supplied
// writer is fine). A library embedded in a server must surface failures as
// errors the caller can route, not kill the process or scribble on its
// stdout. Must-style constructors and invariant backstops opt out with a
// seglint:allow directive carrying a rationale.
var NodePanic = &Analyzer{
	Name:      "nodepanic",
	Doc:       "forbid panic/print/os.Exit/log.Fatal in library packages (cmd/ and examples/ exempt)",
	Run:       runNodePanic,
	AppliesTo: libraryPackage,
}

// forbiddenCalls maps package path -> function names that terminate the
// process or write to standard output.
var forbiddenCalls = map[string]map[string]string{
	"os": {"Exit": "terminates the process"},
	"log": {
		"Fatal": "terminates the process", "Fatalf": "terminates the process", "Fatalln": "terminates the process",
		"Panic": "panics", "Panicf": "panics", "Panicln": "panics",
	},
	"fmt": {
		"Print": "writes to stdout", "Printf": "writes to stdout", "Println": "writes to stdout",
	},
}

func runNodePanic(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if obj, ok := p.Info.Uses[fun].(*types.Builtin); ok {
					switch obj.Name() {
					case "panic":
						p.Reportf(call.Pos(), "panic in library code; return an error (or add a seglint:allow directive with a rationale)")
					case "print", "println":
						p.Reportf(call.Pos(), "%s writes to stderr from library code; plumb a writer or drop it", obj.Name())
					}
				}
			case *ast.SelectorExpr:
				pkgIdent, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := p.Info.Uses[pkgIdent].(*types.PkgName)
				if !ok {
					return true
				}
				if why, bad := forbiddenCalls[pkgName.Imported().Path()][fun.Sel.Name]; bad {
					p.Reportf(call.Pos(), "%s.%s %s; library code must return errors and leave I/O to the caller",
						pkgName.Imported().Path(), fun.Sel.Name, why)
				}
			}
			return true
		})
	}
}
