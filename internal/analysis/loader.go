package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of one module from source.
// Imports within the module resolve recursively through the loader itself;
// standard-library imports resolve through go/importer's source importer,
// so no compiled export data or external tooling is required.
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path from go.mod (e.g. "segidx")

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleRoot with the
// given module path.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns its path and the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module source tree, everything else from the standard library.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the package with the given module-internal
// import path, reusing a cached result when available.
func (l *Loader) Load(pkgPath string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), pkgPath)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the analyzers' contracts apply
// to library code, and tests are free to panic, print, and compare floats.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = p
	return p, nil
}

// goSources lists the buildable non-test Go files in dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Packages enumerates the import paths of every package in the module, in
// lexical order: each directory under the module root holding at least one
// non-test Go file, skipping testdata, hidden, and vendor directories.
func (l *Loader) Packages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModulePath)
		} else {
			out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Match reports whether pkgPath matches pattern, which is either an import
// path, a "./dir"-style path relative to the module root, or either form
// suffixed with "/..." for subtree matches ("./..." matches everything).
func (l *Loader) Match(pkgPath, pattern string) bool {
	p := strings.TrimSuffix(pattern, "...")
	recursive := p != pattern
	p = strings.TrimSuffix(p, "/")
	if p == "." || p == "" {
		p = l.ModulePath
	} else if rest, ok := strings.CutPrefix(p, "./"); ok {
		p = l.ModulePath + "/" + rest
	}
	if pkgPath == p {
		return true
	}
	return recursive && strings.HasPrefix(pkgPath, p+"/")
}
