package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckLite flags dropped errors from the storage stack: a call whose
// callee lives in the page-store, node-codec, or buffer-pool package and
// returns an error, used as a bare statement (or in defer/go) so the error
// vanishes. An I/O or codec error silently discarded is how a durable index
// corrupts: the page write failed but the tree believes it succeeded.
//
// Assigning the error explicitly — including to the blank identifier with a
// comment — is the opt-out; the analyzer only rejects calls where the error
// result is syntactically invisible.
//
// Calls to functions named Write, Sync, or Commit declared in the store or
// core packages are held to a stricter standard: they are flagged even when
// caller and callee share a package. Those are the durability boundary — a
// dropped error there means a commit the caller believes durable is not.
var ErrCheckLite = &Analyzer{
	Name:      "errchecklite",
	Doc:       "forbid dropped errors from store/node/buffer (page I/O and codec) calls",
	Run:       runErrCheckLite,
	AppliesTo: libraryPackage,
}

// errCheckPackageSuffixes selects the callee packages whose errors must not
// be dropped, matched by import-path suffix so test fixtures can stand in
// for the real packages.
var errCheckPackageSuffixes = []string{
	"internal/store",
	"internal/node",
	"internal/buffer",
	"internal/page",
}

// errCheckDurabilitySuffixes selects the packages whose Write/Sync/Commit
// errors must never be dropped, not even by the package's own code.
var errCheckDurabilitySuffixes = []string{
	"internal/store",
	"internal/core",
}

func runErrCheckLite(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		callee := calleeFunc(p.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return
		}
		if callee.Pkg() == p.Pkg {
			if !errCheckDurabilityCall(callee) {
				return
			}
		} else if !errCheckPackage(callee.Pkg().Path()) && !errCheckDurabilityCall(callee) {
			return
		}
		if !returnsError(callee) {
			return
		}
		p.Reportf(call.Pos(), "%s drops the error returned by %s.%s; handle it or assign it explicitly",
			how, callee.Pkg().Name(), callee.Name())
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "statement")
				}
			case *ast.DeferStmt:
				check(st.Call, "defer")
			case *ast.GoStmt:
				check(st.Call, "go statement")
			}
			return true
		})
	}
}

func errCheckPackage(path string) bool {
	return pathHasSuffix(path, errCheckPackageSuffixes)
}

// errCheckDurabilityCall reports whether the callee is one of the commit-
// protocol functions (Write, Sync, Commit) declared in the store or core
// packages.
func errCheckDurabilityCall(fn *types.Func) bool {
	switch fn.Name() {
	case "Write", "Sync", "Commit":
	default:
		return false
	}
	return pathHasSuffix(fn.Pkg().Path(), errCheckDurabilitySuffixes)
}

func pathHasSuffix(path string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function, following method values through
// selections so interface-method calls (store.Store.Write) resolve to the
// interface method's declaring package.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// returnsError reports whether the function's results include an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
