package analysis

import "testing"

// The flow-sensitive passes are tested the same way as the syntactic ones:
// fixtures with "// want <analyzer>" markers, one per expected diagnostic
// line. Each fixture pairs seeded violations with the repo's accepted
// idioms (defer release, per-path release, lock handoff, error-path
// refinement) to pin both directions.

func TestUnlockPath(t *testing.T) {
	checkFixture(t, UnlockPath, `package fixture

import "sync"

type Tree struct {
	mu   sync.RWMutex
	size int
}

// leak: the early return skips the explicit release.
func (t *Tree) leak(x int) int {
	t.mu.Lock()
	if x > 0 {
		return x // want unlockpath
	}
	t.mu.Unlock()
	return 0
}

// good: the canonical defer idiom.
func (t *Tree) good() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// perPath: explicit release on every path is also accepted.
func (t *Tree) perPath(x int) int {
	t.mu.Lock()
	if x > 0 {
		t.mu.Unlock()
		return x
	}
	t.mu.Unlock()
	return 0
}

// handoff: release-then-return on the fast path, defer on the slow one
// (the predictor idiom).
func (t *Tree) handoff() int {
	t.mu.RLock()
	if t.size == 0 {
		t.mu.RUnlock()
		return 0
	}
	defer t.mu.RUnlock()
	return t.size
}

// maybeDefer: the deferred release is scheduled on only one arm.
func (t *Tree) maybeDefer(x int) int {
	t.mu.Lock()
	if x > 0 {
		defer t.mu.Unlock()
	}
	return x // want unlockpath
}

// double: second release on the same path.
func (t *Tree) double() {
	t.mu.Lock()
	t.mu.Unlock()
	t.mu.Unlock() // want unlockpath
}

// reenter: sync mutexes are not reentrant.
func (t *Tree) reenter() {
	t.mu.Lock()
	t.mu.Lock() // want unlockpath
	t.mu.Unlock()
}

// upgrade: taking the write lock while holding the read lock self-deadlocks.
func (t *Tree) upgrade() {
	t.mu.RLock()
	t.mu.Lock() // want unlockpath
	t.mu.Unlock()
	t.mu.RUnlock()
}
`)
}

func TestPinBalance(t *testing.T) {
	checkFixture(t, PinBalance, `package fixture

import "errors"

var errBad = errors.New("bad")

type ID struct{ p, s uint32 }

type node struct{ ID ID }

func (n *node) bad() bool  { return false }
func (n *node) use() error { return nil }

type qctx struct{ pinned []ID }

func (q *qctx) empty() bool { return len(q.pinned) == 0 }
func (q *qctx) count() int  { return len(q.pinned) }

type Tree struct{ root ID }

func (t *Tree) fetch(id ID) (*node, error)    { return &node{ID: id}, nil }
func (t *Tree) fetchMut(id ID) (*node, error) { return &node{ID: id}, nil }
func (t *Tree) done(id ID, dirty bool) error  { _, _ = id, dirty; return nil }
func (t *Tree) getQctx() *qctx                { return &qctx{} }
func (t *Tree) releaseQctx(qc *qctx)          { _ = qc }

type View struct{}

func (v *View) Release()  {}
func (v *View) len() int  { return 0 }
func (v *View) ok() bool  { return true }

func (t *Tree) Snapshot() *View { return &View{} }

func (t *Tree) beginOp()                {}
func (t *Tree) publishOp() error        { return nil }
func (t *Tree) abortOp(err error) error { return err }

type Pool struct{}

func (p *Pool) GetMut(id ID) (*node, error)  { return &node{ID: id}, nil }
func (p *Pool) Unpin(id ID, dirty bool) error { _, _ = id, dirty; return nil }

// leak: the errBad return path skips the release; the err return path is
// clean because the failed fetch holds no pin (edge refinement).
func (t *Tree) leak(id ID) error {
	n, err := t.fetch(id)
	if err != nil {
		return err
	}
	if n.bad() {
		return errBad // want pinbalance
	}
	return t.done(id, false)
}

// clean: released on every path, through n.ID on one arm and the original
// argument on the other.
func (t *Tree) clean(id ID) error {
	n, err := t.fetch(id)
	if err != nil {
		return err
	}
	if n.bad() {
		t.done(n.ID, false)
		return errBad
	}
	return t.done(id, false)
}

// deferDone: the deferred release covers every later exit.
func (t *Tree) deferDone(id ID) error {
	n, err := t.fetch(id)
	if err != nil {
		return err
	}
	defer t.done(n.ID, false)
	return n.use()
}

// doubleDone: releasing the same pin twice on one path.
func (t *Tree) doubleDone(id ID) {
	_, err := t.fetch(id)
	if err != nil {
		return
	}
	t.done(id, false)
	t.done(id, false) // want pinbalance
}

// qctxLeak: the early return drops the query context.
func (t *Tree) qctxLeak() int {
	qc := t.getQctx()
	if qc.empty() {
		return 0 // want pinbalance
	}
	t.releaseQctx(qc)
	return 1
}

// qctxClean: the search-path idiom — take, defer the release.
func (t *Tree) qctxClean() int {
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	return qc.count()
}

// handUp: the context escapes to the caller, who owns the release.
func (t *Tree) handUp() *qctx {
	qc := t.getQctx()
	return qc
}

// rangeErrOverwrite: the range head reassigns err each iteration, so
// inside the loop err no longer describes the fetch — the error return
// there leaks the pin (no edge refinement applies).
func (t *Tree) rangeErrOverwrite(id ID, xs []error) error {
	n, err := t.fetch(id)
	if err != nil {
		return err
	}
	for _, err = range xs {
		if err != nil {
			return err // want pinbalance
		}
	}
	return t.done(n.ID, false)
}

// refetch: the copy-on-write idiom — release the read pin, re-acquire for
// mutation, release again. Each done discharges the live pin; no double
// unpin, no leak.
func (t *Tree) refetch(id ID) error {
	n, err := t.fetch(id)
	if err != nil {
		return err
	}
	leaf := n.bad()
	t.done(id, false)
	if leaf {
		return nil
	}
	n, err = t.fetchMut(id)
	if err != nil {
		return err
	}
	if n.bad() {
		t.done(id, false)
		return errBad
	}
	return t.done(id, true)
}

// mutLeak: a fetchMut pin leaks on the errBad path like any other pin.
func (t *Tree) mutLeak(id ID) error {
	n, err := t.fetchMut(id)
	if err != nil {
		return err
	}
	if n.bad() {
		return errBad // want pinbalance
	}
	return t.done(id, true)
}

// getMutClean: the pool-level copy-on-write acquisition balances through
// Unpin.
func getMutClean(p *Pool, id ID) error {
	n, err := p.GetMut(id)
	if err != nil {
		return err
	}
	defer p.Unpin(n.ID, true)
	return n.use()
}

// snapLeak: the early return drops the snapshot without Release.
func (t *Tree) snapLeak(id ID) int {
	v := t.Snapshot()
	if v.ok() {
		return 0 // want pinbalance
	}
	v.Release()
	return v.len()
}

// snapClean: the canonical idiom — pin a view, defer its release.
func (t *Tree) snapClean() int {
	v := t.Snapshot()
	defer v.Release()
	return v.len()
}

// snapPerPath: explicit Release on every path is also accepted.
func (t *Tree) snapPerPath(x int) int {
	v := t.Snapshot()
	if x > 0 {
		v.Release()
		return x
	}
	v.Release()
	return 0
}

// snapDouble: releasing the same snapshot twice on one path.
func (t *Tree) snapDouble() {
	v := t.Snapshot()
	v.Release()
	v.Release() // want pinbalance
}

// snapEscape: the view is handed to the caller, who owns the release.
func (t *Tree) snapEscape() *View {
	v := t.Snapshot()
	return v
}

// bracketLeak: the early return leaves the write bracket open, so staged
// sidecar records would be committed by a later, unrelated operation.
func (t *Tree) bracketLeak(x int) error {
	t.beginOp()
	if x > 0 {
		return errBad // want pinbalance
	}
	return t.publishOp()
}

// bracketClean: the repo's write-op idiom — abort on every error path,
// publish on the success path.
func (t *Tree) bracketClean(id ID) error {
	t.beginOp()
	n, err := t.fetchMut(id)
	if err != nil {
		return t.abortOp(err)
	}
	if n.bad() {
		t.done(id, true)
		return t.abortOp(errBad)
	}
	if err := t.done(id, true); err != nil {
		return t.abortOp(err)
	}
	return t.publishOp()
}

// bracketMaybe: publish on one arm, a bare return on the other.
func (t *Tree) bracketMaybe(x int) error {
	t.beginOp()
	if x > 0 {
		return t.publishOp()
	}
	return nil // want pinbalance
}

// bracketDouble: aborting after the publish already closed the bracket.
func (t *Tree) bracketDouble() error {
	t.beginOp()
	if err := t.publishOp(); err != nil {
		return t.abortOp(err) // want pinbalance
	}
	return nil
}
`)
}

func TestWALOrder(t *testing.T) {
	const header = `package fixture

type logFile struct{}

func (*logFile) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (*logFile) Sync() error                              { return nil }
func (*logFile) Truncate(n int64) error                   { return nil }

type dataFile struct{}

func (*dataFile) Write(p []byte) error { return nil }
func (*dataFile) Sync() error          { return nil }

type Store struct {
	log   *logFile
	inner *dataFile
	sick  error
}

func (ws *Store) applyLocked(recs []byte) error { return nil }
func (ws *Store) trimLog() error                { return nil }
`

	t.Run("correct protocol", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
// Commit follows the full order: append, sync log, apply, sync data, trim.
func (ws *Store) Commit(batch []byte) error {
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return err
	}
	if err := ws.log.Sync(); err != nil {
		return err
	}
	if err := ws.applyLocked(batch); err != nil {
		return err
	}
	if err := ws.inner.Sync(); err != nil {
		return err
	}
	if err := ws.trimLog(); err != nil {
		return err
	}
	return nil
}

// replayDiscard is the parse-failure path: trimming with nothing logged
// in-function is the correct discard.
func (ws *Store) replayDiscard() error {
	return ws.trimLog()
}

// latchClosure is the Commit idiom: a closure latches sick on error paths
// only, so the happy path stays clean.
func (ws *Store) latchClosure(batch []byte) error {
	fail := func(err error) error {
		ws.sick = err
		return err
	}
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return fail(err)
	}
	if err := ws.log.Sync(); err != nil {
		return fail(err)
	}
	return ws.applyLocked(batch)
}
`)
	})

	t.Run("merged branch stays may-fact", func(t *testing.T) {
		// applyLocked on only one arm must not poison the merged
		// continuation: the log append after the join is a fresh batch,
		// not a write-ahead inversion, and the protocol that follows it
		// is in order.
		checkFixture(t, WALOrder, header+`
func (ws *Store) replayThenCommit(batch []byte, replay bool) error {
	if replay {
		if err := ws.applyLocked(batch); err != nil {
			return err
		}
	}
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return err
	}
	if err := ws.log.Sync(); err != nil {
		return err
	}
	if err := ws.applyLocked(batch); err != nil {
		return err
	}
	if err := ws.inner.Sync(); err != nil {
		return err
	}
	return ws.trimLog()
}
`)
	})

	t.Run("commit before sync", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
// Commit returns success while the applied batch is not yet durable.
func (ws *Store) Commit(batch []byte) error {
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return err
	}
	if err := ws.log.Sync(); err != nil {
		return err
	}
	if err := ws.applyLocked(batch); err != nil {
		return err
	}
	return nil // want walorder
}
`)
	})

	t.Run("apply before log sync", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
func (ws *Store) commitNoSync(batch []byte) error {
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return err
	}
	if err := ws.applyLocked(batch); err != nil { // want walorder
		return err
	}
	return ws.log.Sync()
}
`)
	})

	t.Run("trim before durable", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
func (ws *Store) trimEarly(batch []byte) error {
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		return err
	}
	if err := ws.log.Sync(); err != nil {
		return err
	}
	if err := ws.applyLocked(batch); err != nil {
		return err
	}
	if err := ws.trimLog(); err != nil { // want walorder
		return err
	}
	return ws.inner.Sync()
}
`)
	})

	t.Run("log after apply", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
func (ws *Store) inverted(batch []byte) error {
	if err := ws.applyLocked(batch); err != nil {
		return err
	}
	if _, err := ws.log.WriteAt(batch, 0); err != nil { // want walorder
		return err
	}
	return ws.log.Sync()
}
`)
	})

	t.Run("write after latch", func(t *testing.T) {
		checkFixture(t, WALOrder, header+`
func (ws *Store) latched(batch []byte) error {
	if _, err := ws.log.WriteAt(batch, 0); err != nil {
		ws.sick = err
		ws.log.Sync() // want walorder
		return err
	}
	return ws.log.Sync()
}
`)
	})
}
