package analysis

// Control-flow graphs over go/ast function bodies, in the spirit of
// golang.org/x/tools/go/cfg but standard-library-only. The graph is the
// substrate for the flow-sensitive passes (unlockpath, pinbalance,
// walorder): basic blocks of statements and evaluated expressions,
// connected by edges that remember the branch condition they encode so a
// dataflow problem can refine facts along `err != nil`-style edges.
//
// Coverage: if/else chains, for (all clause shapes), range, switch,
// type-switch (including fallthrough), select (with and without default),
// goto, labeled break/continue, and panic/return exits. defer statements
// stay in their block as ordinary nodes — Go runs deferred calls at
// function exit, and the dataflow layer models that by carrying
// "scheduled at exit" facts rather than by wiring extra edges.
//
// Function literals are opaque: a closure's body executes at call time,
// not where it is written, so it is excluded from the enclosing graph and
// analyzed as a function of its own (see forEachFunc).

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// EdgeKind says how control reaches an edge's target.
type EdgeKind uint8

const (
	// EdgeNormal is unconditional fallthrough between blocks.
	EdgeNormal EdgeKind = iota
	// EdgeCondTrue is taken when the edge's Cond evaluates true.
	EdgeCondTrue
	// EdgeCondFalse is taken when the edge's Cond evaluates false.
	EdgeCondFalse
	// EdgeReturn leads to Exit from a return statement.
	EdgeReturn
	// EdgePanic leads to Exit from a panic(...) call. Deferred calls still
	// run on this path; non-deferred cleanup does not.
	EdgePanic
	// EdgeFalloff leads to Exit by falling off the end of the body.
	EdgeFalloff
)

// Edge is one control-flow transition.
type Edge struct {
	To   *Block
	Kind EdgeKind
	Cond ast.Expr // branch condition for EdgeCondTrue/EdgeCondFalse, else nil
}

// Block is a basic block: nodes that execute in order with no internal
// control transfer. Nodes are statements plus the expressions a compound
// statement evaluates before branching (an if condition, a switch tag).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // synthetic; holds no nodes
}

// BuildCFG constructs the graph for a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	exit := &Block{Index: -1}
	g := &CFG{Exit: exit}
	b := &cfgBuilder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, exit, EdgeFalloff, nil)
	return g
}

type labelInfo struct {
	start *Block // goto target (pre-created for forward gotos)
	brk   *Block // labeled break target, set when the labeled stmt builds
	cont  *Block // labeled continue target
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	labels map[string]*labelInfo

	brk, cont   *Block     // innermost unlabeled break/continue targets
	fallthru    *Block     // next case body, for fallthrough
	attachLabel *labelInfo // label awaiting its loop/switch, for break L
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind, cond ast.Expr) {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind, Cond: cond})
}

// add appends an executed node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current block with an edge to Exit and continues in a
// fresh unreachable block (anything syntactically after a terminator).
func (b *cfgBuilder) terminate(kind EdgeKind) {
	b.edge(b.cur, b.g.Exit, kind, nil)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{start: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

// takeLabel consumes a pending label so a loop or switch can register its
// break/continue targets on it.
func (b *cfgBuilder) takeLabel() *labelInfo {
	li := b.attachLabel
	b.attachLabel = nil
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.edge(b.cur, li.start, EdgeNormal, nil)
		b.cur = li.start
		b.attachLabel = li
		b.stmt(s.Stmt)
		b.attachLabel = nil

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then, EdgeCondTrue, s.Cond)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join, EdgeNormal, nil)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els, EdgeCondFalse, s.Cond)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join, EdgeNormal, nil)
		} else {
			b.edge(cond, join, EdgeCondFalse, s.Cond)
		}
		b.cur = join

	case *ast.ForStmt:
		li := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head, EdgeNormal, nil)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, body, EdgeCondTrue, s.Cond)
			b.edge(head, join, EdgeCondFalse, s.Cond)
		} else {
			b.edge(head, body, EdgeNormal, nil)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		if li != nil {
			li.brk, li.cont = join, cont
		}
		savedBrk, savedCont := b.brk, b.cont
		b.brk, b.cont = join, cont
		b.cur = body
		b.stmt(s.Body)
		if post != nil {
			b.edge(b.cur, post, EdgeNormal, nil)
			b.cur = post
			b.stmt(s.Post)
		}
		b.edge(b.cur, head, EdgeNormal, nil)
		b.brk, b.cont = savedBrk, savedCont
		b.cur = join

	case *ast.RangeStmt:
		li := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head, EdgeNormal, nil)
		// The per-iteration key/value assignment lives in the head.
		head.Nodes = append(head.Nodes, s)
		b.edge(head, body, EdgeNormal, nil)
		b.edge(head, join, EdgeNormal, nil)
		if li != nil {
			li.brk, li.cont = join, head
		}
		savedBrk, savedCont := b.brk, b.cont
		b.brk, b.cont = join, head
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head, EdgeNormal, nil)
		b.brk, b.cont = savedBrk, savedCont
		b.cur = join

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		li := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		if li != nil {
			li.brk = join
		}
		savedBrk := b.brk
		b.brk = join
		savedFall := b.fallthru
		b.fallthru = nil
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			b.edge(head, body, EdgeNormal, nil)
			b.cur = body
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join, EdgeNormal, nil)
		}
		b.brk = savedBrk
		b.fallthru = savedFall
		if len(s.Body.List) == 0 {
			// select{} blocks forever: nothing reaches the join.
			b.cur = b.newBlock()
			return
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(EdgeReturn)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.brk
			if s.Label != nil {
				target = b.label(s.Label.Name).brk
			}
			b.jump(target)
		case token.CONTINUE:
			target := b.cont
			if s.Label != nil {
				target = b.label(s.Label.Name).cont
			}
			b.jump(target)
		case token.GOTO:
			b.jump(b.label(s.Label.Name).start)
		case token.FALLTHROUGH:
			b.jump(b.fallthru)
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.terminate(EdgePanic)
			}
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// jump ends the current block with an unconditional edge (break, continue,
// goto, fallthrough) and continues in a fresh unreachable block.
func (b *cfgBuilder) jump(target *Block) {
	if target == nil {
		// break/fallthrough outside any enclosing construct: only possible
		// in code that does not compile; drop the edge.
		b.cur = b.newBlock()
		return
	}
	b.edge(b.cur, target, EdgeNormal, nil)
	b.cur = b.newBlock()
}

// switchLike builds expression and type switches. tag is the evaluated tag
// expression (expression switch), assign the `x := y.(type)` statement
// (type switch); either may be nil.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	li := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	join := b.newBlock()
	if li != nil {
		li.brk = join
	}
	savedBrk := b.brk
	b.brk = join

	clauses := body.List
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.edge(head, bodies[i], EdgeNormal, nil)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		savedFall := b.fallthru
		if i+1 < len(clauses) {
			b.fallthru = bodies[i+1]
		} else {
			b.fallthru = nil
		}
		b.stmtList(cc.Body)
		b.fallthru = savedFall
		b.edge(b.cur, join, EdgeNormal, nil)
	}
	if !hasDefault {
		b.edge(head, join, EdgeNormal, nil)
	}
	b.brk = savedBrk
	b.cur = join
}

// Reachable returns the blocks reachable from Entry, in index order.
func (g *CFG) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == g.Exit || seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// debugString renders the reachable graph for tests: one line per block
// with its node summaries and successor list.
func (g *CFG) debugString(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Reachable() {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " [%s]", summarizeNode(fset, n))
		}
		fmt.Fprintf(&sb, " ->")
		for _, e := range blk.Succs {
			name := fmt.Sprintf("b%d", e.To.Index)
			if e.To == g.Exit {
				name = "exit"
			}
			switch e.Kind {
			case EdgeCondTrue:
				fmt.Fprintf(&sb, " %s(T)", name)
			case EdgeCondFalse:
				fmt.Fprintf(&sb, " %s(F)", name)
			case EdgeReturn:
				fmt.Fprintf(&sb, " %s(ret)", name)
			case EdgePanic:
				fmt.Fprintf(&sb, " %s(panic)", name)
			case EdgeFalloff:
				fmt.Fprintf(&sb, " %s(end)", name)
			default:
				fmt.Fprintf(&sb, " %s", name)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// summarizeNode renders a node as a single collapsed line, truncated.
func summarizeNode(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Only the per-iteration assignment belongs to the head block; the
		// body is graphed separately.
		return "range " + exprText(fset, r.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

// exprText renders an expression as compact source text, for use as a
// dataflow fact key ("t.mu", "cur.Branches[bi].Child").
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<expr@%v>", e.Pos())
	}
	return strings.Join(strings.Fields(buf.String()), "")
}

// inspectNoFuncLit walks n in source order like ast.Inspect but does not
// descend into function literals: a closure body runs at call time, so its
// operations do not belong to the enclosing function's flow.
func inspectNoFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// rangeHeadAssign synthesizes the assignment a range head implies: for
// `for k, v := range xs` the per-iteration `k, v := <elem>`. Only the Lhs
// is materialized — the passes use it to observe overwrites of tracked
// variables (a pin or error variable reassigned by `for _, v = range xs`).
// Returns nil when the head assigns nothing (`for range xs`).
func rangeHeadAssign(r *ast.RangeStmt) *ast.AssignStmt {
	var lhs []ast.Expr
	if r.Key != nil {
		lhs = append(lhs, r.Key)
	}
	if r.Value != nil {
		lhs = append(lhs, r.Value)
	}
	if len(lhs) == 0 {
		return nil
	}
	return &ast.AssignStmt{Lhs: lhs, TokPos: r.TokPos, Tok: r.Tok}
}

// inspectCFGNode walks the parts of one CFG block node that execute at
// that program point. It differs from inspectNoFuncLit on a range head:
// the *ast.RangeStmt appears as the loop-head node for its per-iteration
// assignment, but its body belongs to other blocks and its X was already
// evaluated in the predecessor block. Only the implied key/value
// assignment is visited, presented as the AssignStmt it is so transfer
// functions observe overwrites of tracked variables.
func inspectCFGNode(n ast.Node, f func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if as := rangeHeadAssign(r); as != nil {
			inspectNoFuncLit(as, f)
		}
		return
	}
	inspectNoFuncLit(n, f)
}

// forEachFunc visits every function body in the files: declared functions
// and methods, plus every function literal (each analyzed as its own
// function). name is the declared name, or "func literal" with the
// enclosing declaration's name when nested.
func forEachFunc(files []*ast.File, visit func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					visit(fd.Name.Name+" func literal", fd, lit.Body)
				}
				return true
			})
		}
	}
}
