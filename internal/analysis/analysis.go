// Package analysis is a small, dependency-free static-analysis framework
// for this repository, in the spirit of golang.org/x/tools/go/analysis but
// built entirely on the standard library's go/ast, go/parser, and go/types
// (the container this repo builds in has no module network access).
//
// It provides:
//
//   - a Loader that parses and type-checks the module's packages from
//     source, resolving standard-library imports through the source
//     importer (loader.go);
//   - an Analyzer abstraction with typed Pass state and positioned
//     Diagnostics;
//   - the repo's custom passes: lockcheck, floatcmp, errchecklite,
//     nodepanic, and hotalloc;
//   - a directive mechanism, "//seglint:allow <name>[,<name>...] — reason",
//     that suppresses a named analyzer on the directive's line, on the line
//     below it, or — when the directive appears in a function's doc
//     comment — throughout that function. Every suppression is expected to
//     carry a rationale so exceptions stay auditable.
//
// The cmd/seglint driver wires the passes over ./... and is part of the
// tier-1 CI gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and directives.
	Name string
	// Doc is a one-line description shown by the driver's usage text.
	Doc string
	// Run inspects one type-checked package and reports diagnostics
	// through the pass.
	Run func(*Pass)
	// AppliesTo restricts the packages the driver runs the pass on; nil
	// means every package. Tests bypass it by calling Run directly.
	AppliesTo func(pkgPath string) bool
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers lists every pass the driver runs, in reporting order. The
// first five are the flow-insensitive style passes from the original
// seglint; unlockpath, pinbalance, and walorder are the flow-sensitive
// proofs built on the CFG/dataflow layer (cfg.go, dataflow.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{LockCheck, FloatCmp, ErrCheckLite, NodePanic, HotAlloc, UnlockPath, PinBalance, WALOrder}
}

// Run executes the given analyzers over a loaded package, drops findings
// suppressed by //seglint:allow directives, and returns the survivors
// sorted by position. Analyzers whose AppliesTo filter rejects the package
// are skipped.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var selected []*Analyzer
	for _, a := range analyzers {
		if a.AppliesTo == nil || a.AppliesTo(pkg.PkgPath) {
			selected = append(selected, a)
		}
	}
	return RunUnfiltered(pkg, selected)
}

// RunUnfiltered is Run without the AppliesTo package filters; fixture tests
// use it to exercise analyzers on synthetic packages.
func RunUnfiltered(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.allows(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept
}

// directiveRe matches "seglint:allow name" or "seglint:allow name1,name2"
// inside a comment, optionally followed by a rationale.
var directiveRe = regexp.MustCompile(`seglint:allow\s+([a-z][a-z0-9,]*)`)

// suppressions indexes //seglint:allow directives: per file, the analyzer
// names allowed on each line.
type suppressions struct {
	byLine map[string]map[int]map[string]bool
}

func (s *suppressions) allow(file string, line int, names []string) {
	if s.byLine[file] == nil {
		s.byLine[file] = make(map[int]map[string]bool)
	}
	if s.byLine[file][line] == nil {
		s.byLine[file][line] = make(map[string]bool)
	}
	for _, n := range names {
		s.byLine[file][line][n] = true
	}
}

func (s *suppressions) allows(d Diagnostic) bool {
	return s.byLine[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// buildSuppressions scans comments for directives. A directive suppresses
// its own line and the following line; a directive inside a function's doc
// comment suppresses the function's whole body.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := directiveNames(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				end := fset.Position(c.End())
				for l := pos.Line; l <= end.Line+1; l++ {
					sup.allow(pos.Filename, l, names)
				}
			}
		}
		// Function-scoped directives: a directive in the doc comment
		// covers the entire declaration.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			// Scan the raw comment lines: CommentGroup.Text() strips
			// "//seglint:" lines as comment directives.
			var names []string
			for _, c := range fd.Doc.List {
				names = append(names, directiveNames(c.Text)...)
			}
			if len(names) == 0 {
				continue
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.End())
			for l := start.Line; l <= end.Line; l++ {
				sup.allow(start.Filename, l, names)
			}
		}
	}
	return sup
}

func directiveNames(text string) []string {
	m := directiveRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	return strings.Split(m[1], ",")
}

// libraryPackage reports whether the import path names a library package:
// everything except command binaries and examples. Test files are never
// loaded, so they are exempt by construction.
func libraryPackage(pkgPath string) bool {
	parts := strings.Split(pkgPath, "/")
	for _, p := range parts[1:] {
		if p == "cmd" || p == "examples" {
			return false
		}
	}
	return true
}
