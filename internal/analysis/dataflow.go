package analysis

// A generic forward fixpoint solver over CFGs. Analyzers describe their
// lattice through FlowProblem; the solver iterates transfer functions over
// a worklist until block in-states stabilize. May- and must-analyses both
// fit: the tri lattice below distinguishes "on every path" (triYes/triNo)
// from "on some paths" (triMaybe), and Join merges path facts pointwise.

import "go/ast"

// tri is a three-point lattice value plus bottom: triBot means "no path
// has said anything", triYes/triNo are must-facts, triMaybe is the top
// ("differs between paths").
type tri uint8

const (
	triBot tri = iota
	triNo
	triYes
	triMaybe
)

func (a tri) join(b tri) tri {
	switch {
	case a == b, b == triBot:
		return a
	case a == triBot:
		return b
	default:
		return triMaybe
	}
}

func (a tri) String() string {
	switch a {
	case triNo:
		return "no"
	case triYes:
		return "yes"
	case triMaybe:
		return "maybe"
	default:
		return "bot"
	}
}

// FlowProblem defines a forward dataflow analysis with state S.
type FlowProblem[S any] interface {
	// EntryState is the state at function entry.
	EntryState() S
	// Clone deep-copies a state so Transfer may mutate freely.
	Clone(S) S
	// Transfer applies one block node's effect to the state (in place or
	// by returning a new state).
	Transfer(n ast.Node, s S) S
	// TransferEdge refines the state along a branch edge (e.g. kill facts
	// on the `err != nil` arm). Called with a private copy.
	TransferEdge(e Edge, s S) S
	// Join merges src into dst, reporting whether dst changed.
	Join(dst, src S) (S, bool)
}

// maxFixpointSteps bounds solver iterations as a safety net: the lattices
// used here are finite so the fixpoint terminates, but a non-monotone
// transfer bug would otherwise spin forever inside the linter.
const maxFixpointSteps = 1 << 14

// Solve runs the problem to fixpoint and returns the in-state of every
// block reachable from Entry. Unreachable blocks (code after return, dead
// goto landing pads) have no entry in the map. The boolean reports whether
// a fixpoint was reached: false means the step bound fired (a non-monotone
// transfer, or a pathologically large function) and the states are a
// partial under-approximation — callers must surface that rather than
// treat the function as proven.
func Solve[S any](g *CFG, p FlowProblem[S]) (map[*Block]S, bool) {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = p.EntryState()
	work := []*Block{g.Entry}
	queued := make(map[*Block]bool, len(g.Blocks))
	queued[g.Entry] = true

	for steps := 0; len(work) > 0; steps++ {
		if steps >= maxFixpointSteps {
			return in, false
		}
		b := work[0]
		work = work[1:]
		queued[b] = false

		s := p.Clone(in[b])
		for _, n := range b.Nodes {
			s = p.Transfer(n, s)
		}
		for _, e := range b.Succs {
			if e.To == g.Exit {
				continue
			}
			es := p.TransferEdge(e, p.Clone(s))
			cur, seen := in[e.To]
			if !seen {
				in[e.To] = es
			} else {
				merged, changed := p.Join(cur, es)
				in[e.To] = merged
				if !changed {
					continue
				}
			}
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in, true
}
