package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands in the geometry
// and engine packages. Raw float equality is how coordinate drift bugs hide:
// two rectangles produced by different arithmetic paths compare unequal by
// one ulp and a branch rectangle silently stops matching its child's cover.
// Comparisons must route through geom.Feq / geom.Fzero; the few places where
// exact equality is load-bearing (change detection) carry a seglint:allow
// directive with a rationale.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid raw ==/!= on float64 in internal/geom and internal/core; use geom.Feq/geom.Fzero",
	Run:  runFloatCmp,
	AppliesTo: func(pkgPath string) bool {
		return floatCmpPackages[pkgPath]
	},
}

// floatCmpPackages are the packages whose coordinate arithmetic the pass
// guards. Extend this set as more packages grow float-heavy code.
var floatCmpPackages = map[string]bool{
	"segidx/internal/geom": true,
	"segidx/internal/core": true,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
				return true
			}
			// Comparisons between two compile-time constants are exact by
			// definition and cannot drift at runtime.
			if isConst(p.Info, be.X) && isConst(p.Info, be.Y) {
				return true
			}
			hint := "geom.Feq"
			if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
				hint = "geom.Fzero"
			}
			p.Reportf(be.OpPos, "raw float comparison (%s); use %s or add a seglint:allow directive with a rationale", be.Op, hint)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isZeroLiteral(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && (bl.Value == "0" || bl.Value == "0.0")
}
