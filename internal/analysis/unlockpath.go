package analysis

// unlockpath is the flow-sensitive companion to lockcheck: it builds the
// CFG of every function and proves, per path, that each mutex acquisition
// is matched by a deferred or all-paths release. It flags lock leaks on
// early returns, double releases, double acquisitions (Go mutexes are not
// reentrant), and deferred releases that fire after an explicit one.
//
// Lock identity is textual: the rendered receiver expression plus the
// lock mode ("t.mu" write, "t.mu" read), which matches how the repo names
// mutexes (one receiver chain per critical section). A release with no
// prior acquisition in the same function is silently accepted — that is
// the lock-handoff idiom (a helper releasing its caller's lock, or a
// deferred closure analyzed as its own function).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// UnlockPath proves per-path mutex release balance.
var UnlockPath = &Analyzer{
	Name:      "unlockpath",
	Doc:       "prove every mutex Lock/RLock is released on all paths (flow-sensitive)",
	Run:       runUnlockPath,
	AppliesTo: libraryPackage,
}

// lockFact is the per-path state of one lock key.
type lockFact struct {
	held     tri // is the lock held here?
	deferred tri // is a release scheduled via defer?
	pos      token.Pos
}

type lockState map[string]*lockFact

// unlockAnalysis implements FlowProblem[lockState] for one function.
type unlockAnalysis struct {
	p      *Pass
	report bool // diagnostics enabled (replay pass)
}

func runUnlockPath(p *Pass) {
	forEachFunc(p.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		g := BuildCFG(body)
		a := &unlockAnalysis{p: p}
		in, converged := Solve[lockState](g, a)
		if !converged {
			p.Reportf(body.Pos(), "%s: dataflow solver hit its step bound before reaching a fixpoint; lock-release facts for this function are incomplete", name)
		}
		a.report = true
		for _, b := range g.Reachable() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = a.Clone(s)
			for _, n := range b.Nodes {
				s = a.Transfer(n, s)
			}
			for _, e := range b.Succs {
				if e.To != g.Exit || e.Kind == EdgePanic {
					continue
				}
				pos := body.Rbrace
				if len(b.Nodes) > 0 {
					pos = b.Nodes[len(b.Nodes)-1].Pos()
				}
				a.checkExit(name, pos, s)
			}
		}
	})
}

func (a *unlockAnalysis) EntryState() lockState { return make(lockState) }

func (a *unlockAnalysis) Clone(s lockState) lockState {
	out := make(lockState, len(s))
	for k, f := range s {
		c := *f
		out[k] = &c
	}
	return out
}

// joinPath merges two path facts. An absent key means "untouched on this
// path", which operationally is "not held": joining it with a held fact
// yields Maybe, while two not-held paths stay not-held.
func joinPath(a, b tri) tri {
	if a == triBot {
		a = triNo
	}
	if b == triBot {
		b = triNo
	}
	return a.join(b)
}

func (a *unlockAnalysis) Join(dst, src lockState) (lockState, bool) {
	changed := false
	for k, sf := range src {
		df, ok := dst[k]
		if !ok {
			nf := *sf
			nf.held = joinPath(triBot, sf.held)
			nf.deferred = joinPath(triBot, sf.deferred)
			dst[k] = &nf
			changed = true
			continue
		}
		if h := joinPath(df.held, sf.held); h != df.held {
			df.held = h
			changed = true
		}
		if d := joinPath(df.deferred, sf.deferred); d != df.deferred {
			df.deferred = d
			changed = true
		}
		if !df.pos.IsValid() && sf.pos.IsValid() {
			df.pos = sf.pos
		}
	}
	for k, df := range dst {
		if _, ok := src[k]; ok {
			continue
		}
		if h := joinPath(df.held, triBot); h != df.held {
			df.held = h
			changed = true
		}
		if d := joinPath(df.deferred, triBot); d != df.deferred {
			df.deferred = d
			changed = true
		}
	}
	return dst, changed
}

func (a *unlockAnalysis) TransferEdge(e Edge, s lockState) lockState { return s }

func (a *unlockAnalysis) Transfer(n ast.Node, s lockState) lockState {
	if ds, ok := n.(*ast.DeferStmt); ok {
		a.transferDefer(ds, s)
		return s
	}
	inspectCFGNode(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, base, acquire, isOp := a.mutexOp(call)
		if !isOp {
			return true
		}
		if acquire {
			a.applyAcquire(s, key, base, call.Pos())
		} else {
			a.applyRelease(s, key, base, call.Pos())
		}
		return true
	})
	return s
}

// transferDefer records releases scheduled by a defer statement: either
// `defer mu.Unlock()` directly or releases inside `defer func() { ... }()`.
func (a *unlockAnalysis) transferDefer(ds *ast.DeferStmt, s lockState) {
	mark := func(call *ast.CallExpr) {
		key, _, acquire, isOp := a.mutexOp(call)
		if !isOp || acquire {
			return
		}
		f := s[key]
		if f == nil {
			f = &lockFact{}
			s[key] = f
		}
		f.deferred = triYes
	}
	if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
		inspectNoFuncLit(lit, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
		return
	}
	mark(ds.Call)
}

func (a *unlockAnalysis) applyAcquire(s lockState, key, base string, pos token.Pos) {
	f := s[key]
	if f == nil {
		f = &lockFact{}
		s[key] = f
	}
	if a.report {
		if f.held == triYes {
			a.p.Reportf(pos, "acquires %s while already held on this path; sync mutexes are not reentrant", lockDisplay(key, base))
		} else if of := s[otherModeKey(key)]; of != nil && of.held == triYes {
			a.p.Reportf(pos, "acquires %s while %s is held on this path (RWMutex self-deadlock)", lockDisplay(key, base), lockDisplay(otherModeKey(key), base))
		}
	}
	f.held = triYes
	if !f.pos.IsValid() {
		f.pos = pos
	}
}

func (a *unlockAnalysis) applyRelease(s lockState, key, base string, pos token.Pos) {
	f := s[key]
	if f == nil {
		// Lock handoff: releasing a lock acquired by the caller. Accepted.
		s[key] = &lockFact{held: triNo}
		return
	}
	if a.report && f.held == triNo {
		a.p.Reportf(pos, "releases %s but it was already released on this path (double unlock)", lockDisplay(key, base))
	}
	if a.report && f.held == triBot {
		if of := s[otherModeKey(key)]; of != nil && of.held == triYes {
			a.p.Reportf(pos, "releases %s but it is %s that is held on this path (mismatched lock mode)", lockDisplay(key, base), lockDisplay(otherModeKey(key), base))
		}
	}
	f.held = triNo
}

// checkExit reports leaks at a return or falloff exit.
func (a *unlockAnalysis) checkExit(fn string, pos token.Pos, s lockState) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := s[k]
		base := strings.TrimSuffix(strings.TrimSuffix(k, "|R"), "|W")
		disp := lockDisplay(k, base)
		switch f.held {
		case triYes, triMaybe:
			if f.deferred == triYes {
				continue // released when the function returns
			}
			where := ""
			if f.pos.IsValid() {
				where = fmt.Sprintf(" (acquired at line %d)", a.p.Fset.Position(f.pos).Line)
			}
			switch {
			case f.deferred == triMaybe:
				a.p.Reportf(pos, "%s may return with %s held: its deferred release is scheduled on only some paths%s", fn, disp, where)
			case f.held == triYes:
				a.p.Reportf(pos, "%s returns with %s held%s; release it on this path or defer the release", fn, disp, where)
			default:
				a.p.Reportf(pos, "%s may return with %s held: it is released on some paths but not this one%s", fn, disp, where)
			}
		case triNo:
			if f.deferred == triYes {
				a.p.Reportf(pos, "%s schedules a deferred release of %s but also releases it explicitly on this path (double unlock at return)", fn, disp)
			}
		}
	}
}

// mutexOp classifies a call as a mutex acquisition or release. key is the
// dataflow fact key (receiver text plus mode), base the receiver text.
func (a *unlockAnalysis) mutexOp(call *ast.CallExpr) (key, base string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	name := sel.Sel.Name
	if !lockAcquire[name] && !lockRelease[name] {
		return "", "", false, false
	}
	if !a.isMutex(sel.X) {
		return "", "", false, false
	}
	base = exprText(a.p.Fset, sel.X)
	mode := "|W"
	if name == "RLock" || name == "RUnlock" {
		mode = "|R"
	}
	return base + mode, base, lockAcquire[name], true
}

// isMutex reports whether the expression has type sync.Mutex/RWMutex
// (possibly through a pointer), falling back to the repo's ".mu" naming
// convention when type information is unavailable.
func (a *unlockAnalysis) isMutex(e ast.Expr) bool {
	if tv, ok := a.p.Info.Types[e]; ok && tv.Type != nil {
		return isSyncMutexType(tv.Type)
	}
	text := exprText(a.p.Fset, e)
	return text == "mu" || strings.HasSuffix(text, ".mu")
}

// isSyncMutexType reports whether t (possibly through a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func otherModeKey(key string) string {
	if strings.HasSuffix(key, "|R") {
		return strings.TrimSuffix(key, "|R") + "|W"
	}
	return strings.TrimSuffix(key, "|W") + "|R"
}

func lockDisplay(key, base string) string {
	if strings.HasSuffix(key, "|R") {
		return base + " (read lock)"
	}
	return base
}
