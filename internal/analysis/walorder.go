package analysis

// walorder is a typestate check over internal/store proving the WAL
// durability protocol order inside each function:
//
//   - write-ahead: the batch is appended (and synced) to the log before it
//     is applied to the data pages — applying while an unsynced log write
//     is outstanding, or logging after applying, inverts the protocol;
//   - sync-before-success: Commit must not return nil while a logged batch
//     has not been applied and synced to the inner store;
//   - trim-last: the log is truncated only after the applied batch is
//     durable in the data file (or when the batch never parsed at all —
//     the replay discard path starts with nothing logged in-function);
//   - latch: once ErrBroken latches (ws.sick is assigned), no further log
//     or data mutation may run on that path.
//
// Operations are recognized structurally, matching WALStore's shape: calls
// through the `.log` and `.inner` fields, the applyLocked/trimLog helper
// methods, and assignments to the `.sick` field — including latching
// closures (`fail := func(err error) error { ws.sick = ...; ... }`).
//
// The state is a pair of phase sets — phases performed on *every* path
// reaching a point (must) and on *at least one* path (may) — so replay's
// "apply an already-durable batch" path (no in-function log append)
// proves clean while a reordered Commit does not. Violations are reported
// only from must-facts: a phase performed on just one arm of a merged
// branch never triggers a report on the other arm's continuation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WALOrder proves the commit protocol's operation order.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc:  "prove WAL durability order: log+sync before apply, sync before Commit returns, no writes after ErrBroken",
	Run:  runWALOrder,
	AppliesTo: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/store")
	},
}

// Protocol phases, accumulated as bitmasks (one must-set, one may-set).
const (
	phaseLogged uint8 = 1 << iota // batch appended to the log
	phaseLogSynced
	phaseApplied // batch applied to the inner store
	phaseInnerSynced
)

type walOp uint8

const (
	opNone walOp = iota
	opLogWrite
	opLogSync
	opApply
	opInnerSync
	opTrim
	opLatch
)

// walState is the per-path protocol state. On a straight-line path
// must == may; they diverge only at branch merges, where must keeps the
// intersection of the arms' phases and may their union.
type walState struct {
	must uint8 // phases performed on every path reaching here
	may  uint8 // phases performed on at least one path reaching here
	sick tri
}

type walAnalysis struct {
	p        *Pass
	fnName   string
	latchers map[types.Object]bool // closure vars whose body assigns .sick
	report   bool
}

func runWALOrder(p *Pass) {
	forEachFunc(p.Files, func(name string, decl *ast.FuncDecl, body *ast.BlockStmt) {
		a := &walAnalysis{p: p, fnName: name, latchers: collectLatchers(p.Info, body)}
		g := BuildCFG(body)
		in, converged := Solve[*walState](g, a)
		if !converged {
			p.Reportf(body.Pos(), "%s: dataflow solver hit its step bound before reaching a fixpoint; WAL-order facts for this function are incomplete", name)
		}
		a.report = true
		for _, b := range g.Reachable() {
			s, ok := in[b]
			if !ok {
				continue
			}
			s = a.Clone(s)
			for _, n := range b.Nodes {
				s = a.Transfer(n, s)
			}
		}
	})
}

// collectLatchers finds local closures whose bodies latch the sick field,
// so calls to them count as latches at the call site.
func collectLatchers(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	latchers := make(map[types.Object]bool)
	inspectNoFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		assigns := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if inner, ok := m.(*ast.AssignStmt); ok {
				for _, l := range inner.Lhs {
					if sel, ok := l.(*ast.SelectorExpr); ok && sel.Sel.Name == "sick" {
						assigns = true
					}
				}
			}
			return true
		})
		if !assigns {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if o := objOf(info, id); o != nil {
				latchers[o] = true
			}
		}
		return true
	})
	return latchers
}

func (a *walAnalysis) EntryState() *walState { return &walState{} }

func (a *walAnalysis) Clone(s *walState) *walState {
	c := *s
	return &c
}

func (a *walAnalysis) Join(dst, src *walState) (*walState, bool) {
	changed := false
	if m := dst.must & src.must; m != dst.must {
		dst.must = m
		changed = true
	}
	if m := dst.may | src.may; m != dst.may {
		dst.may = m
		changed = true
	}
	if k := joinPath(dst.sick, src.sick); k != dst.sick {
		dst.sick = k
		changed = true
	}
	return dst, changed
}

func (a *walAnalysis) TransferEdge(e Edge, s *walState) *walState { return s }

func (a *walAnalysis) Transfer(n ast.Node, s *walState) *walState {
	inspectCFGNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			a.applyOp(a.classifyCall(m), m.Pos(), s)
		case *ast.AssignStmt:
			for _, l := range m.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok && sel.Sel.Name == "sick" {
					a.applyOp(opLatch, m.Pos(), s)
				}
			}
		}
		return true
	})
	if ret, ok := n.(*ast.ReturnStmt); ok {
		a.checkReturn(ret, s)
	}
	return s
}

// classifyCall maps a call to a protocol operation by its receiver chain
// and method name.
func (a *walAnalysis) classifyCall(call *ast.CallExpr) walOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if a.latchers[identObj(a.p.Info, call.Fun)] {
			return opLatch
		}
		return opNone
	}
	name := sel.Sel.Name
	switch name {
	case "applyLocked":
		return opApply
	case "trimLog":
		return opTrim
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return opNone
	}
	switch field.Sel.Name {
	case "log":
		switch name {
		case "WriteAt", "Write":
			return opLogWrite
		case "Sync":
			return opLogSync
		case "Truncate":
			return opTrim
		}
	case "inner":
		switch name {
		case "Write", "ApplyAlloc", "ApplyFree":
			return opApply
		case "Sync":
			return opInnerSync
		}
	}
	return opNone
}

func (a *walAnalysis) applyOp(op walOp, pos token.Pos, s *walState) {
	if op == opNone {
		return
	}
	if a.report && s.sick == triYes && op != opLatch {
		a.p.Reportf(pos, "%s mutates the store after ErrBroken has latched on this path; a broken store must stop", a.fnName)
	}
	// Reports key on must-facts (the offending phase happened on every
	// path) and clear on may-facts (no path performed the mitigating
	// phase), so a phase from one arm of a merged branch can neither
	// trigger a violation nor falsely excuse one.
	switch op {
	case opLogWrite:
		if a.report && s.must&phaseApplied != 0 {
			a.p.Reportf(pos, "%s appends to the write-ahead log after applying to the data pages (write-ahead order inverted)", a.fnName)
		}
		// A new batch append invalidates every later phase on this path.
		s.must, s.may = phaseLogged, phaseLogged
	case opLogSync:
		if s.must&phaseLogged != 0 {
			s.must |= phaseLogSynced
		}
		if s.may&phaseLogged != 0 {
			s.may |= phaseLogSynced
		}
	case opApply:
		if a.report && s.must&phaseLogged != 0 && s.may&phaseLogSynced == 0 {
			a.p.Reportf(pos, "%s applies the batch to the data pages before the log append is synced; a crash here loses the write-ahead guarantee", a.fnName)
		}
		s.must |= phaseApplied
		s.may |= phaseApplied
	case opInnerSync:
		if s.must&phaseApplied != 0 {
			s.must |= phaseInnerSynced
		}
		if s.may&phaseApplied != 0 {
			s.may |= phaseInnerSynced
		}
	case opTrim:
		if a.report && s.must&phaseLogged != 0 && s.may&phaseInnerSynced == 0 {
			a.p.Reportf(pos, "%s trims the write-ahead log before the applied batch is synced to the data file; a crash here loses the batch", a.fnName)
		}
		s.must, s.may = 0, 0
	case opLatch:
		s.sick = triYes
	}
}

// checkReturn flags `return nil` from Commit while a logged batch is not
// yet durable in the data file.
func (a *walAnalysis) checkReturn(ret *ast.ReturnStmt, s *walState) {
	if !a.report || a.fnName != "Commit" || len(ret.Results) != 1 {
		return
	}
	if !isNilIdent(ret.Results[0]) {
		return
	}
	if s.must&phaseLogged != 0 && s.may&phaseInnerSynced == 0 {
		a.p.Reportf(ret.Pos(), "Commit returns success before the applied batch is synced to the data file (Sync must precede the successful return)")
	}
}
