package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the tree's documented lock discipline.
//
// A function whose doc comment declares that the caller must hold the lock
// (phrases like "caller must hold t.mu", "requires the write lock", or
// "must hold the shard lock"), or whose name carries the repo's "Locked"
// suffix convention (evictLocked, writeBackLocked, ...), is a *locked
// helper*. Two rules follow:
//
//  1. A locked helper must not itself acquire or release the mutex: Go's
//     sync.(RW)Mutex is not reentrant, so re-acquiring under the held lock
//     deadlocks, and releasing would break the caller's critical section.
//
//  2. An exported function or method that calls a locked helper must
//     lexically acquire a ".mu" lock (Lock or RLock) before the first such
//     call. Unexported functions are exempt — they are assumed to run
//     under a lock their exported entry point took — as is any exported
//     function that is itself documented as a locked helper.
//
// The check is syntactic and flow-insensitive by design: it orders calls by
// source position within the function body, which matches the repo's
// "acquire in the first statements, defer the release" style. Constructors
// operating on unpublished trees opt out with a seglint:allow directive.
var LockCheck = &Analyzer{
	Name:      "lockcheck",
	Doc:       "verify callers of must-hold-t.mu helpers acquire the lock, and that helpers never re-acquire it",
	Run:       runLockCheck,
	AppliesTo: libraryPackage,
}

// lockDocRe recognizes the doc-comment phrases that mark a locked helper.
var lockDocRe = regexp.MustCompile(`(?i)(callers?\s+must\s+hold|requires)\s+(the\s+)?((write|read|shard)\s+lock|lock|t\.mu|[a-z]+\.mu)`)

// lockedByName reports whether a function name follows the "Locked"
// suffix convention, which marks a locked helper even without the doc
// phrase.
func lockedByName(name string) bool {
	return len(name) > len("Locked") && strings.HasSuffix(name, "Locked")
}

// lockMethodNames are the sync.Mutex/RWMutex methods of interest.
var lockAcquire = map[string]bool{"Lock": true, "RLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

func runLockCheck(p *Pass) {
	// Pass 1: collect locked helpers declared in this package.
	locked := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			byDoc := fd.Doc != nil && lockDocRe.MatchString(fd.Doc.Text())
			if byDoc || lockedByName(fd.Name.Name) {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					locked[obj] = fd
				}
			}
		}
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if _, isLocked := locked[obj]; isLocked {
				p.checkNoMutexOps(fd)
				continue
			}
			if fd.Name.IsExported() {
				p.checkAcquiresBeforeHelpers(fd, locked)
			}
		}
	}
}

// checkNoMutexOps flags any ".mu.Lock/RLock/Unlock/RUnlock" call inside a
// locked helper.
func (p *Pass) checkNoMutexOps(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, onMu := muMethod(p.Info, call)
		if !onMu {
			return true
		}
		verb := "acquires"
		if lockRelease[method] {
			verb = "releases"
		}
		p.Reportf(call.Pos(),
			"%s requires the caller to hold the lock but %s it (.mu.%s); sync mutexes are not reentrant",
			fd.Name.Name, verb, method)
		return true
	})
}

// checkAcquiresBeforeHelpers flags exported functions that call a locked
// helper without a lexically preceding mutex acquisition.
func (p *Pass) checkAcquiresBeforeHelpers(fd *ast.FuncDecl, locked map[types.Object]*ast.FuncDecl) {
	var firstHelper *ast.CallExpr
	var firstHelperName string
	firstAcquire := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if method, onMu := muMethod(p.Info, call); onMu && lockAcquire[method] {
			if !firstAcquire.IsValid() || call.Pos() < firstAcquire {
				firstAcquire = call.Pos()
			}
			return true
		}
		callee := calleeObject(p.Info, call)
		if callee == nil {
			return true
		}
		if _, isLocked := locked[callee]; isLocked {
			if firstHelper == nil || call.Pos() < firstHelper.Pos() {
				firstHelper = call
				firstHelperName = callee.Name()
			}
		}
		return true
	})
	if firstHelper == nil {
		return
	}
	if !firstAcquire.IsValid() {
		p.Reportf(firstHelper.Pos(),
			"exported %s calls %s, which requires holding the lock, but never acquires .mu",
			fd.Name.Name, firstHelperName)
		return
	}
	if firstHelper.Pos() < firstAcquire {
		p.Reportf(firstHelper.Pos(),
			"exported %s calls %s before acquiring .mu (helper requires the lock held)",
			fd.Name.Name, firstHelperName)
	}
}

// muMethod reports whether call is "<expr>.mu.<Method>()" or a bare
// "mu.<Method>()" on a package-level sync.Mutex/RWMutex, returning the
// method name. A function-local `var mu sync.Mutex` is deliberately not
// matched: it guards scratch state of its own function, not the
// package-level state a locked helper's contract is about, so counting
// it would both excuse missing acquisitions and flag harmless scratch
// locking inside helpers.
func muMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !lockAcquire[name] && !lockRelease[name] {
		return "", false
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		if recv.Sel.Name == "mu" {
			return name, true
		}
	case *ast.Ident:
		if recv.Name == "mu" && isPackageLevelMutex(info, recv) {
			return name, true
		}
	}
	return "", false
}

// isPackageLevelMutex reports whether the identifier resolves to a
// package-scope variable of type sync.Mutex/RWMutex.
func isPackageLevelMutex(info *types.Info, id *ast.Ident) bool {
	obj := objOf(info, id)
	if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return false
	}
	return isSyncMutexType(obj.Type())
}

// calleeObject resolves the called function or method, or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
