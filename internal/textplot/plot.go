// Package textplot renders small multi-series line charts as ASCII text,
// used by the benchmark harness to draw the paper's graphs in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve. X values must be sorted ascending.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart renders series on a shared axis grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 20)
	LogX   bool
	Series []Series
}

// Render draws the chart. Series overlapping on a cell show the marker of
// the last series added (curves that coincide — as in the paper's graphs —
// visually merge, which is faithful to the original figures).
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // Y axis anchored at zero like the paper's plots
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xval(s.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if math.IsInf(xmin, 1) || ymax <= ymin {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		var prevCol, prevRow int = -1, -1
		for i := range s.X {
			col := int(math.Round((c.xval(s.X[i]) - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			grid[row][col] = marker
			// Connect consecutive points with a sparse line.
			if prevCol >= 0 {
				steps := abs(col-prevCol) + abs(row-prevRow)
				for s := 1; s < steps; s++ {
					ic := prevCol + (col-prevCol)*s/steps
					ir := prevRow + (row-prevRow)*s/steps
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			prevCol, prevRow = col, row
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r := 0; r < h; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		label := "        "
		if r == 0 || r == h-1 || r == h/2 {
			label = fmt.Sprintf("%7.4g ", yv)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s+%s\n", "", strings.Repeat("-", w))
	lo, hi := xmin, xmax
	if c.LogX {
		fmt.Fprintf(&b, "%9s%-*.4g%*.4g  (log10 %s)\n", "", w/2, lo, w/2, hi, c.XLabel)
	} else {
		fmt.Fprintf(&b, "%9s%-*.4g%*.4g  (%s)\n", "", w/2, lo, w/2, hi, c.XLabel)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%9sY: %s\n", "", c.YLabel)
	}
	for _, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "%9s%c %s\n", "", marker, s.Name)
	}
	return b.String()
}

func (c *Chart) xval(x float64) float64 {
	if c.LogX {
		return math.Log10(x)
	}
	return x
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
