package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "qar",
		YLabel: "nodes",
		LogX:   true,
		Series: []Series{
			{Name: "up", Marker: 'u', X: []float64{0.01, 0.1, 1, 10, 100}, Y: []float64{1, 2, 3, 4, 5}},
			{Name: "down", Marker: 'd', X: []float64{0.01, 0.1, 1, 10, 100}, Y: []float64{5, 4, 3, 2, 1}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "u up", "d down", "log10 qar", "Y: nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "u") || !strings.Contains(out, "d") {
		t.Error("markers absent from plot area")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart rendered: %s", out)
	}
}

func TestRenderSinglePointAndFlatSeries(t *testing.T) {
	c := &Chart{
		Series: []Series{
			{Name: "point", X: []float64{1}, Y: []float64{5}},
		},
	}
	out := c.Render()
	if strings.Contains(out, "no data") {
		t.Error("single point treated as no data")
	}
	// Flat series at zero has no Y range; should not panic.
	flat := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{0, 0}}}}
	if out := flat.Render(); !strings.Contains(out, "no data") {
		t.Errorf("flat-zero chart: %q", out)
	}
}
