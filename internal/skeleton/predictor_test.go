package skeleton

import (
	"sort"
	"testing"

	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
	"segidx/internal/workload"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sizes.LeafBytes = 256
	cfg.Spanning = true
	cfg.CoalesceEvery = 200
	return cfg
}

func domain() geom.Rect { return workload.Domain() }

func TestPredictorValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := New(cfg, store.NewMemStore(), domain(), 0, 0.1); err == nil {
		t.Error("zero expected tuples accepted")
	}
	if _, err := New(cfg, store.NewMemStore(), domain(), 100, 0); err == nil {
		t.Error("zero sample fraction accepted")
	}
	if _, err := New(cfg, store.NewMemStore(), domain(), 100, 1.5); err == nil {
		t.Error("sample fraction > 1 accepted")
	}
	if _, err := NewFixedSample(cfg, store.NewMemStore(), domain(), 100, 1000); err == nil {
		t.Error("sample size above expected accepted")
	}
	bad := geom.Rect{Min: []float64{0}, Max: []float64{1}}
	if _, err := New(cfg, store.NewMemStore(), bad, 100, 0.1); err == nil {
		t.Error("bad domain accepted")
	}
}

func TestPredictorBuildsAfterSample(t *testing.T) {
	p, err := New(testConfig(), store.NewMemStore(), domain(), 1000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.I3.Generate(1000, 99)
	for i, r := range data {
		if err := p.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i < 99 && !p.Buffering() {
			t.Fatalf("built after only %d inserts (sample is 100)", i+1)
		}
	}
	if p.Buffering() {
		t.Fatal("never built the skeleton")
	}
	if p.Len() != 1000 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Height() < 2 {
		t.Fatalf("height %d", p.Height())
	}
}

func TestPredictorSearchDuringAndAfterBuffering(t *testing.T) {
	p, err := NewFixedSample(testConfig(), store.NewMemStore(), domain(), 400, 200)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.I1.Generate(400, 123)
	check := func(phase string) {
		q := geom.Rect2(0, 0, workload.DomainHi, workload.DomainHi)
		var want []node.RecordID
		for i := 0; i < p.Len(); i++ {
			want = append(want, node.RecordID(i+1))
		}
		got, err := p.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		var ids []node.RecordID
		for _, e := range got {
			ids = append(ids, e.ID)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if len(ids) != len(want) {
			t.Fatalf("%s: found %d, want %d", phase, len(ids), len(want))
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("%s: ids diverge at %d", phase, i)
			}
		}
	}
	for i := 0; i < 100; i++ {
		if err := p.Insert(data[i], node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	check("buffering")
	n, err := p.Count(geom.Rect2(0, 0, workload.DomainHi, workload.DomainHi))
	if err != nil || n != 100 {
		t.Fatalf("Count during buffering = %d, %v", n, err)
	}
	for i := 100; i < 400; i++ {
		if err := p.Insert(data[i], node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	check("indexed")
}

func TestPredictorDeleteDuringBuffering(t *testing.T) {
	p, err := NewFixedSample(testConfig(), store.NewMemStore(), domain(), 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := geom.Rect2(1, 1, 2, 1)
	if err := p.Insert(r, 7); err != nil {
		t.Fatal(err)
	}
	if n, err := p.Delete(7, r); err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d", p.Len())
	}
	if n, _ := p.Delete(7, r); n != 0 {
		t.Fatal("double delete succeeded")
	}
}

func TestPredictorFinalizeEarly(t *testing.T) {
	p, err := NewFixedSample(testConfig(), store.NewMemStore(), domain(), 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.R2.Generate(50, 5)
	for i, r := range data {
		if err := p.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.Buffering() {
		t.Fatal("still buffering after Finalize")
	}
	if p.Len() != 50 {
		t.Fatalf("Len = %d", p.Len())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionAdaptsPartitionsToSkew(t *testing.T) {
	// Feed exponential-Y data: the built skeleton must put more, narrower
	// partitions at low Y. Verify indirectly: count leaves whose region
	// center is below the median of the domain.
	p, err := NewFixedSample(testConfig(), store.NewMemStore(), domain(), 3000, 300)
	if err != nil {
		t.Fatal(err)
	}
	data := workload.I2.Generate(3000, 77)
	for i, r := range data {
		if err := p.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Height < 2 {
		t.Fatal("no hierarchy built")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With β=7000 over [0,100000], ~99% of the Y mass lies below 35000.
	entries, err := p.Search(geom.Rect2(0, 0, workload.DomainHi, 35000))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2800 {
		t.Fatalf("only %d records below Y=35000; generator broken?", len(entries))
	}

	// Build the same data into a *uniform* skeleton. A horizontal strip
	// query in the empty high-Y half must be cheaper on the predicted
	// skeleton, whose high-Y partitions are few and coarse, than on the
	// uniform skeleton, which pre-allocated fine partitions there.
	uni, err := core.NewSkeleton(testConfig(), store.NewMemStore(), core.Estimate{
		Tuples: 3000, Domain: domain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range data {
		if err := uni.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	strip := geom.Rect2(0, 70000, workload.DomainHi, 72000)
	cost := func(tr *core.Tree) uint64 {
		before := tr.Stats().SearchNodeAccesses
		if _, err := tr.Search(strip); err != nil {
			t.Fatal(err)
		}
		return tr.Stats().SearchNodeAccesses - before
	}
	predCost := cost(p.Tree())
	uniCost := cost(uni)
	if predCost >= uniCost {
		t.Errorf("high-Y strip: predicted skeleton cost %d not below uniform %d", predCost, uniCost)
	}
}
