// Package skeleton provides distribution prediction for skeleton indexes
// (Section 4): when the input distribution is unknown but tuples arrive in
// random order, the first T tuples are buffered in memory, per-dimension
// histograms are computed from them, a skeleton index is constructed from
// those histograms, and the buffered plus subsequent tuples are inserted
// into it. The paper found T between 5% and 10% of the expected input to
// work well and uses 10,000 tuples in its experiments.
package skeleton

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"segidx/internal/accel"
	"segidx/internal/buffer"
	"segidx/internal/core"
	"segidx/internal/geom"
	"segidx/internal/histogram"
	"segidx/internal/node"
	"segidx/internal/store"
)

// DefaultBins is the per-dimension histogram resolution used for
// prediction.
const DefaultBins = 100

// Predictor wraps a Tree, deferring skeleton construction until a sample
// of the input has been observed. It implements the same operations as
// core.Tree; searches and deletes during the buffering phase consult the
// buffer.
//
// A Predictor is safe for concurrent use: its own lock guards the sample
// buffer and the buffering-to-built transition, and once the skeleton is
// built, operations delegate to the Tree's locking (reads then proceed in
// parallel under the tree's shared lock).
type Predictor struct {
	cfg      core.Config
	st       store.Store
	domain   geom.Rect
	expected int
	sample   int
	bins     int

	mu     sync.RWMutex
	buf    []buffered
	epoch  uint64                 // forest flush epoch to stamp the tree with at build
	attach func(*core.Tree) error // optional hook run right after the skeleton is built
	tree   *core.Tree             // nil until the skeleton is built

	// muts counts mutating operations for CommitEpoch: a monotonic stamp
	// that changes whenever the logical contents may have changed. It is
	// bumped before the operation runs, so a cache keyed on it can only
	// err toward invalidation, never staleness.
	muts atomic.Uint64
}

type buffered struct {
	rect geom.Rect
	id   node.RecordID
}

// New creates a predictor that buffers sampleFraction of expectedTuples
// (clamped to [1, expectedTuples]) before building the skeleton over the
// given domain.
func New(cfg core.Config, st store.Store, domain geom.Rect, expectedTuples int, sampleFraction float64) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if expectedTuples < 1 {
		return nil, fmt.Errorf("skeleton: expected tuples %d < 1", expectedTuples)
	}
	if sampleFraction <= 0 || sampleFraction > 1 {
		return nil, fmt.Errorf("skeleton: sample fraction %g outside (0, 1]", sampleFraction)
	}
	if !domain.Valid() || domain.Dims() != cfg.Dims {
		return nil, errors.New("skeleton: invalid domain")
	}
	sample := int(float64(expectedTuples) * sampleFraction)
	if sample < 1 {
		sample = 1
	}
	return &Predictor{
		cfg:      cfg,
		st:       st,
		domain:   domain.Clone(),
		expected: expectedTuples,
		sample:   sample,
		bins:     DefaultBins,
	}, nil
}

// NewFixedSample is New with an absolute sample size (the paper's
// experiments buffer exactly 10,000 tuples).
func NewFixedSample(cfg core.Config, st store.Store, domain geom.Rect, expectedTuples, sampleSize int) (*Predictor, error) {
	if sampleSize < 1 || sampleSize > expectedTuples {
		return nil, fmt.Errorf("skeleton: sample size %d outside [1, %d]", sampleSize, expectedTuples)
	}
	p, err := New(cfg, st, domain, expectedTuples, 1)
	if err != nil {
		return nil, err
	}
	p.sample = sampleSize
	return p, nil
}

// built returns the underlying tree, or nil while still buffering.
func (p *Predictor) built() *core.Tree {
	p.mu.RLock()
	t := p.tree
	p.mu.RUnlock()
	return t
}

// Buffering reports whether the predictor is still collecting its sample.
func (p *Predictor) Buffering() bool { return p.built() == nil }

// Tree returns the underlying tree, or nil while buffering.
func (p *Predictor) Tree() *core.Tree { return p.built() }

// Insert adds a record, building the skeleton once the sample is complete.
func (p *Predictor) Insert(rect geom.Rect, id node.RecordID) error {
	p.muts.Add(1)
	if t := p.built(); t != nil {
		return t.Insert(rect, id)
	}
	p.mu.Lock()
	if p.tree != nil { // built between the check and the lock
		t := p.tree
		p.mu.Unlock()
		return t.Insert(rect, id)
	}
	if !rect.Valid() || rect.Dims() != p.cfg.Dims {
		p.mu.Unlock()
		return core.ErrBadRect
	}
	p.buf = append(p.buf, buffered{rect: rect.Clone(), id: id})
	var err error
	if len(p.buf) >= p.sample {
		err = p.buildLocked()
	}
	p.mu.Unlock()
	return err
}

// buildLocked computes per-dimension histograms from the buffered sample,
// constructs the skeleton, and drains the buffer into it. The caller must
// hold the write lock on p.mu.
func (p *Predictor) buildLocked() error {
	hists := make([]*histogram.Histogram, p.cfg.Dims)
	for d := 0; d < p.cfg.Dims; d++ {
		h, err := histogram.New(p.domain.Min[d], p.domain.Max[d], p.bins)
		if err != nil {
			return err
		}
		for _, b := range p.buf {
			h.AddInterval(b.rect.Min[d], b.rect.Max[d])
		}
		hists[d] = h
	}
	tree, err := core.NewSkeleton(p.cfg, p.st, core.Estimate{
		Tuples: p.expected,
		Domain: p.domain,
		Hists:  hists,
	})
	if err != nil {
		return err
	}
	// The attach hook runs before the buffer drains so sidecars observe
	// the drained inserts through the tree's normal write path.
	if p.attach != nil {
		if err := p.attach(tree); err != nil {
			return err
		}
	}
	for _, b := range p.buf {
		if err := tree.Insert(b.rect, b.id); err != nil {
			return err
		}
	}
	p.buf = nil
	tree.SetEpoch(p.epoch)
	p.tree = tree
	return nil
}

// SetAttach registers a hook run on the tree as soon as the skeleton is
// built, before the sample buffer drains into it — the facade uses it to
// attach a stab accelerator. Must be called before the sample completes
// (in practice: before any Insert).
func (p *Predictor) SetAttach(fn func(*core.Tree) error) {
	p.mu.Lock()
	p.attach = fn
	p.mu.Unlock()
}

// SetEpoch stamps the predictor with a forest flush epoch (see
// core.Tree.SetEpoch). While buffering, the epoch is remembered and
// applied to the tree when the skeleton is built.
func (p *Predictor) SetEpoch(e uint64) {
	p.mu.Lock()
	p.epoch = e
	t := p.tree
	p.mu.Unlock()
	if t != nil {
		t.SetEpoch(e)
	}
}

// Finalize forces skeleton construction from whatever sample has been
// collected (building a uniform skeleton if nothing was buffered). Useful
// when the input ends before the sample target is reached.
func (p *Predictor) Finalize() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tree != nil {
		return nil
	}
	return p.buildLocked()
}

// Search returns deduplicated records intersecting query, consulting the
// buffer while in the buffering phase.
func (p *Predictor) Search(query geom.Rect) ([]core.Entry, error) {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.Search(query)
	}
	defer p.mu.RUnlock()
	return p.searchBufferedLocked(query)
}

// searchBufferedLocked scans the sample buffer for intersecting records.
// The caller must hold p.mu.
func (p *Predictor) searchBufferedLocked(query geom.Rect) ([]core.Entry, error) {
	if !query.Valid() || query.Dims() != p.cfg.Dims {
		return nil, core.ErrBadRect
	}
	var out []core.Entry
	for _, b := range p.buf {
		if b.rect.Intersects(query) {
			out = append(out, core.Entry{Rect: b.rect.Clone(), ID: b.id})
		}
	}
	return out, nil
}

// SearchFunc visits records intersecting query.
func (p *Predictor) SearchFunc(query geom.Rect, fn func(core.Entry) bool) error {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.SearchFunc(query, fn)
	}
	entries, err := p.searchBufferedLocked(query)
	p.mu.RUnlock()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// SearchWithin returns the records entirely contained in query.
func (p *Predictor) SearchWithin(query geom.Rect) ([]core.Entry, error) {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.SearchWithin(query)
	}
	defer p.mu.RUnlock()
	if !query.Valid() || query.Dims() != p.cfg.Dims {
		return nil, core.ErrBadRect
	}
	var out []core.Entry
	for _, b := range p.buf {
		if query.Contains(b.rect) {
			out = append(out, core.Entry{Rect: b.rect.Clone(), ID: b.id})
		}
	}
	return out, nil
}

// SearchContaining returns the records that entirely contain query.
func (p *Predictor) SearchContaining(query geom.Rect) ([]core.Entry, error) {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.SearchContaining(query)
	}
	defer p.mu.RUnlock()
	return p.containingBufferedLocked(query)
}

// SearchContainingFunc visits the records that entirely contain query.
// Entry rectangles are views valid only during the callback (buffered
// records are reported from in-memory copies with the same contract).
func (p *Predictor) SearchContainingFunc(query geom.Rect, fn func(core.Entry) bool) error {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.SearchContainingFunc(query, fn)
	}
	entries, err := p.containingBufferedLocked(query)
	p.mu.RUnlock()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// containingBufferedLocked scans the sample buffer for records containing
// query. The caller must hold p.mu.
func (p *Predictor) containingBufferedLocked(query geom.Rect) ([]core.Entry, error) {
	if !query.Valid() || query.Dims() != p.cfg.Dims {
		return nil, core.ErrBadRect
	}
	var out []core.Entry
	for _, b := range p.buf {
		if b.rect.Contains(query) {
			out = append(out, core.Entry{Rect: b.rect.Clone(), ID: b.id})
		}
	}
	return out, nil
}

// VisitPortions walks every stored record portion with its storage level
// (buffered records report level 0).
func (p *Predictor) VisitPortions(fn func(level int, e core.Entry) bool) error {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.VisitPortions(fn)
	}
	// Snapshot the buffer so fn runs without holding the lock.
	entries := make([]core.Entry, len(p.buf))
	for i, b := range p.buf {
		entries[i] = core.Entry{Rect: b.rect.Clone(), ID: b.id}
	}
	p.mu.RUnlock()
	for _, e := range entries {
		if !fn(0, e) {
			return nil
		}
	}
	return nil
}

// Count returns the number of records intersecting query.
func (p *Predictor) Count(query geom.Rect) (int, error) {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.Count(query)
	}
	defer p.mu.RUnlock()
	entries, err := p.searchBufferedLocked(query)
	return len(entries), err
}

// Delete removes the record with the given ID.
func (p *Predictor) Delete(id node.RecordID, hint geom.Rect) (int, error) {
	p.muts.Add(1)
	p.mu.Lock()
	if p.tree != nil {
		t := p.tree
		p.mu.Unlock()
		return t.Delete(id, hint)
	}
	defer p.mu.Unlock()
	// A reused ID extends the logical record with extra buffered portions;
	// Delete must drop every one intersecting the hint, matching a built
	// tree's whole-record semantics.
	kept := p.buf[:0]
	hit := false
	for _, b := range p.buf {
		if b.id == id && b.rect.Intersects(hint) {
			hit = true
			continue
		}
		kept = append(kept, b)
	}
	p.buf = kept
	if hit {
		return 1, nil
	}
	return 0, nil
}

// DeleteWhere removes every buffered or indexed record intersecting query
// and satisfying pred.
func (p *Predictor) DeleteWhere(query geom.Rect, pred func(core.Entry) bool) (int, error) {
	p.muts.Add(1)
	p.mu.Lock()
	if p.tree != nil {
		t := p.tree
		p.mu.Unlock()
		return t.DeleteWhere(query, pred)
	}
	defer p.mu.Unlock()
	if !query.Valid() || query.Dims() != p.cfg.Dims {
		return 0, core.ErrBadRect
	}
	removed := 0
	kept := p.buf[:0]
	for _, b := range p.buf {
		if b.rect.Intersects(query) && (pred == nil || pred(core.Entry{Rect: b.rect, ID: b.id})) {
			removed++
			continue
		}
		kept = append(kept, b)
	}
	p.buf = kept
	return removed, nil
}

// Len reports the number of records held (buffered plus indexed).
func (p *Predictor) Len() int {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.Len()
	}
	defer p.mu.RUnlock()
	return len(p.buf)
}

// Height reports the tree height (1 while buffering).
func (p *Predictor) Height() int {
	if t := p.built(); t != nil {
		return t.Height()
	}
	return 1
}

// NodeCount reports the number of index nodes (0 while buffering).
func (p *Predictor) NodeCount() int {
	if t := p.built(); t != nil {
		return t.NodeCount()
	}
	return 0
}

// Stats returns tree counters (zero while buffering).
func (p *Predictor) Stats() core.Stats {
	if t := p.built(); t != nil {
		return t.Stats()
	}
	return core.Stats{}
}

// PoolStats returns buffer pool counters (zero while buffering: sampled
// records live in memory, not on pages).
func (p *Predictor) PoolStats() buffer.Stats {
	if t := p.built(); t != nil {
		return t.PoolStats()
	}
	return buffer.Stats{}
}

// AccelStats returns the built tree's stab-accelerator counters (nil
// while buffering: the sidecar attaches when the skeleton is built).
func (p *Predictor) AccelStats() []accel.Stats {
	if t := p.built(); t != nil {
		return t.AccelStats()
	}
	return nil
}

// Flush persists the index; it finalizes the skeleton first.
func (p *Predictor) Flush() error {
	if err := p.Finalize(); err != nil {
		return err
	}
	return p.built().Flush()
}

// CheckInvariants validates the underlying tree (trivially true while
// buffering).
func (p *Predictor) CheckInvariants() error {
	if t := p.built(); t != nil {
		return t.CheckInvariants()
	}
	return nil
}

// CommitEpoch reports a monotonic mutation stamp: it increases on every
// Insert/Delete/DeleteWhere (successful or not) and is stable while the
// contents are unchanged. The scale differs from core.Tree.CommitEpoch —
// buffered-phase mutations count here even though the tree does not exist
// yet — but the contract a result cache needs (changes on mutation, stable
// otherwise) holds across the buffering-to-built transition.
func (p *Predictor) CommitEpoch() uint64 { return p.muts.Load() }

// Snapshot pins an immutable view of the predictor's contents. Once the
// skeleton is built this is the tree's MVCC snapshot (lock-free reads,
// copy-on-write isolation); while buffering it is a point-in-time copy of
// the sample buffer. Either way the view observes no subsequent mutations
// and must be Released.
func (p *Predictor) Snapshot() core.View {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.Snapshot()
	}
	v := &bufView{dims: p.cfg.Dims, epoch: p.muts.Load()}
	v.entries = make([]core.Entry, len(p.buf))
	for i, b := range p.buf {
		v.entries[i] = core.Entry{Rect: b.rect.Clone(), ID: b.id}
	}
	p.mu.RUnlock()
	return v
}

// bufView is a static snapshot of the buffering-phase sample: a deep copy
// of the buffered records taken under the predictor lock. It needs no
// registry pin — the copy is self-contained — so Release only poisons the
// handle.
type bufView struct {
	dims     int
	epoch    uint64
	entries  []core.Entry
	released atomic.Bool
}

func (v *bufView) check(query geom.Rect) error {
	if v.released.Load() {
		return core.ErrSnapshotReleased
	}
	if !query.Valid() || query.Dims() != v.dims {
		return core.ErrBadRect
	}
	return nil
}

// Search implements core.View over the buffered copy.
func (v *bufView) Search(query geom.Rect) ([]core.Entry, error) {
	if err := v.check(query); err != nil {
		return nil, err
	}
	var out []core.Entry
	for _, e := range v.entries {
		if e.Rect.Intersects(query) {
			out = append(out, core.Entry{Rect: e.Rect.Clone(), ID: e.ID})
		}
	}
	return out, nil
}

// SearchFunc implements core.View over the buffered copy.
func (v *bufView) SearchFunc(query geom.Rect, fn func(core.Entry) bool) error {
	if err := v.check(query); err != nil {
		return err
	}
	for _, e := range v.entries {
		if e.Rect.Intersects(query) && !fn(e) {
			return nil
		}
	}
	return nil
}

// SearchContaining implements core.View over the buffered copy.
func (v *bufView) SearchContaining(query geom.Rect) ([]core.Entry, error) {
	if err := v.check(query); err != nil {
		return nil, err
	}
	var out []core.Entry
	for _, e := range v.entries {
		if e.Rect.Contains(query) {
			out = append(out, core.Entry{Rect: e.Rect.Clone(), ID: e.ID})
		}
	}
	return out, nil
}

// SearchContainingFunc implements core.View over the buffered copy.
func (v *bufView) SearchContainingFunc(query geom.Rect, fn func(core.Entry) bool) error {
	if err := v.check(query); err != nil {
		return err
	}
	for _, e := range v.entries {
		if e.Rect.Contains(query) && !fn(e) {
			return nil
		}
	}
	return nil
}

// Count implements core.View over the buffered copy.
func (v *bufView) Count(query geom.Rect) (int, error) {
	if err := v.check(query); err != nil {
		return 0, err
	}
	n := 0
	for _, e := range v.entries {
		if e.Rect.Intersects(query) {
			n++
		}
	}
	return n, nil
}

// Len implements core.View.
func (v *bufView) Len() int { return len(v.entries) }

// Epoch implements core.View (the predictor's mutation stamp at pin time).
func (v *bufView) Epoch() uint64 { return v.epoch }

// Release implements core.View. Idempotent.
func (v *bufView) Release() { v.released.Store(true) }

// Analyze reports the structure of the underlying tree.
func (p *Predictor) Analyze() (*core.Report, error) {
	p.mu.RLock()
	if p.tree != nil {
		t := p.tree
		p.mu.RUnlock()
		return t.Analyze()
	}
	defer p.mu.RUnlock()
	return &core.Report{Height: 1, LogicalRecords: len(p.buf)}, nil
}
