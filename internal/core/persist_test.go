package core

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.db")
	fs, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(true)
	tr, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	m := newModel()
	for i := 0; i < 1000; i++ {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		m.insert(r, id)
	}
	wantLen := tr.Len()
	wantHeight := tr.Height()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	tr2, err := Open(cfg, fs2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != wantLen || tr2.Height() != wantHeight {
		t.Fatalf("reopened Len=%d Height=%d, want %d/%d", tr2.Len(), tr2.Height(), wantLen, wantHeight)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr2, query), m.search(query)) {
			t.Fatalf("reopened tree diverged on %v", query)
		}
	}
	// The reopened tree accepts writes.
	if err := tr2.Insert(geom.Point(1, 1), 99999); err != nil {
		t.Fatal(err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsMismatchedConfig(t *testing.T) {
	st := store.NewMemStore()
	cfg := smallConfig(true)
	tr, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Point(1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Spanning = false
	if _, err := Open(other, st); err == nil {
		t.Error("Open accepted mismatched spanning mode")
	}
	other = cfg
	other.Sizes.LeafBytes = 512
	if _, err := Open(other, st); err == nil {
		t.Error("Open accepted mismatched leaf size")
	}
}

func TestOpenWithoutMeta(t *testing.T) {
	st := store.NewMemStore()
	if _, err := Open(smallConfig(false), st); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("Open of empty store = %v, want ErrNoMeta", err)
	}
}

func TestBufferPressureQueryEquivalence(t *testing.T) {
	// A tree restricted to a tiny buffer must answer identically to an
	// unlimited one.
	cfgBig := smallConfig(true)
	cfgSmall := cfgBig
	cfgSmall.PoolBytes = 8 * 1024 // a few dozen 256-byte pages

	big, err := NewInMemory(cfgBig)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewInMemory(cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 2000; i++ {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := big.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		if err := small.Insert(r, id); err != nil {
			t.Fatal(err)
		}
	}
	if small.PoolStats().Evictions == 0 {
		t.Fatal("small pool never evicted; pressure test is vacuous")
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, big, query), searchIDs(t, small, query)) {
			t.Fatalf("buffer pressure changed results on %v", query)
		}
	}
	if err := small.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRequiresFreshStore(t *testing.T) {
	st := store.NewMemStore()
	if _, err := New(smallConfig(false), st); err != nil {
		t.Fatal(err)
	}
	if _, err := New(smallConfig(false), st); err == nil {
		t.Error("New accepted a used store")
	}
}

func TestSkeletonPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skel.db")
	fs, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := skeletonConfig(true)
	tr, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 1000, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	m := newModel()
	for i := 0; i < 1500; i++ {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		m.insert(r, id)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(cfg, fs2)
	if err != nil {
		t.Fatal(err)
	}
	// Skeleton regions survive persistence: the invariant checker
	// verifies region validity and non-overlap on the reopened tree.
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr2, query), m.search(query)) {
			t.Fatal("reopened skeleton diverged")
		}
	}
	// Inserts continue to honor the skeleton structure (region splits).
	for i := 1500; i < 2500; i++ {
		r := randSegment(rng)
		if err := tr2.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
		m.insert(r, node.RecordID(i+1))
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr2, query), m.search(query)) {
			t.Fatal("post-reopen inserts diverged")
		}
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
}
