package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"segidx/internal/buffer"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// Tree metadata is kept on a dedicated page — always the first page
// allocated in the store — so an index over a durable store can be
// reopened. Layout (little endian):
//
//	0  u32 magic "SGTR"
//	4  u16 version
//	6  u16 dims
//	8  u64 root page ID
//	16 u32 height
//	20 u32 reserved
//	24 u64 logical record count
//	32 u32 leaf page bytes
//	36 u16 growth factor
//	38 u8  spanning flag
//	39 u8  cut-portion gauge present (images written before the gauge
//	       existed have 0 here; see Open for the conservative fallback)
//	40 u64 cut-portion gauge (stored portions in excess of records)
//	48 u64 forest flush epoch (0 for standalone trees; see SetEpoch)
const (
	metaMagic     = 0x53475452
	metaVersion   = 1
	metaPageBytes = 64
)

// metaPageID is the page every tree writes its metadata to: the first
// allocation of a fresh store.
var metaPageID = page.ID(1)

// ErrNoMeta is returned by Open when the store holds no tree metadata.
var ErrNoMeta = errors.New("core: store has no tree metadata (was Flush called before close?)")

// writeMeta serializes the tree metadata to the metadata page. The caller
// must hold the write lock on t.mu.
func (t *Tree) writeMeta() error {
	buf := make([]byte, metaPageBytes)
	binary.LittleEndian.PutUint32(buf[0:4], metaMagic)
	binary.LittleEndian.PutUint16(buf[4:6], metaVersion)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(t.cfg.Dims))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(t.root))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(t.size))
	binary.LittleEndian.PutUint32(buf[32:36], uint32(t.cfg.Sizes.LeafBytes))
	binary.LittleEndian.PutUint16(buf[36:38], uint16(t.cfg.Sizes.Growth))
	if t.cfg.Spanning {
		buf[38] = 1
	}
	buf[39] = 1
	binary.LittleEndian.PutUint64(buf[40:48], uint64(t.cutPortions))
	binary.LittleEndian.PutUint64(buf[48:56], t.epoch)
	return t.store.Write(metaPageID, buf)
}

// Meta is the durable identity of a persisted tree, readable without
// opening it.
type Meta struct {
	Dims      int
	LeafBytes int
	Growth    int
	Spanning  bool
	// Epoch is the forest flush epoch the tree was committed under (0 for
	// standalone trees). A forest manifest must never lag its shards; see
	// SetEpoch.
	Epoch uint64
}

// ReadMeta reads a persisted tree's metadata from the store.
func ReadMeta(st store.Store) (Meta, error) {
	buf, err := st.Read(metaPageID)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return Meta{}, ErrNoMeta
		}
		return Meta{}, err
	}
	if len(buf) < metaPageBytes || binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return Meta{}, ErrNoMeta
	}
	return Meta{
		Dims:      int(binary.LittleEndian.Uint16(buf[6:8])),
		LeafBytes: int(binary.LittleEndian.Uint32(buf[32:36])),
		Growth:    int(binary.LittleEndian.Uint16(buf[36:38])),
		Spanning:  buf[38] == 1,
		Epoch:     binary.LittleEndian.Uint64(buf[48:56]),
	}, nil
}

// Open restores a tree previously persisted to the store with Flush. The
// configuration must match the one the tree was created with (dimensions,
// page sizes, and spanning mode are verified against the metadata).
func Open(cfg Config, st store.Store) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buf, err := st.Read(metaPageID)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, ErrNoMeta
		}
		return nil, err
	}
	if len(buf) < metaPageBytes || binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return nil, ErrNoMeta
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != metaVersion {
		return nil, fmt.Errorf("core: metadata version %d not supported", v)
	}
	if d := int(binary.LittleEndian.Uint16(buf[6:8])); d != cfg.Dims {
		return nil, fmt.Errorf("core: store has %d-dimensional index, config says %d", d, cfg.Dims)
	}
	if lb := int(binary.LittleEndian.Uint32(buf[32:36])); lb != cfg.Sizes.LeafBytes {
		return nil, fmt.Errorf("core: store uses %d-byte leaves, config says %d", lb, cfg.Sizes.LeafBytes)
	}
	if g := int(binary.LittleEndian.Uint16(buf[36:38])); g != cfg.Sizes.Growth {
		return nil, fmt.Errorf("core: store uses growth %d, config says %d", g, cfg.Sizes.Growth)
	}
	if sp := buf[38] == 1; sp != cfg.Spanning {
		return nil, fmt.Errorf("core: store spanning=%v, config says %v", sp, cfg.Spanning)
	}
	t := &Tree{
		cfg:       cfg,
		codec:     node.Codec{Dims: cfg.Dims},
		store:     st,
		modCounts: make(map[page.ID]uint64),
		root:      page.ID(binary.LittleEndian.Uint64(buf[8:16])),
		height:    int(binary.LittleEndian.Uint32(buf[16:20])),
		size:      int(binary.LittleEndian.Uint64(buf[24:32])),
		epoch:     binary.LittleEndian.Uint64(buf[48:56]),
	}
	if buf[39] == 1 {
		t.cutPortions = int(binary.LittleEndian.Uint64(buf[40:48]))
	} else if cfg.Spanning {
		// Image predates the gauge: the true excess is unknown, so pin
		// it high enough that deletes can never drive it to zero and
		// duplicate elimination stays on for the tree's lifetime.
		t.cutPortions = int(^uint(0) >> 2)
	}
	// The image does not carry the ID set; treat every future insert as a
	// potential ID reuse.
	t.ids.markFull()
	t.pool = buffer.NewSharded(st, t.codec, cfg.PoolBytes, cfg.PoolShards)
	if t.root == page.Nil || t.height < 1 {
		return nil, errors.New("core: corrupt tree metadata")
	}
	// Sanity-check the root decodes at the expected level.
	n, err := t.pool.Get(t.root)
	if err != nil {
		return nil, fmt.Errorf("core: open root: %w", err)
	}
	level := n.Level
	if err := t.pool.Unpin(t.root, false); err != nil {
		return nil, err
	}
	if level != t.height-1 {
		return nil, fmt.Errorf("core: root level %d does not match height %d", level, t.height)
	}
	t.publishState(1)
	return t, nil
}
