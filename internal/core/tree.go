package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"segidx/internal/buffer"
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// Common errors returned by Tree operations.
var (
	ErrDims     = errors.New("core: rectangle dimensionality does not match index")
	ErrBadRect  = errors.New("core: invalid rectangle")
	ErrNotEmpty = errors.New("core: operation requires an empty index")
)

// Tree is a paged segment index: an R-Tree when Spanning is disabled, an
// SR-Tree when enabled, and the skeleton variants of either when built with
// BuildSkeleton.
//
// A Tree is safe for concurrent use: mutations (Insert, Delete, Flush,
// Close) serialize behind an exclusive lock, while queries (Search*,
// Count, Stab via SearchContaining, VisitPortions, Len, Height) take no
// tree-level lock at all — each pins an MVCC snapshot of the committed
// state and traverses immutable page versions, so a committing writer
// never blocks readers (see snapshot.go for the protocol). The remaining
// read-only inspection paths (Analyze, CheckInvariants, Stats) still run
// under the shared lock; they are diagnostics, not the serving path.
type Tree struct {
	cfg   Config
	codec node.Codec
	store store.Store
	pool  *buffer.Pool

	// state is the committed tree version queries read: published
	// atomically at the end of every mutating operation. The plain
	// fields below are the writer's working copy, valid only under mu.
	state atomic.Pointer[treeState]

	// snaps registers the epochs of live snapshots for epoch-based GC;
	// gcMu serializes collectors and gcMin remembers the last epoch
	// swept so idle releases skip redundant sweeps.
	snaps snapRegistry
	gcMu  sync.Mutex
	gcMin atomic.Uint64

	// sidecar is the optionally attached stab accelerator, kept
	// epoch-consistent through the write bracket; see sidecar.go.
	sidecar atomic.Pointer[sidecarRef]

	mu     sync.RWMutex
	root   page.ID
	height int // number of levels; root level == height-1
	size   int // logical records (cut portions counted once)

	// cutPortions counts stored record portions in excess of distinct
	// record IDs: each cut adds len(remnants), each insert reusing a
	// live ID adds one, and each full-record deletion subtracts
	// (portions removed - 1). When zero, no ID has more than one stored
	// portion and the read path skips duplicate elimination entirely —
	// a pure win for the R-Tree baseline, which never cuts. The gauge
	// may over-estimate (reopened or degraded trees) but never
	// under-estimates; CheckInvariants verifies the bound.
	cutPortions int

	// ids tracks the record IDs present so Insert detects ID reuse.
	ids idSet

	// qctxPool recycles per-query read-path state (traversal stack, pin
	// cache, dedup set, result arena); see queryCtx.
	qctxPool sync.Pool

	// epoch is the forest flush epoch the next commit will be stamped
	// with (0 for standalone trees). It rides the metadata page, so it
	// becomes durable atomically with the commit it describes.
	epoch uint64

	// modCounts tracks per-leaf modification frequency for the
	// coalescing policy ("the L least frequently modified nodes").
	modCounts     map[page.ID]uint64
	sinceCoalesce int

	stats Stats
}

// New creates an empty dynamic index over the given store. Pass a fresh
// store; the tree owns its pages.
func New(cfg Config, st store.Store) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:       cfg,
		codec:     node.Codec{Dims: cfg.Dims},
		store:     st,
		modCounts: make(map[page.ID]uint64),
	}
	t.pool = buffer.NewSharded(st, t.codec, cfg.PoolBytes, cfg.PoolShards)
	// The metadata page is always the first allocation of a fresh store.
	meta, err := st.Allocate(metaPageBytes)
	if err != nil {
		return nil, err
	}
	if meta != metaPageID {
		return nil, fmt.Errorf("core: store is not fresh (metadata page allocated as %v)", meta)
	}
	root, err := t.pool.NewNode(0, cfg.Sizes.BytesForLevel(0))
	if err != nil {
		return nil, err
	}
	t.root = root.ID
	t.height = 1
	if err := t.pool.Unpin(root.ID, true); err != nil {
		return nil, err
	}
	t.publishState(1)
	return t, nil
}

// NewInMemory creates an empty dynamic index over a fresh in-memory store.
func NewInMemory(cfg Config) (*Tree, error) {
	return New(cfg, store.NewMemStore())
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Len reports the number of logical records in the index. Records cut into
// spanning and remnant portions count once. Lock-free: reads the published
// state.
func (t *Tree) Len() int { return t.state.Load().size }

// Height reports the number of levels (1 for a single leaf root).
// Lock-free: reads the published state.
func (t *Tree) Height() int { return t.state.Load().height }

// NodeCount reports the number of index nodes (pages, excluding the
// metadata page).
func (t *Tree) NodeCount() int { return t.store.Len() - 1 }

// PoolStats returns buffer pool counters.
func (t *Tree) PoolStats() buffer.Stats { return t.pool.Stats() }

// SetEpoch stamps the tree with a forest flush epoch. The epoch is
// persisted on the metadata page by the next Flush, atomically with that
// commit — a forest bumps its manifest epoch first, then stamps and
// flushes each shard, so a durable shard image can never carry an epoch
// the manifest has not reached.
func (t *Tree) SetEpoch(e uint64) {
	t.mu.Lock()
	t.epoch = e
	t.mu.Unlock()
}

// Epoch reports the tree's current forest flush epoch (0 for standalone
// trees).
func (t *Tree) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Flush writes all dirty nodes and the tree metadata back to the page
// store, then commits if the store is transactional (store.Committer,
// e.g. WALStore). Over a committing store Flush is atomic: a crash at any
// point recovers either the pre-flush tree or the post-flush tree, never
// a hybrid. A tree over a durable store must be flushed before close to
// be reopenable with Open.
func (t *Tree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

// flushLocked writes dirty nodes plus metadata and commits. The caller
// must hold the write lock on t.mu.
func (t *Tree) flushLocked() error {
	if err := t.pool.Flush(); err != nil {
		return err
	}
	if err := t.writeMeta(); err != nil {
		return err
	}
	c, ok := t.store.(store.Committer)
	if !ok {
		return nil
	}
	if err := c.Commit(); err != nil {
		// The durable image is some earlier commit boundary; resident
		// nodes no longer describe it. Drop them so nothing stale is
		// served or written back.
		t.pool.Invalidate()
		return err
	}
	return nil
}

// Close flushes the index and closes the underlying page store. The tree
// is unusable afterwards. The store is closed even when the flush fails;
// all errors are reported.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return errors.Join(t.flushLocked(), t.store.Close())
}

// leafCap returns the record capacity of a leaf node.
func (t *Tree) leafCap() int {
	return t.codec.LeafCapacity(t.cfg.Sizes.BytesForLevel(0))
}

// branchCap returns the branch capacity of a non-leaf node at level.
func (t *Tree) branchCap(level int) int {
	return t.cfg.branchCapAt(level, t.codec)
}

// spanCap returns the spanning-record capacity of a non-leaf node at level.
func (t *Tree) spanCap(level int) int {
	return t.cfg.spanCapAt(level, t.codec)
}

// minLeaf is the minimum record count of a non-root leaf.
func (t *Tree) minLeaf() int {
	m := int(float64(t.leafCap()) * t.cfg.MinFillFrac)
	if m < 1 {
		m = 1
	}
	return m
}

// minBranch is the minimum branch count of a non-root internal node.
func (t *Tree) minBranch(level int) int {
	m := int(float64(t.branchCap(level)) * t.cfg.MinFillFrac)
	if m < 2 {
		m = 2
	}
	return m
}

// overflowing reports whether the node must split. Leaves split when their
// records exceed the page. Non-leaf nodes split only when their branch
// count exceeds the reserved branch capacity: spanning index records share
// the remaining page bytes with branches (Section 2.1.2) and are evicted,
// never split over — see placeSpanning and addBranch.
func (t *Tree) overflowing(n *node.Node) bool {
	if n.IsLeaf() {
		return len(n.Records) > t.leafCap()
	}
	return len(n.Branches) > t.branchCap(n.Level)
}

// pageBytes returns the page size of a node at the given level.
func (t *Tree) pageBytes(level int) int {
	return t.cfg.Sizes.BytesForLevel(level)
}

// fitsBytes reports whether the node's entries fit its page.
func (t *Tree) fitsBytes(n *node.Node) bool {
	return t.codec.UsedBytes(n) <= t.pageBytes(n.Level)
}

// fetch pins and returns the newest version of a node for read-only use,
// charging one logical node access to the given counter. The counter is
// updated atomically because inspection passes run under the read lock
// concurrently. The caller must hold t.mu (or own the tree exclusively, as
// bulk construction does before publishing it); inside a write bracket the
// pin must be released before the same page is fetched for mutation.
func (t *Tree) fetch(id page.ID, accesses *uint64) (*node.Node, error) {
	n, err := t.pool.Get(id)
	if err != nil {
		return nil, fmt.Errorf("core: fetch %v: %w", id, err)
	}
	if accesses != nil {
		atomic.AddUint64(accesses, 1)
	}
	return n, nil
}

// fetchMut pins and returns a node for mutation inside the current write
// bracket: the first fetchMut of a page per operation copy-on-writes it,
// so snapshots pinned before the operation keep reading the pre-image.
// The caller must hold the write lock on t.mu.
func (t *Tree) fetchMut(id page.ID, accesses *uint64) (*node.Node, error) {
	n, err := t.pool.GetMut(id)
	if err != nil {
		return nil, fmt.Errorf("core: fetch %v: %w", id, err)
	}
	if accesses != nil {
		atomic.AddUint64(accesses, 1)
	}
	return n, nil
}

// done unpins a node. The caller must hold t.mu.
//
//seglint:allow nodepanic — an unpin failure is a pin-discipline bug; surface loudly rather than silently corrupting LRU state
func (t *Tree) done(id page.ID, dirty bool) {
	if err := t.pool.Unpin(id, dirty); err != nil {
		panic(err)
	}
}

// rootCover returns the rectangle covering everything in the tree, or the
// empty marker for an empty tree. Caller must hold the lock.
func (t *Tree) rootCover() (geom.Rect, error) {
	n, err := t.fetch(t.root, nil)
	if err != nil {
		return geom.Rect{}, err
	}
	cover := n.Cover(t.cfg.Dims)
	t.done(t.root, false)
	return cover, nil
}

// touchLeaf records one modification of a leaf for the coalescing policy.
// The caller must hold the write lock on t.mu.
func (t *Tree) touchLeaf(id page.ID) {
	t.modCounts[id]++
}

// forgetLeaf removes a freed leaf from the modification statistics. The
// caller must hold the write lock on t.mu.
func (t *Tree) forgetLeaf(id page.ID) {
	delete(t.modCounts, id)
}

func (t *Tree) validateRect(r geom.Rect) error {
	if !r.Valid() {
		return ErrBadRect
	}
	if r.Dims() != t.cfg.Dims {
		return ErrDims
	}
	return nil
}
