package core

import "segidx/internal/node"

// idSet tracks which record IDs are present in the tree so Insert can
// detect ID reuse in O(1). Reused IDs feed the same excess-portion gauge
// as cutting does: Search documents that duplicate IDs are deduplicated,
// so the read path may skip duplicate elimination only while the gauge
// proves no ID has more than one stored portion.
//
// Small IDs live in a bitmap (at most 128 KiB); larger IDs go to an
// overflow map bounded by idSetOverflowCap. Past the bound the set
// degrades to "full": every membership probe answers true, which turns
// duplicate elimination permanently on — an over-approximation, never an
// unsound one. Open marks reopened trees full for the same reason: the
// stored image does not carry the ID set.
type idSet struct {
	bits []uint64
	over map[node.RecordID]struct{}
	full bool
}

const (
	idSetBitmapIDs   = 1 << 20 // IDs below this use the bitmap
	idSetOverflowCap = 1 << 16 // larger-ID population before degrading
)

// add inserts id and reports whether it was already present (or may have
// been, once the set has degraded to full).
func (s *idSet) add(id node.RecordID) bool {
	if s.full {
		return true
	}
	if uint64(id) < idSetBitmapIDs {
		w, mask := uint64(id)/64, uint64(1)<<(uint64(id)%64)
		if int(w) >= len(s.bits) {
			grown := make([]uint64, w+1, 2*(w+1))
			copy(grown, s.bits)
			s.bits = grown
		}
		if s.bits[w]&mask != 0 {
			return true
		}
		s.bits[w] |= mask
		return false
	}
	if _, ok := s.over[id]; ok {
		return true
	}
	if len(s.over) >= idSetOverflowCap {
		s.markFull()
		return true
	}
	if s.over == nil {
		s.over = make(map[node.RecordID]struct{})
	}
	s.over[id] = struct{}{}
	return false
}

// remove deletes id from the set. A full set retains every ID.
func (s *idSet) remove(id node.RecordID) {
	if s.full {
		return
	}
	if uint64(id) < idSetBitmapIDs {
		if w := uint64(id) / 64; int(w) < len(s.bits) {
			s.bits[w] &^= uint64(1) << (uint64(id) % 64)
		}
		return
	}
	delete(s.over, id)
}

// markFull abandons exact tracking: every future probe answers true.
func (s *idSet) markFull() {
	s.full = true
	s.bits = nil
	s.over = nil
}
