package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"segidx/internal/node"
	"segidx/internal/store"
	"segidx/internal/store/faultstore"
)

// The crash matrix replays a fixed insert/delete/flush workload over a
// fault-injection disk, cutting power after the Nth disk mutation, and
// asserts the recovered tree is always one of the states that existed at
// a commit boundary:
//
//	crash at op n <= opsA (during or before the first commit):
//	    recover nothing (ErrNoMeta) or state A
//	crash at opsA < n <= opsB (between the commits):
//	    recover state A or state B
//	crash at n > opsB (during the re-commit issued by Close):
//	    recover state B (the final commit rewrites identical metadata)
//
// where opsA and opsB are the disk op counters right after the first and
// second Flush of a fault-free reference run. The workload is
// deterministic — WALStore buffers every mutation in memory, so disk ops
// happen only inside Commit, and batches are encoded in canonical order —
// which makes the op counter a stable coordinate system across replays.

// crashVariant is one of the paper's four index variants.
type crashVariant struct {
	name     string
	cfg      Config
	skeleton bool
}

func crashVariants() []crashVariant {
	return []crashVariant{
		{"r", smallConfig(false), false},
		{"sr", smallConfig(true), false},
		{"skr", skeletonConfig(false), true},
		{"sksr", skeletonConfig(true), true},
	}
}

const (
	crashPreFlush  = 90 // inserts before the first Flush
	crashDeletes   = 10 // deletes after it, so commit B carries frees
	crashPostFlush = 60 // inserts before the second Flush
)

// driveCrashWorkload replays the fixed workload for a variant over the
// given disk: build (skeleton variants pre-partition the domain), insert,
// Flush, delete+insert, Flush, Close. It reports the disk op counters
// observed right after each Flush and fills mA/mB (when non-nil) with the
// oracle state at those boundaries. In crash runs the returned error is
// the injected power cut; whatever was recorded up to that point is valid.
func driveCrashWorkload(v crashVariant, disk *faultstore.Disk, mA, mB *model) (opsA, opsB int, err error) {
	ws, err := store.OpenWALStoreIn(disk, "idx.db")
	if err != nil {
		return 0, 0, err
	}
	defer ws.Close() // idempotent; rolls back pending state in crash runs
	tr, err := New(v.cfg, ws)
	if err != nil {
		return 0, 0, err
	}
	if v.skeleton {
		est := Estimate{Tuples: crashPreFlush + crashPostFlush, Domain: domain1000()}
		if err := tr.BuildSkeleton(est); err != nil {
			return 0, 0, err
		}
	}
	m := newModel()
	rng := rand.New(rand.NewSource(20260805))
	insert := func(i int) error {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			return err
		}
		m.insert(r, id)
		return nil
	}
	for i := 0; i < crashPreFlush; i++ {
		if err := insert(i); err != nil {
			return 0, 0, err
		}
	}
	if err := tr.Flush(); err != nil {
		return 0, 0, err
	}
	opsA = disk.Ops()
	if mA != nil {
		for id, r := range m.rects {
			mA.insert(r, id)
		}
	}
	for i := 0; i < crashDeletes; i++ {
		id := node.RecordID(3*i + 1)
		if _, err := tr.Delete(id, m.rects[id]); err != nil {
			return opsA, 0, err
		}
		m.delete(id)
	}
	for i := crashPreFlush; i < crashPreFlush+crashPostFlush; i++ {
		if err := insert(i); err != nil {
			return opsA, 0, err
		}
	}
	if err := tr.Flush(); err != nil {
		return opsA, 0, err
	}
	opsB = disk.Ops()
	if mB != nil {
		for id, r := range m.rects {
			mB.insert(r, id)
		}
	}
	return opsA, opsB, tr.Close()
}

// crashPoints picks the disk op numbers to cut power at: every commit
// boundary's neighborhood plus a stride over the full range — every point
// when SEGIDX_CRASH_EXHAUSTIVE is set (the CI durability job), a coarse
// sample under -short.
func crashPoints(opsA, opsB, total int) []int {
	var stride int
	switch {
	case os.Getenv("SEGIDX_CRASH_EXHAUSTIVE") != "":
		stride = 1
	case testing.Short():
		stride = total/8 + 1
	default:
		stride = total/24 + 1
	}
	seen := make(map[int]bool)
	var pts []int
	add := func(n int) {
		if n >= 1 && n <= total && !seen[n] {
			seen[n] = true
			pts = append(pts, n)
		}
	}
	for n := 1; n <= total; n += stride {
		add(n)
	}
	for _, n := range []int{1, 2, opsA - 1, opsA, opsA + 1, opsB - 1, opsB, opsB + 1, total - 1, total} {
		add(n)
	}
	sort.Ints(pts)
	return pts
}

// crashCell is one (tear, surviving-writes policy) combination applied at
// every crash point.
type crashCell struct {
	tear   int
	policy faultstore.CrashPolicy
	seed   uint64
}

func crashCells() []crashCell {
	tears := []int{0, 7, 1 << 20} // drop the op, keep a 7-byte prefix, keep it whole
	policies := []crashCell{
		{policy: faultstore.KeepNone},
		{policy: faultstore.KeepAll},
		{policy: faultstore.KeepSubset, seed: 1},
	}
	if os.Getenv("SEGIDX_CRASH_EXHAUSTIVE") != "" {
		policies = append(policies,
			crashCell{policy: faultstore.KeepSubset, seed: 2},
			crashCell{policy: faultstore.KeepSubset, seed: 3})
	} else if testing.Short() {
		tears = []int{0, 1 << 20}
		policies = policies[:2]
	}
	cells := make([]crashCell, 0, len(tears)*len(policies))
	for _, tear := range tears {
		for _, p := range policies {
			cells = append(cells, crashCell{tear: tear, policy: p.policy, seed: p.seed})
		}
	}
	return cells
}

// treeMatchesModel reports whether the tree answers exactly like the
// oracle on the full domain and a fixed query sample.
func treeMatchesModel(t *testing.T, tr *Tree, m *model) bool {
	t.Helper()
	if tr.Len() != len(m.rects) {
		return false
	}
	if !idsEqual(searchIDs(t, tr, domain1000()), m.search(domain1000())) {
		return false
	}
	qrng := rand.New(rand.NewSource(555))
	for i := 0; i < 8; i++ {
		q := randQuery(qrng)
		if !idsEqual(searchIDs(t, tr, q), m.search(q)) {
			return false
		}
	}
	return true
}

// recoverAndClassify opens the crash image, runs WAL replay and tree
// recovery, checks invariants, and identifies which commit-boundary state
// came back: "empty", "A", or "B". Anything else fails the test.
func recoverAndClassify(t *testing.T, v crashVariant, img *faultstore.Disk, mA, mB *model, desc string) string {
	t.Helper()
	ws, err := store.OpenWALStoreIn(img, "idx.db")
	if err != nil {
		t.Fatalf("%s: recovery open: %v", desc, err)
	}
	defer ws.Close()
	tr, err := Open(v.cfg, ws)
	if errors.Is(err, ErrNoMeta) {
		return "empty"
	}
	if err != nil {
		t.Fatalf("%s: recovery Open: %v", desc, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("%s: recovered tree violates invariants: %v", desc, err)
	}
	switch {
	case treeMatchesModel(t, tr, mA):
		return "A"
	case treeMatchesModel(t, tr, mB):
		return "B"
	}
	t.Fatalf("%s: recovered tree (%d records) matches neither commit boundary (A=%d, B=%d records)",
		desc, tr.Len(), len(mA.rects), len(mB.rects))
	return ""
}

// verifyRecoveredWritable proves a recovered image is a fully working
// store: the tree accepts new records, flushes, and still validates.
func verifyRecoveredWritable(t *testing.T, v crashVariant, img *faultstore.Disk, desc string) {
	t.Helper()
	ws, err := store.OpenWALStoreIn(img, "idx.db")
	if err != nil {
		t.Fatalf("%s: writable reopen: %v", desc, err)
	}
	defer ws.Close()
	tr, err := Open(v.cfg, ws)
	if errors.Is(err, ErrNoMeta) {
		return // nothing committed yet; a fresh tree is covered elsewhere
	}
	if err != nil {
		t.Fatalf("%s: writable reopen Open: %v", desc, err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(1000+i)); err != nil {
			t.Fatalf("%s: insert after recovery: %v", desc, err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("%s: flush after recovery: %v", desc, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants after post-recovery flush: %v", desc, err)
	}
}

func allowedStates(n, opsA, opsB int) []string {
	switch {
	case n <= opsA:
		return []string{"empty", "A"}
	case n <= opsB:
		return []string{"A", "B"}
	default:
		return []string{"B"}
	}
}

// TestCrashMatrix cuts power at sampled byte-level crash points during
// the workload for all four index variants and asserts recovery always
// lands on a commit boundary. Set SEGIDX_CRASH_EXHAUSTIVE=1 to enumerate
// every crash point (the CI durability job does).
func TestCrashMatrix(t *testing.T) {
	for _, v := range crashVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			runCrashMatrix(t, v)
		})
	}
}

// TestFlushCommitFailureKeepsCommitBoundary is the task-4 regression: a
// commit that fails mid-Flush must poison the tree (no stale resident
// nodes served, every later store op rejected) while the durable image
// stays at the previous commit boundary.
func TestFlushCommitFailureKeepsCommitBoundary(t *testing.T) {
	disk := faultstore.NewDisk()
	ws, err := store.OpenWALStoreIn(disk, "idx.db")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(false)
	tr, err := New(cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		r := randSegment(rng)
		if err := tr.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
		m.insert(r, node.RecordID(i+1))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	// Dirty the tree again, then make the next disk write — the WAL batch
	// append of the second commit — fail.
	for i := 40; i < 80; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	disk.FailWrite(1, boom) // the next disk write: the WAL batch append
	if err := tr.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush with failing commit = %v, want the injected error", err)
	}

	// The store is poisoned and the pool was invalidated: nothing stale is
	// served, every later operation reports the broken store.
	if _, err := tr.Search(domain1000()); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Search after failed commit = %v, want ErrBroken", err)
	}
	if err := tr.Flush(); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("second Flush = %v, want sticky ErrBroken", err)
	}
	if err := tr.Close(); !errors.Is(err, store.ErrBroken) {
		t.Fatalf("Close = %v, want ErrBroken from the final flush", err)
	}

	// The durable image is exactly the first commit boundary.
	ws2, err := store.OpenWALStoreIn(disk, "idx.db")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ws2.Close()
	tr2, err := Open(cfg, ws2)
	if err != nil {
		t.Fatalf("reopen Open: %v", err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !treeMatchesModel(t, tr2, m) {
		t.Fatalf("recovered tree (%d records) does not match the first commit boundary (%d records)",
			tr2.Len(), len(m.rects))
	}
}

func runCrashMatrix(t *testing.T, v crashVariant) {
	mA, mB := newModel(), newModel()
	ref := faultstore.NewDisk()
	opsA, opsB, err := driveCrashWorkload(v, ref, mA, mB)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := ref.Ops()
	if !(0 < opsA && opsA < opsB && opsB <= total) {
		t.Fatalf("degenerate reference run: opsA=%d opsB=%d total=%d", opsA, opsB, total)
	}
	if len(mA.rects) == len(mB.rects) {
		t.Fatalf("commit boundaries indistinguishable by size: both %d records", len(mA.rects))
	}
	points := crashPoints(opsA, opsB, total)
	cells := crashCells()
	t.Logf("%s: opsA=%d opsB=%d total=%d -> %d points x %d cells = %d replays",
		v.name, opsA, opsB, total, len(points), len(cells), len(points)*len(cells))

	runs := 0
	for _, n := range points {
		for _, c := range cells {
			desc := fmt.Sprintf("%s crash@%d/%d tear=%d policy=%v seed=%d",
				v.name, n, total, c.tear, c.policy, c.seed)
			disk := faultstore.NewDisk()
			disk.SetCrashPoint(n, c.tear)
			if _, _, err := driveCrashWorkload(v, disk, nil, nil); err == nil {
				t.Fatalf("%s: workload survived its crash point", desc)
			}
			if !disk.Crashed() {
				t.Fatalf("%s: crash point never fired", desc)
			}
			img := disk.CrashImage(c.policy, c.seed)
			state := recoverAndClassify(t, v, img, mA, mB, desc)
			want := allowedStates(n, opsA, opsB)
			ok := false
			for _, w := range want {
				if state == w {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: recovered state %q, want one of %v", desc, state, want)
			}
			runs++
			if runs%7 == 0 {
				verifyRecoveredWritable(t, v, img, desc)
			}
		}
	}
}
