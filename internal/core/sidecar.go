package core

import (
	"errors"
	"time"

	"segidx/internal/accel"
	"segidx/internal/geom"
	"segidx/internal/node"
)

// Sidecar integration: an optional HINT-style stab accelerator
// (internal/accel) the tree keeps epoch-consistent with its own MVCC
// state and consults for containing-style and intersection queries
// through an adaptive cost gate.
//
// Synchronization rides the existing write bracket: Insert stages the
// original rectangle and deleteMatching stages each removed ID, publishOp
// commits the staging under the same new epoch immediately before the
// tree state becomes visible, and abortOp drops it. A reader that pins
// epoch E therefore sees exactly the accelerator contents of commit E —
// records are filtered by birth <= E < death inside the accelerator — no
// matter how many commits race past the pinned snapshot.

// sidecarRef binds an attached accelerator to the epoch it was seeded at.
// Snapshots pinned before the attach (st.epoch < attachEpoch) must not
// consult it: the seed's birth epoch would hide every record from them.
type sidecarRef struct {
	sc          *accel.Accel
	attachEpoch uint64
}

// AttachStabAccel attaches a stab accelerator and seeds it with the
// tree's current contents. At most one accelerator can be attached, and
// only ever before the facade publishes the index, so queries never race
// the attachment itself. Contents the accelerator's one-rectangle-per-ID
// model cannot represent — pre-cut portions of a reopened spanning tree,
// or duplicate record IDs from a bulk load — attach in permanently
// degraded mode: the accelerator stays dormant and every query runs on
// the tree.
//
// With an accelerator attached, queries it answers report each record's
// full original rectangle; the tree's own traversals may report a cut
// record as the narrower union of the portions intersecting the query.
// Record ID sets are always identical.
func (t *Tree) AttachStabAccel(a *accel.Accel) error {
	if a == nil {
		return errors.New("core: nil stab accelerator")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sidecar.Load() != nil {
		return errors.New("core: stab accelerator already attached")
	}

	type agg struct {
		min, max []float64
		portions int
	}
	seed := make(map[node.RecordID]*agg)
	multi := false
	err := t.VisitPortions(func(_ int, e Entry) bool {
		g, ok := seed[e.ID]
		if !ok {
			seed[e.ID] = &agg{
				min:      append([]float64(nil), e.Rect.Min...),
				max:      append([]float64(nil), e.Rect.Max...),
				portions: 1,
			}
			return true
		}
		g.portions++
		multi = true
		for d := range g.min {
			if e.Rect.Min[d] < g.min[d] {
				g.min[d] = e.Rect.Min[d]
			}
			if e.Rect.Max[d] > g.max[d] {
				g.max[d] = e.Rect.Max[d]
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	epoch := t.state.Load().epoch
	if multi {
		a.Degrade()
	} else {
		for id, g := range seed {
			a.StageInsert(geom.Rect{Min: g.min, Max: g.max}, uint64(id))
		}
		a.Commit(epoch, epoch)
	}
	t.sidecar.Store(&sidecarRef{sc: a, attachEpoch: epoch})
	return nil
}

// AccelStats reports the attached accelerator's counters (nil when none
// is attached).
func (t *Tree) AccelStats() []accel.Stats {
	if ref := t.sidecar.Load(); ref != nil {
		return []accel.Stats{ref.sc.Stats()}
	}
	return nil
}

// stageSidecarInsert mirrors one Insert into the sidecar staging buffer.
// Called inside the write bracket, after beginOp.
func (t *Tree) stageSidecarInsert(rect geom.Rect, id node.RecordID) {
	if ref := t.sidecar.Load(); ref != nil {
		ref.sc.StageInsert(rect, uint64(id))
	}
}

// stageSidecarDelete mirrors one whole-record removal into the sidecar
// staging buffer. Called inside the write bracket.
func (t *Tree) stageSidecarDelete(id node.RecordID) {
	if ref := t.sidecar.Load(); ref != nil {
		ref.sc.StageDelete(uint64(id))
	}
}

// sidecarFor returns the accelerator the pinned state may consult, or nil.
//
//seglint:hotpath
func (t *Tree) sidecarFor(st *treeState) *accel.Accel {
	ref := t.sidecar.Load()
	if ref == nil || st.epoch < ref.attachEpoch {
		return nil
	}
	return ref.sc
}

// containingRouted answers a SearchContaining-class query (including
// stabs) through the accelerator when the cost gate elects it, and
// through the tree otherwise. Either side's latency feeds the gate.
//
//seglint:hotpath
func (t *Tree) containingRouted(st *treeState, qc *queryCtx, query geom.Rect, fn func(Entry) bool) error {
	a := t.sidecarFor(st)
	if a == nil {
		return t.containingFunc(st, qc, query, fn)
	}
	if a.RouteContain() {
		start := time.Now()
		qc.accelFn = fn
		a.ContainVisit(st.epoch, query.Min, query.Max, qc.accelEmit)
		qc.accelFn = nil
		a.ObserveContain(true, time.Since(start).Nanoseconds())
		return nil
	}
	start := time.Now()
	err := t.containingFunc(st, qc, query, fn)
	a.ObserveContain(false, time.Since(start).Nanoseconds())
	return err
}

// searchRouted fills qc.entries with the deduplicated intersection result
// through whichever side the cost gate elects.
//
//seglint:hotpath
func (t *Tree) searchRouted(st *treeState, qc *queryCtx, query geom.Rect) error {
	a := t.sidecarFor(st)
	if a == nil {
		return t.collectDedup(st, qc, query)
	}
	if a.RouteRange(query.Min, query.Max) {
		start := time.Now()
		qc.accelFn = qc.collectFn
		a.RangeVisit(st.epoch, query.Min, query.Max, qc.accelEmit)
		qc.accelFn = nil
		a.ObserveRange(true, time.Since(start).Nanoseconds())
		return nil
	}
	start := time.Now()
	err := t.collectDedup(st, qc, query)
	a.ObserveRange(false, time.Since(start).Nanoseconds())
	return err
}

// countRouted counts the intersection result through whichever side the
// cost gate elects.
//
//seglint:hotpath
func (t *Tree) countRouted(st *treeState, qc *queryCtx, query geom.Rect) (int, error) {
	a := t.sidecarFor(st)
	if a == nil {
		return t.countQuery(st, qc, query)
	}
	if a.RouteRange(query.Min, query.Max) {
		start := time.Now()
		qc.accelCount = 0
		a.RangeVisit(st.epoch, query.Min, query.Max, qc.accelCountFn)
		n := qc.accelCount
		a.ObserveRange(true, time.Since(start).Nanoseconds())
		return n, nil
	}
	start := time.Now()
	n, err := t.countQuery(st, qc, query)
	a.ObserveRange(false, time.Since(start).Nanoseconds())
	return n, err
}
