package core

import (
	"sync/atomic"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
)

// Entry is one search result: a stored rectangle (possibly a cut portion of
// the original record) and its record ID.
type Entry struct {
	Rect geom.Rect
	ID   node.RecordID
}

// SearchFunc visits every stored entry intersecting query, including
// spanning index records on non-leaf nodes (paper Section 3.1.3: spanning
// records are wholly contained by their node, so depth-first descent into
// intersecting branches finds all of them). Records cut into several
// portions are reported once per intersecting portion; use Search for
// deduplicated logical results.
//
// fn returning false stops the search early. The visit order is
// unspecified.
func (t *Tree) SearchFunc(query geom.Rect, fn func(Entry) bool) error {
	if err := t.validateRect(query); err != nil {
		return err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	atomic.AddUint64(&t.stats.Searches, 1)
	stack := []page.ID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.fetch(id, &t.stats.SearchNodeAccesses)
		if err != nil {
			return err
		}
		stop := false
		for i := range n.Records {
			if n.Records[i].Rect.Intersects(query) {
				if !fn(Entry{Rect: n.Records[i].Rect.Clone(), ID: n.Records[i].ID}) {
					stop = true
					break
				}
			}
		}
		if !stop && !n.IsLeaf() {
			for i := range n.Branches {
				if n.Branches[i].Rect.Intersects(query) {
					stack = append(stack, n.Branches[i].Child)
				}
			}
		}
		t.done(id, false)
		if stop {
			return nil
		}
	}
	return nil
}

// Search returns the logical records intersecting query, deduplicated by
// record ID (a record cut into spanning and remnant portions is reported
// once, with the portion rectangle that was found first).
func (t *Tree) Search(query geom.Rect) ([]Entry, error) {
	var out []Entry
	seen := make(map[node.RecordID]bool)
	err := t.SearchFunc(query, func(e Entry) bool {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Count returns the number of logical records intersecting query.
func (t *Tree) Count(query geom.Rect) (int, error) {
	seen := make(map[node.RecordID]bool)
	err := t.SearchFunc(query, func(e Entry) bool {
		seen[e.ID] = true
		return true
	})
	return len(seen), err
}

// VisitPortions walks every stored record portion in the index, reporting
// the level it is stored at (0 = leaf; higher levels are spanning index
// records). fn returning false stops the walk. Intended for structural
// inspection — e.g. the rule-lock manager uses it to report which rule
// predicates have been escalated to non-leaf nodes.
func (t *Tree) VisitPortions(fn func(level int, e Entry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	stack := []page.ID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.fetch(id, nil)
		if err != nil {
			return err
		}
		stop := false
		for i := range n.Records {
			if !fn(n.Level, Entry{Rect: n.Records[i].Rect.Clone(), ID: n.Records[i].ID}) {
				stop = true
				break
			}
		}
		if !stop {
			for i := range n.Branches {
				stack = append(stack, n.Branches[i].Child)
			}
		}
		t.done(id, false)
		if stop {
			return nil
		}
	}
	return nil
}

// SearchWithin returns the records entirely contained in query,
// deduplicated by ID. A cut record qualifies when the union of its stored
// portions lies inside query, which — because cutting preserves the
// original extent exactly — equals containment of the original record.
func (t *Tree) SearchWithin(query geom.Rect) ([]Entry, error) {
	// Collect every intersecting portion per ID, then keep IDs whose
	// portions all lie inside the query. A record with any portion
	// outside the query cannot be contained; a portion outside the query
	// either intersects it (observed and rejected below) or lies fully
	// outside, in which case the record extends beyond the query in some
	// dimension and one of its observed portions will touch the query
	// boundary without being contained.
	contained := make(map[node.RecordID]bool)
	first := make(map[node.RecordID]geom.Rect)
	err := t.SearchFunc(query, func(e Entry) bool {
		inside := query.Contains(e.Rect)
		if prev, seen := contained[e.ID]; seen {
			contained[e.ID] = prev && inside
		} else {
			contained[e.ID] = inside
			first[e.ID] = e.Rect
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for id, ok := range contained {
		if ok {
			out = append(out, Entry{Rect: first[id], ID: id})
		}
	}
	return out, nil
}

// SearchContaining returns the records that entirely contain query — the
// generalized stabbing query ("all intervals that contain a given point or
// region", Section 2.1.1). Cut records are reassembled from their portions
// before the containment test.
func (t *Tree) SearchContaining(query geom.Rect) ([]Entry, error) {
	// Union up the portions of each candidate, then test containment of
	// the query by the union. Portions not intersecting the query can
	// still contribute extent, but any record containing the query has
	// every point of the query covered, and the portions tile the
	// original, so the union of *intersecting* portions already contains
	// the query if and only if the record does.
	covers := make(map[node.RecordID]geom.Rect)
	err := t.SearchFunc(query, func(e Entry) bool {
		if c, ok := covers[e.ID]; ok {
			covers[e.ID] = c.Union(e.Rect)
		} else {
			covers[e.ID] = e.Rect.Clone()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for id, c := range covers {
		if c.Contains(query) {
			out = append(out, Entry{Rect: c, ID: id})
		}
	}
	return out, nil
}
