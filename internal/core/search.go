package core

import (
	"sync/atomic"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// Entry is one search result: a stored rectangle (possibly a cut portion of
// the original record) and its record ID.
type Entry struct {
	Rect geom.Rect
	ID   node.RecordID
}

// SearchFunc visits every stored entry intersecting query, including
// spanning index records on non-leaf nodes (paper Section 3.1.3: spanning
// records are wholly contained by their node, so depth-first descent into
// intersecting branches finds all of them). Records cut into several
// portions are reported once per intersecting portion; use Search for
// deduplicated logical results.
//
// The Entry passed to fn is a view: its rectangle aliases index-owned node
// memory and is valid only for the duration of the callback. A callback
// that retains the rectangle past its return must Clone it. fn returning
// false stops the search early. The visit order is unspecified.
//
// The query runs against the committed state at call time with no
// tree-level lock: concurrent writers never block it, and it observes
// either all of a concurrent operation or none of it.
//
//seglint:hotpath
func (t *Tree) SearchFunc(query geom.Rect, fn func(Entry) bool) error {
	if err := t.validateRect(query); err != nil {
		return err
	}
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	st := t.acquireRead(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.searchFunc(st, qc, query, fn)
}

// searchFunc is the traversal behind SearchFunc, running against one
// pinned snapshot state.
//
//seglint:hotpath
func (t *Tree) searchFunc(st *treeState, qc *queryCtx, query geom.Rect, fn func(Entry) bool) error {
	qc.stack = append(qc.stack, st.root)
	for len(qc.stack) > 0 {
		id := qc.stack[len(qc.stack)-1]
		qc.stack = qc.stack[:len(qc.stack)-1]
		n, err := t.fetchCached(qc, id, &t.stats.SearchNodeAccesses)
		if err != nil {
			return err
		}
		for i := range n.Records {
			if n.Records[i].Rect.Intersects(query) {
				if !fn(Entry{Rect: n.Records[i].Rect, ID: n.Records[i].ID}) {
					return nil
				}
			}
		}
		if !n.IsLeaf() {
			for i := range n.Branches {
				if n.Branches[i].Rect.Intersects(query) {
					qc.stack = append(qc.stack, n.Branches[i].Child)
				}
			}
		}
	}
	return nil
}

// Search returns the logical records intersecting query, deduplicated by
// record ID (a record cut into spanning and remnant portions is reported
// once, with the portion rectangle that was found first). The result is
// owned by the caller: all rectangles are copied into one backing array
// shared by the returned slice, so a non-empty result costs exactly two
// allocations. No tree-level lock is acquired.
//
//seglint:hotpath
func (t *Tree) Search(query geom.Rect) ([]Entry, error) {
	if err := t.validateRect(query); err != nil {
		return nil, err
	}
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	st := t.acquireRead(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	if err := t.searchRouted(st, qc, query); err != nil {
		return nil, err
	}
	return materialize(qc.entries, t.cfg.Dims), nil
}

// collectDedup runs the traversal for Search, appending one view entry per
// logical record intersecting query to qc.entries. Views stay valid until
// the context is released because the snapshot registration keeps every
// resolved version reachable. When the snapshot holds no cut portions no
// record can appear twice, so the dedup set is skipped entirely.
//
//seglint:hotpath
func (t *Tree) collectDedup(st *treeState, qc *queryCtx, query geom.Rect) error {
	dedup := st.cutPortions > 0
	qc.stack = append(qc.stack, st.root)
	for len(qc.stack) > 0 {
		id := qc.stack[len(qc.stack)-1]
		qc.stack = qc.stack[:len(qc.stack)-1]
		n, err := t.fetchCached(qc, id, &t.stats.SearchNodeAccesses)
		if err != nil {
			return err
		}
		for i := range n.Records {
			if n.Records[i].Rect.Intersects(query) {
				if dedup && qc.markSeen(n.Records[i].ID) {
					continue
				}
				qc.entries = append(qc.entries, Entry{Rect: n.Records[i].Rect, ID: n.Records[i].ID})
			}
		}
		if !n.IsLeaf() {
			for i := range n.Branches {
				if n.Branches[i].Rect.Intersects(query) {
					qc.stack = append(qc.stack, n.Branches[i].Child)
				}
			}
		}
	}
	return nil
}

// materialize copies view entries into caller-owned storage: one Entry
// slice backed by one flat float array.
func materialize(views []Entry, dims int) []Entry {
	if len(views) == 0 {
		return nil
	}
	out := make([]Entry, len(views))
	floats := make([]float64, len(views)*2*dims)
	off := 0
	for i := range views {
		out[i] = Entry{Rect: views[i].Rect.CopyInto(floats, off), ID: views[i].ID}
		off += 2 * dims
	}
	return out
}

// Count returns the number of logical records intersecting query. No
// tree-level lock is acquired.
//
//seglint:hotpath
func (t *Tree) Count(query geom.Rect) (int, error) {
	if err := t.validateRect(query); err != nil {
		return 0, err
	}
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	st := t.acquireRead(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.countRouted(st, qc, query)
}

// countQuery is the traversal behind Count, running against one pinned
// snapshot state.
//
//seglint:hotpath
func (t *Tree) countQuery(st *treeState, qc *queryCtx, query geom.Rect) (int, error) {
	dedup := st.cutPortions > 0
	count := 0
	qc.stack = append(qc.stack, st.root)
	for len(qc.stack) > 0 {
		id := qc.stack[len(qc.stack)-1]
		qc.stack = qc.stack[:len(qc.stack)-1]
		n, err := t.fetchCached(qc, id, &t.stats.SearchNodeAccesses)
		if err != nil {
			return 0, err
		}
		for i := range n.Records {
			if n.Records[i].Rect.Intersects(query) {
				if dedup && qc.markSeen(n.Records[i].ID) {
					continue
				}
				count++
			}
		}
		if !n.IsLeaf() {
			for i := range n.Branches {
				if n.Branches[i].Rect.Intersects(query) {
					qc.stack = append(qc.stack, n.Branches[i].Child)
				}
			}
		}
	}
	return count, nil
}

// VisitPortions walks every stored record portion in the index, reporting
// the level it is stored at (0 = leaf; higher levels are spanning index
// records). The Entry rectangle passed to fn is a view into node memory,
// valid only during the callback. fn returning false stops the walk.
// Intended for structural inspection — e.g. the rule-lock manager uses it
// to report which rule predicates have been escalated to non-leaf nodes.
//
// The walk runs against a snapshot: it observes one committed state even
// while writers commit. Nodes are resolved one at a time without the
// context cache — a full-tree visit must not hold every node reachable
// at once.
func (t *Tree) VisitPortions(fn func(level int, e Entry) bool) error {
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	st := t.acquireRead(qc)
	qc.stack = append(qc.stack, st.root)
	for len(qc.stack) > 0 {
		id := qc.stack[len(qc.stack)-1]
		qc.stack = qc.stack[:len(qc.stack)-1]
		n, err := t.pool.GetVersion(id, qc.epoch)
		if err != nil {
			return err
		}
		for i := range n.Records {
			if !fn(n.Level, Entry{Rect: n.Records[i].Rect, ID: n.Records[i].ID}) {
				return nil
			}
		}
		for i := range n.Branches {
			qc.stack = append(qc.stack, n.Branches[i].Child)
		}
	}
	return nil
}

// SearchWithin returns the records entirely contained in query,
// deduplicated by ID. A cut record qualifies when the union of its stored
// portions lies inside query, which — because cutting preserves the
// original extent exactly — equals containment of the original record.
func (t *Tree) SearchWithin(query geom.Rect) ([]Entry, error) {
	// Collect every intersecting portion per ID, then keep IDs whose
	// portions all lie inside the query. A record with any portion
	// outside the query cannot be contained; a portion outside the query
	// either intersects it (observed and rejected below) or lies fully
	// outside, in which case the record extends beyond the query in some
	// dimension and one of its observed portions will touch the query
	// boundary without being contained.
	contained := make(map[node.RecordID]bool)
	first := make(map[node.RecordID]geom.Rect)
	err := t.SearchFunc(query, func(e Entry) bool {
		inside := query.Contains(e.Rect)
		if prev, seen := contained[e.ID]; seen {
			contained[e.ID] = prev && inside
		} else {
			contained[e.ID] = inside
			first[e.ID] = e.Rect.Clone()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for id, ok := range contained {
		if ok {
			out = append(out, Entry{Rect: first[id], ID: id})
		}
	}
	return out, nil
}

// SearchContainingFunc visits every logical record that entirely contains
// query — the generalized stabbing query ("all intervals that contain a
// given point or region", Section 2.1.1). Cut records are reassembled by
// unioning their stored portions before the containment test, so each
// qualifying record is reported exactly once, after the traversal
// completes. The Entry rectangle passed to fn is the union of the
// record's portions that intersect query; it is a view into query-scoped
// memory, valid only during the callback. fn returning false stops the
// reporting early. No tree-level lock is acquired.
//
//seglint:hotpath
func (t *Tree) SearchContainingFunc(query geom.Rect, fn func(Entry) bool) error {
	if err := t.validateRect(query); err != nil {
		return err
	}
	qc := t.getQctx()
	defer t.releaseQctx(qc)
	st := t.acquireRead(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.containingRouted(st, qc, query, fn)
}

// containingFunc is the traversal behind SearchContainingFunc, running
// against one pinned snapshot state.
//
//seglint:hotpath
func (t *Tree) containingFunc(st *treeState, qc *queryCtx, query geom.Rect, fn func(Entry) bool) error {
	k := t.cfg.Dims
	qc.stack = append(qc.stack, st.root)
	for len(qc.stack) > 0 {
		id := qc.stack[len(qc.stack)-1]
		qc.stack = qc.stack[:len(qc.stack)-1]
		n, err := t.fetchCached(qc, id, &t.stats.SearchNodeAccesses)
		if err != nil {
			return err
		}
		for i := range n.Records {
			r := n.Records[i].Rect
			if !r.Intersects(query) {
				continue
			}
			rid := n.Records[i].ID
			if off, ok := qc.coverOff[rid]; ok {
				// Union in place inside the accumulation buffer.
				for d := 0; d < k; d++ {
					if r.Min[d] < qc.coverBuf[off+d] {
						qc.coverBuf[off+d] = r.Min[d]
					}
					if r.Max[d] > qc.coverBuf[off+k+d] {
						qc.coverBuf[off+k+d] = r.Max[d]
					}
				}
			} else {
				qc.coverOff[rid] = len(qc.coverBuf)
				qc.coverBuf = append(qc.coverBuf, r.Min...)
				qc.coverBuf = append(qc.coverBuf, r.Max...)
				qc.coverIDs = append(qc.coverIDs, rid)
			}
		}
		if !n.IsLeaf() {
			for i := range n.Branches {
				if n.Branches[i].Rect.Intersects(query) {
					qc.stack = append(qc.stack, n.Branches[i].Child)
				}
			}
		}
	}
	// Views are built only after accumulation: appends above may move
	// coverBuf, but the recorded offsets stay valid.
	for _, rid := range qc.coverIDs {
		off := qc.coverOff[rid]
		c := geom.Rect{Min: qc.coverBuf[off : off+k : off+k], Max: qc.coverBuf[off+k : off+2*k : off+2*k]}
		if c.Contains(query) {
			if !fn(Entry{Rect: c, ID: rid}) {
				return nil
			}
		}
	}
	return nil
}

// SearchContaining returns the records that entirely contain query, one
// Entry per record with the union of its stored portions as the
// rectangle. The result is owned by the caller.
func (t *Tree) SearchContaining(query geom.Rect) ([]Entry, error) {
	return collectContaining(t.cfg.Dims, t.SearchContainingFunc, query)
}
