package core

import (
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
)

// collectSpanning walks the tree and returns all spanning index records.
func collectSpanning(t *testing.T, tr *Tree) []node.Record {
	t.Helper()
	var out []node.Record
	var walk func(id page.ID)
	walk = func(id page.ID) {
		n, err := tr.fetch(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !n.IsLeaf() {
			out = append(out, n.Records...)
		}
		children := make([]page.ID, len(n.Branches))
		for i := range n.Branches {
			children[i] = n.Branches[i].Child
		}
		tr.done(id, false)
		for _, c := range children {
			walk(c)
		}
	}
	walk(tr.root)
	return out
}

// buildClusteredTree inserts three well-separated clusters of points so the
// tree has branches with predictable, disjoint regions. The middle cluster
// around (500, 500) sits strictly inside the root cover, so segments
// spanning it need no cutting.
func buildClusteredTree(t *testing.T, spanning bool) *Tree {
	t.Helper()
	tr, err := NewInMemory(smallConfig(spanning))
	if err != nil {
		t.Fatal(err)
	}
	id := node.RecordID(1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		var x, y float64
		switch i % 3 {
		case 0:
			x, y = 90+rng.Float64()*20, 90+rng.Float64()*20
		case 1:
			x, y = 490+rng.Float64()*20, 490+rng.Float64()*20
		default:
			x, y = 890+rng.Float64()*20, 890+rng.Float64()*20
		}
		if err := tr.Insert(geom.Point(x, y), id); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if tr.Height() < 2 {
		t.Fatal("fixture tree did not grow past one level")
	}
	return tr
}

// TestSpanningPlacementFigure2 reproduces the Figure 2 situation: a segment
// spanning one child's region but not the whole tree is stored as a
// spanning index record on the parent, linked to the spanned branch.
func TestSpanningPlacementFigure2(t *testing.T) {
	tr := buildClusteredTree(t, true)
	// A horizontal segment crossing all of the middle cluster's x-range,
	// fully inside the root cover (no cutting needed), but nowhere near
	// spanning the full domain.
	seg := geom.Rect2(400, 500, 600, 500)
	segID := node.RecordID(10001)
	if err := tr.Insert(seg, segID); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	spans := collectSpanning(t, tr)
	found := false
	for _, rec := range spans {
		if rec.ID == segID {
			found = true
			if rec.Span == page.Nil {
				t.Error("spanning record without branch link")
			}
		}
	}
	if !found {
		t.Fatalf("segment spanning a child region was not stored as a spanning record; spans=%d", len(spans))
	}
	// It must still be found by searches.
	got := searchIDs(t, tr, geom.Rect2(495, 495, 520, 505))
	hasSeg := false
	for _, id := range got {
		if id == segID {
			hasSeg = true
		}
	}
	if !hasSeg {
		t.Error("spanning record not returned by search")
	}
}

// findSubRootCutSegment inspects the tree and constructs a segment that
// (a) spans no branch of the root, (b) routes to a non-leaf child C by
// least enlargement, (c) spans one of C's branches, and (d) extends beyond
// C's region — exactly the Figure 3 situation, which forces a cut.
// (Records spanning a branch of the root itself are stored on the root
// uncut, since the root has no parent region constraining them.)
func findSubRootCutSegment(t *testing.T, tr *Tree) geom.Rect {
	t.Helper()
	root, err := tr.fetch(tr.root, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.done(tr.root, false)
	rootCover := root.Cover(2)
	for ci, cb := range root.Branches {
		child, err := tr.fetch(cb.Child, nil)
		if err != nil {
			t.Fatal(err)
		}
		if child.IsLeaf() {
			tr.done(cb.Child, false)
			continue
		}
		for _, b := range child.Branches {
			if b.Rect.Length(0) <= 0 || b.Rect.Max[0] >= cb.Rect.Max[0] {
				continue
			}
			seg := geom.Rect2(cb.Rect.Min[0]-60, b.Rect.Center(1), b.Rect.Max[0], b.Rect.Center(1))
			if spannedBranch(root, seg, rootCover) != -1 {
				continue // would be stored on the root without a cut
			}
			if chooseBranch(root, seg) != ci {
				continue // would descend elsewhere
			}
			if !spansQualify(seg, b.Rect) {
				continue
			}
			tr.done(cb.Child, false)
			return seg
		}
		tr.done(cb.Child, false)
	}
	t.Fatal("fixture tree offers no sub-root cut opportunity")
	return geom.Rect{}
}

// TestCuttingFigure3 reproduces Figure 3: a segment that spans a node but
// extends beyond the node's parent is cut into a spanning portion and
// remnant portions, all sharing the record ID, and together covering the
// original segment.
func TestCuttingFigure3(t *testing.T) {
	tr := buildClusteredTree(t, true)
	seg := findSubRootCutSegment(t, tr)
	segID := node.RecordID(20001)
	if err := tr.Insert(seg, segID); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Cuts == 0 || st.Remnants == 0 {
		t.Fatalf("expected a cut, stats = %+v", st)
	}
	// All portions share the ID; their union must cover the original
	// segment and each portion must be inside it.
	var portions []geom.Rect
	err := tr.SearchFunc(geom.Rect2(0, 0, 1000, 1000), func(e Entry) bool {
		if e.ID == segID {
			portions = append(portions, e.Rect)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(portions) < 2 {
		t.Fatalf("expected >= 2 portions after cutting, got %d", len(portions))
	}
	cover := geom.EmptyRect(2)
	for _, p := range portions {
		if !seg.Contains(p) {
			t.Errorf("portion %v escapes original %v", p, seg)
		}
		cover.ExpandInPlace(p)
	}
	if !cover.Equal(seg) {
		t.Errorf("portions cover %v, want %v", cover, seg)
	}
	// Search deduplicates portions into one logical result.
	got := searchIDs(t, tr, seg)
	count := 0
	for _, id := range got {
		if id == segID {
			count++
		}
	}
	if count != 1 {
		t.Errorf("deduplicated search returned the record %d times", count)
	}
}

// TestDemotion verifies that when a branch region expands past a formerly
// spanning record, the record is demoted (or relinked) rather than left
// violating the span property — the insertion-algorithm enhancement of
// Section 3.1.1.
func TestDemotion(t *testing.T) {
	tr := buildClusteredTree(t, true)
	seg := geom.Rect2(400, 500, 600, 500)
	if err := tr.Insert(seg, 30001); err != nil {
		t.Fatal(err)
	}
	// Now grow the middle cluster far beyond the segment's x-range so the
	// spanned branch region expands past it; every insert must leave the
	// spanning invariant intact (revalidation demotes or relinks as
	// needed).
	rng := rand.New(rand.NewSource(6))
	id := node.RecordID(40000)
	for i := 0; i < 200; i++ {
		x := 200 + rng.Float64()*600 // well beyond [400,600]
		y := 490 + rng.Float64()*30
		if err := tr.Insert(geom.Point(x, y), id); err != nil {
			t.Fatal(err)
		}
		id++
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after expanding insert %d: %v", i, err)
		}
	}
	// The segment must still be findable.
	got := searchIDs(t, tr, geom.Rect2(500, 499, 510, 501))
	found := false
	for _, g := range got {
		if g == 30001 {
			found = true
		}
	}
	if !found {
		t.Error("segment lost after demotions")
	}
}

// TestPromotionOnSplit verifies Section 3.1.2: after splits, records that
// span one of the resulting nodes move to the parent as spanning records.
func TestPromotionOnSplit(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	// Insert long horizontal segments at distinct y values: as leaves
	// split, segments spanning the shrunken leaves must be promoted.
	for i := 0; i < 60; i++ {
		y := float64(i * 10)
		if err := tr.Insert(geom.Rect2(0, y, 1000, y), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Promotions == 0 {
		t.Fatalf("no promotions on long-segment workload: %+v", st)
	}
	if len(collectSpanning(t, tr)) == 0 {
		t.Fatal("no spanning records stored")
	}
	// All records remain findable.
	all := searchIDs(t, tr, geom.Rect2(0, 0, 1000, 1000))
	if len(all) != 60 {
		t.Fatalf("found %d records, want 60", len(all))
	}
}

// TestSpanningCapacityRespected floods one subtree with spanning records
// and checks the capacity invariant holds throughout.
func TestSpanningCapacityRespected(t *testing.T) {
	tr := buildClusteredTree(t, true)
	rng := rand.New(rand.NewSource(8))
	id := node.RecordID(50000)
	for i := 0; i < 300; i++ {
		// Segments spanning cluster A's x-range at cluster-A y values.
		y := 90 + rng.Float64()*20
		if err := tr.Insert(geom.Rect2(80, y, 120, y), id); err != nil {
			t.Fatal(err)
		}
		id++
		if i%50 == 49 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d spanning inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLeafPromotionAblation checks that disabling leaf promotion still
// yields a correct index (used by ablation A5).
func TestLeafPromotionAblation(t *testing.T) {
	cfg := smallConfig(true)
	cfg.LeafPromotion = false
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1500; i++ {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		m.insert(r, id)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatal("no-leaf-promotion tree diverged from model")
		}
	}
}

// TestRootPlacementUncut: a record spanning a branch of the root is stored
// on the root without cutting, even when it extends beyond the current
// root cover — the root has no parent region to stay inside.
func TestRootPlacementUncut(t *testing.T) {
	tr := buildClusteredTree(t, true)
	seg := geom.Rect2(-500, 500, 1500, 500) // far beyond the root cover
	if err := tr.Insert(seg, 4242); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Cuts; got != 0 {
		t.Fatalf("root placement cut the record (%d cuts)", got)
	}
	var portions int
	var stored geom.Rect
	err := tr.SearchFunc(geom.Rect2(-1000, 0, 2000, 1000), func(e Entry) bool {
		if e.ID == 4242 {
			portions++
			stored = e.Rect
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if portions != 1 {
		t.Fatalf("record stored in %d portions, want 1", portions)
	}
	if !stored.Equal(seg) {
		t.Fatalf("stored rect %v, want %v", stored, seg)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
