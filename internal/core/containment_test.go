package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// containmentModel extends the brute-force model with the two containment
// query variants.
func modelWithin(m *model, q geom.Rect) []node.RecordID {
	var out []node.RecordID
	for id, r := range m.rects {
		if q.Contains(r) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func modelContaining(m *model, q geom.Rect) []node.RecordID {
	var out []node.RecordID
	for id, r := range m.rects {
		if r.Contains(q) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func entryIDs(entries []Entry) []node.RecordID {
	out := make([]node.RecordID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestContainmentQueriesMatchModel(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			rng := rand.New(rand.NewSource(301))
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()
			for i := 0; i < 2500; i++ {
				var r geom.Rect
				if i%2 == 0 {
					r = randSegment(rng)
				} else {
					r = randBox(rng)
				}
				id := node.RecordID(i + 1)
				if err := tr.Insert(r, id); err != nil {
					t.Fatal(err)
				}
				m.insert(r, id)
			}
			for q := 0; q < 200; q++ {
				query := randQuery(rng)
				within, err := tr.SearchWithin(query)
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(entryIDs(within), modelWithin(m, query)) {
					t.Fatalf("SearchWithin diverged on %v", query)
				}
				containing, err := tr.SearchContaining(query)
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(entryIDs(containing), modelContaining(m, query)) {
					t.Fatalf("SearchContaining diverged on %v:\n got %v\nwant %v",
						query, entryIDs(containing), modelContaining(m, query))
				}
			}
			// Point stabbing via SearchContaining.
			for q := 0; q < 100; q++ {
				p := geom.Point(rng.Float64()*1000, rng.Float64()*1000)
				containing, err := tr.SearchContaining(p)
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(entryIDs(containing), modelContaining(m, p)) {
					t.Fatalf("point stab diverged on %v", p)
				}
			}
		})
	}
}

// TestContainmentWithCutRecords targets the subtle case: records cut into
// spanning + remnant portions must be judged by their reassembled extent.
func TestContainmentWithCutRecords(t *testing.T) {
	tr := buildClusteredTree(t, true)
	// A segment cut below the root (see TestCuttingFigure3).
	seg := findSubRootCutSegment(t, tr)
	if err := tr.Insert(seg, 999); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Cuts == 0 {
		t.Fatal("fixture did not cut")
	}
	y := seg.Min[1]
	// A query covering only part of the segment: the record does NOT lie
	// within the query even though one portion might.
	partial := geom.Rect2(seg.Center(0), y-1, seg.Max[0]+1, y+1)
	within, err := tr.SearchWithin(partial)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range within {
		if e.ID == 999 {
			t.Fatal("cut record reported as within a query smaller than itself")
		}
	}
	// A query covering the whole segment reports it once.
	within, err = tr.SearchWithin(geom.Rect2(seg.Min[0]-1, y-1, seg.Max[0]+1, y+1))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range within {
		if e.ID == 999 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("covering query reported the cut record %d times", count)
	}
	// A sub-interval of the segment is contained by it, across the cut
	// boundary.
	sub := geom.Rect2(seg.Min[0]+10, y, seg.Max[0]-10, y)
	containing, err := tr.SearchContaining(sub)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range containing {
		if e.ID == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("cut record not reported as containing a sub-interval spanning the cut")
	}
}
