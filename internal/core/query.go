package core

import (
	"sync/atomic"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
)

// queryCtx is the per-query scratch state of the read path: the traversal
// stack, the node cache, the dedup set, the result arena, and the snapshot
// registration slot. Contexts are recycled through Tree.qctxPool so a
// steady-state query performs no heap allocation: every buffer is
// truncated (not freed) on release and the maps retain their buckets
// across the clear idiom. Batch workers draw from the same pool, so N
// concurrent workers settle on N contexts.
//
// A context is single-query state. Direct Tree queries register the
// context's own snapshot slot for the query's duration (acquireRead);
// queries through an explicit View run under the view's registration and
// leave the slot free.
type queryCtx struct {
	// stack is the DFS work list of pages still to visit.
	stack []page.ID

	// nodes caches the node pointer for every page this query resolved,
	// so revisits skip the pool's shard locks. Nothing is pinned: the
	// cached versions are immutable and the registered snapshot epoch
	// keeps them reachable.
	nodes   map[page.ID]*node.Node
	nodeIDs []page.ID

	// epoch is the snapshot epoch every fetch of this query resolves at,
	// and slot is the context's own registry cell (allocated once,
	// registered only for direct queries).
	epoch uint64
	slot  *snapSlot

	// Dedup set keyed by RecordID: a bitmap for small IDs with a map
	// spilling the rest. touched lists the dirty bitmap words so reset
	// costs O(results), not O(bitmap).
	bits    []uint64
	touched []uint32
	over    map[node.RecordID]struct{}

	// Result arena: deduplicated view entries collected during the
	// traversal, plus the float backing used by accumulation passes
	// (SearchContaining unions portions here in place).
	entries  []Entry
	coverOff map[node.RecordID]int
	coverIDs []node.RecordID
	coverBuf []float64

	// Sidecar adapters: accelFn is the caller's callback for the current
	// accelerator-routed query, and accelEmit/collectFn/accelCountFn are
	// persistent closures built once per context (newQueryCtx) so routing
	// a query through the accelerator allocates nothing.
	accelFn      func(Entry) bool
	accelEmit    func(min, max []float64, id uint64) bool
	collectFn    func(Entry) bool
	accelCountFn func(min, max []float64, id uint64) bool
	accelCount   int
}

// dedupBitmapWords caps the bitmap at 1<<20 record IDs (128 KiB); IDs at
// or above the cap go to the overflow map.
const dedupBitmapWords = 1 << 14

func newQueryCtx() *queryCtx {
	qc := &queryCtx{
		nodes:    make(map[page.ID]*node.Node),
		over:     make(map[node.RecordID]struct{}),
		coverOff: make(map[node.RecordID]int),
	}
	qc.accelEmit = func(min, max []float64, id uint64) bool {
		return qc.accelFn(Entry{Rect: geom.Rect{Min: min, Max: max}, ID: node.RecordID(id)})
	}
	qc.collectFn = func(e Entry) bool {
		qc.entries = append(qc.entries, e)
		return true
	}
	qc.accelCountFn = func(min, max []float64, id uint64) bool {
		qc.accelCount++
		return true
	}
	return qc
}

// getQctx returns a recycled (or fresh) query context. No lock is needed:
// the context must be handed back through releaseQctx when the query ends.
func (t *Tree) getQctx() *queryCtx {
	if v := t.qctxPool.Get(); v != nil {
		return v.(*queryCtx)
	}
	return newQueryCtx()
}

// getQctxAt returns a context resolving fetches at the given snapshot
// epoch without registering it (the caller's View holds the registration).
func (t *Tree) getQctxAt(epoch uint64) *queryCtx {
	qc := t.getQctx()
	qc.epoch = epoch
	return qc
}

// releaseQctx unregisters the context's snapshot slot (if this query
// registered it), resets the context, recycles it, and gives the releasing
// reader a chance to sweep version garbage its release may have unpinned.
func (t *Tree) releaseQctx(qc *queryCtx) {
	registered := qc.slot != nil && qc.slot.e.Load() != 0
	if registered {
		qc.slot.e.Store(0)
	}
	for _, id := range qc.nodeIDs {
		delete(qc.nodes, id)
	}
	qc.nodeIDs = qc.nodeIDs[:0]
	qc.stack = qc.stack[:0]
	qc.resetDedup()
	qc.entries = qc.entries[:0]
	qc.resetCovers()
	qc.accelFn = nil
	qc.accelCount = 0
	qc.epoch = 0
	t.qctxPool.Put(qc)
	if registered {
		t.maybeCollect()
	}
}

// fetchCached resolves a node at the context's snapshot epoch, charging
// one logical node access to the given counter. The first visit of a page
// in this query goes to the buffer pool; revisits hit the context's cache
// without touching the pool's shard locks. No tree-level lock is held.
//
//seglint:hotpath
func (t *Tree) fetchCached(qc *queryCtx, id page.ID, accesses *uint64) (*node.Node, error) {
	if accesses != nil {
		atomic.AddUint64(accesses, 1)
	}
	if n, ok := qc.nodes[id]; ok {
		return n, nil
	}
	n, err := t.pool.GetVersion(id, qc.epoch)
	if err != nil {
		return nil, err
	}
	qc.nodes[id] = n
	qc.nodeIDs = append(qc.nodeIDs, id)
	return n, nil
}

// markSeen records id in the dedup set and reports whether it was already
// present.
//
//seglint:hotpath
func (qc *queryCtx) markSeen(id node.RecordID) bool {
	if w := uint64(id) / 64; w < dedupBitmapWords {
		if int(w) >= len(qc.bits) {
			if int(w) < cap(qc.bits) {
				// The capacity region is all zeros: make zeroes it and
				// resetDedup restores every touched word.
				qc.bits = qc.bits[:w+1]
			} else {
				//seglint:allow hotalloc — doubling growth amortizes to zero across recycled contexts
				grown := make([]uint64, w+1, 2*(w+1))
				copy(grown, qc.bits)
				qc.bits = grown
			}
		}
		mask := uint64(1) << (uint64(id) % 64)
		if qc.bits[w]&mask != 0 {
			return true
		}
		if qc.bits[w] == 0 {
			qc.touched = append(qc.touched, uint32(w))
		}
		qc.bits[w] |= mask
		return false
	}
	if _, ok := qc.over[id]; ok {
		return true
	}
	qc.over[id] = struct{}{}
	return false
}

// resetDedup clears the dedup set in O(marked IDs).
func (qc *queryCtx) resetDedup() {
	for _, w := range qc.touched {
		qc.bits[w] = 0
	}
	qc.touched = qc.touched[:0]
	for id := range qc.over {
		delete(qc.over, id)
	}
}

// resetCovers clears the SearchContaining accumulation state.
func (qc *queryCtx) resetCovers() {
	for id := range qc.coverOff {
		delete(qc.coverOff, id)
	}
	qc.coverIDs = qc.coverIDs[:0]
	qc.coverBuf = qc.coverBuf[:0]
}
