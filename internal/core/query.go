package core

import (
	"sync/atomic"

	"segidx/internal/node"
	"segidx/internal/page"
)

// queryCtx is the per-query scratch state of the read path: the traversal
// stack, the pin cache, the dedup set, and the result arena. Contexts are
// recycled through Tree.qctxPool so a steady-state query performs no heap
// allocation: every buffer is truncated (not freed) on release and the
// maps retain their buckets across the clear idiom. Batch workers draw
// from the same pool, so N concurrent workers settle on N contexts.
//
// A context is single-query state: it is acquired after t.mu is taken and
// released (returning its pins) before t.mu is dropped.
type queryCtx struct {
	// stack is the DFS work list of pages still to visit.
	stack []page.ID

	// pinned caches the node pointer for every page this query fetched,
	// each pinned exactly once; revisits are served from the cache with
	// no pool interaction. pinIDs remembers the insertion order so
	// release can return all pins in one buffer.UnpinBatch call — one
	// shard-lock acquisition per run of same-shard pages rather than one
	// unpin round trip per node visit. Holding pins for the whole query
	// also keeps every visited node's rect storage alive, which is what
	// lets Search collect view entries and defer copying until the
	// final materialization.
	pinned map[page.ID]*node.Node
	pinIDs []page.ID

	// Dedup set keyed by RecordID: a bitmap for small IDs with a map
	// spilling the rest. touched lists the dirty bitmap words so reset
	// costs O(results), not O(bitmap).
	bits    []uint64
	touched []uint32
	over    map[node.RecordID]struct{}

	// Result arena: deduplicated view entries collected during the
	// traversal, plus the float backing used by accumulation passes
	// (SearchContaining unions portions here in place).
	entries  []Entry
	coverOff map[node.RecordID]int
	coverIDs []node.RecordID
	coverBuf []float64
}

// dedupBitmapWords caps the bitmap at 1<<20 record IDs (128 KiB); IDs at
// or above the cap go to the overflow map.
const dedupBitmapWords = 1 << 14

func newQueryCtx() *queryCtx {
	return &queryCtx{
		pinned:   make(map[page.ID]*node.Node),
		over:     make(map[node.RecordID]struct{}),
		coverOff: make(map[node.RecordID]int),
	}
}

// getQctx returns a recycled (or fresh) query context. The caller must
// hold t.mu and must hand the context back through releaseQctx before
// releasing the lock.
func (t *Tree) getQctx() *queryCtx {
	if v := t.qctxPool.Get(); v != nil {
		return v.(*queryCtx)
	}
	return newQueryCtx()
}

// releaseQctx returns every pin the query acquired in one batch, resets
// the context, and recycles it. The caller must still hold t.mu: pins
// must never outlive the lock (writers Free pages under the write lock
// and a stale pin would make that fail).
//
//seglint:allow nodepanic — an unpin failure here is a pin-discipline bug, exactly as in Tree.done
func (t *Tree) releaseQctx(qc *queryCtx) {
	if err := t.pool.UnpinBatch(qc.pinIDs); err != nil {
		panic(err)
	}
	for id := range qc.pinned {
		delete(qc.pinned, id)
	}
	qc.pinIDs = qc.pinIDs[:0]
	qc.stack = qc.stack[:0]
	qc.resetDedup()
	qc.entries = qc.entries[:0]
	qc.resetCovers()
	t.qctxPool.Put(qc)
}

// fetchCached pins and returns a node, charging one logical node access
// to the given counter. The first visit of a page in this query goes to
// the buffer pool; revisits hit the context's pin cache without touching
// the pool's shard locks. The caller must hold t.mu.
//
//seglint:hotpath
func (t *Tree) fetchCached(qc *queryCtx, id page.ID, accesses *uint64) (*node.Node, error) {
	if accesses != nil {
		atomic.AddUint64(accesses, 1)
	}
	if n, ok := qc.pinned[id]; ok {
		return n, nil
	}
	n, err := t.fetch(id, nil)
	if err != nil {
		return nil, err
	}
	qc.pinned[id] = n
	qc.pinIDs = append(qc.pinIDs, id)
	return n, nil
}

// markSeen records id in the dedup set and reports whether it was already
// present.
//
//seglint:hotpath
func (qc *queryCtx) markSeen(id node.RecordID) bool {
	if w := uint64(id) / 64; w < dedupBitmapWords {
		if int(w) >= len(qc.bits) {
			if int(w) < cap(qc.bits) {
				// The capacity region is all zeros: make zeroes it and
				// resetDedup restores every touched word.
				qc.bits = qc.bits[:w+1]
			} else {
				//seglint:allow hotalloc — doubling growth amortizes to zero across recycled contexts
				grown := make([]uint64, w+1, 2*(w+1))
				copy(grown, qc.bits)
				qc.bits = grown
			}
		}
		mask := uint64(1) << (uint64(id) % 64)
		if qc.bits[w]&mask != 0 {
			return true
		}
		if qc.bits[w] == 0 {
			qc.touched = append(qc.touched, uint32(w))
		}
		qc.bits[w] |= mask
		return false
	}
	if _, ok := qc.over[id]; ok {
		return true
	}
	qc.over[id] = struct{}{}
	return false
}

// resetDedup clears the dedup set in O(marked IDs).
func (qc *queryCtx) resetDedup() {
	for _, w := range qc.touched {
		qc.bits[w] = 0
	}
	qc.touched = qc.touched[:0]
	for id := range qc.over {
		delete(qc.over, id)
	}
}

// resetCovers clears the SearchContaining accumulation state.
func (qc *queryCtx) resetCovers() {
	for id := range qc.coverOff {
		delete(qc.coverOff, id)
	}
	qc.coverIDs = qc.coverIDs[:0]
	qc.coverBuf = qc.coverBuf[:0]
}
