package core

import (
	"sort"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// split divides an overflowing node n into n and a new sibling at the same
// level (paper Section 3.1.2, Figure 4):
//
//   - leaf records, or non-leaf branches, are distributed by the configured
//     algorithm (Guttman quadratic/linear), or by a median cut of the
//     partition region for skeleton nodes;
//   - spanning index records are "carried over" with the branch they are
//     linked to;
//   - records that span the region of n or the sibling after the split are
//     removed and returned as promotions for the parent (with Span set to
//     the node they span);
//   - spanning records exceeding a side's capacity are queued for
//     reinsertion (this can only happen when almost all records link to one
//     branch).
//
// The returned sibling is pinned; the caller installs it in the parent and
// unpins both.
func (o *op) split(n *node.Node) (*node.Node, []node.Record, error) {
	t := o.t
	dims := t.cfg.Dims
	if !n.IsLeaf() && len(n.Branches) < 2 {
		// Nothing to distribute; shed spanning records to fit instead of
		// splitting. (Unreachable under the byte-sharing policy — splits
		// are triggered only by branch overflow — but kept as a guard.)
		o.shedToFit(n)
		return nil, nil, nil
	}
	sib, err := t.pool.NewNode(n.Level, t.cfg.Sizes.BytesForLevel(n.Level))
	if err != nil {
		return nil, nil, err
	}

	if n.IsLeaf() {
		t.stats.LeafSplits++
		rects := make([]geom.Rect, len(n.Records))
		for i := range n.Records {
			rects[i] = n.Records[i].Rect
		}
		keep, move := o.distribute(n, sib, rects)
		recs := n.Records
		n.Records = pickRecords(recs, keep)
		sib.Records = pickRecords(recs, move)
		t.touchLeaf(n.ID)
		t.touchLeaf(sib.ID)
	} else {
		t.stats.NonLeafSplits++
		rects := make([]geom.Rect, len(n.Branches))
		for i := range n.Branches {
			rects[i] = n.Branches[i].Rect
		}
		keep, move := o.distribute(n, sib, rects)
		branches := n.Branches
		n.Branches = pickBranches(branches, keep)
		sib.Branches = pickBranches(branches, move)
		// Carry spanning records over with their linked branch.
		moved := make(map[uint64]bool, len(sib.Branches))
		for i := range sib.Branches {
			moved[uint64(sib.Branches[i].Child)] = true
		}
		var keepRecs []node.Record
		for _, rec := range n.Records {
			if moved[uint64(rec.Span)] {
				sib.Records = append(sib.Records, rec)
			} else {
				keepRecs = append(keepRecs, rec)
			}
		}
		n.Records = keepRecs
	}

	// Promotion (paper: after a split, spanning records that span N or
	// N-sibling move to the parent; with LeafPromotion the same check
	// applies to leaf data records).
	var promoted []node.Record
	if t.cfg.Spanning && (!n.IsLeaf() || t.cfg.LeafPromotion) {
		coverN := n.Cover(dims)
		coverS := sib.Cover(dims)
		promote := func(m *node.Node) {
			for i := len(m.Records) - 1; i >= 0; i-- {
				// Never promote a leaf empty: an empty leaf has no cover
				// for its parent branch, and the promoted record would be
				// linked to a contentless node.
				if m.IsLeaf() && len(m.Records) <= 1 {
					break
				}
				rec := m.Records[i]
				if o.seen[rec.ID] >= maxSpanningAttempts+1 {
					continue // cycling record; leave it where it is
				}
				switch {
				case spansQualify(rec.Rect, coverN):
					rec.Span = n.ID
				case spansQualify(rec.Rect, coverS):
					rec.Span = sib.ID
				default:
					continue
				}
				m.RemoveRecord(i)
				promoted = append(promoted, rec)
			}
		}
		promote(n)
		promote(sib)
	}

	// Carried-over spanning records can exceed a side's page bytes; shed
	// the shortest to the reinsertion queue.
	o.shedToFit(n)
	o.shedToFit(sib)

	// A pending revalidation for n must cover records that just migrated
	// to the sibling (a branch that grew earlier in this operation may
	// have been carried over); revalidating both halves is cheap and
	// always safe.
	if t.cfg.Spanning && !n.IsLeaf() {
		o.revalidate[n.ID] = true
		o.revalidate[sib.ID] = true
	}
	return sib, promoted, nil
}

func pickRecords(src []node.Record, idx []int) []node.Record {
	out := make([]node.Record, 0, len(idx))
	for _, i := range idx {
		out = append(out, src[i])
	}
	return out
}

func pickBranches(src []node.Branch, idx []int) []node.Branch {
	out := make([]node.Branch, 0, len(idx))
	for _, i := range idx {
		out = append(out, src[i])
	}
	return out
}

// distribute partitions entry indices between the node (keep) and its new
// sibling (move). Skeleton nodes split their partition region; others use
// the configured Guttman algorithm.
func (o *op) distribute(n, sib *node.Node, rects []geom.Rect) (keep, move []int) {
	if n.HasRegion() {
		return o.regionSplit(n, sib, rects)
	}
	minFill := o.splitMinFill(n, len(rects))
	switch o.t.cfg.Split {
	case SplitLinear:
		return linearSplit(rects, minFill)
	default:
		return quadraticSplit(rects, minFill)
	}
}

func (o *op) splitMinFill(n *node.Node, entries int) int {
	var capTotal int
	if n.IsLeaf() {
		capTotal = o.t.leafCap()
	} else {
		capTotal = o.t.branchCap(n.Level)
	}
	m := int(float64(capTotal) * o.t.cfg.MinFillFrac)
	if m < 1 {
		m = 1
	}
	if m > entries/2 {
		m = entries / 2
	}
	if m < 1 {
		m = 1
	}
	return m
}

// regionSplit cuts a skeleton node's partition region perpendicular to its
// longest axis at the median of the entry centers, assigning entries by the
// sorted halves. Both sides inherit a region half, preserving the
// skeleton's regular decomposition as high-density regions refine (Section
// 4: "high-density regions are made finer grained through conventional node
// splitting").
func (o *op) regionSplit(n, sib *node.Node, rects []geom.Rect) (keep, move []int) {
	region := n.Region
	axis := region.LongestDim()
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rects[order[a]].Center(axis) < rects[order[b]].Center(axis)
	})
	k := len(order) / 2
	keep = order[:k]
	move = order[k:]

	cut := (rects[order[k-1]].Center(axis) + rects[order[k]].Center(axis)) / 2
	if cut <= region.Min[axis] || cut >= region.Max[axis] {
		cut = region.Center(axis)
	}
	left := region.Clone()
	left.Max[axis] = cut
	right := region.Clone()
	right.Min[axis] = cut
	n.Region = left
	// The sibling inherits the right region half. (The caller recomputes
	// branch rects from Cover, which unions the region with any entries
	// straddling the cut.)
	sib.Region = right
	return keep, move
}

// quadraticSplit is Guttman's quadratic-cost distribution: pick the two
// seeds wasting the most area if grouped together, then repeatedly assign
// the entry with the greatest preference difference to its preferred group,
// respecting the minimum fill.
func quadraticSplit(rects []geom.Rect, minFill int) (groupA, groupB []int) {
	n := len(rects)
	seedA, seedB := pickSeedsQuadratic(rects)
	groupA = append(groupA, seedA)
	groupB = append(groupB, seedB)
	coverA := rects[seedA].Clone()
	coverB := rects[seedB].Clone()

	rest := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// If one group must take everything remaining to reach minimum
		// fill, assign the rest wholesale.
		if len(groupA)+len(rest) <= minFill {
			for _, i := range rest {
				groupA = append(groupA, i)
			}
			break
		}
		if len(groupB)+len(rest) <= minFill {
			for _, i := range rest {
				groupB = append(groupB, i)
			}
			break
		}
		// PickNext: maximize |d1 - d2|.
		bestIdx, bestDiff := -1, -1.0
		var bestDA, bestDB float64
		for pos, i := range rest {
			dA := coverA.Enlargement(rects[i])
			dB := coverB.Enlargement(rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = pos, diff
				bestDA, bestDB = dA, dB
			}
		}
		i := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		toA := false
		switch {
		case bestDA < bestDB:
			toA = true
		case bestDA > bestDB:
			toA = false
		case !geom.Feq(coverA.Area(), coverB.Area()):
			toA = coverA.Area() < coverB.Area()
		default:
			toA = len(groupA) <= len(groupB)
		}
		if toA {
			groupA = append(groupA, i)
			coverA.ExpandInPlace(rects[i])
		} else {
			groupB = append(groupB, i)
			coverB.ExpandInPlace(rects[i])
		}
	}
	return groupA, groupB
}

func pickSeedsQuadratic(rects []geom.Rect) (int, int) {
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst = d
				seedA, seedB = i, j
			}
		}
	}
	return seedA, seedB
}

// linearSplit is Guttman's linear-cost distribution: seeds with the
// greatest normalized separation along any dimension, remaining entries
// assigned to the group whose cover grows least.
func linearSplit(rects []geom.Rect, minFill int) (groupA, groupB []int) {
	dims := rects[0].Dims()
	bestSep := -1.0
	seedA, seedB := 0, 1
	for d := 0; d < dims; d++ {
		// Entry with the highest low side and entry with the lowest high
		// side.
		hiLow, loHigh := 0, 0
		lo, hi := rects[0].Min[d], rects[0].Max[d]
		for i := 1; i < len(rects); i++ {
			if rects[i].Min[d] > rects[hiLow].Min[d] {
				hiLow = i
			}
			if rects[i].Max[d] < rects[loHigh].Max[d] {
				loHigh = i
			}
			if rects[i].Min[d] < lo {
				lo = rects[i].Min[d]
			}
			if rects[i].Max[d] > hi {
				hi = rects[i].Max[d]
			}
		}
		width := hi - lo
		if width <= 0 || hiLow == loHigh {
			continue
		}
		sep := (rects[hiLow].Min[d] - rects[loHigh].Max[d]) / width
		if sep > bestSep {
			bestSep = sep
			seedA, seedB = loHigh, hiLow
		}
	}
	if seedA == seedB {
		seedB = (seedA + 1) % len(rects)
	}
	groupA = append(groupA, seedA)
	groupB = append(groupB, seedB)
	coverA := rects[seedA].Clone()
	coverB := rects[seedB].Clone()
	rest := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for pos, i := range rest {
		remaining := len(rest) - pos
		// Honor minimum fill: hand the whole remainder to a starved group.
		if len(groupA)+remaining <= minFill {
			groupA = append(groupA, i)
			coverA.ExpandInPlace(rects[i])
			continue
		}
		if len(groupB)+remaining <= minFill {
			groupB = append(groupB, i)
			coverB.ExpandInPlace(rects[i])
			continue
		}
		if coverA.Enlargement(rects[i]) <= coverB.Enlargement(rects[i]) {
			groupA = append(groupA, i)
			coverA.ExpandInPlace(rects[i])
		} else {
			groupB = append(groupB, i)
			coverB.ExpandInPlace(rects[i])
		}
	}
	return groupA, groupB
}
