package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// opSeq is a randomized operation sequence applied to both a tree and the
// brute-force model; testing/quick drives the generation.
type opSeq struct {
	seed     int64
	ops      int
	spanning bool
	skeleton bool
}

func generateSeq(rng *rand.Rand) opSeq {
	return opSeq{
		seed:     rng.Int63(),
		ops:      rng.Intn(400) + 50,
		spanning: rng.Intn(2) == 0,
		skeleton: rng.Intn(2) == 0,
	}
}

// runSeq executes the sequence and reports whether tree and model agree
// and all invariants hold.
func runSeq(t *testing.T, seq opSeq) bool {
	t.Helper()
	cfg := smallConfig(seq.spanning)
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Logf("new: %v", err)
		return false
	}
	if seq.skeleton {
		if err := tr.BuildSkeleton(Estimate{Tuples: seq.ops, Domain: domain1000()}); err != nil {
			t.Logf("skeleton: %v", err)
			return false
		}
	}
	rng := rand.New(rand.NewSource(seq.seed))
	m := newModel()
	var live []node.RecordID
	next := node.RecordID(1)
	for i := 0; i < seq.ops; i++ {
		switch r := rng.Intn(10); {
		case r < 6 || len(live) == 0: // insert
			var rect geom.Rect
			switch rng.Intn(3) {
			case 0:
				rect = randSegment(rng)
			case 1:
				rect = randBox(rng)
			default:
				rect = geom.Point(rng.Float64()*1000, rng.Float64()*1000)
			}
			if err := tr.Insert(rect, next); err != nil {
				t.Logf("insert: %v", err)
				return false
			}
			m.insert(rect, next)
			live = append(live, next)
			next++
		case r < 8: // delete
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			n, err := tr.Delete(id, m.rects[id])
			if err != nil || n != 1 {
				t.Logf("delete: n=%d err=%v", n, err)
				return false
			}
			m.delete(id)
		default: // search
			q := randQuery(rng)
			if !idsEqual(searchIDs(t, tr, q), m.search(q)) {
				t.Logf("search diverged (seed %d op %d)", seq.seed, i)
				return false
			}
		}
	}
	if tr.Len() != len(m.rects) {
		t.Logf("len %d != %d", tr.Len(), len(m.rects))
		return false
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Logf("invariants (seed %d): %v", seq.seed, err)
		return false
	}
	// Final exhaustive comparison.
	full := geom.Rect2(0, 0, 1000, 1000)
	if !idsEqual(searchIDs(t, tr, full), m.search(full)) {
		t.Logf("final full search diverged (seed %d)", seq.seed)
		return false
	}
	return true
}

// TestQuickOperationSequences drives random insert/delete/search sequences
// over all four index configurations via testing/quick.
func TestQuickOperationSequences(t *testing.T) {
	gen := rand.New(rand.NewSource(7777))
	f := func(x int64) bool {
		return runSeq(t, generateSeq(gen))
	}
	cfgCount := 60
	if testing.Short() {
		cfgCount = 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: cfgCount}); err != nil {
		t.Error(err)
	}
}

// TestQuickSpanningInvariant checks, via testing/quick, that arbitrary
// interval batches leave every spanning record spanning its linked branch.
func TestQuickSpanningInvariant(t *testing.T) {
	gen := rand.New(rand.NewSource(8888))
	f := func(x int64) bool {
		tr, err := NewInMemory(smallConfig(true))
		if err != nil {
			return false
		}
		n := gen.Intn(300) + 20
		for i := 0; i < n; i++ {
			if err := tr.Insert(randSegment(gen), node.RecordID(i+1)); err != nil {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	count := 40
	if testing.Short() {
		count = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}

// TestQuickCutPortionsCoverOriginal verifies via testing/quick that every
// inserted rectangle is fully covered by the union of its stored portions.
func TestQuickCutPortionsCoverOriginal(t *testing.T) {
	gen := rand.New(rand.NewSource(9999))
	f := func(x int64) bool {
		tr, err := NewInMemory(smallConfig(true))
		if err != nil {
			return false
		}
		n := gen.Intn(200) + 50
		rects := make(map[node.RecordID]geom.Rect, n)
		for i := 0; i < n; i++ {
			r := randSegment(gen)
			id := node.RecordID(i + 1)
			if err := tr.Insert(r, id); err != nil {
				return false
			}
			rects[id] = r
		}
		covers := make(map[node.RecordID]geom.Rect, n)
		err = tr.SearchFunc(geom.Rect2(0, 0, 1000, 1000), func(e Entry) bool {
			if c, ok := covers[e.ID]; ok {
				covers[e.ID] = c.Union(e.Rect)
			} else {
				covers[e.ID] = e.Rect
			}
			// Every portion must be inside the original.
			return rects[e.ID].Contains(e.Rect)
		})
		if err != nil {
			return false
		}
		for id, orig := range rects {
			c, ok := covers[id]
			if !ok || !c.Equal(orig) {
				return false
			}
		}
		return true
	}
	count := 40
	if testing.Short() {
		count = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Error(err)
	}
}
