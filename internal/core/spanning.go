package core

import (
	"segidx/internal/geom"
	"segidx/internal/node"
)

// Spanning records and branches share the bytes of a non-leaf page
// (Section 2.1.2). Branches own a reserved fraction of the page
// (Config.BranchReserve); spanning records may fill every remaining free
// byte, and yield space back on demand:
//
//   - a spanning insert that does not fit evicts resident spanning records
//     shorter than the incoming one (margin order), or is rejected so the
//     record continues its descent and is stored lower in the tree;
//   - a branch insert always succeeds below the branch reservation,
//     evicting spanning records as needed.
//
// Eviction enqueues the displaced record for reinsertion; because a record
// only ever displaces strictly shorter ones, displacement chains are
// monotone and terminate. The net effect is the paper's intent: the
// longest intervals percolate to (and stay in) non-leaf nodes, the page
// never splits because of spanning records, and the skeleton's regular
// decomposition survives arbitrary interval-length skew.

// margin orders records by "length": the sum of extents over all
// dimensions, which ranks both line segments and rectangles sensibly.
func recMargin(r geom.Rect) float64 { return r.Margin() }

// shortestRecord returns the index of the spanning record with the
// smallest margin, or -1 when the node holds none.
func shortestRecord(n *node.Node) int {
	best := -1
	bestM := 0.0
	for i := range n.Records {
		m := recMargin(n.Records[i].Rect)
		if best < 0 || m < bestM {
			best, bestM = i, m
		}
	}
	return best
}

// evictRecord removes the record at index i and queues it for
// reinsertion.
func (o *op) evictRecord(n *node.Node, i int) {
	rec := n.Records[i]
	n.RemoveRecord(i)
	o.t.stats.Demotions++
	o.enqueue(rec.Rect, rec.ID)
}

// placeSpanning tries to store a spanning record on n, evicting strictly
// shorter residents to make byte room. Reports whether the record was
// placed.
func (o *op) placeSpanning(n *node.Node, rec node.Record) bool {
	t := o.t
	pageBytes := t.pageBytes(n.Level)
	need := t.codec.RecordBytes()
	for t.codec.UsedBytes(n)+need > pageBytes {
		si := shortestRecord(n)
		if si < 0 || recMargin(n.Records[si].Rect) >= recMargin(rec.Rect) {
			return false
		}
		o.evictRecord(n, si)
	}
	n.Records = append(n.Records, rec)
	return true
}

// addBranch installs a branch on n, evicting spanning records as needed;
// branches have absolute priority on their reserved space. The caller is
// responsible for splitting when the branch count exceeds the reservation.
func (o *op) addBranch(n *node.Node, b node.Branch) {
	t := o.t
	pageBytes := t.pageBytes(n.Level)
	need := t.codec.BranchBytes()
	for t.codec.UsedBytes(n)+need > pageBytes && len(n.Records) > 0 {
		o.evictRecord(n, shortestRecord(n))
	}
	n.Branches = append(n.Branches, b)
}

// shedToFit evicts the shortest spanning records until the node's entries
// fit its page (used after split carry-over).
func (o *op) shedToFit(n *node.Node) {
	for !o.t.fitsBytes(n) && len(n.Records) > 0 && !n.IsLeaf() {
		o.evictRecord(n, shortestRecord(n))
	}
}
