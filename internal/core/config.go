// Package core implements the paper's segment index engine: Guttman's
// R-Tree as the base structure, with the three Segment Index tactics of
// Section 2.1 available as configuration —
//
//  1. spanning index records stored in non-leaf nodes (the SR-Tree,
//     Section 3), including segment cutting, demotion, and promotion;
//  2. per-level node sizes (leaf pages doubling at each higher level);
//  3. skeleton pre-construction with histogram-driven partitioning,
//     distribution prediction, and adaptive node coalescing (Section 4).
//
// The four index types evaluated in the paper are instances of one engine:
//
//	R-Tree           Config{Spanning: false}, dynamic build
//	SR-Tree          Config{Spanning: true},  dynamic build
//	Skeleton R-Tree  Config{Spanning: false}, BuildSkeleton
//	Skeleton SR-Tree Config{Spanning: true},  BuildSkeleton
//
// Nodes live on pages managed by a buffer pool over a page store; all
// fanout limits derive from page sizes and the on-page entry encoding.
package core

import (
	"errors"
	"fmt"

	"segidx/internal/node"
	"segidx/internal/page"
)

// SplitAlgorithm selects the node splitting heuristic for non-skeleton
// nodes.
type SplitAlgorithm int

const (
	// SplitQuadratic is Guttman's quadratic-cost split, the algorithm
	// used in the paper's experiments.
	SplitQuadratic SplitAlgorithm = iota
	// SplitLinear is Guttman's linear-cost split.
	SplitLinear
)

func (s SplitAlgorithm) String() string {
	switch s {
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// Config controls a Tree. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Dims is the dimensionality K of the indexed rectangles (K >= 1).
	Dims int

	// Sizes maps tree levels to page sizes. The paper uses 1 KiB leaves
	// doubling per level (tactic 2).
	Sizes page.SizeClasses

	// Spanning enables the SR-Tree extensions: spanning index records in
	// non-leaf nodes, segment cutting, demotion, and promotion.
	Spanning bool

	// BranchReserve is the fraction of a non-leaf node's payload reserved
	// for branch entries when Spanning is enabled (the paper reserves
	// 2/3). Branch and spanning entries share the page bytes (Section
	// 2.1.2): branches may always claim up to this fraction, evicting
	// spanning records if needed, while spanning records may fill every
	// byte branches leave free. Ignored when Spanning is false (the full
	// payload holds branches).
	BranchReserve float64

	// LeafPromotion also checks leaf data records after a leaf split and
	// promotes those that span one of the two resulting leaves. The paper
	// describes promotion for non-leaf splits; without the leaf variant,
	// long intervals inserted before the tree grows can never migrate
	// upward. Enabled by default with Spanning; ablation A5 measures it.
	LeafPromotion bool

	// MinFillFrac is the minimum node occupancy enforced by splits and
	// deletion (Guttman's m <= M/2); expressed as a fraction of the
	// node's capacity.
	MinFillFrac float64

	// Split selects the splitting heuristic for non-skeleton nodes.
	// Skeleton nodes always split their partition region at the entry
	// median (see split.go).
	Split SplitAlgorithm

	// CoalesceEvery triggers a scan for mergeable sibling leaves after
	// this many insertions (0 disables coalescing). Skeleton indexes in
	// the paper use 1000.
	CoalesceEvery int

	// CoalesceCandidates bounds the scan to the L least-frequently-
	// modified leaves; the paper uses 10.
	CoalesceCandidates int

	// CoalesceMaxFill merges two adjacent leaves only if the combined
	// record count stays below this fraction of leaf capacity.
	CoalesceMaxFill float64

	// PoolBytes caps buffer pool residency (0 = unlimited).
	PoolBytes int

	// PoolShards sets the buffer pool's lock-stripe count (rounded up to
	// a power of two; 0 picks a default scaled to GOMAXPROCS). One shard
	// gives a single global LRU with an exact byte budget; more shards
	// let concurrent readers pin pages without contending on one mutex.
	PoolShards int
}

// DefaultConfig returns the paper's experimental configuration for
// 2-dimensional data: 1 KiB leaves doubling per level, 2/3 branch reserve,
// quadratic splits, 40% minimum fill.
func DefaultConfig() Config {
	return Config{
		Dims:               2,
		Sizes:              page.DefaultSizeClasses(),
		Spanning:           false,
		BranchReserve:      2.0 / 3.0,
		LeafPromotion:      true,
		MinFillFrac:        0.4,
		Split:              SplitQuadratic,
		CoalesceEvery:      0,
		CoalesceCandidates: 10,
		CoalesceMaxFill:    0.8,
	}
}

// Validate checks the configuration for usability and returns a descriptive
// error otherwise.
func (c Config) Validate() error {
	if c.Dims < 1 {
		return fmt.Errorf("core: Dims %d < 1", c.Dims)
	}
	if c.Dims > 8 {
		return fmt.Errorf("core: Dims %d > 8 (entry encoding supports up to 8)", c.Dims)
	}
	if err := c.Sizes.Validate(); err != nil {
		return err
	}
	if c.MinFillFrac <= 0 || c.MinFillFrac > 0.5 {
		return fmt.Errorf("core: MinFillFrac %g outside (0, 0.5]", c.MinFillFrac)
	}
	if c.Spanning && (c.BranchReserve <= 0 || c.BranchReserve > 1) {
		return fmt.Errorf("core: BranchReserve %g outside (0, 1]", c.BranchReserve)
	}
	if c.Split != SplitQuadratic && c.Split != SplitLinear {
		return fmt.Errorf("core: unknown split algorithm %d", int(c.Split))
	}
	if c.CoalesceEvery < 0 || c.CoalesceCandidates < 0 {
		return errors.New("core: negative coalescing parameters")
	}
	if c.CoalesceMaxFill < 0 || c.CoalesceMaxFill > 1 {
		return fmt.Errorf("core: CoalesceMaxFill %g outside [0, 1]", c.CoalesceMaxFill)
	}
	if c.PoolShards < 0 {
		return fmt.Errorf("core: PoolShards %d < 0", c.PoolShards)
	}
	codec := node.Codec{Dims: c.Dims}
	if codec.LeafCapacity(c.Sizes.LeafBytes) < 2 {
		return fmt.Errorf("core: leaf pages of %d bytes hold fewer than 2 records", c.Sizes.LeafBytes)
	}
	minBranch := 1 << uint(c.Dims) // skeleton construction needs 2^D children per node
	for level := 1; level <= 2; level++ {
		if c.branchCapAt(level, codec) < max(4, minBranch) {
			return fmt.Errorf("core: level-%d pages hold too few branches", level)
		}
	}
	if c.Spanning && c.spanCapAt(1, codec) < 1 {
		return fmt.Errorf("core: BranchReserve %g leaves no room for spanning records", c.BranchReserve)
	}
	return nil
}

// reserve returns the effective branch reservation fraction.
func (c Config) reserve() float64 {
	if !c.Spanning {
		return 1.0
	}
	return c.BranchReserve
}

func (c Config) branchCapAt(level int, codec node.Codec) int {
	return codec.BranchCapacity(c.Sizes.BytesForLevel(level), c.reserve())
}

func (c Config) spanCapAt(level int, codec node.Codec) int {
	if !c.Spanning {
		return 0
	}
	return codec.SpanningCapacity(c.Sizes.BytesForLevel(level), c.BranchReserve)
}
