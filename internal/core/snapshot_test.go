package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// everything is a query rectangle covering any record the tests insert.
func everything() geom.Rect {
	return geom.Rect{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
}

// snapIDSet collects the deduplicated ID set a view answers for the full
// domain.
func snapIDSet(t *testing.T, v View) map[node.RecordID]bool {
	t.Helper()
	set := make(map[node.RecordID]bool)
	if err := v.SearchFunc(everything(), func(e Entry) bool {
		set[e.ID] = true
		return true
	}); err != nil {
		t.Fatalf("snapshot SearchFunc: %v", err)
	}
	return set
}

func sameIDSet(a, b map[node.RecordID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// TestSnapshotReadersDuringWrites is the MVCC torn-page stress: concurrent
// snapshot readers run StabFunc-style and intersection traversals while a
// single writer commits splits, coalesces, and deletes. Every reader pins a
// view, captures its full-domain ID set once, and then requires every
// subsequent query on that view to be consistent with the pin — identical
// full-domain answers, only intersecting entries, Len frozen. Run with
// -race; the race detector covers the loads the assertions cannot.
func TestSnapshotReadersDuringWrites(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	seedRng := rand.New(rand.NewSource(11))
	const seed = 400
	for i := 0; i < seed; i++ {
		if err := tr.Insert(randSegment(seedRng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	const (
		readers   = 4
		repins    = 30 // snapshots pinned per reader
		queries   = 40 // queries per pinned snapshot
		writerOps = 3000
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	var stop atomic.Bool

	// The writer mixes growth (splits), shrinkage (condense/coalesce), and
	// predicate deletes, committing a new epoch on every call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		rng := rand.New(rand.NewSource(77))
		next := node.RecordID(seed + 1)
		live := make([]node.RecordID, 0, seed)
		for i := 0; i < seed; i++ {
			live = append(live, node.RecordID(i+1))
		}
		for i := 0; i < writerOps; i++ {
			switch {
			case len(live) < 100 || rng.Intn(10) < 6:
				if err := tr.Insert(randSegment(rng), next); err != nil {
					errs <- fmt.Errorf("writer insert: %w", err)
					return
				}
				live = append(live, next)
				next++
			case rng.Intn(20) == 0:
				q := randQuery(rng)
				if _, err := tr.DeleteWhere(q, nil); err != nil {
					errs <- fmt.Errorf("writer delete-where: %w", err)
					return
				}
				// Rebuild the live list lazily: predicate deletes make it
				// stale, which only means some deletes below turn into
				// no-ops — still a committed epoch.
			default:
				j := rng.Intn(len(live))
				id := live[j]
				live = append(live[:j], live[j+1:]...)
				if _, err := tr.Delete(id, everything()); err != nil {
					errs <- fmt.Errorf("writer delete: %w", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + r)))
			for p := 0; p < repins; p++ {
				v := tr.Snapshot()
				pinned := snapIDSet(t, v)
				pinnedLen := v.Len()
				for i := 0; i < queries; i++ {
					q := randQuery(rng)
					err := v.SearchFunc(q, func(e Entry) bool {
						if !e.Rect.Intersects(q) {
							errs <- fmt.Errorf("reader %d: non-intersecting entry %d", r, e.ID)
							return false
						}
						if !pinned[e.ID] {
							errs <- fmt.Errorf("reader %d: entry %d not in pinned set", r, e.ID)
							return false
						}
						return true
					})
					if err != nil {
						errs <- fmt.Errorf("reader %d search: %w", r, err)
						v.Release()
						return
					}
					// Stabbing traversal: containment answers must come
					// from the pinned set too.
					px, py := q.Min[0], q.Min[1]
					stab := geom.Rect{Min: []float64{px, py}, Max: []float64{px, py}}
					err = v.SearchContainingFunc(stab, func(e Entry) bool {
						if !e.Rect.Contains(stab) || !pinned[e.ID] {
							errs <- fmt.Errorf("reader %d: bad stab entry %d", r, e.ID)
							return false
						}
						return true
					})
					if err != nil {
						errs <- fmt.Errorf("reader %d stab: %w", r, err)
						v.Release()
						return
					}
					if got := v.Len(); got != pinnedLen {
						errs <- fmt.Errorf("reader %d: Len moved under snapshot: %d -> %d", r, pinnedLen, got)
						v.Release()
						return
					}
				}
				// The full-domain answer must not have drifted while the
				// writer committed: a torn or reclaimed page would show up
				// as a changed set.
				if !sameIDSet(pinned, snapIDSet(t, v)) {
					errs <- fmt.Errorf("reader %d: snapshot drifted at repin %d", r, p)
					v.Release()
					return
				}
				v.Release()
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsAcquireNoTreeLock is the deterministic no-lock gate for
// the MVCC read path: with the tree's write lock held (a writer parked
// mid-think), snapshot queries must still complete. If any view method
// touched t.mu the queries would block forever and the watchdog fails the
// test.
func TestSnapshotReadsAcquireNoTreeLock(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	v := tr.Snapshot()
	defer v.Release()
	want := snapIDSet(t, v)

	tr.mu.Lock()
	defer tr.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		got := make(map[node.RecordID]bool)
		err := v.SearchFunc(everything(), func(e Entry) bool {
			got[e.ID] = true
			return true
		})
		if err == nil && !sameIDSet(want, got) {
			err = fmt.Errorf("locked-out search returned %d ids, want %d", len(got), len(want))
		}
		if err == nil {
			_, err = v.Count(everything())
		}
		if err == nil {
			err = v.SearchContainingFunc(geom.Rect{Min: []float64{1, 1}, Max: []float64{1, 1}},
				func(Entry) bool { return true })
		}
		done <- err
	}()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot query blocked while the tree write lock was held: read path acquires a tree-level lock")
	}
}

// TestEpochGCReclaimsVersions checks both directions of the epoch-GC
// contract on the version chains: superseded versions survive exactly as
// long as a snapshot pinned at or before their supersession epoch is live,
// and the last release sweeps them without waiting for a writer.
func TestEpochGCReclaimsVersions(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	v1 := tr.Snapshot()
	want1 := snapIDSet(t, v1)
	for i := 200; i < 300; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	v2 := tr.Snapshot()
	want2 := snapIDSet(t, v2)
	for i := 0; i < 100; i++ {
		if _, err := tr.Delete(node.RecordID(i+1), everything()); err != nil {
			t.Fatal(err)
		}
	}

	if got := tr.pool.RetainedVersions(); got == 0 {
		t.Fatal("no versions retained while two snapshots pin old epochs")
	}

	// Releasing the NEWER snapshot must not free what the older still
	// needs.
	v2.Release()
	if !sameIDSet(want1, snapIDSet(t, v1)) {
		t.Fatal("v1 lost pages after v2's release")
	}
	_ = want2

	// Releasing the last snapshot sweeps every superseded version on the
	// reader side — no writer required.
	v1.Release()
	if got := tr.pool.RetainedVersions(); got != 0 {
		t.Fatalf("%d superseded versions retained after last snapshot closed", got)
	}
	if st := tr.pool.Stats(); st.Retained != 0 {
		t.Fatalf("pool stats report %d retained frames after last release", st.Retained)
	}

	// And the next committed write executes the deferred store frees.
	before := tr.pool.Stats().DeferredFrees
	if err := tr.Insert(randSegment(rng), node.RecordID(1000)); err != nil {
		t.Fatal(err)
	}
	if after := tr.pool.Stats().DeferredFrees; after < before {
		t.Fatalf("DeferredFrees went backwards: %d -> %d", before, after)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// FuzzSnapshotOps fuzzes pin/commit/release interleavings against two
// invariants: (a) a live snapshot never loses a page — its full-domain
// answer and Len stay frozen at the pin no matter what commits after; (b)
// once the last snapshot closes, no superseded page version survives.
func FuzzSnapshotOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 10, 2, 0, 20, 20, 3, 0})
	f.Add([]byte{0, 1, 1, 0, 2, 2, 2, 1, 0, 0, 3, 3, 4, 0, 3, 1})
	{
		var seed []byte
		for i := 0; i < 30; i++ {
			seed = append(seed, 0, byte(i*7), byte(i*13))
		}
		seed = append(seed, 2, 1, 5, 1, 9, 2, 4, 0, 3, 0, 4, 0, 3, 0)
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip()
		}
		tr, err := NewInMemory(smallConfig(true))
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		rect := func() geom.Rect {
			x := float64(next()) * 4
			y := float64(next()) * 4
			return geom.Rect{Min: []float64{x, y}, Max: []float64{x + 8, y + 3}}
		}

		type pin struct {
			v    View
			want map[node.RecordID]bool
			len  int
		}
		var pins []pin
		checkPin := func(p pin) {
			if got := p.v.Len(); got != p.len {
				t.Fatalf("snapshot Len drifted: %d -> %d", p.len, got)
			}
			if !sameIDSet(p.want, snapIDSet(t, p.v)) {
				t.Fatal("live snapshot lost or gained pages")
			}
		}

		nextID := node.RecordID(1)
		var liveIDs []node.RecordID
		for pos < len(data) {
			switch next() % 5 {
			case 0: // insert
				if err := tr.Insert(rect(), nextID); err != nil {
					t.Fatalf("Insert: %v", err)
				}
				liveIDs = append(liveIDs, nextID)
				nextID++
			case 1: // delete
				if len(liveIDs) == 0 {
					continue
				}
				i := int(next()) % len(liveIDs)
				id := liveIDs[i]
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				if _, err := tr.Delete(id, everything()); err != nil {
					t.Fatalf("Delete: %v", err)
				}
			case 2: // pin a snapshot (bounded so chains stay interesting)
				if len(pins) >= 6 {
					continue
				}
				v := tr.Snapshot()
				pins = append(pins, pin{v: v, want: snapIDSet(t, v), len: v.Len()})
			case 3: // release one snapshot, verifying it first
				if len(pins) == 0 {
					continue
				}
				i := int(next()) % len(pins)
				checkPin(pins[i])
				pins[i].v.Release()
				pins = append(pins[:i], pins[i+1:]...)
			case 4: // verify a held snapshot mid-flight
				if len(pins) == 0 {
					continue
				}
				checkPin(pins[int(next())%len(pins)])
			}
		}

		// Every surviving snapshot must still answer at its pin, then the
		// final release must leave zero retained versions.
		for _, p := range pins {
			checkPin(p)
			p.v.Release()
		}
		if got := tr.pool.RetainedVersions(); got != 0 {
			t.Fatalf("%d superseded versions retained after all snapshots closed", got)
		}
		if st := tr.pool.Stats(); st.Retained != 0 {
			t.Fatalf("pool stats report %d retained frames after close", st.Retained)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
