package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"segidx/internal/geom"
	"segidx/internal/page"
)

// This file is the MVCC heart of the tree: the atomically published tree
// state, the snapshot epoch registry, the write-operation bracket, and the
// View handle.
//
// The concurrency protocol, end to end:
//
//   - Committed tree state lives in an immutable treeState published
//     through t.state (atomic pointer). Mutable fields on Tree (t.root,
//     t.height, ...) are the writer's working copy, touched only under
//     t.mu's write lock.
//   - A read pins an epoch by storing it into a registry slot, re-loading
//     the state, and retrying if the state changed in between (see
//     acquireRead for why the re-check makes registration race-free). The
//     traversal then runs with NO tree-level lock: every page is resolved
//     through pool.GetVersion(id, epoch), which serves the version of the
//     page visible at the pinned epoch.
//   - The single writer per tree brackets each operation with beginOp /
//     publishOp (abortOp on error): the buffer pool copy-on-writes every
//     mutated page inside the bracket, and publishOp atomically publishes
//     the new treeState with an epoch one higher. Readers therefore see
//     either the whole operation or none of it.
//   - Superseded page versions are reclaimed by epoch GC: collectGarbage
//     computes the minimum epoch still registered (or the published epoch
//     when nothing is) and tells the pool to drop every version superseded
//     at or below it. A version is freed only once every snapshot pinned
//     at or before its supersession epoch has been released.
//
// ErrSnapshotReleased is returned by View methods used after Release.
var ErrSnapshotReleased = errors.New("core: snapshot used after Release")

// treeState is one committed version of the tree: everything a lock-free
// reader needs to traverse, plus the epoch identifying which page versions
// belong to it. Immutable once published.
type treeState struct {
	root        page.ID
	height      int
	size        int
	cutPortions int
	epoch       uint64 // 1 = freshly constructed; +1 per committed write op
}

// snapSlot is one registration cell of the snapshot registry. A reader
// stores its pinned epoch into e (0 = slot free); the writer's GC scan
// reads every slot. Slots are padded so two cores registering concurrently
// do not false-share a cache line.
type snapSlot struct {
	e atomic.Uint64
	_ [56]byte
}

// snapRegistry tracks the epochs of live snapshots. Slots are grow-only:
// a query context allocates its slot once and keeps it for life (the
// steady-state read path touches no registry lock), while explicit
// Snapshot handles draw from a free list.
type snapRegistry struct {
	mu   sync.Mutex
	all  []*snapSlot // every slot ever created; the GC scan target
	free []*snapSlot // released Snapshot slots available for reuse
}

// newSlot creates a slot owned by the caller for life.
func (r *snapRegistry) newSlot() *snapSlot {
	s := &snapSlot{}
	r.mu.Lock()
	r.all = append(r.all, s)
	r.mu.Unlock()
	return s
}

// getSlot returns a reusable slot for a Snapshot handle.
func (r *snapRegistry) getSlot() *snapSlot {
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		s := r.free[n-1]
		r.free = r.free[:n-1]
		r.mu.Unlock()
		return s
	}
	s := &snapSlot{}
	r.all = append(r.all, s)
	r.mu.Unlock()
	return s
}

// putSlot returns a Snapshot handle's slot to the free list. The slot must
// already be cleared.
func (r *snapRegistry) putSlot(s *snapSlot) {
	r.mu.Lock()
	r.free = append(r.free, s)
	r.mu.Unlock()
}

// min returns the smallest registered epoch, or published when no snapshot
// is registered. Called by GC, not by the read path.
func (r *snapRegistry) min(published uint64) uint64 {
	min := published
	r.mu.Lock()
	for _, s := range r.all {
		if e := s.e.Load(); e != 0 && e < min {
			min = e
		}
	}
	r.mu.Unlock()
	return min
}

// publishState publishes the tree's current mutable fields as the
// committed state at the given epoch and tells the pool the epoch is
// durable-eligible. The caller must own the tree exclusively.
func (t *Tree) publishState(epoch uint64) {
	t.state.Store(&treeState{
		root:        t.root,
		height:      t.height,
		size:        t.size,
		cutPortions: t.cutPortions,
		epoch:       epoch,
	})
	t.pool.Publish(epoch)
}

// beginOp opens the copy-on-write bracket for one mutating operation. The
// caller must hold the write lock on t.mu.
func (t *Tree) beginOp() {
	t.pool.BeginWrite(t.state.Load().epoch + 1)
}

// publishOp commits the bracket opened by beginOp: the new state becomes
// visible to readers in one atomic store, then garbage drained by the
// commit is collected. An attached sidecar commits its staging first,
// under the same new epoch — a reader can only pin the epoch after the
// state store below, by which point the sidecar already serves it. The
// caller must hold the write lock on t.mu.
func (t *Tree) publishOp() error {
	newEpoch := t.state.Load().epoch + 1
	if ref := t.sidecar.Load(); ref != nil {
		// gcMin is a proven lower bound on every live and future pinned
		// epoch, so the sidecar may compact versions dead at or below it.
		ref.sc.Commit(newEpoch, t.gcMin.Load())
	}
	t.publishState(newEpoch)
	return t.collectGarbage(true)
}

// abortOp rolls the pool back to the published state and restores the
// tree's working fields from it, so a failed operation leaves no trace.
// The in-memory ID set and leaf modification counters are deliberately not
// rolled back: both only gate heuristics (duplicate elimination stays on a
// little longer, coalescing statistics drift by one op) and never
// correctness. The returned error joins the operation's own error with any
// rollback failure. The caller must hold the write lock on t.mu.
func (t *Tree) abortOp(opErr error) error {
	if ref := t.sidecar.Load(); ref != nil {
		// Staging is the only sidecar state the failed bracket touched.
		ref.sc.Abort()
	}
	rbErr := t.pool.Rollback()
	st := t.state.Load()
	t.root = st.root
	t.height = st.height
	t.size = st.size
	t.cutPortions = st.cutPortions
	return errors.Join(opErr, rbErr)
}

// collectGarbage reclaims page versions no live snapshot can reach.
// freePages additionally executes deferred store-level page frees and is
// reserved for writer-side calls (readers must not touch the store). The
// caller must own the tree exclusively when freePages is set.
func (t *Tree) collectGarbage(freePages bool) error {
	published := t.state.Load().epoch
	min := t.snaps.min(published)
	err := t.pool.Collect(min, freePages)
	for {
		prev := t.gcMin.Load()
		if min <= prev || t.gcMin.CompareAndSwap(prev, min) {
			break
		}
	}
	return err
}

// maybeCollect is the reader-side GC trigger: after a snapshot release, if
// superseded versions are retained and the minimum pinned epoch has
// advanced past the last sweep, one releasing reader (TryLock) sweeps the
// chains. Memory-only: deferred store frees stay on writer paths, so this
// never performs store I/O and cannot fail.
func (t *Tree) maybeCollect() {
	if t.pool.RetainedVersions() == 0 {
		return
	}
	published := t.state.Load().epoch
	if t.snaps.min(published) <= t.gcMin.Load() {
		return
	}
	if !t.gcMu.TryLock() {
		return
	}
	defer t.gcMu.Unlock()
	_ = t.collectGarbage(false)
}

// acquireRead pins the current published epoch into the context's registry
// slot and returns the matching state. Lock-free; the loop handles the one
// race that matters: if the writer publishes between our state load and
// slot store, its GC scan may have run before our registration became
// visible and reclaimed versions our epoch needs — but then the re-load
// observes the newer state and we re-pin at the newer epoch, for which the
// writer is obliged to retain everything. (The writer publishes the state
// first and scans the registry second; we store the slot first and check
// the state second. Under Go's sequentially consistent atomics one of the
// two orders must cross: either the writer sees our registration, or we
// see its publication.)
func (t *Tree) acquireRead(qc *queryCtx) *treeState {
	if qc.slot == nil {
		qc.slot = t.snaps.newSlot()
	}
	for {
		st := t.state.Load()
		qc.slot.e.Store(st.epoch)
		if t.state.Load() == st {
			qc.epoch = st.epoch
			return st
		}
	}
}

// CommitEpoch reports the number of committed write operations: 0 for a
// freshly constructed or reopened tree, monotonically increasing by one
// per Insert/Delete/DeleteWhere (including no-op deletes). The HTTP result
// cache keys its entries on this value.
func (t *Tree) CommitEpoch() uint64 { return t.state.Load().epoch - 1 }

// View is an immutable snapshot of an index. All methods are safe for
// concurrent use by multiple goroutines; queries acquire no tree-level
// lock and observe exactly the committed state at the pin epoch, no matter
// how many writes commit while the view is held. Release must be called
// exactly once when done — holding a view pins every page version it can
// reach, so leaking one retains memory until the next tree mutation's GC
// would (never) free it. seglint's pinbalance pass proves the
// Snapshot/Release pairing statically.
type View interface {
	// Search returns the logical records intersecting query (deduplicated
	// by record ID), as of the snapshot.
	Search(query geom.Rect) ([]Entry, error)
	// SearchFunc streams every stored entry intersecting query. Entry
	// rectangles are views valid only during the callback.
	SearchFunc(query geom.Rect, fn func(Entry) bool) error
	// SearchContaining returns the records entirely containing query (the
	// stabbing query), as of the snapshot.
	SearchContaining(query geom.Rect) ([]Entry, error)
	// SearchContainingFunc streams the records entirely containing query.
	SearchContainingFunc(query geom.Rect, fn func(Entry) bool) error
	// Count returns the number of logical records intersecting query.
	Count(query geom.Rect) (int, error)
	// Len reports the number of logical records in the snapshot.
	Len() int
	// Epoch reports the commit epoch the snapshot was pinned at.
	Epoch() uint64
	// Release unpins the snapshot. Idempotent; the view is unusable after.
	Release()
}

// TreeView is a pinned snapshot of a single tree; see View.
type TreeView struct {
	t        *Tree
	st       *treeState
	slot     *snapSlot
	released atomic.Bool
}

// Snapshot pins the current committed state of the tree and returns a View
// over it. The snapshot observes no subsequent mutations. Callers must
// Release the view; until then every page version it can reach is retained.
func (t *Tree) Snapshot() View {
	v := &TreeView{t: t, slot: t.snaps.getSlot()}
	for {
		st := t.state.Load()
		v.slot.e.Store(st.epoch)
		if t.state.Load() == st {
			v.st = st
			return v
		}
	}
}

// Release unpins the snapshot and returns its registry slot. Idempotent.
func (v *TreeView) Release() {
	if !v.released.CompareAndSwap(false, true) {
		return
	}
	v.slot.e.Store(0)
	v.t.snaps.putSlot(v.slot)
	v.t.maybeCollect()
}

// Epoch reports the commit epoch the snapshot was pinned at (same scale as
// Tree.CommitEpoch).
func (v *TreeView) Epoch() uint64 { return v.st.epoch - 1 }

// Len reports the number of logical records in the snapshot.
func (v *TreeView) Len() int { return v.st.size }

// SearchFunc implements View.
func (v *TreeView) SearchFunc(query geom.Rect, fn func(Entry) bool) error {
	if v.released.Load() {
		return ErrSnapshotReleased
	}
	t := v.t
	if err := t.validateRect(query); err != nil {
		return err
	}
	qc := t.getQctxAt(v.st.epoch)
	defer t.releaseQctx(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.searchFunc(v.st, qc, query, fn)
}

// Search implements View.
func (v *TreeView) Search(query geom.Rect) ([]Entry, error) {
	if v.released.Load() {
		return nil, ErrSnapshotReleased
	}
	t := v.t
	if err := t.validateRect(query); err != nil {
		return nil, err
	}
	qc := t.getQctxAt(v.st.epoch)
	defer t.releaseQctx(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	if err := t.searchRouted(v.st, qc, query); err != nil {
		return nil, err
	}
	return materialize(qc.entries, t.cfg.Dims), nil
}

// SearchContainingFunc implements View.
func (v *TreeView) SearchContainingFunc(query geom.Rect, fn func(Entry) bool) error {
	if v.released.Load() {
		return ErrSnapshotReleased
	}
	t := v.t
	if err := t.validateRect(query); err != nil {
		return err
	}
	qc := t.getQctxAt(v.st.epoch)
	defer t.releaseQctx(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.containingRouted(v.st, qc, query, fn)
}

// SearchContaining implements View.
func (v *TreeView) SearchContaining(query geom.Rect) ([]Entry, error) {
	return collectContaining(v.t.cfg.Dims, v.SearchContainingFunc, query)
}

// Count implements View.
func (v *TreeView) Count(query geom.Rect) (int, error) {
	if v.released.Load() {
		return 0, ErrSnapshotReleased
	}
	t := v.t
	if err := t.validateRect(query); err != nil {
		return 0, err
	}
	qc := t.getQctxAt(v.st.epoch)
	defer t.releaseQctx(qc)
	atomic.AddUint64(&t.stats.Searches, 1)
	return t.countRouted(v.st, qc, query)
}

// collectContaining materializes a containing-func traversal into
// caller-owned entries; shared by Tree.SearchContaining and the views.
func collectContaining(k int, search func(geom.Rect, func(Entry) bool) error, query geom.Rect) ([]Entry, error) {
	var (
		out    []Entry
		floats []float64
	)
	err := search(query, func(e Entry) bool {
		floats = append(floats, e.Rect.Min...)
		floats = append(floats, e.Rect.Max...)
		out = append(out, Entry{ID: e.ID})
		return true
	})
	if err != nil {
		return nil, err
	}
	// Rect views are installed only now: the appends above may have moved
	// the backing array.
	for i := range out {
		off := i * 2 * k
		out[i].Rect = geom.Rect{Min: floats[off : off+k : off+k], Max: floats[off+k : off+2*k : off+2*k]}
	}
	return out, nil
}
