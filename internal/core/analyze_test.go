package core

import (
	"math/rand"
	"strings"
	"testing"

	"segidx/internal/node"
)

func TestAnalyzeBasics(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := tr.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Height != tr.Height() {
		t.Errorf("report height %d != %d", rep.Height, tr.Height())
	}
	if rep.LogicalRecords != 1000 {
		t.Errorf("logical records %d", rep.LogicalRecords)
	}
	if rep.StoredPortions < 1000 {
		t.Errorf("portions %d < 1000", rep.StoredPortions)
	}
	if len(rep.Levels) != rep.Height {
		t.Errorf("levels %d != height %d", len(rep.Levels), rep.Height)
	}
	total := 0
	for _, l := range rep.Levels {
		total += l.Nodes
	}
	if total != rep.Nodes || total != tr.NodeCount() {
		t.Errorf("node counts inconsistent: sum=%d report=%d store=%d", total, rep.Nodes, tr.NodeCount())
	}
	// Leaf occupancy should be sane.
	leaf := rep.Levels[0]
	if leaf.Occupancy <= 0 || leaf.Occupancy > 1.01 {
		t.Errorf("leaf occupancy %g out of range", leaf.Occupancy)
	}
	s := rep.String()
	if !strings.Contains(s, "height=") || !strings.Contains(s, "level") {
		t.Errorf("report string malformed:\n%s", s)
	}
}

func TestAnalyzeSkeletonHasLessOverlapThanDynamic(t *testing.T) {
	// The paper's central structural claim: skeleton pre-partitioning
	// yields far less sibling overlap than dynamically grown trees on
	// short horizontal segment data (Graphs 1 and 5). Long intervals are
	// excluded here — without spanning records they stretch skeleton
	// leaves past their partitions, which is exactly the Skeleton-R-Tree
	// weakness the SR variant fixes.
	rng := rand.New(rand.NewSource(83))
	segments := make([]struct {
		r  [4]float64
		id node.RecordID
	}, 4000)
	for i := range segments {
		y := rng.Float64() * 1000
		cx := rng.Float64() * 1000
		length := rng.Float64() * 10
		lo, hi := clamp(cx-length/2), clamp(cx+length/2)
		segments[i].r = [4]float64{lo, y, hi, y}
		segments[i].id = node.RecordID(i + 1)
	}

	dyn, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	skel, err := NewInMemory(skeletonConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := skel.BuildSkeleton(Estimate{Tuples: len(segments), Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	for _, s := range segments {
		r := rect4(s.r)
		if err := dyn.Insert(r, s.id); err != nil {
			t.Fatal(err)
		}
		if err := skel.Insert(r, s.id); err != nil {
			t.Fatal(err)
		}
	}
	// Vertical query rectangles (the paper's VQAR range) touch far fewer
	// nodes on the skeleton index, whose partitions are compact, than on
	// the dynamically grown tree, whose nodes elongate horizontally on
	// horizontal segment data.
	vertCost := func(tr *Tree) float64 {
		before := tr.Stats()
		for q := 0; q < 50; q++ {
			cx := float64(q) * 20
			if _, err := tr.Search(rect4([4]float64{cx, 0, cx + 10, 1000})); err != nil {
				t.Fatal(err)
			}
		}
		after := tr.Stats()
		return float64(after.SearchNodeAccesses-before.SearchNodeAccesses) / 50
	}
	dynCost := vertCost(dyn)
	skelCost := vertCost(skel)
	if skelCost >= dynCost {
		t.Errorf("vertical-query cost: skeleton %.1f nodes/search not below dynamic %.1f", skelCost, dynCost)
	}

	// Both reports remain internally consistent.
	for _, tr := range []*Tree{dyn, skel} {
		rep, err := tr.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if rep.LogicalRecords != len(segments) {
			t.Errorf("report logical records %d, want %d", rep.LogicalRecords, len(segments))
		}
	}
}
