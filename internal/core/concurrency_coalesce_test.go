package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// TestConcurrentReadersDuringDeleteCoalesce exercises the one-writer /
// many-readers contract through the structurally most aggressive write
// path: a delete stream over an over-provisioned skeleton that triggers
// leaf coalescing (node frees and branch rewrites) while readers search,
// poll stats, and periodically walk the whole structure. Run with -race.
func TestConcurrentReadersDuringDeleteCoalesce(t *testing.T) {
	cfg := skeletonConfig(true)
	cfg.CoalesceEvery = 25
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 4000, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}

	// Preload a dense corner plus a scattered remainder so deletes leave
	// many sparse sibling leaves for the coalescer.
	const preload = 800
	rng := rand.New(rand.NewSource(501))
	rects := make([]geom.Rect, preload)
	for i := 0; i < preload; i++ {
		var r geom.Rect
		if i%4 == 0 {
			r = randSegment(rng)
		} else {
			x := rng.Float64() * 150
			y := rng.Float64() * 150
			r = geom.Rect2(x, y, x, y)
		}
		rects[i] = r
		if err := tr.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	done := make(chan struct{})

	// Writer: interleave deletes (which condense nodes and trigger
	// coalesce scans) with fresh inserts so the structure keeps churning
	// in both directions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(502))
		next := node.RecordID(preload + 1)
		for i := 0; i < preload; i++ {
			if _, err := tr.Delete(node.RecordID(i+1), rects[i]); err != nil {
				errs <- fmt.Errorf("delete %d: %w", i+1, err)
				return
			}
			if i%3 == 0 {
				if err := tr.Insert(randSegment(wrng), next); err != nil {
					errs <- fmt.Errorf("interleaved insert: %w", err)
					return
				}
				next++
			}
		}
	}()

	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(600 + r)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				q := randQuery(qrng)
				// Every result must intersect the query — internal
				// consistency is all a reader can demand while the
				// writer mutates.
				err := tr.SearchFunc(q, func(e Entry) bool {
					if !e.Rect.Intersects(q) {
						errs <- fmt.Errorf("reader %d: entry %v outside query %v", r, e.Rect, q)
						return false
					}
					return true
				})
				if err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				_ = tr.Len()
				_ = tr.Stats()
				if i%50 == 0 {
					// A full structural walk under the read lock must be
					// safe against the writer at any interleaving.
					if err := tr.CheckInvariants(); err != nil {
						errs <- fmt.Errorf("reader %d invariants: %w", r, err)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tr.Stats().Coalesces; got == 0 {
		t.Fatal("delete stream never triggered a coalesce; the test lost its point")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
