package core

import (
	"fmt"
	"math"
	"strings"

	"segidx/internal/page"
)

// LevelReport summarizes one level of the index.
type LevelReport struct {
	Level      int
	Nodes      int
	Branches   int     // total branch entries
	Records    int     // data records (leaves) or spanning records (non-leaf)
	Area       float64 // total area of node cover rectangles
	Overlap    float64 // total pairwise overlap area between sibling covers
	MeanAspect float64 // geometric mean horizontal/vertical aspect ratio
	Occupancy  float64 // mean fill fraction (entries / capacity)
}

// Report summarizes the structural quality of the index: the quantities the
// paper's discussion revolves around (node overlap, region aspect ratios,
// spanning record placement).
type Report struct {
	Height          int
	Nodes           int
	LogicalRecords  int
	StoredPortions  int
	SpanningRecords int
	Levels          []LevelReport
}

// Analyze walks the index and computes a structural report.
func (t *Tree) Analyze() (*Report, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rep := &Report{Height: t.height, LogicalRecords: t.size}
	byLevel := make(map[int]*LevelReport)
	aspectLogSum := make(map[int]float64)
	aspectCount := make(map[int]int)

	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		n, err := t.fetch(id, nil)
		if err != nil {
			return err
		}
		lr, ok := byLevel[n.Level]
		if !ok {
			lr = &LevelReport{Level: n.Level}
			byLevel[n.Level] = lr
		}
		lr.Nodes++
		rep.Nodes++
		lr.Branches += len(n.Branches)
		lr.Records += len(n.Records)
		rep.StoredPortions += len(n.Records)
		if !n.IsLeaf() {
			rep.SpanningRecords += len(n.Records)
		}
		cover := n.Cover(t.cfg.Dims)
		if !cover.IsEmptyMarker() {
			lr.Area += cover.Area()
			if t.cfg.Dims >= 2 {
				ar := cover.AspectRatio()
				if ar > 0 && !math.IsInf(ar, 0) {
					aspectLogSum[n.Level] += math.Log(ar)
					aspectCount[n.Level]++
				}
			}
		}
		// Pairwise overlap between the covers of this node's children.
		for i := 0; i < len(n.Branches); i++ {
			for j := i + 1; j < len(n.Branches); j++ {
				childLevel := n.Level - 1
				clr, ok := byLevel[childLevel]
				if !ok {
					clr = &LevelReport{Level: childLevel}
					byLevel[childLevel] = clr
				}
				clr.Overlap += n.Branches[i].Rect.OverlapArea(n.Branches[j].Rect)
			}
		}
		var capTotal int
		if n.IsLeaf() {
			capTotal = t.leafCap()
		} else {
			capTotal = t.branchCap(n.Level)
		}
		if capTotal > 0 {
			entries := len(n.Branches)
			if n.IsLeaf() {
				entries = len(n.Records)
			}
			lr.Occupancy += float64(entries) / float64(capTotal)
		}
		children := make([]page.ID, len(n.Branches))
		for i := range n.Branches {
			children[i] = n.Branches[i].Child
		}
		t.done(id, false)
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	for level := 0; level < t.height; level++ {
		lr, ok := byLevel[level]
		if !ok {
			continue
		}
		if lr.Nodes > 0 {
			lr.Occupancy /= float64(lr.Nodes)
		}
		if c := aspectCount[level]; c > 0 {
			lr.MeanAspect = math.Exp(aspectLogSum[level] / float64(c))
		}
		rep.Levels = append(rep.Levels, *lr)
	}
	return rep, nil
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "height=%d nodes=%d logical=%d portions=%d spanning=%d\n",
		r.Height, r.Nodes, r.LogicalRecords, r.StoredPortions, r.SpanningRecords)
	fmt.Fprintf(&b, "%-6s %8s %9s %9s %14s %14s %8s %6s\n",
		"level", "nodes", "branches", "records", "area", "overlap", "aspect", "fill")
	for i := len(r.Levels) - 1; i >= 0; i-- {
		l := r.Levels[i]
		fmt.Fprintf(&b, "%-6d %8d %9d %9d %14.4g %14.4g %8.3g %6.2f\n",
			l.Level, l.Nodes, l.Branches, l.Records, l.Area, l.Overlap, l.MeanAspect, l.Occupancy)
	}
	return b.String()
}
