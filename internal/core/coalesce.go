package core

import (
	"sort"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
)

// coalesce merges sparsely populated, spatially adjacent sibling leaves
// (Section 4: skeleton indexes adapt to the actual distribution by making
// high-density regions finer through splitting and sparse regions coarser
// through coalescing). Triggered every Config.CoalesceEvery insertions; the
// scan considers only the Config.CoalesceCandidates least-frequently-
// modified leaves, the restriction the paper proposes.
//
// Two leaves merge when their regions share a full (D-1)-dimensional face
// and the combined record count stays below CoalesceMaxFill of leaf
// capacity. Spanning records linked to the removed leaf are relinked to the
// merged leaf when they still span it, and reinserted otherwise. The caller
// must hold the write lock on t.mu.
func (t *Tree) coalesce(o *op) error {
	L := t.cfg.CoalesceCandidates
	if L <= 0 || t.height < 2 {
		return nil
	}
	candidates := t.leastModifiedLeaves(L)
	if len(candidates) == 0 {
		return nil
	}
	// One pass over the leaf parents; merge at most one pair per parent
	// per trigger to bound the work.
	return t.coalesceScan(t.root, candidates, o)
}

// leastModifiedLeaves returns the IDs of the L leaves with the smallest
// modification counts.
func (t *Tree) leastModifiedLeaves(L int) map[page.ID]bool {
	type leafMod struct {
		id   page.ID
		mods uint64
	}
	all := make([]leafMod, 0, len(t.modCounts))
	for id, m := range t.modCounts {
		all = append(all, leafMod{id, m})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].mods != all[b].mods {
			return all[a].mods < all[b].mods
		}
		return all[a].id < all[b].id
	})
	if len(all) > L {
		all = all[:L]
	}
	out := make(map[page.ID]bool, len(all))
	for _, lm := range all {
		out[lm.id] = true
	}
	return out
}

// coalesceScan walks down to leaf parents and merges one eligible pair per
// parent.
func (t *Tree) coalesceScan(nid page.ID, candidates map[page.ID]bool, o *op) error {
	n, err := t.fetch(nid, o.accesses)
	if err != nil {
		return err
	}
	if n.IsLeaf() {
		t.done(nid, false)
		return nil
	}
	if n.Level > 1 {
		children := make([]page.ID, len(n.Branches))
		for i := range n.Branches {
			children[i] = n.Branches[i].Child
		}
		t.done(nid, false)
		for _, c := range children {
			if err := t.coalesceScan(c, candidates, o); err != nil {
				return err
			}
		}
		return nil
	}

	// n is a leaf parent: look for a mergeable pair involving a candidate.
	// Re-fetch for mutation (copy-on-write): the read-only pin above must
	// be released before the page is cloned into the write bracket.
	t.done(nid, false)
	n, err = t.fetchMut(nid, o.accesses)
	if err != nil {
		return err
	}
	dirty := false
	for i := range n.Branches {
		if !candidates[n.Branches[i].Child] {
			continue
		}
		j := t.findMergePartner(n, i, o)
		if j < 0 {
			continue
		}
		if err := t.mergeLeaves(n, i, j, o); err != nil {
			t.done(nid, dirty)
			return err
		}
		dirty = true
		if t.cfg.Spanning {
			o.revalidate[nid] = true
		}
		break // one merge per parent per trigger
	}
	t.done(nid, dirty)
	return nil
}

// findMergePartner returns the index of a sibling branch whose leaf is
// spatially adjacent to branch i and small enough to merge, or -1.
func (t *Tree) findMergePartner(n *node.Node, i int, o *op) int {
	maxRecords := int(float64(t.leafCap()) * t.cfg.CoalesceMaxFill)
	li, err := t.fetch(n.Branches[i].Child, o.accesses)
	if err != nil {
		return -1
	}
	ci := len(li.Records)
	ri := li.Region
	hasRegion := li.HasRegion()
	t.done(li.ID, false)
	if !hasRegion {
		// Only skeleton leaves carry regions; adjacency is defined on
		// partition regions.
		return -1
	}
	best, bestCount := -1, maxRecords+1
	for j := range n.Branches {
		if j == i {
			continue
		}
		lj, err := t.fetch(n.Branches[j].Child, o.accesses)
		if err != nil {
			continue
		}
		ok := lj.HasRegion() && regionsAdjacent(ri, lj.Region) && ci+len(lj.Records) <= maxRecords
		cj := len(lj.Records)
		t.done(lj.ID, false)
		if ok && ci+cj < bestCount {
			best, bestCount = j, ci+cj
		}
	}
	return best
}

// regionsAdjacent reports whether two regions share a full (D-1)-face:
// identical extents in all dimensions but one, touching in that one.
// Comparisons are epsilon-tolerant: skeleton partition boundaries come from
// histogram quantile arithmetic, and faces that differ only by rounding
// still tile the domain.
func regionsAdjacent(a, b geom.Rect) bool {
	touchDim := -1
	for d := 0; d < a.Dims(); d++ {
		if geom.Feq(a.Min[d], b.Min[d]) && geom.Feq(a.Max[d], b.Max[d]) {
			continue
		}
		if geom.Feq(a.Max[d], b.Min[d]) || geom.Feq(b.Max[d], a.Min[d]) {
			if touchDim >= 0 {
				return false
			}
			touchDim = d
			continue
		}
		return false
	}
	return touchDim >= 0
}

// mergeLeaves folds leaf j into leaf i under their shared parent n.
func (t *Tree) mergeLeaves(n *node.Node, i, j int, o *op) error {
	keepID := n.Branches[i].Child
	dropID := n.Branches[j].Child
	keep, err := t.fetchMut(keepID, o.accesses)
	if err != nil {
		return err
	}
	drop, err := t.fetchMut(dropID, o.accesses)
	if err != nil {
		t.done(keepID, false)
		return err
	}
	keep.Records = append(keep.Records, drop.Records...)
	keep.Region = keep.Region.Union(drop.Region)
	drop.Records = nil
	t.done(dropID, true)
	if err := t.pool.Free(dropID); err != nil {
		t.done(keepID, true)
		return err
	}
	t.forgetLeaf(dropID)
	t.touchLeaf(keepID)

	n.Branches[i].Rect = keep.Cover(t.cfg.Dims)
	t.done(keepID, true)
	n.RemoveBranch(j)

	// Spanning records linked to the dropped leaf relink to the merged
	// leaf when they still span it; otherwise they are reinserted.
	for k := len(n.Records) - 1; k >= 0; k-- {
		if n.Records[k].Span != dropID {
			continue
		}
		// Relink against the merged branch (the merged rect index may
		// have shifted after RemoveBranch; look it up).
		bi := n.BranchIndex(keepID)
		if bi >= 0 && spansQualify(n.Records[k].Rect, n.Branches[bi].Rect) {
			n.Records[k].Span = keepID
			t.stats.Relinks++
			continue
		}
		rec := n.Records[k]
		n.RemoveRecord(k)
		t.stats.Demotions++
		o.enqueue(rec.Rect, rec.ID)
	}
	t.stats.Coalesces++
	return nil
}
