package core

import (
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

func bulkRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Rect: randBox(rng), ID: node.RecordID(i + 1)}
	}
	return out
}

func TestBulkLoadBasics(t *testing.T) {
	recs := bulkRecords(5000, 101)
	tr, err := BulkLoad(smallConfig(false), store.NewMemStore(), recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full occupancy: node count close to the minimum possible.
	rep, err := tr.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	leafOcc := rep.Levels[0].Occupancy
	if leafOcc < 0.95 {
		t.Errorf("packed leaf occupancy %g, want ~1.0", leafOcc)
	}
	// Search correctness vs brute force.
	m := newModel()
	for _, r := range recs {
		m.insert(r.Rect, r.ID)
	}
	rng := rand.New(rand.NewSource(102))
	for q := 0; q < 200; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatalf("packed tree diverged on %v", query)
		}
	}
}

func TestBulkLoadEdgeCases(t *testing.T) {
	// Empty input yields a usable empty tree.
	tr, err := BulkLoad(smallConfig(true), store.NewMemStore(), nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty bulk load: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Insert(geom.Point(1, 1), 1); err != nil {
		t.Fatal(err)
	}

	// Single record.
	tr, err = BulkLoad(smallConfig(false), store.NewMemStore(), bulkRecords(1, 5), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Fatalf("single: len=%d height=%d", tr.Len(), tr.Height())
	}

	// Fewer records than one leaf holds.
	tr, err = BulkLoad(smallConfig(false), store.NewMemStore(), bulkRecords(3, 6), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("3 records built height %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Invalid fill rejected.
	if _, err := BulkLoad(smallConfig(false), store.NewMemStore(), nil, 0); err == nil {
		t.Error("fill 0 accepted")
	}
	if _, err := BulkLoad(smallConfig(false), store.NewMemStore(), nil, 1.5); err == nil {
		t.Error("fill 1.5 accepted")
	}
	// Invalid record rejected.
	bad := []Record{{Rect: geom.Rect{Min: []float64{1}, Max: []float64{0}}, ID: 1}}
	if _, err := BulkLoad(smallConfig(false), store.NewMemStore(), bad, 1.0); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	recs := bulkRecords(2000, 103)
	tr, err := BulkLoad(smallConfig(true), store.NewMemStore(), recs, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m := newModel()
	for _, r := range recs {
		m.insert(r.Rect, r.ID)
	}
	rng := rand.New(rand.NewSource(104))
	// Mixed inserts and deletes on the packed tree.
	next := node.RecordID(100000)
	for i := 0; i < 1000; i++ {
		if rng.Intn(2) == 0 {
			r := randSegment(rng)
			if err := tr.Insert(r, next); err != nil {
				t.Fatal(err)
			}
			m.insert(r, next)
			next++
		} else {
			id := node.RecordID(rng.Intn(2000) + 1)
			if r, ok := m.rects[id]; ok {
				if _, err := tr.Delete(id, r); err != nil {
					t.Fatal(err)
				}
				m.delete(id)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatal("mutated packed tree diverged")
		}
	}
}

func TestBulkLoadBeatsDynamicOnSearch(t *testing.T) {
	// Packing is the static gold standard the paper compares skeletons to
	// for uniformly sized data: it should beat a dynamically grown R-Tree
	// on search cost. (On skewed-size data packing degrades — the very
	// problem segment indexes address — so this fixture uses small boxes.)
	rng0 := rand.New(rand.NewSource(105))
	recs := make([]Record, 5000)
	for i := range recs {
		x, y := rng0.Float64()*990, rng0.Float64()*990
		recs[i] = Record{
			Rect: geom.Rect2(x, y, x+rng0.Float64()*10, y+rng0.Float64()*10),
			ID:   node.RecordID(i + 1),
		}
	}
	packed, err := BulkLoad(smallConfig(false), store.NewMemStore(), recs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := dyn.Insert(r.Rect, r.ID); err != nil {
			t.Fatal(err)
		}
	}
	cost := func(tr *Tree) float64 {
		rng := rand.New(rand.NewSource(106))
		before := tr.Stats().SearchNodeAccesses
		for q := 0; q < 100; q++ {
			if _, err := tr.Search(randQuery(rng)); err != nil {
				t.Fatal(err)
			}
		}
		return float64(tr.Stats().SearchNodeAccesses - before)
	}
	packedCost := cost(packed)
	dynCost := cost(dyn)
	// Packing's guaranteed wins are occupancy and node count; search cost
	// should at least be in the same league as the dynamic build.
	if packed.NodeCount() >= dyn.NodeCount() {
		t.Errorf("packed node count %d not below dynamic %d", packed.NodeCount(), dyn.NodeCount())
	}
	if packedCost > 1.5*dynCost {
		t.Errorf("packed search cost %g far above dynamic %g", packedCost, dynCost)
	}
}

func TestSTROrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, n := range []int{1, 2, 7, 100, 1333} {
		rects := make([]geom.Rect, n)
		for i := range rects {
			rects[i] = randBox(rng)
		}
		order := strOrder(rects, 2, 10)
		if len(order) != n {
			t.Fatalf("n=%d: order len %d", n, len(order))
		}
		seen := make([]bool, n)
		for _, idx := range order {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("n=%d: not a permutation", n)
			}
			seen[idx] = true
		}
	}
}
