package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// TestConcurrentSearchesDuringInserts exercises the documented concurrency
// contract: one writer with concurrent readers. Run with -race.
func TestConcurrentSearchesDuringInserts(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 1
		readers  = 4
		inserts  = 2000
		searches = 500
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(201))
		for i := 0; i < inserts; i++ {
			if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for i := 0; i < searches; i++ {
				q := randQuery(rng)
				// Results must be internally consistent: entries
				// intersect the query.
				err := tr.SearchFunc(q, func(e Entry) bool {
					if !e.Rect.Intersects(q) {
						errs <- errNonIntersecting
						return false
					}
					return true
				})
				if err != nil {
					errs <- err
					return
				}
				_ = tr.Stats()
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != inserts {
		t.Fatalf("Len = %d", tr.Len())
	}
}

var errNonIntersecting = geom.ErrDimMismatch // reused sentinel; value irrelevant

// TestConcurrentStressWritersReaders races several writers (inserts and
// deletes over disjoint record ID spaces) against several readers on all
// four index variants, pausing between rounds to validate structural
// invariants and the record count. Sized for -race throughput; the
// deterministic property tests elsewhere cover result exactness.
func TestConcurrentStressWritersReaders(t *testing.T) {
	variants := []struct {
		name     string
		spanning bool
		skeleton bool
	}{
		{"r-tree", false, false},
		{"sr-tree", true, false},
		{"skeleton-r-tree", false, true},
		{"skeleton-sr-tree", true, true},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			tr, err := NewInMemory(smallConfig(v.spanning))
			if err != nil {
				t.Fatal(err)
			}
			if v.skeleton {
				if err := tr.BuildSkeleton(Estimate{Tuples: 2000, Domain: domain1000()}); err != nil {
					t.Fatal(err)
				}
			}
			const (
				writers         = 3
				readers         = 4
				rounds          = 3
				insertsPerRound = 150
				deleteEvery     = 4 // one delete per this many inserts
			)
			// Each writer owns a disjoint ID space and a private map of its
			// live records (touched only by that writer during a round, and
			// by the main goroutine at quiesce, after the round's Wait).
			type writerState struct {
				rng  *rand.Rand
				next int
				live map[node.RecordID]geom.Rect
			}
			states := make([]*writerState, writers)
			for w := range states {
				states[w] = &writerState{
					rng:  rand.New(rand.NewSource(int64(500 + w))),
					live: make(map[node.RecordID]geom.Rect),
				}
			}
			gen := randBox
			if v.spanning {
				gen = randSegment
			}
			for round := 0; round < rounds; round++ {
				var wwg, rwg sync.WaitGroup
				stop := make(chan struct{})
				errs := make(chan error, writers+readers)
				for r := 0; r < readers; r++ {
					r := r
					rwg.Add(1)
					go func() {
						defer rwg.Done()
						rng := rand.New(rand.NewSource(int64(700 + r)))
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							q := randQuery(rng)
							err := tr.SearchFunc(q, func(e Entry) bool {
								if !e.Rect.Intersects(q) {
									errs <- errNonIntersecting
									return false
								}
								return true
							})
							if err != nil {
								errs <- err
								return
							}
							if _, err := tr.Count(q); err != nil {
								errs <- err
								return
							}
							_ = tr.Stats()
							_ = tr.Len()
							if i%32 == 0 {
								if _, err := tr.Analyze(); err != nil {
									errs <- err
									return
								}
							}
						}
					}()
				}
				for w := 0; w < writers; w++ {
					st := states[w]
					idBase := node.RecordID(1 + w*1_000_000)
					wwg.Add(1)
					go func() {
						defer wwg.Done()
						for i := 0; i < insertsPerRound; i++ {
							r := gen(st.rng)
							id := idBase + node.RecordID(st.next)
							st.next++
							if err := tr.Insert(r, id); err != nil {
								errs <- err
								return
							}
							st.live[id] = r
							if i%deleteEvery == deleteEvery-1 {
								// Delete an arbitrary live record (first map
								// key) using its exact rect as the hint.
								for victim, hint := range st.live {
									n, err := tr.Delete(victim, hint)
									if err != nil {
										errs <- err
										return
									}
									if n != 1 {
										errs <- fmt.Errorf("delete %d removed %d records", victim, n)
										return
									}
									delete(st.live, victim)
									break
								}
							}
						}
					}()
				}
				wwg.Wait()
				close(stop)
				rwg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				// Quiesce: the tree must be structurally sound and hold
				// exactly the surviving records.
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				want := 0
				for _, st := range states {
					want += len(st.live)
				}
				if got := tr.Len(); got != want {
					t.Fatalf("round %d: Len = %d, want %d", round, got, want)
				}
			}
			// Every surviving record must still be reachable by its rect.
			for _, st := range states {
				for id, r := range st.live {
					found := false
					err := tr.SearchFunc(r, func(e Entry) bool {
						if e.ID == id {
							found = true
							return false
						}
						return true
					})
					if err != nil {
						t.Fatal(err)
					}
					if !found {
						t.Fatalf("record %d lost after stress", id)
					}
				}
			}
		})
	}
}

// TestConcurrentSearchesOnly verifies many readers proceed in parallel on
// a static tree.
func TestConcurrentSearchesOnly(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(randBox(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	m := newModel()
	// Rebuild the model from the same stream.
	rng = rand.New(rand.NewSource(202))
	for i := 0; i < 3000; i++ {
		m.insert(randBox(rng), node.RecordID(i+1))
	}
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; i < 100; i++ {
				q := randQuery(qrng)
				entries, err := tr.Search(q)
				if err != nil {
					fail <- err.Error()
					return
				}
				if len(entries) != len(m.search(q)) {
					fail <- "result count diverged under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
