package core

import (
	"math/rand"
	"sync"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// TestConcurrentSearchesDuringInserts exercises the documented concurrency
// contract: one writer with concurrent readers. Run with -race.
func TestConcurrentSearchesDuringInserts(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 1
		readers  = 4
		inserts  = 2000
		searches = 500
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(201))
		for i := 0; i < inserts; i++ {
			if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for i := 0; i < searches; i++ {
				q := randQuery(rng)
				// Results must be internally consistent: entries
				// intersect the query.
				err := tr.SearchFunc(q, func(e Entry) bool {
					if !e.Rect.Intersects(q) {
						errs <- errNonIntersecting
						return false
					}
					return true
				})
				if err != nil {
					errs <- err
					return
				}
				_ = tr.Stats()
				_ = tr.Len()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != inserts {
		t.Fatalf("Len = %d", tr.Len())
	}
}

var errNonIntersecting = geom.ErrDimMismatch // reused sentinel; value irrelevant

// TestConcurrentSearchesOnly verifies many readers proceed in parallel on
// a static tree.
func TestConcurrentSearchesOnly(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(202))
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(randBox(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	m := newModel()
	// Rebuild the model from the same stream.
	rng = rand.New(rand.NewSource(202))
	for i := 0; i < 3000; i++ {
		m.insert(randBox(rng), node.RecordID(i+1))
	}
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; i < 100; i++ {
				q := randQuery(qrng)
				entries, err := tr.Search(q)
				if err != nil {
					fail <- err.Error()
					return
				}
				if len(entries) != len(m.search(q)) {
					fail <- "result count diverged under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
