package core

import (
	"fmt"
	"strings"

	"segidx/internal/geom"
	"segidx/internal/page"
)

// PathStep identifies one node on the root-to-violation path carried by an
// InvariantError: the node's page ID and its level (leaves are level 0).
type PathStep struct {
	ID    page.ID
	Level int
}

func (s PathStep) String() string { return fmt.Sprintf("%v@%d", s.ID, s.Level) }

// InvariantError is the error type CheckInvariants returns for structural
// violations. Path lists the nodes walked from the root down to the
// violating node, inclusive, so a failure pinpoints where in the tree the
// structure went wrong rather than only what went wrong. Err holds the
// violation itself and is reachable through errors.Unwrap.
type InvariantError struct {
	Path []PathStep
	Err  error
}

func (e *InvariantError) Error() string {
	var b strings.Builder
	b.WriteString("core: invariant violation at ")
	if len(e.Path) == 0 {
		b.WriteString("(unreadable node)")
	}
	for i, s := range e.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(": ")
	b.WriteString(e.Err.Error())
	return b.String()
}

func (e *InvariantError) Unwrap() error { return e.Err }

// CheckInvariants validates the whole structure and returns the first
// violation found as an *InvariantError (carrying the root-to-violation
// node path), or nil. Checked properties:
//
//   - every node decodes and fits its page (entry counts within capacity);
//   - levels decrease by exactly one along every branch;
//   - every branch rectangle contains the child's cover (content MBR plus
//     skeleton region);
//   - leaf records appear only on leaves; spanning records only on
//     non-leaf nodes with Spanning enabled;
//   - every spanning record is linked to an existing branch of its node,
//     spans that branch's region in a dimension of positive extent, and is
//     contained in the node's own cover;
//   - skeleton sibling regions do not overlap in their interiors;
//   - no page is reachable twice (the structure is a tree);
//   - the recorded height matches the root level;
//   - stored portions in excess of distinct record IDs never exceed the
//     cut-portion gauge (when the gauge is zero the read path skips
//     duplicate elimination, so an under-count would surface duplicates).
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[page.ID]bool)
	if err := t.checkNode(t.root, nil, seen, true, nil); err != nil {
		return err
	}
	portions, distinct, err := t.recordCountLocked()
	if err != nil {
		return err
	}
	if excess := portions - distinct; excess > t.cutPortions {
		return &InvariantError{
			Path: []PathStep{{ID: t.root, Level: t.height - 1}},
			Err: fmt.Errorf("%d stored portions over %d distinct records exceed the cut-portion gauge %d",
				portions, distinct, t.cutPortions),
		}
	}
	return nil
}

// checkNode validates the subtree rooted at id. path holds the PathSteps of
// the ancestors already walked; every violation is wrapped in an
// *InvariantError extending that path with the current node. The caller
// must hold t.mu.
func (t *Tree) checkNode(id page.ID, parentRect *geom.Rect, seen map[page.ID]bool, isRoot bool, path []PathStep) error {
	n, err := t.fetch(id, nil)
	if err != nil {
		return &InvariantError{
			Path: append(append([]PathStep(nil), path...), PathStep{ID: id, Level: -1}),
			Err:  err,
		}
	}
	defer t.done(id, false)
	path = append(path, PathStep{ID: id, Level: n.Level})
	fail := func(format string, args ...any) error {
		return &InvariantError{
			Path: append([]PathStep(nil), path...),
			Err:  fmt.Errorf(format, args...),
		}
	}
	dims := t.cfg.Dims

	if seen[id] {
		return fail("node %v reachable twice", id)
	}
	seen[id] = true

	if isRoot && n.Level != t.height-1 {
		return fail("root %v at level %d but height is %d", id, n.Level, t.height)
	}

	// Capacity.
	if n.IsLeaf() {
		if len(n.Records) > t.leafCap() {
			return fail("leaf %v holds %d records, capacity %d", id, len(n.Records), t.leafCap())
		}
		if len(n.Branches) != 0 {
			return fail("leaf %v has branches", id)
		}
	} else {
		if len(n.Branches) > t.branchCap(n.Level) {
			return fail("node %v holds %d branches, capacity %d", id, len(n.Branches), t.branchCap(n.Level))
		}
		if !t.fitsBytes(n) {
			return fail("node %v entries use %d bytes, page is %d",
				id, t.codec.UsedBytes(n), t.pageBytes(n.Level))
		}
		if len(n.Branches) == 0 {
			return fail("non-leaf %v has no branches", id)
		}
		if !t.cfg.Spanning && len(n.Records) != 0 {
			return fail("node %v has spanning records but Spanning is disabled", id)
		}
	}

	// Parent containment.
	cover := n.Cover(dims)
	if parentRect != nil && !cover.IsEmptyMarker() && !parentRect.Contains(cover) {
		return fail("node %v cover %v exceeds parent branch rect %v", id, cover, *parentRect)
	}

	// Record validity.
	for i, rec := range n.Records {
		if !rec.Rect.Valid() {
			return fail("node %v record %d invalid rect", id, i)
		}
		if n.IsLeaf() {
			if rec.Span != page.Nil {
				return fail("leaf %v record %d carries a span link", id, i)
			}
			continue
		}
		bi := n.BranchIndex(rec.Span)
		if bi < 0 {
			return fail("node %v spanning record %d links to absent branch %v", id, i, rec.Span)
		}
		if !spansQualify(rec.Rect, n.Branches[bi].Rect) {
			return fail("node %v spanning record %d (%v) does not span branch %v",
				id, i, rec.Rect, n.Branches[bi].Rect)
		}
		if !cover.Contains(rec.Rect) {
			return fail("node %v spanning record %d escapes the node cover", id, i)
		}
	}

	// Skeleton regions must be well-formed; sibling overlap is checked
	// during recursion below.
	if n.HasRegion() && !n.Region.Valid() {
		return fail("node %v has invalid region %v", id, n.Region)
	}

	// Recurse.
	for i := range n.Branches {
		b := n.Branches[i]
		if !b.Rect.Valid() {
			return fail("node %v branch %d invalid rect", id, i)
		}
		child, err := t.fetch(b.Child, nil)
		if err != nil {
			return fail("node %v branch %d: %w", id, i, err)
		}
		childLevel := child.Level
		childRegion := geom.Rect{}
		if child.HasRegion() {
			childRegion = child.Region.Clone()
		}
		t.done(b.Child, false)
		if childLevel != n.Level-1 {
			return fail("node %v (level %d) points to child %v at level %d", id, n.Level, b.Child, childLevel)
		}
		if childRegion.Dims() > 0 {
			for j := i + 1; j < len(n.Branches); j++ {
				sib, err := t.fetch(n.Branches[j].Child, nil)
				if err != nil {
					return fail("node %v branch %d: %w", id, j, err)
				}
				overlap := 0.0
				if sib.HasRegion() {
					overlap = childRegion.OverlapArea(sib.Region)
				}
				t.done(n.Branches[j].Child, false)
				if overlap > 0 {
					return fail("skeleton regions of %v and %v overlap", b.Child, n.Branches[j].Child)
				}
			}
		}
		rect := b.Rect
		if err := t.checkNode(b.Child, &rect, seen, false, path); err != nil {
			return err
		}
	}
	return nil
}

// RecordCount walks the tree and counts stored record portions (leaf
// records plus spanning records) and distinct record IDs.
func (t *Tree) RecordCount() (portions int, distinct int, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.recordCountLocked()
}

// recordCountLocked counts stored portions and distinct record IDs. The
// caller must hold t.mu.
func (t *Tree) recordCountLocked() (portions int, distinct int, err error) {
	ids := make(map[uint64]bool)
	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		n, err := t.fetch(id, nil)
		if err != nil {
			return err
		}
		portions += len(n.Records)
		for i := range n.Records {
			ids[uint64(n.Records[i].ID)] = true
		}
		children := make([]page.ID, len(n.Branches))
		for i := range n.Branches {
			children[i] = n.Branches[i].Child
		}
		t.done(id, false)
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return 0, 0, err
	}
	return portions, len(ids), nil
}
