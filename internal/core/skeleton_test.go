package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/histogram"
	"segidx/internal/node"
	"segidx/internal/page"
)

func domain1000() geom.Rect { return geom.Rect2(0, 0, 1000, 1000) }

func skeletonConfig(spanning bool) Config {
	cfg := smallConfig(spanning)
	cfg.CoalesceEvery = 100
	cfg.CoalesceCandidates = 10
	return cfg
}

func TestSkeletonBuildShape(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(skeletonConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			est := Estimate{Tuples: 2000, Domain: domain1000()}
			if err := tr.BuildSkeleton(est); err != nil {
				t.Fatal(err)
			}
			if tr.Height() < 3 {
				t.Fatalf("skeleton height %d, want >= 3 for 2000 tuples with capacity-4 leaves", tr.Height())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Leaf regions must tile the domain exactly.
			var leafArea float64
			var leaves int
			var walk func(id page.ID)
			walk = func(id page.ID) {
				n, err := tr.fetch(id, nil)
				if err != nil {
					t.Fatal(err)
				}
				if n.IsLeaf() {
					leaves++
					if !n.HasRegion() {
						t.Fatal("skeleton leaf without region")
					}
					leafArea += n.Region.Area()
					if !domain1000().Contains(n.Region) {
						t.Fatalf("leaf region %v escapes the domain", n.Region)
					}
				}
				children := make([]page.ID, len(n.Branches))
				for i := range n.Branches {
					children[i] = n.Branches[i].Child
				}
				tr.done(id, false)
				for _, c := range children {
					walk(c)
				}
			}
			walk(tr.root)
			if math.Abs(leafArea-domain1000().Area()) > 1e-6 {
				t.Fatalf("leaf regions cover area %g, domain is %g", leafArea, domain1000().Area())
			}
			if leaves < 500/4 {
				t.Fatalf("only %d pre-allocated leaves for 2000 tuples", leaves)
			}
		})
	}
}

func TestSkeletonRequiresEmptyTree(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Point(1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 100, Domain: domain1000()}); err != ErrNotEmpty {
		t.Fatalf("BuildSkeleton on non-empty tree = %v, want ErrNotEmpty", err)
	}
}

func TestSkeletonEstimateValidation(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Estimate{
		{Tuples: 0, Domain: domain1000()},
		{Tuples: 100, Domain: geom.Rect{Min: []float64{0}, Max: []float64{1}}},
		{Tuples: 100, Domain: geom.Rect2(0, 0, 0, 1000)}, // degenerate dim
		{Tuples: 100, Domain: domain1000(), Hists: make([]*histogram.Histogram, 1)},
	}
	for i, est := range bad {
		if err := tr.BuildSkeleton(est); err == nil {
			t.Errorf("case %d: invalid estimate accepted", i)
		}
	}
}

func TestSkeletonSmallInputIsSingleLeaf(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 3, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	if err := tr.Insert(geom.Point(5, 5), 1); err != nil {
		t.Fatal(err)
	}
	if got := searchIDs(t, tr, domain1000()); !idsEqual(got, []node.RecordID{1}) {
		t.Fatalf("search = %v", got)
	}
}

func TestSkeletonMatchesModelUnderLoad(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(skeletonConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BuildSkeleton(Estimate{Tuples: 2000, Domain: domain1000()}); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(53))
			m := newModel()
			for i := 0; i < 3000; i++ { // 1.5x the estimate: splits must engage
				r := randSegment(rng)
				id := node.RecordID(i + 1)
				if err := tr.Insert(r, id); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				m.insert(r, id)
				if i%1000 == 999 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d: %v", i+1, err)
					}
				}
			}
			for q := 0; q < 200; q++ {
				query := randQuery(rng)
				got := searchIDs(t, tr, query)
				want := m.search(query)
				if !idsEqual(got, want) {
					t.Fatalf("query %v diverged: got %d want %d", query, len(got), len(want))
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSkeletonNonUniformPartitioning(t *testing.T) {
	// An exponential-ish histogram in X must make low-X partitions
	// narrower than high-X ones (Figure 6).
	hx, err := histogram.New(0, 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 20000; i++ {
		v := rng.ExpFloat64() * 120
		if v > 1000 {
			continue
		}
		hx.Add(v)
	}
	tr, err := NewInMemory(skeletonConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	est := Estimate{
		Tuples: 2000,
		Domain: domain1000(),
		Hists:  []*histogram.Histogram{hx, nil}, // X skewed, Y uniform
	}
	if err := tr.BuildSkeleton(est); err != nil {
		t.Fatal(err)
	}
	// Root branches: the leftmost X partition must be much narrower than
	// the rightmost.
	root, err := tr.fetch(tr.root, nil)
	if err != nil {
		t.Fatal(err)
	}
	minW, maxW := math.Inf(1), 0.0
	for _, b := range root.Branches {
		w := b.Rect.Length(0)
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	nBranches := len(root.Branches)
	tr.done(tr.root, false)
	if nBranches < 2 {
		t.Skip("root has a single partition; skew not observable at this level")
	}
	if maxW < 2*minW {
		t.Errorf("partition widths min=%g max=%g do not reflect the skew", minW, maxW)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingMergesSparseLeaves(t *testing.T) {
	cfg := skeletonConfig(false)
	cfg.CoalesceEvery = 50
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overestimate heavily: 5000 expected, only 600 inserted, all in one
	// corner — most pre-allocated leaves stay empty and should coalesce.
	if err := tr.BuildSkeleton(Estimate{Tuples: 5000, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	m := newModel()
	for i := 0; i < 600; i++ {
		r := geom.Point(rng.Float64()*100, rng.Float64()*100)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		m.insert(r, id)
	}
	st := tr.Stats()
	if st.Coalesces == 0 {
		t.Fatal("no coalescing on a heavily over-provisioned skeleton")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Correctness preserved.
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatal("coalesced tree diverged from model")
		}
	}
}

func TestSkeletonWithDeletes(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 1000, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	m := newModel()
	live := []node.RecordID{}
	next := node.RecordID(1)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(4) != 0 {
			r := randSegment(rng)
			if err := tr.Insert(r, next); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			m.insert(r, next)
			live = append(live, next)
			next++
		} else {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if _, err := tr.Delete(id, m.rects[id]); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			m.delete(id)
		}
		if step%500 == 499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			for q := 0; q < 10; q++ {
				query := randQuery(rng)
				if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
					t.Fatalf("step %d: diverged", step)
				}
			}
		}
	}
}

func TestSkeletonShapeRespectsFanout(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	for _, tuples := range []int{1, 10, 100, 1000, 10000, 100000} {
		perDim, err := tr.skeletonShape(tuples)
		if err != nil {
			t.Fatalf("tuples=%d: %v", tuples, err)
		}
		if perDim[len(perDim)-1] != 1 {
			t.Fatalf("tuples=%d: top level has %d partitions, want 1", tuples, perDim[len(perDim)-1])
		}
		for l := 1; l < len(perDim); l++ {
			prev, p := perDim[l-1], perDim[l]
			if p > prev {
				t.Fatalf("tuples=%d level %d: %d partitions above %d below", tuples, l, p, prev)
			}
			perParent := (prev + p - 1) / p
			if perParent*perParent > tr.branchCap(l) {
				t.Fatalf("tuples=%d level %d: %d children per parent exceeds capacity %d",
					tuples, l, perParent*perParent, tr.branchCap(l))
			}
		}
	}
}

// TestSkeletonDeleteMissThenInsert is a regression test: a delete that
// matches nothing still dismantles the skeleton's pre-built empty leaves
// (they are underfull by construction), so the condense pipeline must run
// even when zero records were removed — otherwise the root is left as a
// branchless non-leaf and the next insert panics in chooseBranch.
func TestSkeletonDeleteMissThenInsert(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(skeletonConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BuildSkeleton(Estimate{Tuples: 450, Domain: domain1000()}); err != nil {
				t.Fatal(err)
			}
			n, err := tr.Delete(12345, domain1000())
			if err != nil || n != 0 {
				t.Fatalf("Delete(missing) = (%d, %v), want (0, nil)", n, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after no-op delete: %v", err)
			}
			if err := tr.Insert(geom.Rect2(88, 59, 100, 72), 1); err != nil {
				t.Fatalf("insert after no-op delete: %v", err)
			}
			got, err := tr.Search(domain1000())
			if err != nil || len(got) != 1 || got[0].ID != 1 {
				t.Fatalf("Search = (%v, %v), want the one inserted record", got, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
