package core

import (
	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
)

// orphan is an entry displaced by condensation that must be reinserted:
// either a record (Branch == page.Nil) or a whole subtree branch to be
// re-attached at its original level.
type orphan struct {
	rec    node.Record
	branch node.Branch
	level  int // level the branch's node lives at; -1 for records
}

// Delete removes every portion of the logical record with the given ID
// whose rectangle intersects hint, and returns the number of logical
// records removed (0 or 1 for unique IDs). Pass the rectangle originally
// inserted (or any rectangle covering it) as hint; the paper notes that
// deleting a cut record requires finding all of its spanning/remnant
// portions, which share the record ID.
//
// Underfull nodes are condensed à la Guttman: the node is removed and its
// remaining entries reinserted; spanning index records on removed nodes are
// reinserted as well.
func (t *Tree) Delete(id node.RecordID, hint geom.Rect) (int, error) {
	if err := t.validateRect(hint); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginOp()
	n, err := t.deleteMatching(hint, func(rec node.Record) bool { return rec.ID == id })
	if err != nil {
		return 0, t.abortOp(err)
	}
	return n, t.publishOp()
}

// DeleteWhere removes every logical record that has a stored portion
// intersecting query and satisfying pred (nil matches everything), and
// returns the number of logical records removed. All portions of each
// matched record are removed, including portions outside query.
func (t *Tree) DeleteWhere(query geom.Rect, pred func(Entry) bool) (int, error) {
	if err := t.validateRect(query); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginOp()

	// Pass 1: collect matching IDs (read-only; pins released before the
	// mutating pass so copy-on-write never meets a pinned head).
	ids := make(map[node.RecordID]bool)
	stack := []page.ID{t.root}
	for len(stack) > 0 {
		nid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n, err := t.fetch(nid, &t.stats.InsertNodeAccesses)
		if err != nil {
			return 0, t.abortOp(err)
		}
		for i := range n.Records {
			rec := n.Records[i]
			if rec.Rect.Intersects(query) &&
				(pred == nil || pred(Entry{Rect: rec.Rect, ID: rec.ID})) {
				ids[rec.ID] = true
			}
		}
		for i := range n.Branches {
			if n.Branches[i].Rect.Intersects(query) {
				stack = append(stack, n.Branches[i].Child)
			}
		}
		t.done(nid, false)
	}
	if len(ids) == 0 {
		return 0, t.publishOp()
	}

	// Pass 2: remove every portion of every matched ID anywhere in the
	// tree (cut portions may live outside query).
	cover, err := t.rootCover()
	if err != nil {
		return 0, t.abortOp(err)
	}
	if cover.IsEmptyMarker() {
		return 0, t.publishOp()
	}
	n, err := t.deleteMatching(cover, func(rec node.Record) bool { return ids[rec.ID] })
	if err != nil {
		return 0, t.abortOp(err)
	}
	return n, t.publishOp()
}

// deleteMatching removes every record portion intersecting hint for which
// match returns true, condenses the tree, and returns the number of
// distinct logical records removed. Caller must hold the write lock.
func (t *Tree) deleteMatching(hint geom.Rect, match func(node.Record) bool) (int, error) {
	o := t.newOp(&t.stats.InsertNodeAccesses)
	var orphans []orphan
	removed := make(map[node.RecordID]int)
	_, _, err := t.deleteRec(t.root, hint, match, o, removed, &orphans)
	if err != nil {
		return 0, err
	}

	// Removing every portion of a record retires its excess portions:
	// subtract (portions removed - 1) per ID from the gauge that lets
	// the read path skip duplicate elimination, and release the ID for
	// exact reuse detection.
	for id, portions := range removed {
		t.cutPortions -= portions - 1
		t.ids.remove(id)
		t.stageSidecarDelete(id)
	}
	if t.cutPortions < 0 {
		t.cutPortions = 0
	}

	// Condense even when nothing matched: the traversal dismantles nodes
	// that were already underfull — a skeleton's pre-built empty leaves —
	// and could otherwise leave a branchless non-leaf on the descent path.
	//
	// A root that lost every branch is replaced by an empty leaf before
	// orphans are re-attached.
	if err := t.resetEmptyRoot(o); err != nil {
		return 0, err
	}

	// Reinsert orphaned subtrees first (they restore structure), then
	// records via the op queue.
	for _, orp := range orphans {
		if orp.level >= 0 {
			if err := o.insertBranch(orp.branch, orp.level); err != nil {
				return 0, err
			}
		} else {
			o.enqueue(orp.rec.Rect, orp.rec.ID)
			t.stats.Reinserts++
		}
	}
	if err := o.drain(); err != nil {
		return 0, err
	}
	if err := t.collapseRoot(o); err != nil {
		return 0, err
	}
	if err := o.drain(); err != nil {
		return 0, err
	}
	t.size -= len(removed)
	t.stats.Deletes += uint64(len(removed))
	return len(removed), nil
}

// deleteRec removes matching record portions under nid. It returns the
// node's new cover rectangle and whether the node became underfull and was
// dismantled (its surviving entries moved to orphans and its page freed by
// the caller's bookkeeping here).
func (t *Tree) deleteRec(nid page.ID, hint geom.Rect, match func(node.Record) bool, o *op, removed map[node.RecordID]int, orphans *[]orphan) (geom.Rect, bool, error) {
	n, err := t.fetchMut(nid, o.accesses)
	if err != nil {
		return geom.Rect{}, false, err
	}
	dims := t.cfg.Dims
	dirty := false

	// Remove matching records on this node (leaf data records or spanning
	// index records).
	for i := len(n.Records) - 1; i >= 0; i-- {
		if n.Records[i].Rect.Intersects(hint) && match(n.Records[i]) {
			removed[n.Records[i].ID]++
			n.RemoveRecord(i)
			dirty = true
		}
	}
	if n.IsLeaf() {
		if dirty {
			t.touchLeaf(nid)
		}
		cover := n.Cover(dims)
		underfull := nid != t.root && len(n.Records) < t.minLeaf()
		if underfull {
			for _, rec := range n.Records {
				*orphans = append(*orphans, orphan{rec: rec, level: -1})
			}
			n.Records = nil
		}
		t.done(nid, dirty)
		return cover, underfull, nil
	}

	// Recurse into intersecting branches.
	for i := len(n.Branches) - 1; i >= 0; i-- {
		if !n.Branches[i].Rect.Intersects(hint) {
			continue
		}
		childCover, childGone, err := t.deleteRec(n.Branches[i].Child, hint, match, o, removed, orphans)
		if err != nil {
			t.done(nid, dirty)
			return geom.Rect{}, false, err
		}
		if childGone {
			child := n.Branches[i].Child
			// Spanning records linked to the removed branch are orphaned.
			for j := len(n.Records) - 1; j >= 0; j-- {
				if n.Records[j].Span == child {
					*orphans = append(*orphans, orphan{rec: n.Records[j], level: -1})
					n.RemoveRecord(j)
				}
			}
			n.RemoveBranch(i)
			t.forgetLeaf(child)
			if err := t.pool.Free(child); err != nil {
				t.done(nid, dirty)
				return geom.Rect{}, false, err
			}
			dirty = true
		} else if !n.Branches[i].Rect.Equal(childCover) {
			n.Branches[i].Rect = childCover
			if t.cfg.Spanning {
				o.revalidate[nid] = true
			}
			dirty = true
		}
	}

	cover := n.Cover(dims)
	underfull := nid != t.root && len(n.Branches) < t.minBranch(n.Level)
	if underfull {
		// Orphan surviving branches (reinserted at their level) and
		// spanning records.
		for _, b := range n.Branches {
			*orphans = append(*orphans, orphan{branch: b, level: n.Level - 1})
		}
		for _, rec := range n.Records {
			*orphans = append(*orphans, orphan{rec: rec, level: -1})
		}
		n.Branches = nil
		n.Records = nil
		delete(o.revalidate, nid)
	}
	t.done(nid, dirty)
	return cover, underfull, nil
}

// resetEmptyRoot replaces a branchless non-leaf root with a fresh empty
// leaf (inheriting any skeleton region), so descents always find a sound
// structure. The caller must hold the write lock on t.mu.
func (t *Tree) resetEmptyRoot(o *op) error {
	n, err := t.fetch(t.root, o.accesses)
	if err != nil {
		return err
	}
	if n.IsLeaf() || len(n.Branches) > 0 {
		t.done(n.ID, false)
		return nil
	}
	region := geom.Rect{}
	if n.HasRegion() {
		region = n.Region.Clone()
	}
	old := n.ID
	t.done(old, false)
	leaf, err := t.pool.NewNode(0, t.cfg.Sizes.BytesForLevel(0))
	if err != nil {
		return err
	}
	if region.Dims() > 0 {
		leaf.Region = region
	}
	t.root = leaf.ID
	t.height = 1
	t.done(leaf.ID, true)
	return t.pool.Free(old)
}

// insertBranch re-attaches an orphaned subtree branch at the given level
// (the level of the node the branch points to). It descends by least
// enlargement to a node at level+1 and installs the branch there, splitting
// upward as needed.
func (o *op) insertBranch(b node.Branch, level int) error {
	t := o.t
	// An empty leaf root simply adopts the subtree as the new root.
	rootN, err := t.fetch(t.root, o.accesses)
	if err != nil {
		return err
	}
	if rootN.IsLeaf() && len(rootN.Records) == 0 {
		old := rootN.ID
		t.done(old, false)
		if err := t.pool.Free(old); err != nil {
			return err
		}
		t.forgetLeaf(old)
		t.root = b.Child
		t.height = level + 1
		return nil
	}
	t.done(rootN.ID, false)
	// If the tree is now shorter than the subtree needs, grow the root.
	for t.height-1 < level+1 {
		if err := t.growRootForBranch(o); err != nil {
			return err
		}
	}
	var path []pathStep
	cur, err := t.fetchMut(t.root, o.accesses)
	if err != nil {
		return err
	}
	for cur.Level > level+1 {
		bi := chooseBranch(cur, b.Rect)
		child, err := t.fetchMut(cur.Branches[bi].Child, o.accesses)
		if err != nil {
			t.done(cur.ID, true)
			for i := len(path) - 1; i >= 0; i-- {
				t.done(path[i].n.ID, true)
			}
			return err
		}
		path = append(path, pathStep{cur, bi})
		cur = child
	}
	o.addBranch(cur, b)
	if t.cfg.Spanning {
		o.revalidate[cur.ID] = true
	}
	return o.ascend(path, cur)
}

// growRootForBranch adds one level above the current root so that an
// orphaned subtree of height equal to the tree can be re-attached. The
// caller must hold the write lock on t.mu.
func (t *Tree) growRootForBranch(o *op) error {
	cur, err := t.fetch(t.root, o.accesses)
	if err != nil {
		return err
	}
	newRoot, err := t.pool.NewNode(cur.Level+1, t.cfg.Sizes.BytesForLevel(cur.Level+1))
	if err != nil {
		t.done(cur.ID, false)
		return err
	}
	newRoot.Branches = append(newRoot.Branches, node.Branch{Rect: cur.Cover(t.cfg.Dims), Child: cur.ID})
	t.done(cur.ID, false)
	t.root = newRoot.ID
	t.height++
	t.done(newRoot.ID, true)
	return nil
}

// collapseRoot shrinks the tree while the root is a non-leaf with a single
// branch and no spanning records of its own (any that exist are reinserted
// through the op queue). The caller must hold the write lock on t.mu.
func (t *Tree) collapseRoot(o *op) error {
	for {
		n, err := t.fetchMut(t.root, o.accesses)
		if err != nil {
			return err
		}
		if n.IsLeaf() || len(n.Branches) != 1 {
			t.done(n.ID, false)
			return nil
		}
		for _, rec := range n.Records {
			o.enqueue(rec.Rect, rec.ID)
			t.stats.Reinserts++
		}
		child := n.Branches[0].Child
		n.Branches = nil
		n.Records = nil
		t.done(n.ID, true)
		if err := t.pool.Free(n.ID); err != nil {
			return err
		}
		t.root = child
		t.height--
		if err := o.drain(); err != nil {
			return err
		}
	}
}
