package core

import (
	"fmt"
	"math"
	"sort"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

// BulkLoad builds a packed R-Tree bottom-up from a complete dataset using
// Sort-Tile-Recursive packing — the static alternative the paper contrasts
// skeleton indexes against (Section 4, citing Roussopoulos & Leifker's
// packed R-Trees): packing produces near-perfect occupancy and low overlap
// but requires all data up front, whereas a skeleton index achieves a
// similar regular decomposition dynamically.
//
// The records are sorted by center along dimension 0, sliced into
// tiles, recursively sorted along the remaining dimensions, and packed
// into leaves at the given fill fraction; upper levels pack the same way
// over child rectangles. When cfg.Spanning is enabled, the loaded tree is
// a valid SR-Tree (subsequent inserts may create spanning records), but
// packing itself places every record in a leaf.
//
//seglint:allow lockcheck — the tree is under construction and unpublished; no other goroutine can observe it until BulkLoad returns
func BulkLoad(cfg Config, st store.Store, records []Record, fill float64) (*Tree, error) {
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("core: bulk-load fill %g outside (0, 1]", fill)
	}
	t, err := New(cfg, st)
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return t, nil
	}
	for i, r := range records {
		if err := t.validateRect(r.Rect); err != nil {
			return nil, fmt.Errorf("core: bulk-load record %d: %w", i, err)
		}
	}

	// The load runs as one write bracket: the packed structure becomes
	// visible to snapshots in a single epoch bump at the end, and the
	// empty root's page is reclaimed through the same deferred-free path
	// as any other operation's.
	t.beginOp()

	perLeaf := int(float64(t.leafCap()) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	// Pack leaves.
	entries := make([]node.Record, len(records))
	for i, r := range records {
		entries[i] = node.Record{Rect: r.Rect.Clone(), ID: r.ID}
	}
	rects := make([]geom.Rect, len(entries))
	for i := range entries {
		rects[i] = entries[i].Rect
	}
	order := strOrder(rects, cfg.Dims, perLeaf)

	var level []node.Branch
	for lo := 0; lo < len(order); lo += perLeaf {
		hi := lo + perLeaf
		if hi > len(order) {
			hi = len(order)
		}
		leaf, err := t.pool.NewNode(0, t.cfg.Sizes.BytesForLevel(0))
		if err != nil {
			return nil, t.abortOp(err)
		}
		for _, idx := range order[lo:hi] {
			leaf.Records = append(leaf.Records, entries[idx])
		}
		cover := leaf.Cover(cfg.Dims)
		level = append(level, node.Branch{Rect: cover, Child: leaf.ID})
		t.done(leaf.ID, true)
	}

	// Pack upper levels until one node remains.
	lvl := 1
	for len(level) > 1 {
		perNode := int(float64(t.branchCap(lvl)) * fill)
		if perNode < 2 {
			perNode = 2
		}
		branchRects := make([]geom.Rect, len(level))
		for i := range level {
			branchRects[i] = level[i].Rect
		}
		order := strOrder(branchRects, cfg.Dims, perNode)
		var next []node.Branch
		for lo := 0; lo < len(order); lo += perNode {
			hi := lo + perNode
			if hi > len(order) {
				hi = len(order)
			}
			n, err := t.pool.NewNode(lvl, t.cfg.Sizes.BytesForLevel(lvl))
			if err != nil {
				return nil, t.abortOp(err)
			}
			for _, idx := range order[lo:hi] {
				n.Branches = append(n.Branches, level[idx])
			}
			next = append(next, node.Branch{Rect: n.Cover(cfg.Dims), Child: n.ID})
			t.done(n.ID, true)
		}
		level = next
		lvl++
	}

	// Replace the empty root created by New.
	oldRoot := t.root
	t.root = level[0].Child
	rootNode, err := t.fetch(t.root, nil)
	if err != nil {
		return nil, t.abortOp(err)
	}
	t.height = rootNode.Level + 1
	t.done(t.root, false)
	t.size = len(records)
	for i := range records {
		if t.ids.add(records[i].ID) {
			t.cutPortions++
		}
	}
	if err := t.pool.Free(oldRoot); err != nil {
		return nil, t.abortOp(err)
	}
	if err := t.publishOp(); err != nil {
		return nil, err
	}
	return t, nil
}

// Record pairs a rectangle with its ID for bulk operations.
type Record struct {
	Rect geom.Rect
	ID   node.RecordID
}

// strOrder returns the Sort-Tile-Recursive permutation of the given
// rectangles for the target group size: sort by center of dimension 0,
// slice into vertical slabs of ~sqrt tiles, recursively order each slab by
// the remaining dimensions.
func strOrder(rects []geom.Rect, dims, groupSize int) []int {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	strSort(order, rects, 0, dims, groupSize)
	return order
}

func strSort(order []int, rects []geom.Rect, dim, dims, groupSize int) {
	sort.SliceStable(order, func(a, b int) bool {
		return rects[order[a]].Center(dim) < rects[order[b]].Center(dim)
	})
	if dim == dims-1 || len(order) <= groupSize {
		return
	}
	// Number of groups overall, spread across the remaining dimensions.
	groups := int(math.Ceil(float64(len(order)) / float64(groupSize)))
	slabCount := int(math.Ceil(math.Pow(float64(groups), 1/float64(dims-dim))))
	if slabCount < 1 {
		slabCount = 1
	}
	slabSize := (len(order) + slabCount - 1) / slabCount
	for lo := 0; lo < len(order); lo += slabSize {
		hi := lo + slabSize
		if hi > len(order) {
			hi = len(order)
		}
		strSort(order[lo:hi], rects, dim+1, dims, groupSize)
	}
}
