package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// TestCheckInvariantsEmptyTree pins that a freshly created tree — a single
// empty root leaf — already satisfies every invariant, in both spanning
// modes.
func TestCheckInvariantsEmptyTree(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("empty tree violates invariants: %v", err)
			}
			if tr.Len() != 0 {
				t.Fatalf("empty tree Len() = %d", tr.Len())
			}
		})
	}
}

// TestCheckInvariantsAfterCoalesce drives a skeleton tree through enough
// deletes to trigger leaf coalescing and verifies the structure stays valid
// afterwards.
func TestCheckInvariantsAfterCoalesce(t *testing.T) {
	cfg := skeletonConfig(false)
	cfg.CoalesceEvery = 50
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Over-provision the skeleton so most leaves stay sparse, then load one
	// corner: deletes from the dense corner leave many near-empty adjacent
	// siblings for the coalescer.
	if err := tr.BuildSkeleton(Estimate{Tuples: 5000, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 600
	rects := make([]geom.Rect, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 120
		y := rng.Float64() * 120
		rects[i] = geom.Rect2(x, y, x, y)
		if err := tr.Insert(rects[i], node.RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := tr.Delete(node.RecordID(i), rects[i]); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if got := tr.Stats().Coalesces; got == 0 {
		t.Fatal("expected the delete stream to trigger at least one coalesce")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after coalescing: %v", err)
	}
}

// TestInvariantErrorPath corrupts the leftmost leaf of a multi-level tree
// through the buffer pool and verifies CheckInvariants reports the full
// root-to-violation path with node IDs and levels.
func TestInvariantErrorPath(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 250; i++ {
		if err := tr.Insert(randBox(rng), node.RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d, want >= 3 so the path has interior steps", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("pre-corruption: %v", err)
	}

	// Walk the leftmost spine down to a leaf, recording the expected path.
	var want []PathStep
	id := tr.root
	for {
		n, err := tr.pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, PathStep{ID: id, Level: n.Level})
		if n.IsLeaf() {
			if len(n.Records) == 0 {
				t.Fatal("leftmost leaf is empty; cannot corrupt a record")
			}
			// Inflate a record far past every ancestor branch rect. The
			// rect stays valid (min <= max) so the codec round-trips it;
			// only the containment invariant breaks.
			n.Records[0].Rect = geom.Rect2(-9e6, -9e6, 9e6, 9e6)
			if err := tr.pool.Unpin(id, true); err != nil {
				t.Fatal(err)
			}
			break
		}
		next := n.Branches[0].Child
		if err := tr.pool.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
		id = next
	}

	err = tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants missed the corrupted leaf")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error type %T, want *InvariantError (err: %v)", err, err)
	}
	if len(ie.Path) != len(want) {
		t.Fatalf("path %v, want %v", ie.Path, want)
	}
	for i := range want {
		if ie.Path[i] != want[i] {
			t.Fatalf("path step %d = %v, want %v (full path %v)", i, ie.Path[i], want[i], ie.Path)
		}
	}
	// The path must start at the root at height-1 and descend one level per
	// step to the violating leaf.
	if ie.Path[0].ID != tr.root || ie.Path[0].Level != tr.Height()-1 {
		t.Fatalf("path starts at %v, want root %v@%d", ie.Path[0], tr.root, tr.Height()-1)
	}
	last := ie.Path[len(ie.Path)-1]
	if last.Level != 0 {
		t.Fatalf("path ends at %v, want a leaf (level 0)", last)
	}
	for i := 1; i < len(ie.Path); i++ {
		if ie.Path[i].Level != ie.Path[i-1].Level-1 {
			t.Fatalf("path levels not strictly descending: %v", ie.Path)
		}
	}
	msg := err.Error()
	if !strings.Contains(msg, "invariant violation at ") || !strings.Contains(msg, " -> ") {
		t.Fatalf("error message %q does not render the path", msg)
	}
	if !strings.Contains(msg, "exceeds parent branch rect") {
		t.Fatalf("error message %q does not name the violation", msg)
	}
	if errors.Unwrap(err) == nil {
		t.Fatal("InvariantError does not unwrap to the underlying violation")
	}
}

// TestInvariantErrorWrongLevel corrupts an interior branch's child pointer
// to aim at a node two levels down and checks the level invariant fires
// with the interior node on the path.
func TestInvariantErrorWrongLevel(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 250; i++ {
		if err := tr.Insert(randBox(rng), node.RecordID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d, want >= 3", tr.Height())
	}
	// Find a grandchild leaf and point a root branch directly at it.
	root, err := tr.pool.Get(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	childID := root.Branches[0].Child
	if err := tr.pool.Unpin(tr.root, false); err != nil {
		t.Fatal(err)
	}
	child, err := tr.pool.Get(childID)
	if err != nil {
		t.Fatal(err)
	}
	grandID := child.Branches[0].Child
	if err := tr.pool.Unpin(childID, false); err != nil {
		t.Fatal(err)
	}
	root, err = tr.pool.Get(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	root.Branches[0].Child = grandID
	if err := tr.pool.Unpin(tr.root, true); err != nil {
		t.Fatal(err)
	}

	err = tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants missed the level skip")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error type %T, want *InvariantError", err)
	}
	if ie.Path[0].ID != tr.root {
		t.Fatalf("path %v does not start at the root %v", ie.Path, tr.root)
	}
	if !strings.Contains(err.Error(), "at level") {
		t.Fatalf("error %q does not describe the level violation", err)
	}
}
