package core

import (
	"fmt"
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/store"
)

// TestAllIdenticalRecords stresses split heuristics with zero spatial
// information: every record is the same point.
func TestAllIdenticalRecords(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			p := geom.Point(500, 500)
			for i := 0; i < 500; i++ {
				if err := tr.Insert(p, node.RecordID(i+1)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			n, err := tr.Count(p)
			if err != nil || n != 500 {
				t.Fatalf("Count = %d, %v", n, err)
			}
			if n, _ := tr.Count(geom.Point(499, 500)); n != 0 {
				t.Fatalf("adjacent point matched %d", n)
			}
		})
	}
}

// TestIdenticalSegments stresses the spanning machinery with identical
// long segments (every record spans everything it can).
func TestIdenticalSegments(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	seg := geom.Rect2(0, 500, 1000, 500)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(seg, node.RecordID(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%100 == 99 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d: %v", i+1, err)
			}
		}
	}
	n, err := tr.Count(geom.Point(500, 500))
	if err != nil || n != 300 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

// TestOneDimensionalModel runs the brute-force comparison in K=1 (the
// paper's rule-lock dimensionality).
func TestOneDimensionalModel(t *testing.T) {
	cfg := smallConfig(true)
	cfg.Dims = 1
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))
	m := newModel()
	for i := 0; i < 2000; i++ {
		lo := rng.Float64() * 1000
		width := rng.Float64() * 10
		if rng.Intn(8) == 0 {
			width = rng.Float64() * 700
		}
		hi := lo + width
		if hi > 1000 {
			hi = 1000
		}
		r := geom.Interval1(lo, hi)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		m.insert(r, id)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		lo := rng.Float64() * 1000
		query := geom.Interval1(lo, lo+rng.Float64()*50)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatalf("1-D search diverged on %v", query)
		}
	}
}

// TestThreeDimensionalModel runs the brute-force comparison in K=3.
func TestThreeDimensionalModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dims = 3
	cfg.Sizes.LeafBytes = 512
	cfg.Spanning = true
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(402))
	m := newModel()
	rect3 := func(maxSide float64) geom.Rect {
		min := make([]float64, 3)
		max := make([]float64, 3)
		for d := 0; d < 3; d++ {
			min[d] = rng.Float64() * 1000
			max[d] = min[d] + rng.Float64()*maxSide
		}
		return geom.Rect{Min: min, Max: max}
	}
	for i := 0; i < 1500; i++ {
		side := 15.0
		if rng.Intn(10) == 0 {
			side = 500
		}
		r := rect3(side)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		m.insert(r, id)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := rect3(120)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatalf("3-D search diverged on %v", query)
		}
	}
}

// TestDomainBoundaryRecords places records exactly on the skeleton domain
// boundary, where partition edges coincide with data.
func TestDomainBoundaryRecords(t *testing.T) {
	tr, err := NewInMemory(skeletonConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BuildSkeleton(Estimate{Tuples: 500, Domain: domain1000()}); err != nil {
		t.Fatal(err)
	}
	boundary := []geom.Rect{
		geom.Point(0, 0),
		geom.Point(1000, 1000),
		geom.Point(0, 1000),
		geom.Rect2(0, 0, 1000, 0),     // bottom edge segment
		geom.Rect2(0, 0, 0, 1000),     // left edge segment
		geom.Rect2(0, 500, 1000, 500), // full-width segment
		geom.Rect2(0, 0, 1000, 1000),  // the whole domain
		geom.Rect2(500, 0, 500, 1000), // full-height segment
		geom.Point(500, 500),          // partition cross point
	}
	for i, r := range boundary {
		if err := tr.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatalf("insert %d (%v): %v", i, r, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Count(domain1000())
	if err != nil || got != len(boundary) {
		t.Fatalf("Count = %d, %v; want %d", got, err, len(boundary))
	}
	// Records outside the estimated domain still insert correctly.
	if err := tr.Insert(geom.Point(1500, -200), 999); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Count(geom.Rect2(1400, -300, 1600, 0)); n != 1 {
		t.Fatalf("out-of-domain record not found (%d)", n)
	}
}

// TestDuplicateIDsAcrossRecords documents the behavior when callers reuse
// an ID: search deduplicates them into one logical result.
func TestDuplicateIDsAcrossRecords(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Point(1, 1), 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Point(900, 900), 7); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Search(geom.Rect2(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("duplicate IDs deduplicated to %d results, want 1", len(got))
	}
}

// TestStoreErrorSurfacesFromInsert injects a store failure under a pool
// too small to keep the tree resident and checks the error propagates.
func TestStoreErrorSurfacesFromInsert(t *testing.T) {
	st := store.NewMemStore()
	cfg := smallConfig(false)
	cfg.PoolBytes = 1024 // a handful of 256-byte pages
	tr, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(403))
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randBox(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	boom := fmt.Errorf("disk on fire")
	st.InjectReadError(1, boom)
	// Some subsequent operation must hit the failed read; the tree
	// surfaces it instead of corrupting.
	var sawErr bool
	for i := 0; i < 50 && !sawErr; i++ {
		if _, err := tr.Search(randQuery(rng)); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Skip("pool kept everything resident; injection not reachable")
	}
	// After the transient failure, the tree keeps working.
	if _, err := tr.Search(randQuery(rng)); err != nil {
		t.Fatalf("tree unusable after transient store error: %v", err)
	}
}
