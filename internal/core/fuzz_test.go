package core

import (
	"fmt"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// fuzzOps decodes a byte stream into a bounded tree workload. Layout per
// operation: 1 opcode byte, then coordinate bytes (2 per coordinate,
// mapping to [0, 1000]); the stream ends when the bytes run out.
type fuzzOps struct {
	data []byte
	pos  int
}

func (o *fuzzOps) more() bool { return o.pos < len(o.data) }

func (o *fuzzOps) byte() byte {
	if !o.more() {
		return 0
	}
	b := o.data[o.pos]
	o.pos++
	return b
}

func (o *fuzzOps) coord() float64 {
	hi, lo := o.byte(), o.byte()
	return float64(uint16(hi)<<8|uint16(lo)) * 1000 / 65535
}

func (o *fuzzOps) rect() geom.Rect {
	x1, y1, x2, y2 := o.coord(), o.coord(), o.coord(), o.coord()
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return geom.Rect2(x1, y1, x2, y2)
}

// FuzzTreeOps drives a tree and the brute-force model through the same
// decoded operation stream — the differential oracle — checking after every
// step that searches agree, Len matches, and every structural invariant
// still holds. Both spanning modes run on each input.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 255, 255, 255, 255})  // one big insert
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 1, 0, 2}) // insert then delete
	f.Add([]byte{2, 0, 0, 0, 0, 255, 255, 255, 255})  // search empty
	{
		// Enough inserts to force splits, then interleaved deletes and
		// searches.
		var seed []byte
		for i := 0; i < 24; i++ {
			seed = append(seed, 0, byte(i*7), byte(i*11), byte(i*7+3), byte(i*11+5), byte(i), byte(i*3), byte(i), byte(i*3))
		}
		for i := 0; i < 8; i++ {
			seed = append(seed, 1, byte(i*2)) // delete
			seed = append(seed, 2, 0, 0, 0, 0, 200, 0, 200, 0)
		}
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			t.Skip() // bound per-input work; long streams add no new shapes
		}
		for _, spanning := range []bool{false, true} {
			t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
				tr, err := NewInMemory(smallConfig(spanning))
				if err != nil {
					t.Fatal(err)
				}
				m := newModel()
				ops := &fuzzOps{data: data}
				nextID := node.RecordID(1)
				var live []node.RecordID

				for ops.more() {
					switch ops.byte() % 3 {
					case 0: // insert
						r := ops.rect()
						id := nextID
						nextID++
						if err := tr.Insert(r, id); err != nil {
							t.Fatalf("Insert(%v, %d): %v", r, id, err)
						}
						m.insert(r, id)
						live = append(live, id)
					case 1: // delete a live record (or a missing one when none)
						if len(live) == 0 {
							if n, err := tr.Delete(9999, domain1000()); err != nil || n != 0 {
								t.Fatalf("Delete(missing) = (%d, %v), want (0, nil)", n, err)
							}
							continue
						}
						i := int(ops.byte()) % len(live)
						id := live[i]
						live = append(live[:i], live[i+1:]...)
						n, err := tr.Delete(id, m.rects[id])
						if err != nil {
							t.Fatalf("Delete(%d): %v", id, err)
						}
						if n != 1 {
							t.Fatalf("Delete(%d) removed %d records, want 1", id, n)
						}
						m.delete(id)
					case 2: // search
						q := ops.rect()
						got := searchIDs(t, tr, q)
						want := m.search(q)
						if !idsEqual(got, want) {
							t.Fatalf("Search(%v) = %v, model says %v", q, got, want)
						}
						continue // no mutation; skip the invariant walk
					}
					if tr.Len() != len(m.rects) {
						t.Fatalf("Len() = %d, model holds %d", tr.Len(), len(m.rects))
					}
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("invariants violated mid-stream: %v", err)
					}
				}

				// Final cross-check over the whole domain.
				got := searchIDs(t, tr, domain1000())
				if want := m.search(domain1000()); !idsEqual(got, want) {
					t.Fatalf("final full-domain search %v, model says %v", got, want)
				}
			})
		}
	})
}
