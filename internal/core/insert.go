package core

import (
	"errors"
	"fmt"

	"segidx/internal/geom"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// pathStep records one step of a root-to-node descent: the (pinned) node
// and the branch index taken out of it.
type pathStep struct {
	n   *node.Node
	idx int
}

// pending is a record queued for reinsertion once the tree is structurally
// consistent: remnant portions from cuts, demoted spanning records, and
// entries orphaned by condensation or coalescing.
type pending struct {
	rect     geom.Rect
	id       node.RecordID
	attempts int
}

// op carries per-operation state. All tree mutations run inside an op so
// that reinsertions and spanning-record revalidation happen at safe points.
type op struct {
	t          *Tree
	queue      []pending
	revalidate map[page.ID]bool      // nodes whose spanning records need rechecking
	seen       map[node.RecordID]int // reinsertion attempts per record this op
	accesses   *uint64
}

func (t *Tree) newOp(accesses *uint64) *op {
	return &op{
		t:          t,
		revalidate: make(map[page.ID]bool),
		seen:       make(map[node.RecordID]int),
		accesses:   accesses,
	}
}

// Insert adds a record to the index. The rectangle may be degenerate in any
// subset of dimensions (points and 1-dimensional intervals embedded in K
// dimensions are first-class data, per the paper's third motivation).
func (t *Tree) Insert(rect geom.Rect, id node.RecordID) error {
	if err := t.validateRect(rect); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.beginOp()
	t.stageSidecarInsert(rect, id)
	o := t.newOp(&t.stats.InsertNodeAccesses)
	if err := o.insert(rect.Clone(), id, 0); err != nil {
		return t.abortOp(err)
	}
	if err := o.drain(); err != nil {
		return t.abortOp(err)
	}
	t.size++
	t.stats.Inserts++
	if t.ids.add(id) {
		// Reused ID: its portions now collide in search results, so the
		// excess-portion gauge must keep duplicate elimination on.
		t.cutPortions++
	}
	if t.cfg.CoalesceEvery > 0 {
		t.sinceCoalesce++
		if t.sinceCoalesce >= t.cfg.CoalesceEvery {
			t.sinceCoalesce = 0
			if err := t.coalesce(o); err != nil {
				return t.abortOp(err)
			}
			if err := o.drain(); err != nil {
				return t.abortOp(err)
			}
		}
	}
	return t.publishOp()
}

// spansQualify reports whether rec qualifies as a spanning record for the
// region: it spans the region in at least one dimension of positive extent.
// The positive-extent requirement keeps degenerate dimensions (e.g. the Y
// extent of a node holding identical-Y segments) from trivially qualifying
// every record.
func spansQualify(rec, region geom.Rect) bool {
	for d := 0; d < rec.Dims(); d++ {
		if region.Length(d) > 0 && rec.SpansDim(region, d) {
			return true
		}
	}
	return false
}

// spannedBranch returns the index of the first branch of n whose region is
// spanned by rect, provided rect can be stored on n (it intersects n's
// region, so a clipped spanning portion exists). Returns -1 when rect is
// not a spanning record at this node.
func spannedBranch(n *node.Node, rect, region geom.Rect) int {
	if !rect.Intersects(region) {
		return -1
	}
	for i := range n.Branches {
		if spansQualify(rect, n.Branches[i].Rect) {
			return i
		}
	}
	return -1
}

// chooseBranch implements Guttman's ChooseLeaf step: the branch needing the
// least area enlargement to include rect, ties broken by smallest area.
func chooseBranch(n *node.Node, rect geom.Rect) int {
	best := 0
	bestEnl := n.Branches[0].Rect.Enlargement(rect)
	bestArea := n.Branches[0].Rect.Area()
	for i := 1; i < len(n.Branches); i++ {
		enl := n.Branches[i].Rect.Enlargement(rect)
		area := n.Branches[i].Rect.Area()
		if enl < bestEnl || (geom.Feq(enl, bestEnl) && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// maxSpanningAttempts bounds reinsertions of one record within a single
// operation before it is forced into a leaf. Eviction chains are monotone
// in record margin, so this is a backstop, not the usual terminator; it
// must be generous enough that a cut record's portions can re-place
// themselves as spanning records a few levels down.
const maxSpanningAttempts = 4

// insert places one record (or record portion). attempts counts prior
// reinsertions of this record within the current operation; past the
// bound the record is forced into a leaf to guarantee convergence.
func (o *op) insert(rect geom.Rect, id node.RecordID, attempts int) error {
	t := o.t
	allowSpanning := t.cfg.Spanning && attempts < maxSpanningAttempts

	var path []pathStep
	// fail unpins every pinned node on the error path.
	fail := func(pinned *node.Node, err error) error {
		if pinned != nil {
			t.done(pinned.ID, true)
		}
		for i := len(path) - 1; i >= 0; i-- {
			t.done(path[i].n.ID, true)
		}
		return err
	}

	cur, err := t.fetchMut(t.root, o.accesses)
	if err != nil {
		return err
	}
	region := cur.Cover(t.cfg.Dims)
	if region.IsEmptyMarker() {
		region = rect.Clone()
	}

	for !cur.IsLeaf() {
		if allowSpanning {
			if bi := spannedBranch(cur, rect, region); bi >= 0 {
				portion := rect
				var remnants []geom.Rect
				// Cutting (Section 3.1.1, Figure 3) keeps a spanning
				// record inside the region its node's parent records for
				// it. The root has no parent: its cover is defined by its
				// own contents, so a record stored on the root needs no
				// cut.
				if cur.ID != t.root && !region.Contains(rect) {
					clip, ok := rect.Clip(region)
					if !ok {
						return fail(cur, fmt.Errorf("core: cut of %v by %v produced no spanning portion", rect, region))
					}
					remnants = rect.Remnants(region)
					portion = clip
				}
				rec := node.Record{Rect: portion, ID: id, Span: cur.Branches[bi].Child}
				if o.placeSpanning(cur, rec) {
					t.stats.SpanPlaced++
					if len(remnants) > 0 {
						t.stats.Cuts++
						t.stats.Remnants += uint64(len(remnants))
						t.cutPortions += len(remnants)
					}
					if err := o.ascend(path, cur); err != nil {
						return err
					}
					for _, rem := range remnants {
						o.enqueue(rem, id)
					}
					return nil
				}
				// No room among longer residents: the record continues
				// its descent and is stored lower in the tree.
			}
		}
		bi := chooseBranch(cur, rect)
		region = cur.Branches[bi].Rect.Clone()
		child, err := t.fetchMut(cur.Branches[bi].Child, o.accesses)
		if err != nil {
			return fail(cur, err)
		}
		path = append(path, pathStep{cur, bi})
		cur = child
	}

	cur.Records = append(cur.Records, node.Record{Rect: rect, ID: id})
	t.touchLeaf(cur.ID)
	return o.ascend(path, cur)
}

// ascend walks back up a descent path from the modified node n, updating
// branch rectangles, installing split siblings, placing promoted spanning
// records, and growing the root as needed. It consumes (unpins) n and every
// node on the path.
func (o *op) ascend(path []pathStep, n *node.Node) error {
	t := o.t
	dims := t.cfg.Dims

	var sibling *node.Node     // pinned; new node at child's level
	var promoted []node.Record // spanning records bound for the parent
	if t.overflowing(n) {
		var err error
		sibling, promoted, err = o.split(n)
		if err != nil {
			t.done(n.ID, true)
			for i := len(path) - 1; i >= 0; i-- {
				t.done(path[i].n.ID, true)
			}
			return err
		}
	}

	child := n
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i].n
		idx := path[i].idx

		newRect := child.Cover(dims)
		oldRect := parent.Branches[idx].Rect
		parent.Branches[idx].Rect = newRect
		if t.cfg.Spanning && !oldRect.Equal(newRect) {
			// The branch region changed: growth can break former
			// spanning relationships (the paper's demotion case), and a
			// shrink can collapse a dimension to zero extent, which also
			// disqualifies records spanning through it.
			o.revalidate[parent.ID] = true
		}
		t.done(child.ID, true)

		if sibling != nil {
			o.addBranch(parent, node.Branch{
				Rect: sibling.Cover(dims), Child: sibling.ID,
			})
			t.done(sibling.ID, true)
			sibling = nil
		}
		o.placePromoted(parent, promoted)
		promoted = nil
		if t.overflowing(parent) {
			var err error
			sibling, promoted, err = o.split(parent)
			if err != nil {
				t.done(parent.ID, true)
				for j := i - 1; j >= 0; j-- {
					t.done(path[j].n.ID, true)
				}
				return err
			}
		}
		child = parent
	}

	// child is the (old) root. Grow new roots while splits remain.
	for sibling != nil {
		newRoot, err := t.pool.NewNode(child.Level+1, t.cfg.Sizes.BytesForLevel(child.Level+1))
		if err != nil {
			t.done(child.ID, true)
			t.done(sibling.ID, true)
			return err
		}
		newRoot.Branches = append(newRoot.Branches,
			node.Branch{Rect: child.Cover(dims), Child: child.ID},
			node.Branch{Rect: sibling.Cover(dims), Child: sibling.ID},
		)
		o.placePromoted(newRoot, promoted)
		promoted = nil
		t.done(child.ID, true)
		t.done(sibling.ID, true)
		sibling = nil
		t.root = newRoot.ID
		t.height++
		child = newRoot
		if t.overflowing(newRoot) {
			sibling, promoted, err = o.split(newRoot)
			if err != nil {
				t.done(newRoot.ID, true)
				return err
			}
		}
	}
	t.done(child.ID, true)
	return nil
}

// placePromoted stores records promoted from a split onto their new parent
// node; records that cannot fit even after evicting shorter residents are
// queued for reinsertion.
func (o *op) placePromoted(parent *node.Node, promoted []node.Record) {
	for _, rec := range promoted {
		if o.placeSpanning(parent, rec) {
			o.t.stats.Promotions++
			// The record qualified against its source node's pre-split
			// cover, but the installed branch rect is the post-split cover,
			// which can shrink past the record (removing the promoted
			// records themselves shrinks it). Recheck the link once the
			// operation's structural changes settle.
			o.revalidate[parent.ID] = true
		} else {
			o.enqueue(rec.Rect, rec.ID)
		}
	}
}

// enqueue schedules a record for reinsertion after the current structural
// change completes.
func (o *op) enqueue(rect geom.Rect, id node.RecordID) {
	o.seen[id]++
	o.queue = append(o.queue, pending{rect: rect, id: id, attempts: o.seen[id]})
}

// drain revalidates spanning records and processes the reinsertion queue
// until both are empty.
func (o *op) drain() error {
	for guard := 0; ; guard++ {
		if guard > 1_000_000 {
			return errors.New("core: reinsertion did not converge (structure bug)")
		}
		if len(o.revalidate) > 0 {
			var ids []page.ID
			for id := range o.revalidate {
				ids = append(ids, id)
			}
			o.revalidate = make(map[page.ID]bool)
			for _, id := range ids {
				if err := o.revalidateNode(id); err != nil {
					return err
				}
			}
			continue
		}
		if len(o.queue) == 0 {
			return nil
		}
		p := o.queue[len(o.queue)-1]
		o.queue = o.queue[:len(o.queue)-1]
		o.t.stats.Reinserts++
		if err := o.insert(p.rect, p.id, p.attempts); err != nil {
			return err
		}
	}
}

// revalidateNode rechecks every spanning record on a node: records that no
// longer span their linked branch are relinked to another branch they span,
// or removed and queued for reinsertion (the paper's demotion).
func (o *op) revalidateNode(id page.ID) error {
	t := o.t
	n, err := t.fetchMut(id, o.accesses)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil // node freed by a concurrent structural change in this op
		}
		return err
	}
	if n.IsLeaf() {
		t.done(id, false)
		return nil
	}
	dirty := false
	for i := len(n.Records) - 1; i >= 0; i-- {
		rec := n.Records[i]
		bi := n.BranchIndex(rec.Span)
		if bi >= 0 && spansQualify(rec.Rect, n.Branches[bi].Rect) {
			continue
		}
		relinked := false
		for j := range n.Branches {
			if spansQualify(rec.Rect, n.Branches[j].Rect) {
				n.Records[i].Span = n.Branches[j].Child
				t.stats.Relinks++
				relinked = true
				dirty = true
				break
			}
		}
		if !relinked {
			n.RemoveRecord(i)
			t.stats.Demotions++
			o.enqueue(rec.Rect, rec.ID)
			dirty = true
		}
	}
	t.done(id, dirty)
	return nil
}
