package core

import (
	"fmt"
	"math"

	"segidx/internal/geom"
	"segidx/internal/histogram"
	"segidx/internal/node"
	"segidx/internal/page"
	"segidx/internal/store"
)

// Estimate describes the expected input for skeleton pre-construction
// (Section 4): the number of tuples, the domain, and optionally a
// per-dimension histogram of the expected value distribution. A nil
// histogram for a dimension assumes a uniform distribution over the domain
// (Figure 5); non-uniform histograms produce the unequal partitions of
// Figure 6.
type Estimate struct {
	Tuples int
	Domain geom.Rect
	Hists  []*histogram.Histogram // len 0 or Dims; nil entries mean uniform
}

// Validate checks the estimate against a configuration.
func (e Estimate) Validate(cfg Config) error {
	if e.Tuples < 1 {
		return fmt.Errorf("core: skeleton estimate of %d tuples", e.Tuples)
	}
	if !e.Domain.Valid() || e.Domain.Dims() != cfg.Dims {
		return fmt.Errorf("core: skeleton domain invalid or wrong dimensionality")
	}
	for d := 0; d < cfg.Dims; d++ {
		if e.Domain.Length(d) <= 0 {
			return fmt.Errorf("core: skeleton domain degenerate in dimension %d", d)
		}
	}
	if len(e.Hists) != 0 && len(e.Hists) != cfg.Dims {
		return fmt.Errorf("core: %d histograms for %d dimensions", len(e.Hists), cfg.Dims)
	}
	return nil
}

// NewSkeleton creates a skeleton index: the full node hierarchy is
// pre-allocated top-down from the estimate, partitioning each dimension at
// the equi-depth quantiles of the estimated distribution, and then adapts
// to the actual input through node splitting and (if configured)
// coalescing.
func NewSkeleton(cfg Config, st store.Store, est Estimate) (*Tree, error) {
	t, err := New(cfg, st)
	if err != nil {
		return nil, err
	}
	if err := t.BuildSkeleton(est); err != nil {
		return nil, err
	}
	return t, nil
}

// BuildSkeleton replaces the empty tree with a pre-allocated skeleton. The
// tree must be empty.
func (t *Tree) BuildSkeleton(est Estimate) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.size != 0 || t.height != 1 {
		return ErrNotEmpty
	}
	if err := est.Validate(t.cfg); err != nil {
		return err
	}

	perDim, err := t.skeletonShape(est.Tuples)
	if err != nil {
		return err
	}
	levels := len(perDim)

	// Per-dimension leaf boundaries at equi-depth quantiles; upper level
	// boundaries are nested subsets so children tile their parents
	// exactly.
	dims := t.cfg.Dims
	leafCuts := make([][]float64, dims)
	for d := 0; d < dims; d++ {
		var h *histogram.Histogram
		if len(est.Hists) > 0 && est.Hists[d] != nil {
			h = est.Hists[d]
		} else {
			h = histogram.Uniform(est.Domain.Min[d], est.Domain.Max[d])
		}
		cuts, err := h.Partition(perDim[0])
		if err != nil {
			return fmt.Errorf("core: skeleton partition dim %d: %w", d, err)
		}
		// Rebase onto the domain in case the histogram covered a
		// different range.
		cuts[0], cuts[len(cuts)-1] = est.Domain.Min[d], est.Domain.Max[d]
		leafCuts[d] = cuts
	}
	// cutIdx[level][i] indexes into leafCuts: the boundaries of level
	// `level` as positions in the leaf boundary array (identical in every
	// dimension by construction of perDim).
	cutIdx := make([][]int, levels)
	cutIdx[0] = make([]int, perDim[0]+1)
	for i := range cutIdx[0] {
		cutIdx[0][i] = i
	}
	for l := 1; l < levels; l++ {
		p, prev := perDim[l], cutIdx[l-1]
		idx := make([]int, p+1)
		prevP := len(prev) - 1
		for j := 0; j <= p; j++ {
			idx[j] = prev[j*prevP/p]
		}
		cutIdx[l] = idx
	}

	// Build bottom-up, inside one write bracket: a failure rolls every
	// freshly allocated skeleton page back, and success publishes the
	// whole hierarchy in a single epoch bump. grid holds the node IDs of
	// the current level in row-major order over the level's per-dim grid.
	t.beginOp()
	free := func(ids []page.ID) {
		for _, id := range ids {
			_ = t.pool.Free(id)
		}
	}
	var prevGrid []page.ID
	var prevRegions []geom.Rect
	for l := 0; l < levels; l++ {
		p := perDim[l]
		count := intPow(p, dims)
		grid := make([]page.ID, count)
		regions := make([]geom.Rect, count)
		for cell := 0; cell < count; cell++ {
			coords := cellCoords(cell, p, dims)
			region := geom.Rect{Min: make([]float64, dims), Max: make([]float64, dims)}
			for d := 0; d < dims; d++ {
				region.Min[d] = leafCuts[d][cutIdx[l][coords[d]]]
				region.Max[d] = leafCuts[d][cutIdx[l][coords[d]+1]]
			}
			n, err := t.pool.NewNode(l, t.cfg.Sizes.BytesForLevel(l))
			if err != nil {
				free(grid[:cell])
				return t.abortOp(err)
			}
			n.Region = region
			if l == 0 {
				// Register every skeleton leaf with a zero modification
				// count so untouched leaves qualify as coalescing
				// candidates.
				t.modCounts[n.ID] = 0
			}
			if l > 0 {
				// Attach the block of child cells nested inside this
				// region.
				prevP := perDim[l-1]
				if err := t.attachChildren(n, coords, l, p, prevP, cutIdx, prevGrid, prevRegions, dims); err != nil {
					t.done(n.ID, true)
					free(grid[:cell+1])
					return t.abortOp(err)
				}
			}
			grid[cell] = n.ID
			regions[cell] = region
			t.done(n.ID, true)
		}
		prevGrid, prevRegions = grid, regions
	}

	// Replace the empty root leaf with the skeleton root.
	oldRoot := t.root
	t.root = prevGrid[0]
	t.height = levels
	if err := t.pool.Free(oldRoot); err != nil {
		return t.abortOp(err)
	}
	return t.publishOp()
}

// attachChildren installs branches on the level-l node at grid coordinates
// coords for every child cell nested in its region.
func (t *Tree) attachChildren(n *node.Node, coords []int, l, p, prevP int, cutIdx [][]int, prevGrid []page.ID, prevRegions []geom.Rect, dims int) error {
	// Child index ranges per dimension: the children whose boundary
	// interval nests inside this node's interval.
	lo := make([]int, dims)
	hi := make([]int, dims)
	for d := 0; d < dims; d++ {
		lo[d] = coords[d] * prevP / p
		hi[d] = (coords[d] + 1) * prevP / p
	}
	// Iterate over the child block.
	idx := make([]int, dims)
	copy(idx, lo)
	for {
		cell := 0
		for d := 0; d < dims; d++ {
			cell = cell*prevP + idx[d]
		}
		n.Branches = append(n.Branches, node.Branch{
			Rect:  prevRegions[cell].Clone(),
			Child: prevGrid[cell],
		})
		// Advance the block iterator.
		d := dims - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < hi[d] {
				break
			}
			idx[d] = lo[d]
		}
		if d < 0 {
			break
		}
	}
	if t.overflowing(n) {
		return fmt.Errorf("core: skeleton node at level %d received %d branches exceeding capacity %d",
			l, len(n.Branches), t.branchCap(l))
	}
	return nil
}

// skeletonShape computes the per-dimension partition count of every level,
// leaf first, following the paper's sizing loop (Section 4): the node count
// at each level is the tuple (or node) count of the level below divided by
// the fanout, rounded up so its D-th root is integral. Where the rounded
// grid would give some node more children than its branch capacity (the
// paper's loop does not guard against this), the partition count is raised
// minimally.
func (t *Tree) skeletonShape(tuples int) ([]int, error) {
	dims := t.cfg.Dims
	var perDim []int
	n := tuples
	for level := 0; ; level++ {
		var fanout int
		if level == 0 {
			fanout = t.leafCap()
		} else {
			fanout = t.branchCap(level)
		}
		nodes := (n + fanout - 1) / fanout
		p := int(math.Ceil(math.Pow(float64(nodes), 1/float64(dims))))
		if p < 1 {
			p = 1
		}
		if level > 0 {
			prev := perDim[level-1]
			// Respect branch capacity: a parent covers ceil(prev/p)
			// children per dimension.
			for p < prev && intPow((prev+p-1)/p, dims) > fanout {
				p++
			}
			if p >= prev {
				// No progress is possible at this fanout; collapse to a
				// single root over the previous level if it fits,
				// otherwise halve.
				if intPow(prev, dims) <= fanout {
					p = 1
				} else {
					p = (prev + 1) / 2
				}
			}
		}
		perDim = append(perDim, p)
		if p == 1 {
			break
		}
		n = intPow(p, dims)
		if level > 64 {
			return nil, fmt.Errorf("core: skeleton sizing did not converge")
		}
	}
	return perDim, nil
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// cellCoords converts a row-major cell index into per-dimension grid
// coordinates.
func cellCoords(cell, p, dims int) []int {
	coords := make([]int, dims)
	for d := dims - 1; d >= 0; d-- {
		coords[d] = cell % p
		cell /= p
	}
	return coords
}
