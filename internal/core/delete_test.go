package core

import (
	"fmt"
	"math/rand"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

func TestDeleteBasics(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			r := geom.Rect2(10, 10, 20, 10)
			if err := tr.Insert(r, 1); err != nil {
				t.Fatal(err)
			}
			n, err := tr.Delete(1, r)
			if err != nil || n != 1 {
				t.Fatalf("Delete = %d, %v; want 1", n, err)
			}
			if tr.Len() != 0 {
				t.Fatalf("Len after delete = %d", tr.Len())
			}
			got := searchIDs(t, tr, geom.Rect2(0, 0, 1000, 1000))
			if len(got) != 0 {
				t.Fatalf("deleted record still found: %v", got)
			}
			// Deleting a missing record is a no-op returning 0.
			n, err = tr.Delete(99, geom.Rect2(0, 0, 1000, 1000))
			if err != nil || n != 0 {
				t.Fatalf("Delete missing = %d, %v", n, err)
			}
		})
	}
}

func TestDeleteCutRecordRemovesAllPortions(t *testing.T) {
	tr := buildClusteredTree(t, true)
	seg := findSubRootCutSegment(t, tr)
	if err := tr.Insert(seg, 777); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Cuts == 0 {
		t.Fatal("fixture did not cut the record")
	}
	n, err := tr.Delete(777, seg)
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	var leftovers int
	err = tr.SearchFunc(geom.Rect2(0, 0, 1000, 1000), func(e Entry) bool {
		if e.ID == 777 {
			leftovers++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if leftovers != 0 {
		t.Fatalf("%d portions of a cut record survived deletion", leftovers)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteChurnMatchesModel(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			rng := rand.New(rand.NewSource(43))
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()
			nextID := node.RecordID(1)
			live := []node.RecordID{}
			for step := 0; step < 3000; step++ {
				if len(live) == 0 || rng.Intn(3) != 0 {
					r := randSegment(rng)
					if err := tr.Insert(r, nextID); err != nil {
						t.Fatalf("step %d insert: %v", step, err)
					}
					m.insert(r, nextID)
					live = append(live, nextID)
					nextID++
				} else {
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					hint := m.rects[id]
					n, err := tr.Delete(id, hint)
					if err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					if n != 1 {
						t.Fatalf("step %d delete of live record returned %d", step, n)
					}
					m.delete(id)
				}
				if step%500 == 499 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if tr.Len() != len(m.rects) {
						t.Fatalf("step %d: Len %d != model %d", step, tr.Len(), len(m.rects))
					}
					for q := 0; q < 20; q++ {
						query := randQuery(rng)
						if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
							t.Fatalf("step %d: search diverged on %v", step, query)
						}
					}
				}
			}
		})
	}
}

func TestDeleteEverythingCollapsesTree(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	rects := map[node.RecordID]geom.Rect{}
	for i := 0; i < 800; i++ {
		r := randSegment(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		rects[id] = r
	}
	if tr.Height() < 3 {
		t.Fatalf("fixture height %d, want >= 3", tr.Height())
	}
	for id, r := range rects {
		if _, err := tr.Delete(id, r); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d after deleting everything, want 1 (collapsed root)", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree remains usable.
	if err := tr.Insert(geom.Point(1, 1), 9999); err != nil {
		t.Fatal(err)
	}
	if got := searchIDs(t, tr, geom.Rect2(0, 0, 2, 2)); !idsEqual(got, []node.RecordID{9999}) {
		t.Fatalf("post-collapse insert lost: %v", got)
	}
}

func TestDeleteWithPartialHintLeavesOthers(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	// Two records, distinct IDs, same area.
	if err := tr.Insert(geom.Rect2(10, 10, 20, 20), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Rect2(10, 10, 20, 20), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Delete(1, geom.Rect2(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	got := searchIDs(t, tr, geom.Rect2(0, 0, 100, 100))
	if !idsEqual(got, []node.RecordID{2}) {
		t.Fatalf("wrong record deleted: %v", got)
	}
}

func TestDeleteValidatesHint(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Delete(1, geom.Rect{Min: []float64{1}, Max: []float64{0}}); err == nil {
		t.Error("invalid hint accepted")
	}
}

func TestDeleteWhereMatchesModel(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			rng := rand.New(rand.NewSource(501))
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			m := newModel()
			for i := 0; i < 2000; i++ {
				r := randSegment(rng)
				id := node.RecordID(i + 1)
				if err := tr.Insert(r, id); err != nil {
					t.Fatal(err)
				}
				m.insert(r, id)
			}
			// Remove everything in the left third of the domain.
			region := geom.Rect2(0, 0, 333, 1000)
			want := len(m.search(region))
			got, err := tr.DeleteWhere(region, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("DeleteWhere removed %d, model says %d", got, want)
			}
			for _, id := range m.search(region) {
				m.delete(id)
			}
			if tr.Len() != len(m.rects) {
				t.Fatalf("Len = %d, model %d", tr.Len(), len(m.rects))
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 100; q++ {
				query := randQuery(rng)
				if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
					t.Fatalf("post-DeleteWhere search diverged on %v", query)
				}
			}
		})
	}
}

func TestDeleteWherePredicate(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	// Even IDs in a cluster; odd IDs elsewhere.
	for i := 0; i < 100; i++ {
		var r geom.Rect
		if i%2 == 0 {
			r = geom.Point(float64(100+i), 100)
		} else {
			r = geom.Point(float64(100+i), 900)
		}
		if err := tr.Insert(r, node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete only even-ID records from the whole domain.
	n, err := tr.DeleteWhere(geom.Rect2(0, 0, 1000, 1000), func(e Entry) bool {
		return e.ID%2 == 1 // ids are i+1, so odd IDs are the i%2==0 cluster
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("predicate delete removed %d, want 50", n)
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	left, err := tr.Count(geom.Rect2(0, 0, 1000, 500))
	if err != nil || left != 0 {
		t.Fatalf("low cluster survivors: %d, %v", left, err)
	}
}

func TestDeleteWhereRemovesAllPortionsOfCutRecords(t *testing.T) {
	tr := buildClusteredTree(t, true)
	seg := findSubRootCutSegment(t, tr)
	if err := tr.Insert(seg, 888); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Cuts == 0 {
		t.Fatal("fixture did not cut")
	}
	// Delete via a query touching only part of the segment; every portion
	// must go.
	touch := geom.Rect2(seg.Max[0]-1, seg.Min[1], seg.Max[0], seg.Min[1])
	n, err := tr.DeleteWhere(touch, func(e Entry) bool { return e.ID == 888 })
	if err != nil || n != 1 {
		t.Fatalf("DeleteWhere = %d, %v", n, err)
	}
	leftovers := 0
	err = tr.SearchFunc(geom.Rect2(-100, 0, 1100, 1000), func(e Entry) bool {
		if e.ID == 888 {
			leftovers++
		}
		return true
	})
	if err != nil || leftovers != 0 {
		t.Fatalf("%d portions survived, err=%v", leftovers, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteWhereEmptyAndValidation(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.DeleteWhere(geom.Rect2(0, 0, 10, 10), nil)
	if err != nil || n != 0 {
		t.Fatalf("empty DeleteWhere = %d, %v", n, err)
	}
	if _, err := tr.DeleteWhere(geom.Rect{Min: []float64{1}, Max: []float64{0}}, nil); err == nil {
		t.Error("invalid query accepted")
	}
}
