package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"segidx/internal/geom"
	"segidx/internal/node"
)

// smallConfig returns a configuration with tiny pages so trees grow deep on
// small datasets, exercising splits, promotions, and demotions quickly.
func smallConfig(spanning bool) Config {
	cfg := DefaultConfig()
	cfg.Sizes.LeafBytes = 256 // leaf capacity 4, level-1 branch capacity ~7/11
	cfg.Spanning = spanning
	return cfg
}

// model is a brute-force reference index.
type model struct {
	rects map[node.RecordID]geom.Rect
}

func newModel() *model { return &model{rects: make(map[node.RecordID]geom.Rect)} }

func (m *model) insert(r geom.Rect, id node.RecordID) { m.rects[id] = r.Clone() }
func (m *model) delete(id node.RecordID)              { delete(m.rects, id) }

func (m *model) search(q geom.Rect) []node.RecordID {
	var out []node.RecordID
	for id, r := range m.rects {
		if r.Intersects(q) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func searchIDs(t *testing.T, tr *Tree, q geom.Rect) []node.RecordID {
	t.Helper()
	entries, err := tr.Search(q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	out := make([]node.RecordID, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.ID)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func idsEqual(a, b []node.RecordID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randSegment generates a horizontal segment (interval in X, point in Y),
// the paper's historical-data shape, with occasional long intervals.
func randSegment(rng *rand.Rand) geom.Rect {
	y := rng.Float64() * 1000
	cx := rng.Float64() * 1000
	length := rng.Float64() * 20
	if rng.Intn(10) == 0 { // 10% long intervals
		length = rng.Float64() * 800
	}
	lo, hi := cx-length/2, cx+length/2
	if lo < 0 {
		lo = 0
	}
	if hi > 1000 {
		hi = 1000
	}
	return geom.Rect2(lo, y, hi, y)
}

// randBox generates a small rectangle with occasional large ones.
func randBox(rng *rand.Rand) geom.Rect {
	cx, cy := rng.Float64()*1000, rng.Float64()*1000
	w, h := rng.Float64()*20, rng.Float64()*20
	if rng.Intn(10) == 0 {
		w = rng.Float64() * 600
	}
	if rng.Intn(10) == 0 {
		h = rng.Float64() * 600
	}
	r := geom.Rect2(clamp(cx-w/2), clamp(cy-h/2), clamp(cx+w/2), clamp(cy+h/2))
	return r
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1000 {
		return 1000
	}
	return v
}

func randQuery(rng *rand.Rand) geom.Rect {
	cx, cy := rng.Float64()*1000, rng.Float64()*1000
	w, h := rng.Float64()*100+1, rng.Float64()*100+1
	return geom.Rect2(clamp(cx-w/2), clamp(cy-h/2), clamp(cx+w/2), clamp(cy+h/2))
}

func TestInsertSearchBasics(t *testing.T) {
	for _, spanning := range []bool{false, true} {
		t.Run(fmt.Sprintf("spanning=%v", spanning), func(t *testing.T) {
			tr, err := NewInMemory(smallConfig(spanning))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Insert(geom.Rect2(10, 10, 20, 10), 1); err != nil {
				t.Fatal(err)
			}
			if err := tr.Insert(geom.Rect2(100, 100, 110, 100), 2); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 2 {
				t.Fatalf("Len = %d, want 2", tr.Len())
			}
			got := searchIDs(t, tr, geom.Rect2(0, 0, 50, 50))
			if !idsEqual(got, []node.RecordID{1}) {
				t.Fatalf("search = %v, want [1]", got)
			}
			got = searchIDs(t, tr, geom.Rect2(0, 0, 1000, 1000))
			if !idsEqual(got, []node.RecordID{1, 2}) {
				t.Fatalf("search all = %v, want [1 2]", got)
			}
			got = searchIDs(t, tr, geom.Rect2(500, 500, 600, 600))
			if len(got) != 0 {
				t.Fatalf("empty region search = %v, want []", got)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertRejectsBadInput(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Rect{Min: []float64{0}, Max: []float64{1}}, 1); err != ErrDims {
		t.Errorf("1-D insert into 2-D index = %v, want ErrDims", err)
	}
	if err := tr.Insert(geom.Rect{Min: []float64{5, 5}, Max: []float64{1, 1}}, 1); err != ErrBadRect {
		t.Errorf("inverted rect = %v, want ErrBadRect", err)
	}
	if _, err := tr.Search(geom.Rect{Min: []float64{0}, Max: []float64{1}}); err != ErrDims {
		t.Errorf("1-D query = %v, want ErrDims", err)
	}
}

func TestEmptyTreeSearch(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Search(geom.Rect2(0, 0, 1000, 1000))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty search = %v, %v", got, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthMatchesModel(t *testing.T) {
	cases := []struct {
		name string
		gen  func(*rand.Rand) geom.Rect
	}{
		{"segments", randSegment},
		{"boxes", randBox},
	}
	for _, spanning := range []bool{false, true} {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/spanning=%v", c.name, spanning), func(t *testing.T) {
				rng := rand.New(rand.NewSource(17))
				tr, err := NewInMemory(smallConfig(spanning))
				if err != nil {
					t.Fatal(err)
				}
				m := newModel()
				for i := 0; i < 2000; i++ {
					r := c.gen(rng)
					id := node.RecordID(i + 1)
					if err := tr.Insert(r, id); err != nil {
						t.Fatalf("insert %d: %v", i, err)
					}
					m.insert(r, id)
					if i%500 == 499 {
						if err := tr.CheckInvariants(); err != nil {
							t.Fatalf("after %d inserts: %v", i+1, err)
						}
					}
				}
				if tr.Len() != 2000 {
					t.Fatalf("Len = %d", tr.Len())
				}
				if tr.Height() < 2 {
					t.Fatalf("tree did not grow: height %d", tr.Height())
				}
				for q := 0; q < 200; q++ {
					query := randQuery(rng)
					got := searchIDs(t, tr, query)
					want := m.search(query)
					if !idsEqual(got, want) {
						t.Fatalf("query %v: got %d ids, want %d\n got=%v\nwant=%v",
							query, len(got), len(want), got, want)
					}
				}
				// Every logical record is found exactly once by a
				// full-domain search.
				all := searchIDs(t, tr, geom.Rect2(0, 0, 1000, 1000))
				if len(all) != 2000 {
					t.Fatalf("full search found %d records, want 2000", len(all))
				}
				_, distinct, err := tr.RecordCount()
				if err != nil {
					t.Fatal(err)
				}
				if distinct != 2000 {
					t.Fatalf("distinct stored ids = %d, want 2000", distinct)
				}
			})
		}
	}
}

func TestSpanningRecordsActuallyUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Stats()
	if s.SpanPlaced == 0 && s.Promotions == 0 {
		t.Error("SR-Tree stored no spanning records on long-interval data")
	}
	portions, _, err := tr.RecordCount()
	if err != nil {
		t.Fatal(err)
	}
	if portions < 3000 {
		t.Errorf("portions %d < records 3000", portions)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeNeverStoresSpanningRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Stats()
	if s.SpanPlaced != 0 || s.Promotions != 0 || s.Cuts != 0 {
		t.Errorf("R-Tree produced spanning activity: %+v", s)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchFuncEarlyStop(t *testing.T) {
	tr, err := NewInMemory(smallConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(geom.Point(float64(i*10), float64(i*10)), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	visits := 0
	err = tr.SearchFunc(geom.Rect2(0, 0, 1000, 1000), func(Entry) bool {
		visits++
		return visits < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("early stop visited %d entries, want 5", visits)
	}
}

func TestCountAndLen(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tr.Count(geom.Rect2(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 || tr.Len() != 500 {
		t.Fatalf("Count=%d Len=%d, want 500", n, tr.Len())
	}
}

func TestLinearSplitVariant(t *testing.T) {
	cfg := smallConfig(true)
	cfg.Split = SplitLinear
	tr, err := NewInMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	m := newModel()
	for i := 0; i < 1500; i++ {
		r := randBox(rng)
		id := node.RecordID(i + 1)
		if err := tr.Insert(r, id); err != nil {
			t.Fatal(err)
		}
		m.insert(r, id)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randQuery(rng)
		if !idsEqual(searchIDs(t, tr, query), m.search(query)) {
			t.Fatalf("linear-split tree diverged from model on %v", query)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Dims = 0 },
		func(c *Config) { c.Dims = 99 },
		func(c *Config) { c.MinFillFrac = 0 },
		func(c *Config) { c.MinFillFrac = 0.9 },
		func(c *Config) { c.Spanning = true; c.BranchReserve = 0 },
		func(c *Config) { c.Spanning = true; c.BranchReserve = 1.5 },
		func(c *Config) { c.Sizes.LeafBytes = 64 },
		func(c *Config) { c.Split = SplitAlgorithm(42) },
		func(c *Config) { c.CoalesceEvery = -1 },
		func(c *Config) { c.CoalesceMaxFill = 2 },
		func(c *Config) { c.Spanning = true; c.BranchReserve = 0.999 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	tr, err := NewInMemory(smallConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Stats()
	for q := 0; q < 10; q++ {
		if _, err := tr.Search(randQuery(rng)); err != nil {
			t.Fatal(err)
		}
	}
	after := tr.Stats()
	if after.Searches-before.Searches != 10 {
		t.Errorf("Searches delta = %d, want 10", after.Searches-before.Searches)
	}
	if after.SearchNodeAccesses <= before.SearchNodeAccesses {
		t.Error("SearchNodeAccesses did not advance")
	}
	if after.Inserts != 1000 {
		t.Errorf("Inserts = %d, want 1000", after.Inserts)
	}
	if after.LeafSplits == 0 {
		t.Error("expected leaf splits on 1000 inserts with capacity-4 leaves")
	}
}

// rect4 builds a rect from a [xlo, ylo, xhi, yhi] array.
func rect4(v [4]float64) geom.Rect {
	return geom.Rect2(v[0], v[1], v[2], v[3])
}
