package core

import "sync/atomic"

// Stats counts tree activity since creation. Counters are maintained under
// the tree lock; Stats() returns a consistent snapshot.
//
// SearchNodeAccesses / Searches reproduce the paper's cost metric: the
// average number of index nodes accessed per search is the per-experiment
// delta of SearchNodeAccesses divided by the delta of Searches.
type Stats struct {
	Searches           uint64 // Search/SearchFunc calls
	SearchNodeAccesses uint64 // nodes touched by searches
	Inserts            uint64 // logical records inserted
	InsertNodeAccesses uint64 // nodes touched by inserts (incl. reinserts)
	Deletes            uint64 // logical records deleted

	LeafSplits    uint64 // leaf node splits
	NonLeafSplits uint64 // non-leaf node splits

	Cuts       uint64 // records cut into spanning + remnant portions
	Remnants   uint64 // remnant portions created by cuts
	SpanPlaced uint64 // spanning index records placed on non-leaf nodes
	Promotions uint64 // records moved to a parent node after a split
	Demotions  uint64 // spanning records removed for reinsertion
	Relinks    uint64 // spanning records relinked to a different branch

	Coalesces uint64 // sibling leaf merges performed
	Reinserts uint64 // records reinserted (demotion, condensation, merges)

	// CutPortions is a gauge (not a counter): the number of stored record
	// portions currently in excess of logical records. Zero means no
	// record has more than one stored portion, which lets Search and
	// Count skip duplicate elimination.
	CutPortions uint64
}

// Stats returns a snapshot of the tree's counters. Counters written only
// by mutating operations are read under the lock; search-path counters are
// updated atomically by concurrent readers and loaded the same way.
func (t *Tree) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{
		Searches:           atomic.LoadUint64(&t.stats.Searches),
		SearchNodeAccesses: atomic.LoadUint64(&t.stats.SearchNodeAccesses),
		InsertNodeAccesses: atomic.LoadUint64(&t.stats.InsertNodeAccesses),
		Inserts:            t.stats.Inserts,
		Deletes:            t.stats.Deletes,
		LeafSplits:         t.stats.LeafSplits,
		NonLeafSplits:      t.stats.NonLeafSplits,
		Cuts:               t.stats.Cuts,
		Remnants:           t.stats.Remnants,
		SpanPlaced:         t.stats.SpanPlaced,
		Promotions:         t.stats.Promotions,
		Demotions:          t.stats.Demotions,
		Relinks:            t.stats.Relinks,
		Coalesces:          t.stats.Coalesces,
		Reinserts:          t.stats.Reinserts,
		CutPortions:        uint64(t.cutPortions),
	}
}
