package core

import (
	"errors"
	"testing"

	"segidx/internal/node"
	"segidx/internal/store"
	"segidx/internal/store/faultstore"
)

// FuzzTreeOpsCrash is FuzzTreeOps wired into the fault-injection store:
// the fuzzer picks an operation stream (inserts, deletes, flushes), a
// disk op to cut power at, a tear length for the interrupted write, and a
// crash-image policy. Whatever it picks, reopening must recover a
// commit-boundary state:
//
//   - no Flush ever completed: an empty store (ErrNoMeta) or the state of
//     an interrupted commit that made it to the log;
//   - otherwise: the state at the last completed Flush, or — when the
//     power cut landed inside a later Flush — the state that Flush was
//     committing.
func FuzzTreeOpsCrash(f *testing.F) {
	f.Add([]byte{}, uint16(0), byte(0), byte(0), false)
	{
		// Inserts, a flush, more inserts, another flush; cut during the
		// second commit with a whole-page tear under each policy.
		var seed []byte
		for i := 0; i < 20; i++ {
			seed = append(seed, 0, byte(i*7), byte(i*11), byte(i*7+3), byte(i*11+5), byte(i), byte(i*3), byte(i), byte(i*3))
		}
		seed = append(seed, 3) // flush
		for i := 20; i < 32; i++ {
			seed = append(seed, 0, byte(i*5), byte(i*13), byte(i*5+2), byte(i*13+4), byte(i), byte(i*3), byte(i), byte(i*3))
		}
		seed = append(seed, 3)
		for _, policy := range []byte{0, 1, 2} {
			f.Add(seed, uint16(30), byte(255), policy, false)
			f.Add(seed, uint16(30), byte(5), policy, true)
			f.Add(seed, uint16(3), byte(0), policy, false)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, crashAt uint16, tearSel, policySel byte, spanning bool) {
		if len(data) > 512 {
			t.Skip() // bound per-input work
		}
		tear := int(tearSel)
		if tear > 200 {
			tear = 1 << 20 // "the whole write made it, then the power died"
		}
		policies := []faultstore.CrashPolicy{faultstore.KeepNone, faultstore.KeepAll, faultstore.KeepSubset}
		policy := policies[int(policySel)%len(policies)]

		disk := faultstore.NewDisk()
		if crashAt > 0 {
			disk.SetCrashPoint(int(crashAt), tear)
		}
		ws, err := store.OpenWALStoreIn(disk, "idx.db")
		if err != nil {
			if disk.Crashed() {
				return // open itself can be cut; nothing was ever committed
			}
			t.Fatal(err)
		}
		defer ws.Close()
		cfg := smallConfig(spanning)
		tr, err := New(cfg, ws)
		if err != nil {
			t.Fatal(err)
		}

		m := newModel()
		var lastCommitted *model // oracle at the last completed Flush
		snapshot := func() *model {
			s := newModel()
			for id, r := range m.rects {
				s.insert(r, id)
			}
			return s
		}

		ops := &fuzzOps{data: data}
		nextID := node.RecordID(1)
		var live []node.RecordID
		var opErr error
	workload:
		for ops.more() && opErr == nil {
			switch ops.byte() % 4 {
			case 0: // insert
				r := ops.rect()
				if opErr = tr.Insert(r, nextID); opErr != nil {
					break workload
				}
				m.insert(r, nextID)
				live = append(live, nextID)
				nextID++
			case 1: // delete
				if len(live) == 0 {
					continue
				}
				i := int(ops.byte()) % len(live)
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				if _, opErr = tr.Delete(id, m.rects[id]); opErr != nil {
					break workload
				}
				m.delete(id)
			case 2: // search (reads can also hit the power cut)
				if _, opErr = tr.Search(ops.rect()); opErr != nil {
					break workload
				}
			case 3: // flush = commit boundary
				if opErr = tr.Flush(); opErr != nil {
					break workload
				}
				lastCommitted = snapshot()
			}
		}
		if opErr == nil {
			opErr = tr.Close()
		}

		if !disk.Crashed() {
			if opErr != nil {
				t.Fatalf("fault-free run failed: %v", opErr)
			}
			// Close committed everything; a reopen must see the final model.
			img := disk.CrashImage(faultstore.KeepNone, 0) // synced state only
			checkCrashRecovery(t, cfg, img, snapshot(), snapshot())
			return
		}
		if opErr == nil {
			t.Fatal("disk crashed but the workload reported success")
		}
		img := disk.CrashImage(policy, uint64(policySel)*31+uint64(tearSel))
		checkCrashRecovery(t, cfg, img, lastCommitted, snapshot())
	})
}

// checkCrashRecovery reopens a crash image and asserts the recovered tree
// is one of the two states that may be durable: the last completed commit
// (nil = nothing ever committed) or the state the in-flight commit was
// writing.
func checkCrashRecovery(t *testing.T, cfg Config, img *faultstore.Disk, lastCommitted, inFlight *model) {
	t.Helper()
	ws, err := store.OpenWALStoreIn(img, "idx.db")
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer ws.Close()
	tr, err := Open(cfg, ws)
	if errors.Is(err, ErrNoMeta) {
		if lastCommitted != nil {
			t.Fatalf("a completed commit (%d records) vanished: reopen says ErrNoMeta", len(lastCommitted.rects))
		}
		return
	}
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree violates invariants: %v", err)
	}
	if lastCommitted != nil && treeMatchesModel(t, tr, lastCommitted) {
		return
	}
	if treeMatchesModel(t, tr, inFlight) {
		return
	}
	t.Fatalf("recovered tree (%d records) matches neither the last commit nor the in-flight one", tr.Len())
}
