package core

import (
	"math/rand"
	"testing"

	"segidx/internal/node"
	"segidx/internal/store"
)

// TestEpochRoundTrip verifies the forest flush epoch rides the metadata
// page through Flush, ReadMeta, and Open.
func TestEpochRoundTrip(t *testing.T) {
	st := store.NewMemStore()
	tr, err := New(smallConfig(true), st)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Epoch(); got != 0 {
		t.Fatalf("fresh epoch = %d", got)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		if err := tr.Insert(randSegment(rng), node.RecordID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	tr.SetEpoch(7)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	meta, err := ReadMeta(st)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 7 {
		t.Fatalf("ReadMeta epoch = %d, want 7", meta.Epoch)
	}

	reopened, err := Open(smallConfig(true), st)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Epoch(); got != 7 {
		t.Fatalf("reopened epoch = %d, want 7", got)
	}
	if reopened.Len() != 20 {
		t.Fatalf("reopened Len = %d", reopened.Len())
	}

	// SetEpoch alone does not persist: only the next Flush carries it.
	reopened.SetEpoch(9)
	meta, err = ReadMeta(st)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 7 {
		t.Fatalf("epoch persisted without Flush: %d", meta.Epoch)
	}
	if err := reopened.Flush(); err != nil {
		t.Fatal(err)
	}
	meta, err = ReadMeta(st)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 9 {
		t.Fatalf("post-flush epoch = %d, want 9", meta.Epoch)
	}
}
