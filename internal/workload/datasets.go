package workload

import (
	"fmt"
	"sort"

	"segidx/internal/geom"
)

// Domain bounds from Section 5: "the domain of input data values was
// between 0 and 100,000 in two dimensions".
const (
	DomainLo = 0.0
	DomainHi = 100000.0
)

// Paper distribution parameters (Section 5).
const (
	// UniformLengthMax bounds the uniform interval-length distribution of
	// I1, I2, and R1 ("difference between interval endpoints uniformly
	// distributed over [0, 100]").
	UniformLengthMax = 100.0
	// ExpLengthBeta is the exponential interval-length parameter of I3,
	// I4, and R2 (β = 2000).
	ExpLengthBeta = 2000.0
	// ExpValueBeta is the exponential Y-value / centroid parameter of I2
	// and I4 (β = 7000).
	ExpValueBeta = 7000.0
)

// Domain returns the experiment domain rectangle.
func Domain() geom.Rect { return geom.Rect2(DomainLo, DomainLo, DomainHi, DomainHi) }

// Dataset identifies one of the paper's input distributions.
type Dataset int

const (
	// I1: uniform Y-values, uniform interval lengths over [0, 100].
	I1 Dataset = iota
	// I2: exponential Y-values (β=7000), uniform lengths.
	I2
	// I3: uniform Y-values, exponential lengths (β=2000).
	I3
	// I4: exponential Y-values, exponential lengths.
	I4
	// R1: rectangles, uniform centroids, uniform side lengths.
	R1
	// R2: rectangles, uniform centroids, exponential side lengths.
	R2
	// RE1: rectangles, exponential centroids, uniform side lengths — one
	// of the runs Section 5.1 reports as performed but omits for brevity.
	RE1
	// RE2: rectangles, exponential centroids, exponential side lengths.
	RE2
	// TI: the temporal "increasing ending time" workload — line segments
	// delivered in order of ascending right endpoint, modeling an
	// append-mostly history where records close (acquire their ending
	// time) roughly in the order they are committed. Ending times are
	// uniform over the domain, lengths exponential (β=2000), Y uniform.
	TI
)

// All lists every dataset in presentation order.
func All() []Dataset { return []Dataset{I1, I2, I3, I4, R1, R2, RE1, RE2, TI} }

// String returns the paper's name for the dataset.
func (d Dataset) String() string {
	switch d {
	case I1:
		return "I1"
	case I2:
		return "I2"
	case I3:
		return "I3"
	case I4:
		return "I4"
	case R1:
		return "R1"
	case R2:
		return "R2"
	case RE1:
		return "RE1"
	case RE2:
		return "RE2"
	case TI:
		return "TI"
	default:
		return fmt.Sprintf("Dataset(%d)", int(d))
	}
}

// Describe returns the paper's one-line description of the dataset.
func (d Dataset) Describe() string {
	switch d {
	case I1:
		return "line segments: uniform Y, uniform length U[0,100]"
	case I2:
		return "line segments: exponential Y (β=7000), uniform length U[0,100]"
	case I3:
		return "line segments: uniform Y, exponential length (β=2000)"
	case I4:
		return "line segments: exponential Y (β=7000), exponential length (β=2000)"
	case R1:
		return "rectangles: uniform centroids, uniform sides U[0,100]"
	case R2:
		return "rectangles: uniform centroids, exponential sides (β=2000)"
	case RE1:
		return "rectangles: exponential centroids (β=7000), uniform sides U[0,100]"
	case RE2:
		return "rectangles: exponential centroids (β=7000), exponential sides (β=2000)"
	case TI:
		return "temporal: segments in increasing-ending-time order, exponential length (β=2000), uniform Y"
	default:
		return "unknown"
	}
}

// ParseDataset resolves a dataset by its paper name.
func ParseDataset(s string) (Dataset, error) {
	for _, d := range All() {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown dataset %q", s)
}

// IsInterval reports whether the dataset consists of horizontal line
// segments (degenerate Y extent) rather than rectangles.
func (d Dataset) IsInterval() bool { return d <= I4 || d == TI }

// Generate produces count records of the dataset in insertion order,
// deterministically for the seed. For most datasets the records are in
// random order already (centers are drawn independently), matching the
// paper's "inserted in random order"; TI delivers its records sorted by
// ascending ending time, the arrival order a temporal history produces.
func (d Dataset) Generate(count int, seed uint64) []geom.Rect {
	rng := NewRNG(seed ^ uint64(d)<<32)
	out := make([]geom.Rect, count)
	for i := range out {
		out[i] = d.next(rng)
	}
	if d == TI {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Max[0] < out[j].Max[0] })
	}
	return out
}

//seglint:allow nodepanic — exhaustive switch over the Dataset enum; an unknown value is a programming error at the call site, not a runtime input
func (d Dataset) next(rng *RNG) geom.Rect {
	switch d {
	case I1:
		return segment(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi), rng.Float64()*UniformLengthMax)
	case I2:
		return segment(rng.Exp(ExpValueBeta, DomainHi), rng.Uniform(DomainLo, DomainHi), rng.Float64()*UniformLengthMax)
	case I3:
		return segment(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi), rng.Exp(ExpLengthBeta, 0))
	case I4:
		return segment(rng.Exp(ExpValueBeta, DomainHi), rng.Uniform(DomainLo, DomainHi), rng.Exp(ExpLengthBeta, 0))
	case R1:
		return box(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi),
			rng.Float64()*UniformLengthMax, rng.Float64()*UniformLengthMax)
	case R2:
		return box(rng.Uniform(DomainLo, DomainHi), rng.Uniform(DomainLo, DomainHi),
			rng.Exp(ExpLengthBeta, 0), rng.Exp(ExpLengthBeta, 0))
	case RE1:
		return box(rng.Exp(ExpValueBeta, DomainHi), rng.Exp(ExpValueBeta, DomainHi),
			rng.Float64()*UniformLengthMax, rng.Float64()*UniformLengthMax)
	case RE2:
		return box(rng.Exp(ExpValueBeta, DomainHi), rng.Exp(ExpValueBeta, DomainHi),
			rng.Exp(ExpLengthBeta, 0), rng.Exp(ExpLengthBeta, 0))
	case TI:
		end := rng.Uniform(DomainLo, DomainHi)
		start := clampDomain(end - rng.Exp(ExpLengthBeta, 0))
		y := rng.Uniform(DomainLo, DomainHi)
		return geom.Rect2(start, y, end, y)
	default:
		panic(fmt.Sprintf("workload: unknown dataset %d", int(d)))
	}
}

// segment builds a horizontal line segment at Y value y, centered at cx,
// with the given length, clipped to the domain.
func segment(y, cx, length float64) geom.Rect {
	lo := clampDomain(cx - length/2)
	hi := clampDomain(cx + length/2)
	return geom.Rect2(lo, y, hi, y)
}

// box builds a rectangle centered at (cx, cy) with the given side lengths,
// clipped to the domain.
func box(cx, cy, w, h float64) geom.Rect {
	return geom.Rect2(
		clampDomain(cx-w/2), clampDomain(cy-h/2),
		clampDomain(cx+w/2), clampDomain(cy+h/2),
	)
}

func clampDomain(v float64) float64 {
	if v < DomainLo {
		return DomainLo
	}
	if v > DomainHi {
		return DomainHi
	}
	return v
}
