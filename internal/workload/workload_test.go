package workload

import (
	"math"
	"testing"
)

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(2)
	same := 0
	a2 := NewRNG(1)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestRNGUniformMoments(t *testing.T) {
	rng := NewRNG(3)
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	varr := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g", mean)
	}
	if math.Abs(varr-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %g", varr)
	}
}

func TestRNGExpMoments(t *testing.T) {
	rng := NewRNG(4)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := rng.Exp(2000, 0)
		if v < 0 {
			t.Fatalf("Exp negative: %g", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2000) > 50 {
		t.Errorf("exp mean = %g, want ~2000", mean)
	}
}

func TestRNGExpTruncation(t *testing.T) {
	rng := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := rng.Exp(7000, DomainHi); v >= DomainHi {
			t.Fatalf("truncated Exp returned %g >= %g", v, DomainHi)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(6)
	p := rng.Perm(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestDatasetsShapes(t *testing.T) {
	const n = 5000
	for _, d := range All() {
		recs := d.Generate(n, 42)
		if len(recs) != n {
			t.Fatalf("%v: generated %d", d, len(recs))
		}
		domain := Domain()
		var totalXLen, totalYLen float64
		for i, r := range recs {
			if !r.Valid() {
				t.Fatalf("%v record %d invalid: %v", d, i, r)
			}
			if !domain.Contains(r) {
				t.Fatalf("%v record %d escapes domain: %v", d, i, r)
			}
			if d.IsInterval() && r.Length(1) != 0 {
				t.Fatalf("%v record %d has Y extent %g, want segment", d, i, r.Length(1))
			}
			totalXLen += r.Length(0)
			totalYLen += r.Length(1)
		}
		meanX := totalXLen / n
		switch d {
		case I1, I2:
			// Uniform [0,100] lengths: mean ~50 (minus clipping, negligible).
			if meanX < 40 || meanX > 60 {
				t.Errorf("%v mean X length = %g, want ~50", d, meanX)
			}
		case I3, I4:
			// Exponential β=2000 (clipped at the domain edges shortens a
			// few): mean well above the uniform case.
			if meanX < 1500 || meanX > 2500 {
				t.Errorf("%v mean X length = %g, want ~2000", d, meanX)
			}
		}
		if d == R2 {
			if meanY := totalYLen / n; meanY < 1500 || meanY > 2500 {
				t.Errorf("R2 mean Y length = %g, want ~2000", meanY)
			}
		}
	}
}

func TestDatasetYSkew(t *testing.T) {
	const n = 20000
	low := func(d Dataset) float64 {
		recs := d.Generate(n, 7)
		count := 0
		for _, r := range recs {
			if r.Center(1) < 10000 {
				count++
			}
		}
		return float64(count) / n
	}
	// Uniform Y: ~10% below 10000. Exponential β=7000: 1-exp(-10/7) ~76%.
	if f := low(I1); f < 0.07 || f > 0.13 {
		t.Errorf("I1 low-Y fraction = %g, want ~0.10", f)
	}
	if f := low(I2); f < 0.68 || f > 0.84 {
		t.Errorf("I2 low-Y fraction = %g, want ~0.76", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := I3.Generate(100, 9)
	b := I3.Generate(100, 9)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed generated different data")
		}
	}
	c := I3.Generate(100, 10)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds generated %d identical records", same)
	}
}

func TestTIDataset(t *testing.T) {
	const n = 5000
	recs := TI.Generate(n, 13)
	if len(recs) != n {
		t.Fatalf("generated %d records", n)
	}
	var meanLen float64
	for i, r := range recs {
		if i > 0 && r.Max[0] < recs[i-1].Max[0] {
			t.Fatalf("record %d ends at %g, before record %d at %g — not increasing",
				i, r.Max[0], i-1, recs[i-1].Max[0])
		}
		if r.Length(1) != 0 {
			t.Fatalf("record %d has Y extent %g, want segment", i, r.Length(1))
		}
		meanLen += r.Length(0)
	}
	meanLen /= n
	if meanLen < 1500 || meanLen > 2500 {
		t.Errorf("TI mean interval length = %g, want ~2000", meanLen)
	}

	// Determinism: same seed, identical records in identical order.
	again := TI.Generate(n, 13)
	for i := range recs {
		if !recs[i].Equal(again[i]) {
			t.Fatalf("same seed generated different record %d", i)
		}
	}
	other := TI.Generate(n, 14)
	same := 0
	for i := range recs {
		if recs[i].Equal(other[i]) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds generated %d identical records", same)
	}
}

func TestTIStabTimes(t *testing.T) {
	const now = 60000.0
	ts := TIStabTimes(now, 10000, 21)
	again := TIStabTimes(now, 10000, 21)
	recent := 0
	for i, v := range ts {
		if v < DomainLo || v > now {
			t.Fatalf("stab time %d = %g outside [0, %g]", i, v, now)
		}
		if v != again[i] {
			t.Fatal("same seed generated different stab times")
		}
		if v >= now-(DomainHi-DomainLo)*TIRecentWindow {
			recent++
		}
	}
	// TIRecentFraction land in the frontier band by construction, plus the
	// sliver of uniform history draws that fall there by chance.
	if f := float64(recent) / float64(len(ts)); f < 0.75 || f > 0.92 {
		t.Errorf("recent fraction = %g, want ~0.84", f)
	}
}

func TestQueriesShape(t *testing.T) {
	for _, qar := range QARs() {
		qs := Queries(qar, 100, 11)
		if len(qs) != 100 {
			t.Fatalf("qar %g: %d queries", qar, len(qs))
		}
		for _, q := range qs {
			area := q.Area()
			if math.Abs(area-QueryArea) > 1 {
				t.Fatalf("qar %g: area %g", qar, area)
			}
			ar := q.AspectRatio()
			if math.Abs(ar-qar)/qar > 1e-9 {
				t.Fatalf("qar %g: aspect %g", qar, ar)
			}
		}
	}
}

func TestQARListMatchesPaper(t *testing.T) {
	want := []float64{0.0001, 0.001, 0.01, 0.1, 0.2, 0.5, 1, 2, 5, 10, 100, 1000, 10000}
	got := QARs()
	if len(got) != len(want) {
		t.Fatalf("QARs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QARs[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestParseDataset(t *testing.T) {
	for _, d := range All() {
		got, err := ParseDataset(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDataset(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDataset("X9"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if I4.Describe() == "unknown" || R2.Describe() == "unknown" {
		t.Error("missing descriptions")
	}
}
