// Package workload generates the paper's synthetic datasets and queries
// (Section 5): six input distributions over the domain [0, 100000]² —
// interval data I1–I4 (Y points, X intervals) and rectangle data R1–R2 —
// plus the exponential-centroid rectangle variants the paper ran but
// omitted for brevity, and the query workload: rectangles of area 10⁶
// whose horizontal-to-vertical aspect ratio (QAR) sweeps 10⁻⁴ … 10⁴.
//
// Generation is deterministic for a given seed across platforms and Go
// releases: the package uses its own splitmix64 generator rather than
// math/rand, whose stream is not guaranteed stable between versions.
package workload

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Not cryptographically secure; intended for reproducible
// experiment workloads.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent-looking
// streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Exp returns an exponentially distributed value with mean beta, resampled
// until it falls below limit (limit <= 0 disables the bound). The paper's
// Y-value distributions use beta = 7000 over a 100000 domain, so the
// truncation affects well under 0.1% of draws and preserves the shape.
func (r *RNG) Exp(beta, limit float64) float64 {
	for {
		u := r.Float64()
		// Guard against log(0).
		if u >= 1 {
			continue
		}
		v := -beta * math.Log(1-u)
		if limit <= 0 || v < limit {
			return v
		}
	}
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
